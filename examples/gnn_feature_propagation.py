#!/usr/bin/env python
"""Distributed GNN feature propagation — the paper's proposed application.

Section VII plans to "apply EBV to distributed graph neural networks".
The communication-bound kernel of distributed GNN inference is K-hop
sparse feature aggregation; this example runs it on the BSP engine
under several partitioners, verifies the result against a sequential
reference, and shows how the partitioner choice sets the GNN's
communication bill.  As a finale it uses the propagated features for a
tiny label-propagation classification task.

Run:  python examples/gnn_feature_propagation.py
"""

import numpy as np

from repro.analysis import render_table
from repro.apps import FeaturePropagation, feature_propagation_reference
from repro.bsp import BSPEngine, build_distributed_graph
from repro.graph import powerlaw_graph
from repro.partition import DBHPartitioner, EBVPartitioner, GingerPartitioner


def main() -> None:
    graph = powerlaw_graph(
        4000, eta=2.1, min_degree=4, seed=21, name="gnn-demo"
    )
    dims = 16
    hops = 3
    rng = np.random.default_rng(0)
    features = rng.normal(size=(graph.num_vertices, dims))
    print(
        f"{graph.name}: |V|={graph.num_vertices} |E|={graph.num_edges}, "
        f"{dims}-d features, {hops} hops\n"
    )

    engine = BSPEngine()
    reference = feature_propagation_reference(graph, features, hops=hops)
    rows = []
    for partitioner in (EBVPartitioner(), GingerPartitioner(), DBHPartitioner()):
        result = partitioner.partition(graph, 16)
        dg = build_distributed_graph(result)
        run = engine.run(dg, FeaturePropagation(features, hops=hops))
        assert np.allclose(run.values, reference, atol=1e-10)
        rows.append(
            (
                partitioner.name,
                run.total_messages,
                f"{run.message_max_mean_ratio:.3f}",
                f"{run.execution_time:.4f}",
            )
        )
    print(
        render_table(
            ["Partitioner", "Agg. messages", "max/mean", "time (s)"],
            rows,
            title="GNN aggregation communication by partitioner (16 workers)",
        )
    )
    print("\nall partitioners agree with the sequential propagation\n")

    # Toy downstream task: 2-class label propagation on the embeddings.
    # Seed labels on the two highest-degree hubs, classify by embedding
    # distance to the propagated seed rows.
    hubs = np.argsort(graph.degrees())[-2:]
    result = EBVPartitioner().partition(graph, 16)
    run = BSPEngine().run(
        build_distributed_graph(result), FeaturePropagation(features, hops=hops)
    )
    emb = run.values
    d0 = np.linalg.norm(emb - emb[hubs[0]], axis=1)
    d1 = np.linalg.norm(emb - emb[hubs[1]], axis=1)
    assigned = (d1 < d0).sum()
    print(
        f"toy classification: {assigned} vertices nearer hub {hubs[1]}, "
        f"{graph.num_vertices - assigned} nearer hub {hubs[0]}"
    )


if __name__ == "__main__":
    main()
