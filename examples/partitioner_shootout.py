#!/usr/bin/env python
"""Partitioner shoot-out: Table III/IV metrics on a graph of your choice.

Scores every partitioner in the registry — the paper's six plus the
streaming/sharded EBV variants and the extension baselines — on the
three Section III-C metrics plus measured CC messages.  Loads a
SNAP-style edge list if a path is given, otherwise generates a
Friendster-flavoured power-law graph.

Run:  python examples/partitioner_shootout.py [edge_list.txt] [num_parts]
"""

import sys

from repro.analysis import format_sci, render_table
from repro.graph import powerlaw_graph, read_edge_list
from repro.pipeline import PARTITIONERS, Pipeline


def main() -> None:
    if len(sys.argv) > 1:
        graph = read_edge_list(sys.argv[1])
    else:
        graph = powerlaw_graph(
            10_000, eta=2.4, min_degree=5, seed=2, name="friendster-like"
        )
    num_parts = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    print(
        f"{graph.name}: |V|={graph.num_vertices} |E|={graph.num_edges}, "
        f"p={num_parts}\n"
    )

    rows = []
    for method in PARTITIONERS.names():
        result = (
            Pipeline()
            .source(graph)
            .partition(method, parts=num_parts)
            .run("cc")
            .execute()
        )
        m, run = result.metrics, result.run
        rows.append(
            (
                method,
                f"{m.edge_imbalance:.2f}",
                f"{m.vertex_imbalance:.2f}",
                f"{m.replication:.2f}",
                format_sci(float(run.total_messages)),
                f"{run.message_max_mean_ratio:.3f}",
            )
        )
    print(
        render_table(
            ["Method", "EdgeImb", "VertImb", "RF", "CC msgs", "max/mean"],
            rows,
            title="Partition quality and measured communication",
        )
    )


if __name__ == "__main__":
    main()
