#!/usr/bin/env python
"""Partitioner shoot-out: Table III/IV metrics on a graph of your choice.

Loads a SNAP-style edge list if a path is given, otherwise generates a
Friendster-flavoured power-law graph, then scores all six partition
algorithms on the paper's three metrics plus measured CC messages.

Run:  python examples/partitioner_shootout.py [edge_list.txt] [num_parts]
"""

import sys

from repro.analysis import format_sci, render_table
from repro.apps import ConnectedComponents
from repro.bsp import BSPEngine, build_distributed_graph
from repro.graph import powerlaw_graph, read_edge_list
from repro.partition import PAPER_PARTITIONERS, partition_metrics


def main() -> None:
    if len(sys.argv) > 1:
        graph = read_edge_list(sys.argv[1])
    else:
        graph = powerlaw_graph(
            10_000, eta=2.4, min_degree=5, seed=2, name="friendster-like"
        )
    num_parts = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    print(
        f"{graph.name}: |V|={graph.num_vertices} |E|={graph.num_edges}, "
        f"p={num_parts}\n"
    )

    engine = BSPEngine()
    rows = []
    for name, cls in PAPER_PARTITIONERS.items():
        result = cls().partition(graph, num_parts)
        m = partition_metrics(result)
        run = engine.run(build_distributed_graph(result), ConnectedComponents())
        rows.append(
            (
                name,
                f"{m.edge_imbalance:.2f}",
                f"{m.vertex_imbalance:.2f}",
                f"{m.replication:.2f}",
                format_sci(float(run.total_messages)),
                f"{run.message_max_mean_ratio:.3f}",
            )
        )
    print(
        render_table(
            ["Method", "EdgeImb", "VertImb", "RF", "CC msgs", "max/mean"],
            rows,
            title="Partition quality and measured communication",
        )
    )


if __name__ == "__main__":
    main()
