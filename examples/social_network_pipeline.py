#!/usr/bin/env python
"""Social-network analytics pipeline on a partitioned power-law graph.

The scenario from the paper's introduction: a social graph (Twitter-like
degree skew) analyzed with PageRank for influence and CC for community
reachability — and the partitioning choice decides the communication
bill.  This example runs the same workload under all six partition
algorithms and prints the trade-off table so you can see the EBV effect
on *your* machine.

Run:  python examples/social_network_pipeline.py
"""

from repro.analysis import render_table
from repro.apps import ConnectedComponents, PageRank
from repro.bsp import BSPEngine, build_distributed_graph
from repro.graph import powerlaw_graph
from repro.partition import PAPER_PARTITIONERS, partition_metrics


def main() -> None:
    graph = powerlaw_graph(
        8000, eta=2.0, min_degree=4, directed=True, seed=11, name="social"
    )
    workers = 16
    print(
        f"social graph: |V|={graph.num_vertices} |E|={graph.num_edges}, "
        f"{workers} workers\n"
    )

    engine = BSPEngine()
    rows = []
    for name, cls in PAPER_PARTITIONERS.items():
        result = cls().partition(graph, workers)
        metrics = partition_metrics(result)
        dgraph = build_distributed_graph(result)

        cc = engine.run(dgraph, ConnectedComponents())
        pr = engine.run(dgraph, PageRank(graph.num_vertices, max_iters=15))

        rows.append(
            (
                name,
                f"{metrics.replication:.2f}",
                f"{metrics.edge_imbalance:.2f}",
                f"{cc.total_messages}",
                f"{pr.total_messages}",
                f"{cc.execution_time + pr.execution_time:.4f}",
            )
        )

    print(
        render_table(
            ["Partitioner", "RF", "EdgeImb", "CC msgs", "PR msgs", "time (s)"],
            rows,
            title="Influence + reachability pipeline, per partitioner",
        )
    )

    # Top influencers according to the distributed PageRank.
    result = PAPER_PARTITIONERS["EBV"]().partition(graph, workers)
    run = engine.run(
        build_distributed_graph(result), PageRank(graph.num_vertices, max_iters=15)
    )
    top = run.values.argsort()[::-1][:5]
    print("\ntop-5 influencers (vertex: rank):")
    for v in top:
        print(f"  {v}: {run.values[v]:.6f}")


if __name__ == "__main__":
    main()
