#!/usr/bin/env python
"""Social-network analytics pipeline on a partitioned power-law graph.

The scenario from the paper's introduction: a social graph (Twitter-like
degree skew) analyzed with PageRank for influence and CC for community
reachability — and the partitioning choice decides the communication
bill.  This example sweeps the paper's six partition algorithms through
the pipeline API, then drops one level to run the second app on the
already-routed distributed graph (no re-partitioning), and prints the
trade-off table so you can see the EBV effect on *your* machine.

Run:  python examples/social_network_pipeline.py
"""

from repro.analysis import render_table
from repro.bsp import BSPEngine
from repro.experiments import PAPER_METHOD_SPECS
from repro.pipeline import APPS, GENERATORS, Pipeline

SOURCE = "powerlaw?vertices=8000,eta=2.0,min_degree=4,directed=true,seed=11,name=social"
WORKERS = 16


def main() -> None:
    graph = GENERATORS.create(SOURCE)
    print(
        f"social graph: |V|={graph.num_vertices} |E|={graph.num_edges}, "
        f"{WORKERS} workers\n"
    )

    engine = BSPEngine()
    rows = []
    ebv_pagerank = None
    for display, method in PAPER_METHOD_SPECS:
        # One pipeline per method: partition once, run CC through it ...
        cc = (
            Pipeline()
            .source(graph)
            .partition(method, parts=WORKERS)
            .run("cc")
            .execute()
        )
        # ... then reuse the routed distributed graph for PageRank.
        pr = engine.run(cc.distributed, APPS.create("pr?pagerank_iters=15", graph))
        if display == "EBV":
            ebv_pagerank = pr
        m = cc.metrics
        rows.append(
            (
                display,
                f"{m.replication:.2f}",
                f"{m.edge_imbalance:.2f}",
                f"{cc.run.total_messages}",
                f"{pr.total_messages}",
                f"{cc.run.execution_time + pr.execution_time:.4f}",
            )
        )

    print(
        render_table(
            ["Partitioner", "RF", "EdgeImb", "CC msgs", "PR msgs", "time (s)"],
            rows,
            title="Influence + reachability pipeline, per partitioner",
        )
    )

    # Top influencers according to the distributed PageRank under EBV.
    top = ebv_pagerank.values.argsort()[::-1][:5]
    print("\ntop-5 influencers (vertex: rank):")
    for v in top:
        print(f"  {v}: {ebv_pagerank.values[v]:.6f}")


if __name__ == "__main__":
    main()
