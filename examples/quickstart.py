#!/usr/bin/env python
"""Quickstart: partition a power-law graph with EBV and run CC on it.

Walks the unified pipeline API in ~30 lines:

1. compose generate -> partition -> run with the fluent builder,
2. execute it and read off the platform-independent statistics the
   paper reports,
3. serialize the exact same run to a JSON spec you could hand to
   ``python -m repro pipeline``.

Run:  python examples/quickstart.py
"""

from repro.pipeline import Pipeline


def main() -> None:
    # A Twitter-flavoured graph: heavy-tailed degrees (eta ~ 1.9),
    # partitioned into 8 subgraphs with the paper's algorithm, then
    # Connected Components on the simulated cluster.
    pipeline = (
        Pipeline()
        .source("powerlaw?vertices=5000,eta=1.9,min_degree=3,directed=true,seed=1,name=demo")
        .partition("ebv", parts=8, alpha=1.0, beta=1.0)
        .run("cc")
    )
    result = pipeline.execute()

    graph, m, run = result.graph, result.metrics, result.run
    print(f"graph: |V|={graph.num_vertices} |E|={graph.num_edges}")
    print(
        f"EBV partition: edge imbalance {m.edge_imbalance:.3f}, "
        f"vertex imbalance {m.vertex_imbalance:.3f}, "
        f"replication factor {m.replication:.3f}"
    )

    # Inspect what the paper measures; the run is born labeled with the
    # partition method that produced its distributed graph.
    num_components = len(set(run.values.tolist()))
    print(f"CC finished in {run.num_supersteps} supersteps under {run.partition_method}")
    print(f"components found: {num_components}")
    print(f"total messages: {run.total_messages}")
    print(f"message max/mean ratio: {run.message_max_mean_ratio:.3f}")
    print(
        f"modeled time: comp {run.comp:.4f}s + comm {run.comm:.4f}s, "
        f"dC {run.delta_c:.4f}s, execution {run.execution_time:.4f}s"
    )

    # The whole run as one JSON document (batch sweeps, serving, CI).
    print("\nequivalent spec for `python -m repro pipeline`:")
    print(pipeline.spec().to_json())


if __name__ == "__main__":
    main()
