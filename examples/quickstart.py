#!/usr/bin/env python
"""Quickstart: partition a power-law graph with EBV and run CC on it.

Walks the whole public API in ~40 lines:

1. generate a power-law graph,
2. partition it with EBV (and inspect the partition metrics),
3. build the distributed graph and run Connected Components on the
   subgraph-centric BSP engine,
4. read off the platform-independent statistics the paper reports.

Run:  python examples/quickstart.py
"""

from repro.graph import powerlaw_graph
from repro.partition import EBVPartitioner, partition_metrics
from repro.bsp import BSPEngine, build_distributed_graph
from repro.apps import ConnectedComponents


def main() -> None:
    # 1. A Twitter-flavoured graph: heavy-tailed degrees (eta ~ 1.9).
    graph = powerlaw_graph(
        5000, eta=1.9, min_degree=3, directed=True, seed=1, name="demo"
    )
    print(f"graph: |V|={graph.num_vertices} |E|={graph.num_edges}")

    # 2. Partition into 8 subgraphs with the paper's algorithm.
    result = EBVPartitioner(alpha=1.0, beta=1.0).partition(graph, 8)
    m = partition_metrics(result)
    print(
        f"EBV partition: edge imbalance {m.edge_imbalance:.3f}, "
        f"vertex imbalance {m.vertex_imbalance:.3f}, "
        f"replication factor {m.replication:.3f}"
    )

    # 3. Execute Connected Components on the simulated cluster.
    dgraph = build_distributed_graph(result)
    run = BSPEngine().run(dgraph, ConnectedComponents())
    run.partition_method = "EBV"

    # 4. Inspect what the paper measures.
    num_components = len(set(run.values.tolist()))
    print(f"CC finished in {run.num_supersteps} supersteps")
    print(f"components found: {num_components}")
    print(f"total messages: {run.total_messages}")
    print(f"message max/mean ratio: {run.message_max_mean_ratio:.3f}")
    print(
        f"modeled time: comp {run.comp:.4f}s + comm {run.comm:.4f}s, "
        f"dC {run.delta_c:.4f}s, execution {run.execution_time:.4f}s"
    )


if __name__ == "__main__":
    main()
