#!/usr/bin/env python
"""Replication-factor growth: watch the EBV-sort effect live (Figure 5).

Traces the replication factor edge-by-edge for EBV with and without the
sorting preprocessing, at several subgraph counts, and prints compact
ASCII growth curves — the paper's Figure 5 in your terminal.

Run:  python examples/sorting_ablation.py
"""

import numpy as np

from repro.graph import powerlaw_graph
from repro.partition import EBVPartitioner


def ascii_curve(x, y, width: int = 64, height: int = 10) -> str:
    """Render a (x, y) series as a crude ASCII line chart."""
    grid = [[" "] * width for _ in range(height)]
    y_max = max(float(np.max(y)), 1e-9)
    for i in range(width):
        xi = x[0] + (x[-1] - x[0]) * i / (width - 1)
        yi = float(np.interp(xi, x, y))
        row = height - 1 - int((height - 1) * yi / y_max)
        grid[row][i] = "*"
    lines = ["".join(row) for row in grid]
    lines.append("-" * width)
    lines.append(f"0 .. {int(x[-1])} edges processed (y max = {y_max:.2f})")
    return "\n".join(lines)


def main() -> None:
    graph = powerlaw_graph(
        6000, eta=1.9, min_degree=4, seed=9, name="twitter-like"
    )
    print(f"{graph.name}: |V|={graph.num_vertices} |E|={graph.num_edges}\n")

    for p in (8, 32):
        print(f"=== {p} subgraphs ===")
        finals = {}
        for variant, order in (("sort", "ascending"), ("unsort", "input")):
            ebv = EBVPartitioner(sort_order=order, track_growth=True)
            ebv.partition(graph, p)
            x, y = ebv.growth_curve(graph)
            finals[variant] = y[-1]
            print(f"\nEBV-{variant} (final RF {y[-1]:.3f})")
            print(ascii_curve(x, y))
        gain = (finals["unsort"] - finals["sort"]) / finals["unsort"] * 100
        print(f"\nsorting saves {gain:.1f}% replication at p={p}\n")


if __name__ == "__main__":
    main()
