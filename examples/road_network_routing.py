#!/usr/bin/env python
"""Road-network routing: SSSP over a partitioned weighted road graph.

The paper's non-power-law counterpoint (Figure 3): on a road network the
local-based partitioners (NE, METIS-like) preserve spatial locality and
slash communication, while hash-based vertex cuts shred it.  This
example computes shortest paths from a depot on a synthetic road grid
under three partitioning strategies and contrasts message bills, then
reconstructs one concrete route.

Run:  python examples/road_network_routing.py
"""

import numpy as np

from repro.analysis import render_table
from repro.apps import SSSP, sssp_reference
from repro.bsp import BSPEngine, build_distributed_graph
from repro.graph import road_network
from repro.partition import DBHPartitioner, EBVPartitioner, NEPartitioner


def main() -> None:
    grid = road_network(80, 80, seed=4, name="city")
    depot = 0
    workers = 8
    print(f"road grid: |V|={grid.num_vertices} |E|={grid.num_edges}\n")

    engine = BSPEngine()
    rows = []
    runs = {}
    for partitioner in (EBVPartitioner(), NEPartitioner(), DBHPartitioner()):
        result = partitioner.partition(grid, workers)
        run = engine.run(build_distributed_graph(result), SSSP(depot))
        run.partition_method = partitioner.name
        runs[partitioner.name] = run
        rows.append(
            (
                partitioner.name,
                run.num_supersteps,
                run.total_messages,
                f"{run.execution_time:.4f}",
            )
        )
    print(
        render_table(
            ["Partitioner", "Supersteps", "Messages", "time (s)"],
            rows,
            title="SSSP from the depot under three partitioners",
        )
    )

    # All three agree with sequential Dijkstra, bit for bit.
    reference = sssp_reference(grid, depot)
    for name, run in runs.items():
        assert np.allclose(run.values, reference), name
    print("\nall partitioners agree with sequential Dijkstra")

    # Reconstruct the route to the far corner by greedy descent.
    dist = runs["NE"].values
    target = grid.num_vertices - 1
    route = [target]
    current = target
    while current != depot and len(route) < grid.num_vertices:
        preds = grid.in_neighbors(current)
        if preds.size == 0:
            break
        edge_ids = grid.in_index().edges_of(current)
        best = None
        for e, u in zip(edge_ids.tolist(), preds.tolist()):
            if abs(dist[u] + grid.weights[e] - dist[current]) < 1e-9:
                best = u
                break
        if best is None:
            break
        route.append(best)
        current = best
    print(
        f"route depot->corner: {len(route)} hops, "
        f"distance {dist[target]:.2f} (weighted)"
    )


if __name__ == "__main__":
    main()
