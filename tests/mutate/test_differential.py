"""The differential harness: mutate-then-incremental vs rebuild-then-batch.

For every mutation scenario the incremental path (warm-started delta app
on the incrementally-maintained partition) must reproduce the rebuild
path (cold app on a from-scratch run over the mutated graph) —
bit-for-bit for CC, within tolerance for PageRank — across backends and
part counts.
"""

import numpy as np
import pytest

from repro.bsp import BSPEngine, build_distributed_graph
from repro.frameworks import make_program
from repro.mutate import (
    MutationBatch,
    apply_mutations,
    cc_warm_labels,
    pr_warm_values,
)
from repro.partition import StreamingEBVPartitioner

PR_TOL = 1e-12
PR_KW = dict(pagerank_iters=300, pagerank_tol=PR_TOL)


def scenario_batch(graph, name):
    rng = np.random.default_rng(42)
    batch = MutationBatch()
    if name in ("mixed", "delete_only"):
        pick = np.sort(rng.choice(graph.num_edges, size=15, replace=False))
        for eid in pick:
            batch.delete(int(graph.src[eid]), int(graph.dst[eid]))
    if name in ("mixed", "insert_only"):
        n = graph.num_vertices
        for _ in range(20):
            u, v = int(rng.integers(0, n)), int(rng.integers(0, n + 8))
            if u != v:
                batch.insert(u, v)
    if name == "churn":
        # delete-then-reinsert plus a cancelling insert/delete pair
        u, v = int(graph.src[0]), int(graph.dst[0])
        batch.delete(u, v).insert(u, v).insert(901, 902).delete(901, 902)
        batch.insert(3, 4).insert(3, 4)
    return batch


def run_differential(graph, scenario, app, backend, parts):
    part = StreamingEBVPartitioner().partition(graph, parts)
    batch = scenario_batch(graph, scenario)
    mut = apply_mutations(part, batch)
    engine = BSPEngine(backend=backend)

    cold_kw = PR_KW if app == "pr" else {}
    prev = engine.run(
        build_distributed_graph(part), make_program(app.upper(), graph, **cold_kw)
    )
    dg = build_distributed_graph(mut.partition)
    if app == "cc":
        warm = engine.run(
            dg,
            make_program(
                "CC-DELTA", mut.graph, prev_values=cc_warm_labels(prev.values, mut)
            ),
        )
        rebuild = engine.run(dg, make_program("CC", mut.graph))
        np.testing.assert_array_equal(warm.values, rebuild.values)
    else:
        warm = engine.run(
            dg,
            make_program(
                "PR-DELTA",
                mut.graph,
                prev_values=pr_warm_values(prev.values, mut.graph.num_vertices),
                delta_iters=300,
                pagerank_tol=PR_TOL,
            ),
        )
        rebuild = engine.run(dg, make_program("PR", mut.graph, **PR_KW))
        assert float(np.max(np.abs(warm.values - rebuild.values))) < 1e-8
    return warm, rebuild


SCENARIOS = ("mixed", "insert_only", "delete_only", "churn")


class TestSerialMatrix:
    """Full scenario × parts × app matrix on the serial backend."""

    @pytest.mark.parametrize("scenario", SCENARIOS)
    @pytest.mark.parametrize("parts", [2, 4])
    def test_cc_bit_identical(self, directed_graph, scenario, parts):
        run_differential(directed_graph, scenario, "cc", "serial", parts)

    @pytest.mark.parametrize("scenario", SCENARIOS)
    @pytest.mark.parametrize("parts", [2, 4])
    def test_pr_within_tolerance(self, directed_graph, scenario, parts):
        run_differential(directed_graph, scenario, "pr", "serial", parts)


class TestParallelBackends:
    """The harness holds on real worker pools too (one scenario each to
    bound wall time; backend-equivalence tests cover the rest)."""

    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("parts", [2, 4])
    def test_cc_mixed(self, directed_graph, backend, parts):
        run_differential(directed_graph, "mixed", "cc", backend, parts)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("parts", [2, 4])
    def test_pr_mixed(self, directed_graph, backend, parts):
        run_differential(directed_graph, "mixed", "pr", backend, parts)


class TestWarmStartSavesWork:
    def test_insert_only_cc_converges_no_slower_than_cold(self, directed_graph):
        part = StreamingEBVPartitioner().partition(directed_graph, 4)
        batch = scenario_batch(directed_graph, "insert_only")
        mut = apply_mutations(part, batch)
        engine = BSPEngine()
        prev = engine.run(
            build_distributed_graph(part), make_program("CC", directed_graph)
        )
        dg = build_distributed_graph(mut.partition)
        warm = engine.run(
            dg,
            make_program(
                "CC-DELTA", mut.graph, prev_values=cc_warm_labels(prev.values, mut)
            ),
        )
        rebuild = engine.run(dg, make_program("CC", mut.graph))
        assert warm.num_supersteps <= rebuild.num_supersteps
