"""Shared fixtures for the dynamic-graph (mutation) suite."""

import numpy as np
import pytest

from repro.graph import Graph, powerlaw_graph
from repro.mutate import MutationBatch


@pytest.fixture(scope="session")
def directed_graph():
    """A ~600-vertex directed power-law graph (the mutation substrate)."""
    return powerlaw_graph(600, eta=2.0, min_degree=3, directed=True, seed=11, name="mut-dir")


@pytest.fixture(scope="session")
def tiny_directed():
    """A 5-vertex directed graph with a parallel edge and a 2-cycle."""
    edges = [(0, 1), (1, 2), (0, 1), (2, 0), (3, 4)]
    return Graph.from_edges(edges, num_vertices=5, directed=True, name="tiny-dir")


def _mixed_batch(graph, rng, n_delete=20, n_insert=30, grow=10):
    """A deterministic mixed batch against ``graph``: real deletes plus
    inserts, some of which grow the vertex set by ``grow`` ids."""
    batch = MutationBatch()
    pick = rng.choice(graph.num_edges, size=n_delete, replace=False)
    for eid in np.sort(pick):
        batch.delete(int(graph.src[eid]), int(graph.dst[eid]))
    n = graph.num_vertices
    for _ in range(n_insert):
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n + grow))
        if u == v:
            v = (v + 1) % (n + grow)
        batch.insert(u, v)
    return batch


@pytest.fixture
def mixed_batch():
    """Factory fixture: ``mixed_batch(graph, rng, ...)`` builds a batch."""
    return _mixed_batch


@pytest.fixture
def batch_rng():
    return np.random.default_rng(777)
