"""patch_spilled_partition: out-of-core shard patching vs the in-memory path."""

import numpy as np
import pytest

from repro.graph import write_edge_list
from repro.mutate import MutationBatch, MutationError, apply_mutations
from repro.partition import StreamingEBVPartitioner
from repro.stream import (
    SpilledPartition,
    TextEdgeListStream,
    patch_spilled_partition,
    stream_partition,
)


@pytest.fixture
def spilled(directed_graph, tmp_path):
    """The directed fixture graph spilled to per-part shards."""
    edge_file = tmp_path / "graph.txt"
    write_edge_list(directed_graph, str(edge_file))
    stream = TextEdgeListStream(str(edge_file), chunk_size=512)
    return stream_partition(
        stream, StreamingEBVPartitioner(), 4, str(tmp_path / "spill")
    )


def in_memory_reference(spilled, batch, **kwargs):
    part = spilled.assemble()
    return apply_mutations(part, batch, **kwargs)


class TestPatchEquivalence:
    def test_mixed_batch_matches_in_memory_path(
        self, spilled, directed_graph, batch_rng, mixed_batch
    ):
        batch = mixed_batch(directed_graph, batch_rng)
        expect = in_memory_reference(spilled, batch)
        patched, report = patch_spilled_partition(spilled, batch)
        assert report["mode"] == "incremental"
        got = patched.assemble()
        np.testing.assert_array_equal(got.edge_parts, expect.partition.edge_parts)
        np.testing.assert_array_equal(got.graph.src, expect.graph.src)
        np.testing.assert_array_equal(got.graph.dst, expect.graph.dst)
        assert got.graph.num_vertices == expect.graph.num_vertices
        assert report["rf_after"] == pytest.approx(expect.rf_after)

    def test_insert_only_append_fast_path(self, spilled, directed_graph):
        batch = MutationBatch().insert(0, 17).insert(5, 640).insert(0, 17)
        expect = in_memory_reference(spilled, batch)
        patched, report = patch_spilled_partition(spilled, batch)
        assert report["num_deleted"] == 0
        got = patched.assemble()
        np.testing.assert_array_equal(got.edge_parts, expect.partition.edge_parts)
        assert got.graph.num_edges == directed_graph.num_edges + 3

    def test_delete_only(self, spilled, directed_graph):
        batch = MutationBatch()
        for eid in (0, 7, 100):
            batch.delete(int(directed_graph.src[eid]), int(directed_graph.dst[eid]))
        expect = in_memory_reference(spilled, batch)
        patched, _ = patch_spilled_partition(spilled, batch)
        got = patched.assemble()
        np.testing.assert_array_equal(got.edge_parts, expect.partition.edge_parts)
        np.testing.assert_array_equal(got.graph.src, expect.graph.src)

    def test_empty_batch_keeps_manifest_consistent(self, spilled):
        before = dict(spilled.manifest)
        patched, report = patch_spilled_partition(spilled, MutationBatch())
        assert patched.manifest["num_edges"] == before["num_edges"]
        assert report["num_inserted"] == 0 and report["num_deleted"] == 0

    def test_escape_hatch_respills_full(self, spilled, directed_graph, batch_rng, mixed_batch):
        batch = mixed_batch(directed_graph, batch_rng, n_delete=10, n_insert=30)
        expect = in_memory_reference(spilled, batch, repartition_threshold=0.0)
        assert expect.mode == "repartition"
        patched, report = patch_spilled_partition(
            spilled, batch, repartition_threshold=0.0
        )
        assert report["mode"] == "repartition"
        got = patched.assemble()
        np.testing.assert_array_equal(got.edge_parts, expect.partition.edge_parts)

    def test_delete_nonexistent_leaves_spill_untouched(self, spilled):
        before = dict(spilled.manifest)
        with pytest.raises(MutationError, match="cannot delete"):
            patch_spilled_partition(spilled, MutationBatch().delete(999999, 999998))
        reopened = SpilledPartition(spilled.directory)
        assert reopened.manifest["num_edges"] == before["num_edges"]

    def test_patched_spill_reopens_from_disk(self, spilled, directed_graph):
        batch = MutationBatch().insert(1, 2).delete(
            int(directed_graph.src[3]), int(directed_graph.dst[3])
        )
        patched, _ = patch_spilled_partition(spilled, batch)
        reopened = SpilledPartition(patched.directory)
        assert reopened.manifest == patched.manifest
        for p in range(reopened.manifest["num_parts"]):
            a, b = patched.part_edges(p), reopened.part_edges(p)
            for x, y in zip(a, b):
                if x is None or y is None:
                    assert x is None and y is None
                else:
                    np.testing.assert_array_equal(x, y)

    def test_undirected_spill_rejected(self, small_powerlaw, tmp_path):
        edge_file = tmp_path / "und.txt"
        write_edge_list(small_powerlaw, str(edge_file))
        stream = TextEdgeListStream(str(edge_file), chunk_size=512)
        sp = stream_partition(
            stream, StreamingEBVPartitioner(), 2, str(tmp_path / "und.spill")
        )
        with pytest.raises(MutationError, match="directed"):
            patch_spilled_partition(sp, MutationBatch().insert(0, 1))
