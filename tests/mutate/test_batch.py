"""MutationBatch parsing and ordered-resolution semantics."""

import numpy as np
import pytest

from repro.graph import Graph
from repro.mutate import MutationBatch, MutationError


class TestConstruction:
    def test_fluent_chaining_and_counts(self):
        batch = MutationBatch().insert(0, 1).delete(2, 3).insert(4, 5, weight=2.5)
        assert len(batch) == 3
        assert batch.num_insert_ops == 2
        assert batch.num_delete_ops == 1

    def test_from_ops_aliases(self):
        batch = MutationBatch.from_ops(
            [("+", 0, 1), ("add", 1, 2), ("-", 0, 1), ("del", 1, 2), ("remove", 2, 3)]
        )
        assert batch.num_insert_ops == 2
        assert batch.num_delete_ops == 3

    def test_to_ops_canonicalizes_aliases(self):
        batch = MutationBatch.from_ops([("+", 0, 1, 3.0), ("-", 0, 1)])
        assert batch.to_ops() == [["insert", 0, 1, 3.0], ["delete", 0, 1]]

    def test_unknown_op_rejected(self):
        with pytest.raises(MutationError, match="unknown mutation op"):
            MutationBatch.from_ops([("upsert", 0, 1)])

    def test_negative_endpoint_rejected(self):
        with pytest.raises(MutationError, match=">= 0"):
            MutationBatch().insert(-1, 2)

    def test_delete_with_weight_rejected(self):
        with pytest.raises(MutationError, match="must not carry a weight"):
            MutationBatch.from_ops([("delete", 0, 1, 2.0)])

    def test_from_file_grammar(self, tmp_path):
        path = tmp_path / "muts.txt"
        path.write_text(
            "# header comment\n"
            "+ 0 1\n"
            "\n"
            "- 2 3  # trailing comment\n"
            "+ 4 5 1.5\n"
        )
        batch = MutationBatch.from_file(str(path))
        assert batch.to_ops() == [
            ["insert", 0, 1],
            ["delete", 2, 3],
            ["insert", 4, 5, 1.5],
        ]

    def test_from_file_bad_line_reports_position(self, tmp_path):
        path = tmp_path / "muts.txt"
        path.write_text("+ 0 1\nnonsense\n")
        with pytest.raises(MutationError, match=r"muts\.txt:2"):
            MutationBatch.from_file(str(path))

    def test_introspection_helpers(self):
        batch = MutationBatch().insert(7, 2).delete(3, 7)
        assert batch.touched_vertices().tolist() == [2, 3, 7]
        assert batch.max_vertex() == 7
        assert MutationBatch().max_vertex() == -1
        assert MutationBatch().touched_vertices().size == 0


class TestResolution:
    def test_empty_batch_resolves_to_nothing(self, tiny_directed):
        resolved = MutationBatch().resolve_against(tiny_directed)
        assert resolved.num_removed == 0
        assert resolved.num_inserted == 0
        assert resolved.num_cancelled == 0

    def test_delete_matches_smallest_surviving_id(self, tiny_directed):
        # (0, 1) exists twice, at ids 0 and 2: first delete takes id 0.
        resolved = MutationBatch().delete(0, 1).resolve_against(tiny_directed)
        assert resolved.removed_ids.tolist() == [0]
        resolved2 = (
            MutationBatch().delete(0, 1).delete(0, 1).resolve_against(tiny_directed)
        )
        assert resolved2.removed_ids.tolist() == [0, 2]

    def test_delete_nonexistent_edge_rejected(self, tiny_directed):
        with pytest.raises(MutationError, match=r"cannot delete edge \(4, 3\)"):
            MutationBatch().delete(4, 3).resolve_against(tiny_directed)

    def test_delete_exhausting_parallel_copies_rejected(self, tiny_directed):
        batch = MutationBatch().delete(0, 1).delete(0, 1).delete(0, 1)
        with pytest.raises(MutationError, match="cannot delete"):
            batch.resolve_against(tiny_directed)

    def test_duplicate_insert_is_legal_multigraph(self, tiny_directed):
        resolved = (
            MutationBatch().insert(3, 0).insert(3, 0).resolve_against(tiny_directed)
        )
        assert resolved.num_inserted == 2
        assert resolved.insert_src.tolist() == [3, 3]

    def test_insert_then_delete_cancels_pending(self, tiny_directed):
        # (9, 9) never existed; the delete consumes the pending insert.
        resolved = (
            MutationBatch().insert(9, 8).delete(9, 8).resolve_against(tiny_directed)
        )
        assert resolved.num_inserted == 0
        assert resolved.num_removed == 0
        assert resolved.num_cancelled == 1

    def test_delete_then_reinsert_in_one_batch(self, tiny_directed):
        resolved = (
            MutationBatch().delete(1, 2).insert(1, 2).resolve_against(tiny_directed)
        )
        # The delete hits the real edge (id 1); the insert survives.
        assert resolved.removed_ids.tolist() == [1]
        assert resolved.insert_src.tolist() == [1]
        assert resolved.insert_dst.tolist() == [2]
        assert resolved.num_cancelled == 0

    def test_delete_prefers_existing_edge_over_pending_insert(self, tiny_directed):
        # insert (2, 0) then delete (2, 0): the REAL edge id 3 goes,
        # the pending insert survives (ordered multiset semantics).
        resolved = (
            MutationBatch().insert(2, 0).delete(2, 0).resolve_against(tiny_directed)
        )
        assert resolved.removed_ids.tolist() == [3]
        assert resolved.num_inserted == 1
        assert resolved.num_cancelled == 0

    def test_undirected_graph_rejected(self):
        g = Graph.from_undirected_edges([(0, 1), (1, 2)], num_vertices=3)
        with pytest.raises(MutationError, match="directed"):
            MutationBatch().insert(0, 2).resolve_against(g)

    def test_weights_dense_and_flagged(self, tiny_directed):
        resolved = (
            MutationBatch().insert(0, 4, weight=2.0).insert(4, 0).resolve_against(
                tiny_directed
            )
        )
        assert resolved.has_explicit_weights
        np.testing.assert_allclose(resolved.insert_weights, [2.0, 1.0])
        plain = MutationBatch().insert(0, 4).resolve_against(tiny_directed)
        assert not plain.has_explicit_weights
