"""PipelineSpec.mutations, the fluent builder's mutate stage, and the CLI."""

import json

import numpy as np
import pytest

from repro.bsp import BSPEngine
from repro.frameworks import make_program
from repro.graph import write_edge_list
from repro.mutate import MutationBatch
from repro.pipeline import Pipeline, PipelineSpec, SpecError, run_spec

SRC = "powerlaw?directed=true,seed=9,vertices=900"


class TestSpecValidation:
    def test_ops_normalized_and_round_trip(self):
        spec = PipelineSpec(
            source=SRC, partition="ebv-stream",
            mutations=[["+", 0, 1], ["-", 2, 3], ["insert", 4, 5, 2.0]],
        )
        assert spec.mutations == {
            "ops": [["insert", 0, 1], ["delete", 2, 3], ["insert", 4, 5, 2.0]]
        }
        again = PipelineSpec.from_dict(json.loads(spec.to_json()))
        assert again.to_dict() == spec.to_dict()

    def test_file_form_kept_verbatim(self):
        spec = PipelineSpec(source=SRC, mutations="deltas.txt")
        assert spec.mutations == {"file": "deltas.txt"}

    def test_threshold_validated(self):
        spec = PipelineSpec(
            source=SRC,
            mutations={"ops": [["insert", 0, 1]], "repartition_threshold": 0.5},
        )
        assert spec.mutations["repartition_threshold"] == 0.5
        with pytest.raises(SpecError, match=r"\[0, 1\]"):
            PipelineSpec(
                source=SRC,
                mutations={"ops": [["insert", 0, 1]], "repartition_threshold": 2},
            )

    def test_bad_shapes_rejected(self):
        with pytest.raises(SpecError, match="exactly one of"):
            PipelineSpec(source=SRC, mutations={})
        with pytest.raises(SpecError, match="exactly one of"):
            PipelineSpec(source=SRC, mutations={"file": "a", "ops": []})
        with pytest.raises(SpecError, match="unknown mutations keys"):
            PipelineSpec(source=SRC, mutations={"ops": [], "bogus": 1})
        with pytest.raises(SpecError, match="invalid 'mutations' ops"):
            PipelineSpec(source=SRC, mutations=[["upsert", 0, 1]])

    def test_unmutated_spec_serialization_unchanged(self):
        assert "mutations" not in PipelineSpec(source=SRC).to_dict()


class TestBuilderExecution:
    def test_mutate_stage_applies_and_reports(self):
        res = (
            Pipeline()
            .source(SRC)
            .partition("ebv-stream", parts=4)
            .mutate([["insert", 1, 899], ["insert", 5, 950]])
            .execute()
        )
        assert res.mutation["mode"] == "incremental"
        assert res.mutation["num_inserted"] == 2
        assert res.graph.num_vertices == 951
        assert "mutate" in res.timings
        assert res.to_dict()["mutation"]["num_inserted"] == 2

    def test_unmutated_result_has_no_mutation_key(self):
        res = Pipeline().source(SRC).partition("ebv-stream", parts=2).execute()
        assert res.mutation is None
        assert "mutation" not in res.to_dict()

    def test_run_spec_cc_delta_differential(self, tmp_path):
        from repro.graph import generate_graph

        g = generate_graph("powerlaw", vertices=900, seed=9, directed=True)
        ops = [
            ["delete", int(g.src[0]), int(g.dst[0])],
            ["insert", 2, 895],
            ["insert", 10, 940],
        ]
        res = run_spec(
            {
                "source": SRC,
                "partition": "ebv-stream",
                "parts": 4,
                "app": "cc-delta",
                "mutations": ops,
            }
        )
        assert res.mutation["seed_supersteps"] >= 1
        rebuild = BSPEngine().run(res.distributed, make_program("CC", res.graph))
        np.testing.assert_array_equal(res.run.values, rebuild.values)

    def test_mutations_file_source(self, tmp_path):
        mut_file = tmp_path / "deltas.txt"
        mut_file.write_text("+ 0 1\n+ 7 880\n")
        res = run_spec(
            {
                "source": SRC,
                "partition": "ebv-stream",
                "parts": 2,
                "mutations": str(mut_file),
            }
        )
        assert res.mutation["num_inserted"] == 2

    def test_mutate_accepts_batch_and_threshold(self):
        batch = MutationBatch().insert(0, 10).insert(0, 10)
        pipe = (
            Pipeline()
            .source(SRC)
            .partition("ebv-stream", parts=2)
            .mutate(batch, repartition_threshold=0.0)
        )
        spec = pipe.spec()
        assert spec.mutations["repartition_threshold"] == 0.0
        res = pipe.execute()
        assert res.mutation["mode"] == "repartition"

    def test_undirected_source_fails_in_mutate_stage(self):
        with pytest.raises(SpecError, match="mutate stage failed"):
            (
                Pipeline()
                .source("powerlaw?seed=1,vertices=500")
                .partition("ebv-stream", parts=2)
                .mutate([["insert", 0, 1]])
                .execute()
            )


class TestCLI:
    @pytest.fixture(scope="class")
    def graph_file(self, tmp_path_factory, directed_graph):
        path = tmp_path_factory.mktemp("cli-mutate") / "graph.txt"
        write_edge_list(directed_graph, str(path))
        return str(path)

    @pytest.fixture(scope="class")
    def mutations_file(self, tmp_path_factory, directed_graph):
        path = tmp_path_factory.mktemp("cli-mutate") / "deltas.txt"
        lines = ["# differential scenario"]
        for eid in range(8):
            lines.append(f"- {directed_graph.src[eid]} {directed_graph.dst[eid]}")
        lines += [f"+ {k} {(11 * k + 5) % 620}" for k in range(12)]
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_mutate_check_passes_cc(self, graph_file, mutations_file, capsys):
        from repro.cli import main

        assert main([
            "mutate", graph_file, "--mutations", mutations_file,
            "--parts", "4", "--app", "cc", "--check",
        ]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "incremental" in out

    def test_mutate_check_json_payload(self, graph_file, mutations_file, capsys):
        from repro.cli import main

        assert main([
            "mutate", graph_file, "--mutations", mutations_file,
            "--parts", "2", "--app", "pr", "--check", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["check"]["passed"] is True
        assert payload["mutation"]["mode"] in ("incremental", "repartition")
        assert "drift" in payload["mutation"]

    def test_mutate_app_none_only_patches(self, graph_file, mutations_file, capsys):
        from repro.cli import main

        assert main([
            "mutate", graph_file, "--mutations", mutations_file,
            "--parts", "2", "--app", "none", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "run" not in payload and "check" not in payload

    def test_mutate_bad_batch_exits_2(self, graph_file, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.txt"
        bad.write_text("- 999999 999998\n")
        assert main(["mutate", graph_file, "--mutations", str(bad), "--parts", "2"]) == 2
        assert "cannot delete" in capsys.readouterr().err
