"""apply_mutations: incremental maintenance, drift metrics, escape hatch."""

import numpy as np
import pytest

from repro.mutate import (
    DEFAULT_REPARTITION_THRESHOLD,
    MutationBatch,
    MutationError,
    apply_mutations,
    cc_warm_labels,
    mutated_graph,
    pr_warm_values,
)
from repro.partition import StreamingEBVPartitioner, replication_factor
from repro.partition.base import EDGE_CUT, PartitionResult


def base_partition(graph, parts=4):
    return StreamingEBVPartitioner().partition(graph, parts)


class TestMutatedGraph:
    def test_survivors_compact_inserts_tail(self, tiny_directed):
        resolved = (
            MutationBatch().delete(1, 2).insert(4, 1).resolve_against(tiny_directed)
        )
        g2 = mutated_graph(tiny_directed, resolved)
        assert g2.num_edges == tiny_directed.num_edges  # -1 +1
        # id 1 ((1,2)) dropped; survivors keep relative order, insert last.
        assert list(zip(g2.src.tolist(), g2.dst.tolist())) == [
            (0, 1), (0, 1), (2, 0), (3, 4), (4, 1),
        ]

    def test_vertex_set_grows_never_shrinks(self, tiny_directed):
        resolved = MutationBatch().insert(2, 9).resolve_against(tiny_directed)
        assert mutated_graph(tiny_directed, resolved).num_vertices == 10
        # Deleting a vertex's last edge leaves it isolated, not removed.
        resolved = MutationBatch().delete(3, 4).resolve_against(tiny_directed)
        assert mutated_graph(tiny_directed, resolved).num_vertices == 5

    def test_weighted_insert_on_unweighted_graph_rejected(self, tiny_directed):
        resolved = MutationBatch().insert(0, 3, weight=2.0).resolve_against(
            tiny_directed
        )
        with pytest.raises(MutationError, match="unweighted"):
            mutated_graph(tiny_directed, resolved)


class TestApplyMutations:
    def test_empty_batch_is_identity(self, directed_graph):
        part = base_partition(directed_graph)
        out = apply_mutations(part, MutationBatch())
        assert out.mode == "incremental"
        assert out.reassigned_edges == 0
        assert out.graph.num_edges == directed_graph.num_edges
        np.testing.assert_array_equal(out.partition.edge_parts, part.edge_parts)
        assert out.rf_after == pytest.approx(out.rf_before)

    def test_survivors_keep_their_parts(self, directed_graph, batch_rng, mixed_batch):
        part = base_partition(directed_graph)
        batch = mixed_batch(directed_graph, batch_rng)
        out = apply_mutations(part, batch)
        assert out.mode == "incremental"
        keep = np.ones(directed_graph.num_edges, dtype=bool)
        keep[out.resolved.removed_ids] = False
        n_surviving = int(keep.sum())
        np.testing.assert_array_equal(
            out.partition.edge_parts[:n_surviving], part.edge_parts[keep]
        )
        assert out.reassigned_edges == out.resolved.num_inserted

    def test_rf_metrics_and_measured_drift(self, directed_graph, batch_rng, mixed_batch):
        part = base_partition(directed_graph)
        batch = mixed_batch(directed_graph, batch_rng)
        out = apply_mutations(part, batch, compare_full=True)
        assert out.rf_before == pytest.approx(replication_factor(part))
        assert out.rf_after == pytest.approx(replication_factor(out.partition))
        assert out.rf_full is not None and out.drift is not None
        assert out.drift == pytest.approx(out.rf_after / out.rf_full)
        # the operational bound for small churn on this graph family
        assert out.drift <= 1.15
        report = out.report()
        assert report["mode"] == "incremental"
        assert report["drift"] == pytest.approx(out.drift)

    def test_escape_hatch_full_repartition(self, directed_graph, batch_rng, mixed_batch):
        part = base_partition(directed_graph)
        batch = mixed_batch(directed_graph, batch_rng, n_delete=5, n_insert=40)
        out = apply_mutations(part, batch, repartition_threshold=0.0001)
        assert out.mode == "repartition"
        assert out.reassigned_edges == out.graph.num_edges
        assert out.drift == 1.0
        assert out.rf_full == pytest.approx(out.rf_after)
        # the escape hatch matches a from-scratch partition exactly
        full = StreamingEBVPartitioner().partition(out.graph, part.num_parts)
        np.testing.assert_array_equal(out.partition.edge_parts, full.edge_parts)

    def test_incremental_matches_cold_assigner_on_inserts(self, directed_graph):
        """Seeding is exact: replaying the same graph's edges cold through
        the assigner and warm-seeding then appending must agree."""
        part = base_partition(directed_graph)
        batch = MutationBatch()
        for k in range(25):
            batch.insert(k % directed_graph.num_vertices, (7 * k + 3) % directed_graph.num_vertices)
        out = apply_mutations(part, batch)
        # Cold replay: assign all old edges in order, then the inserts.
        assigner = StreamingEBVPartitioner().streamer(part.num_parts)
        assigner.seed(
            directed_graph.src, directed_graph.dst, part.edge_parts,
            num_vertices=out.graph.num_vertices,
        )
        expect = assigner.assign(out.resolved.insert_src, out.resolved.insert_dst)
        np.testing.assert_array_equal(
            out.partition.edge_parts[directed_graph.num_edges:], expect
        )

    def test_single_part_shortcut(self, tiny_directed):
        part = StreamingEBVPartitioner().partition(tiny_directed, 1)
        out = apply_mutations(part, MutationBatch().insert(0, 4).delete(3, 4))
        assert out.partition.num_parts == 1
        assert np.all(out.partition.edge_parts == 0)

    def test_bad_threshold_rejected(self, directed_graph):
        part = base_partition(directed_graph)
        with pytest.raises(MutationError, match=r"\[0, 1\]"):
            apply_mutations(part, MutationBatch(), repartition_threshold=1.5)

    def test_non_vertex_cut_rejected(self, tiny_directed):
        part = PartitionResult(
            tiny_directed, 2,
            vertex_parts=np.zeros(tiny_directed.num_vertices, dtype=np.int64),
            kind=EDGE_CUT, method="manual",
        )
        with pytest.raises(MutationError, match="vertex-cut"):
            apply_mutations(part, MutationBatch())

    def test_default_threshold_exported(self):
        assert 0.0 < DEFAULT_REPARTITION_THRESHOLD < 1.0

    def test_mutating_a_fully_replicated_vertex(self, directed_graph):
        """Deleting and inserting around a vertex whose replicas span
        every worker keeps the seeded replica sets exact."""
        part = base_partition(directed_graph)
        # highest-degree vertex of a powerlaw graph: replicated everywhere
        deg = np.bincount(directed_graph.src, minlength=directed_graph.num_vertices)
        deg += np.bincount(directed_graph.dst, minlength=directed_graph.num_vertices)
        hub = int(np.argmax(deg))
        hub_parts = np.unique(
            np.concatenate([
                part.edge_parts[directed_graph.src == hub],
                part.edge_parts[directed_graph.dst == hub],
            ])
        )
        assert hub_parts.size == part.num_parts, "fixture hub must span all workers"
        batch = MutationBatch()
        out_edges = np.nonzero(directed_graph.src == hub)[0][:3]
        for eid in out_edges:
            batch.delete(hub, int(directed_graph.dst[eid]))
        batch.insert(hub, directed_graph.num_vertices + 1).insert(0, hub)
        out = apply_mutations(part, batch, compare_full=True)
        assert out.num_deleted == len(out_edges)
        assert out.num_inserted == 2
        # re-seeded state must agree with a cold replay of the survivors
        keep = np.ones(directed_graph.num_edges, dtype=bool)
        keep[out.resolved.removed_ids] = False
        assigner = StreamingEBVPartitioner().streamer(part.num_parts)
        assigner.seed(
            directed_graph.src[keep], directed_graph.dst[keep],
            part.edge_parts[keep], num_vertices=out.graph.num_vertices,
        )
        expect = assigner.assign(out.resolved.insert_src, out.resolved.insert_dst)
        np.testing.assert_array_equal(
            out.partition.edge_parts[int(keep.sum()):], expect
        )


class TestWarmHelpers:
    def test_pr_warm_values_pads_with_uniform_prior(self):
        prev = np.array([0.5, 0.3, 0.2])
        out = pr_warm_values(prev, 5)
        np.testing.assert_allclose(out[:3], prev)
        np.testing.assert_allclose(out[3:], 0.2)

    def test_pr_warm_values_rejects_shrink(self):
        with pytest.raises(MutationError, match="never shrink"):
            pr_warm_values(np.ones(10), 5)

    def test_cc_warm_labels_insert_only_keeps_labels(self, directed_graph):
        part = base_partition(directed_graph)
        out = apply_mutations(part, MutationBatch().insert(0, 599))
        prev = np.zeros(directed_graph.num_vertices, dtype=np.int64)
        labels = cc_warm_labels(prev, out)
        np.testing.assert_array_equal(labels[: prev.shape[0]], prev)

    def test_cc_warm_labels_resets_deletion_touched_components(self, tiny_directed):
        part = StreamingEBVPartitioner().partition(tiny_directed, 2)
        out = apply_mutations(part, MutationBatch().delete(3, 4))
        # components: {0,1,2} label 0, {3,4} label 3
        prev = np.array([0, 0, 0, 3, 3], dtype=np.int64)
        labels = cc_warm_labels(prev, out)
        # the deleted edge's component resets to own ids; others keep labels
        np.testing.assert_array_equal(labels, [0, 0, 0, 3, 4])

    def test_cc_warm_labels_new_vertices_get_own_id(self, tiny_directed):
        part = StreamingEBVPartitioner().partition(tiny_directed, 2)
        out = apply_mutations(part, MutationBatch().insert(0, 7))
        prev = np.array([0, 0, 0, 3, 3], dtype=np.int64)
        labels = cc_warm_labels(prev, out)
        np.testing.assert_array_equal(labels[5:], [5, 6, 7])
