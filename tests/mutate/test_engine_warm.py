"""BSPEngine.run(warm_values=...): the warm-start entry the delta apps ride."""

import numpy as np
import pytest

from repro.apps import ConnectedComponents, PageRank
from repro.bsp import BSPEngine, build_distributed_graph
from repro.partition import StreamingEBVPartitioner


@pytest.fixture
def dgraph(directed_graph):
    part = StreamingEBVPartitioner().partition(directed_graph, 4)
    return build_distributed_graph(part)


class TestWarmValues:
    def test_warm_values_override_initial_state(self, directed_graph, dgraph):
        # Warm-start CC from the converged labels: zero further changes,
        # so the run terminates at the convergence floor.
        cold = BSPEngine().run(dgraph, ConnectedComponents())
        warm = BSPEngine().run(
            dgraph, ConnectedComponents(), warm_values=cold.values
        )
        np.testing.assert_array_equal(warm.values, cold.values)
        assert warm.num_supersteps <= cold.num_supersteps

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_warm_values_identical_across_backends(self, directed_graph, dgraph, backend):
        seed = np.arange(directed_graph.num_vertices, dtype=np.int64) % 7
        run = BSPEngine(backend=backend).run(
            dgraph, ConnectedComponents(), warm_values=seed
        )
        reference = BSPEngine().run(
            dgraph, ConnectedComponents(), warm_values=seed
        )
        np.testing.assert_array_equal(run.values, reference.values)

    def test_warm_values_cast_to_program_dtype(self, directed_graph, dgraph):
        seed = np.zeros(directed_graph.num_vertices, dtype=np.int32)
        run = BSPEngine().run(dgraph, ConnectedComponents(), warm_values=seed)
        assert run.values.dtype == np.int64
        # all labels seeded 0 and labels only decrease: still all zero
        assert np.all(run.values == 0)

    def test_wrong_shape_rejected(self, dgraph):
        with pytest.raises(ValueError, match="shape"):
            BSPEngine().run(
                dgraph, ConnectedComponents(), warm_values=np.zeros(3)
            )

    def test_mutually_exclusive_with_resume(self, directed_graph, dgraph, tmp_path):
        with pytest.raises(ValueError, match="mutually exclusive"):
            BSPEngine().run(
                dgraph,
                ConnectedComponents(),
                resume_from=str(tmp_path),
                warm_values=np.zeros(directed_graph.num_vertices),
            )

    def test_pagerank_warm_start_reaches_same_fixpoint(self, directed_graph, dgraph):
        cold = BSPEngine().run(
            dgraph, PageRank(directed_graph.num_vertices, max_iters=200, tol=1e-12)
        )
        warm = BSPEngine().run(
            dgraph,
            PageRank(directed_graph.num_vertices, max_iters=200, tol=1e-12),
            warm_values=cold.values,
        )
        assert float(np.max(np.abs(warm.values - cold.values))) < 1e-10
        assert warm.num_supersteps < cold.num_supersteps
