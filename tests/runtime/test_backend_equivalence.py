"""Every registered app is bit-identical on every runtime backend.

The backend contract (see :mod:`repro.runtime`) is that parallelism may
change wall-clock time only — final vertex values, superstep counts and
the deterministic cost-model accounting must match the serial reference
exactly.  This module sweeps the full ``APPS`` registry over seeded
graphs at p ∈ {2, 4} for the ``serial``, ``thread``, ``process`` and
``socket`` backends and asserts exactly that — for the socket backend
the values additionally round-trip a pickle/TCP wire, so this sweep is
also the bit-identity proof for the route-compacted exchange protocol.
"""

import numpy as np
import pytest

from repro.bsp import BSPEngine, build_distributed_graph
from repro.graph import powerlaw_graph
from repro.partition import EBVPartitioner
from repro.pipeline import APPS

BACKEND_NAMES = ("serial", "thread", "process", "socket")
PARTS = (2, 4)


@pytest.fixture(scope="module")
def graph():
    """Seeded ~400-vertex power-law graph shared by the whole sweep."""
    return powerlaw_graph(400, eta=2.2, min_degree=2, seed=7, name="pl-eq")


@pytest.fixture(scope="module")
def dgraphs(graph):
    """One routed distributed graph per worker count."""
    return {
        p: build_distributed_graph(EBVPartitioner().partition(graph, p))
        for p in PARTS
    }


@pytest.fixture(scope="module")
def reference_runs(graph, dgraphs):
    """Serial-reference run per (app, p); parallel backends diff these."""
    runs = {}
    for app in APPS.names():
        for p in PARTS:
            program = APPS.create(app, graph)
            runs[(app, p)] = BSPEngine(backend="serial").run(dgraphs[p], program)
    return runs


@pytest.mark.parametrize("backend", [b for b in BACKEND_NAMES if b != "serial"])
@pytest.mark.parametrize("p", PARTS)
@pytest.mark.parametrize("app", APPS.names())
def test_backend_matches_serial_reference(
    app, p, backend, graph, dgraphs, reference_runs
):
    ref = reference_runs[(app, p)]
    program = APPS.create(app, graph)
    run = BSPEngine(backend=backend).run(dgraphs[p], program)

    assert run.backend == backend
    assert run.num_supersteps == ref.num_supersteps
    # Final vertex values must be *identical*, not merely close: every
    # backend runs the same kernel over the same arrays in the same
    # order, so even floating-point results are bitwise equal.
    assert run.values.shape == ref.values.shape
    assert np.array_equal(run.values, ref.values, equal_nan=True)
    # The deterministic cost-model accounting (paper artifacts) and the
    # exact message tallies must be backend-independent too — including
    # the per-superstep load-imbalance term ΔC_k now that the exchange
    # tallies are assembled from worker-side pulls.
    for step, (got, want) in enumerate(zip(run.supersteps, ref.supersteps)):
        assert np.array_equal(got.work, want.work), f"superstep {step}"
        assert np.array_equal(got.sent, want.sent), f"superstep {step}"
        assert np.array_equal(got.received, want.received), f"superstep {step}"
        assert np.array_equal(got.comp_seconds, want.comp_seconds), f"superstep {step}"
        assert np.array_equal(got.comm_seconds, want.comm_seconds), f"superstep {step}"
        assert got.delta_c == want.delta_c, f"superstep {step}"
    assert run.delta_c == ref.delta_c
    assert run.total_messages == ref.total_messages


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_real_wall_clock_recorded_per_stage(backend, graph, dgraphs):
    run = BSPEngine(backend=backend).run(dgraphs[2], APPS.create("pr", graph))
    assert run.num_supersteps > 0
    for stats in run.supersteps:
        assert set(stats.real_seconds) == {"compute", "exchange", "converge"}
        assert all(v >= 0.0 for v in stats.real_seconds.values())
    totals = run.real_stage_seconds()
    assert run.real_time == pytest.approx(
        totals["compute"] + totals["exchange"] + totals["converge"]
    )


def test_serial_default_backend_unchanged(graph, dgraphs, reference_runs):
    """BSPEngine() with no backend argument is the serial reference."""
    run = BSPEngine().run(dgraphs[2], APPS.create("cc", graph))
    ref = reference_runs[("cc", 2)]
    assert run.backend == "serial"
    assert np.array_equal(run.values, ref.values)
