"""Unit tests for the runtime package: sessions, shm, failure paths."""

import numpy as np
import pytest

from repro.bsp import BSPEngine, build_distributed_graph
from repro.bsp.program import MINIMIZE, ComputeResult, SubgraphProgram
from repro.graph import powerlaw_graph
from repro.partition import EBVPartitioner
from repro.runtime import (
    BackendError,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    allocate_state,
    create_backend,
)
from repro.runtime.shm import (
    attach_shared_array,
    create_shared_array,
    destroy_shared_array,
)


@pytest.fixture(scope="module")
def dgraph():
    graph = powerlaw_graph(200, eta=2.2, min_degree=2, seed=5, name="pl-rt")
    return build_distributed_graph(EBVPartitioner().partition(graph, 2))


class CrashingProgram(SubgraphProgram):
    """Minimize-mode program whose compute always raises."""

    mode = MINIMIZE
    name = "crash"

    def initial_values(self, local):
        return np.zeros(local.num_vertices)

    def compute(self, local, values, active, superstep=0):
        raise RuntimeError("boom in worker")


class TestCreateBackend:
    def test_canonical_names(self):
        assert isinstance(create_backend("serial"), SerialBackend)
        assert isinstance(create_backend("THREAD"), ThreadBackend)
        assert isinstance(create_backend("process"), ProcessBackend)

    def test_unknown_name_lists_available(self):
        with pytest.raises(
            ValueError, match="unknown backend 'gpu'.*process, serial, socket, thread"
        ):
            create_backend("gpu")

    def test_engine_rejects_non_backend_object(self, dgraph):
        engine = BSPEngine(backend=object())
        with pytest.raises(TypeError, match="backend must be"):
            engine.run(dgraph, CrashingProgram())


class TestValidation:
    def test_thread_backend_rejects_bad_pool_size(self):
        with pytest.raises(ValueError, match="max_workers"):
            ThreadBackend(max_workers=0)

    def test_process_backend_rejects_unknown_start_method(self):
        with pytest.raises(ValueError, match="start_method"):
            ProcessBackend(start_method="teleport")

    def test_allocate_state_rejects_unknown_mode(self, dgraph):
        program = CrashingProgram()
        program.mode = "gossip"
        with pytest.raises(ValueError, match="unknown program mode"):
            allocate_state(dgraph, program)


class TestWorkerFailure:
    @pytest.mark.parametrize("backend_name", ["serial", "thread"])
    def test_in_process_backends_propagate_compute_errors(self, dgraph, backend_name):
        engine = BSPEngine(backend=backend_name)
        with pytest.raises(RuntimeError, match="boom in worker"):
            engine.run(dgraph, CrashingProgram())

    def test_process_backend_reports_child_traceback(self, dgraph):
        engine = BSPEngine(backend="process")
        with pytest.raises(BackendError, match="boom in worker"):
            engine.run(dgraph, CrashingProgram())

    def test_process_pool_survives_for_next_run(self, dgraph):
        """A crashed session must not poison subsequent sessions."""
        backend = ProcessBackend()
        engine = BSPEngine(backend=backend)
        with pytest.raises(BackendError):
            engine.run(dgraph, CrashingProgram())
        from repro.apps import ConnectedComponents

        run = engine.run(dgraph, ConnectedComponents())
        ref = BSPEngine().run(dgraph, ConnectedComponents())
        assert np.array_equal(run.values, ref.values)


class TestSessionLifecycle:
    def test_failed_allocation_unlinks_partial_shared_memory(self, dgraph):
        """Blocks created before a mid-allocation failure must not leak."""
        import glob

        class SecondWorkerFails(CrashingProgram):
            def initial_values(self, local):
                if local.worker_id > 0:
                    raise MemoryError("no room for worker 1")
                return np.zeros(local.num_vertices)

        before = set(glob.glob("/dev/shm/psm_*"))
        with pytest.raises(MemoryError):
            ProcessBackend().session(dgraph, SecondWorkerFails())
        assert set(glob.glob("/dev/shm/psm_*")) == before

    def test_session_close_is_idempotent(self, dgraph):
        from repro.apps import ConnectedComponents

        session = ProcessBackend().session(dgraph, ConnectedComponents())
        session.compute_stage()
        session.close()
        session.close()

    def test_closed_pool_raises_backend_error(self, dgraph):
        from repro.apps import ConnectedComponents

        session = ProcessBackend().session(dgraph, ConnectedComponents())
        session.close()
        with pytest.raises(BackendError, match="closed"):
            session.compute_stage()


class TestSharedArrays:
    def test_round_trip_and_mutation_visibility(self):
        template = np.arange(12, dtype=np.float64).reshape(3, 4)
        shm, parent_view, spec = create_shared_array(template)
        try:
            peer_shm, peer_view = attach_shared_array(spec)
            try:
                assert np.array_equal(peer_view, template)
                parent_view[1, 2] = -7.5
                assert peer_view[1, 2] == -7.5
            finally:
                peer_shm.close()
        finally:
            destroy_shared_array(shm)

    def test_empty_array_is_backed_by_one_byte_block(self):
        shm, view, spec = create_shared_array(np.empty(0, dtype=np.int64))
        try:
            assert view.shape == (0,)
            assert spec.shape == (0,)
        finally:
            destroy_shared_array(shm)

    def test_destroy_tolerates_double_free(self):
        shm, _, _ = create_shared_array(np.zeros(4))
        destroy_shared_array(shm)
        destroy_shared_array(shm)
