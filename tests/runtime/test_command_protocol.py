"""Failure semantics of the shared command/reply session protocol.

Regression coverage for two coordinator-side bugs and one teardown
hazard, exercised against *both* out-of-process backends:

1. **Stage timeouts** — historically the reply timeout was applied only
   to the init handshake; a worker hung inside a stage kernel blocked
   the coordinator forever.  Now every stage reply honours a
   configurable ``stage_timeout`` (spec ``process?stage_timeout=120``)
   and a timeout raises :class:`BackendError` naming the workers that
   were still alive.
2. **The failed-session latch** — after a stage error the conversation
   is desynced (unread replies may be queued); subsequent stage calls
   must raise ``BackendError("session is failed")`` instead of
   exchanging mismatched frames.
3. **Partial-death teardown** — ``close()`` after a SIGKILLed subset of
   workers must reap every survivor and (process backend) unlink every
   shared-memory block without resource-tracker leak warnings.
"""

import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.apps.cc import ConnectedComponents
from repro.bsp import build_distributed_graph
from repro.graph import powerlaw_graph
from repro.partition import EBVPartitioner
from repro.pipeline import BACKENDS
from repro.runtime import (
    BackendError,
    ProcessBackend,
    SocketBackend,
    WorkerLostError,
    wire,
)


class SleepyCC(ConnectedComponents):
    """CC whose compute kernel wedges — the hung-worker injection.

    Defined at module scope so it pickles into process-backend children
    (fork shares the parent's modules) for the stage-timeout tests.
    """

    name = "sleepy-cc"

    def compute(self, local, values, active, superstep):
        time.sleep(60.0)
        return super().compute(local, values, active, superstep)  # pragma: no cover


class FakeSocketWorker(threading.Thread):
    """A wire-correct worker that misbehaves after init.

    Speaks the real handshake and acks ``init``, then either never
    answers another command (``mode="silent"`` — a hung remote worker)
    or answers with a non-``(status, payload)`` object
    (``mode="malformed"`` — a desynced/foreign peer).
    """

    def __init__(self, mode: str):
        super().__init__(daemon=True)
        self.mode = mode
        self.listener = socket.create_server(("127.0.0.1", 0))
        self.port = self.listener.getsockname()[1]
        self.stop_evt = threading.Event()

    def run(self):
        conn, _ = self.listener.accept()
        try:
            wire.send_hello(conn, "worker")
            wire.expect_hello(conn, "coordinator", timeout=30.0)
            cmd, _payload = wire.recv_msg(conn, timeout=30.0)
            assert cmd == "init"
            wire.send_msg(conn, ("ready", False))
            wire.recv_msg(conn, timeout=30.0)  # the first stage command
            if self.mode == "malformed":
                wire.send_msg(conn, "this is not a (status, payload) pair")
            self.stop_evt.wait(30.0)  # silent: hold the link open
        except wire.WireError:
            pass
        finally:
            conn.close()

    def close(self):
        self.stop_evt.set()
        self.listener.close()
        self.join(timeout=30)


@pytest.fixture()
def fake_pool(request):
    """Two fake endpoint workers in the requested mode + their backend."""
    workers = [FakeSocketWorker(request.param) for _ in range(2)]
    for w in workers:
        w.start()
    endpoints = "+".join(f"127.0.0.1:{w.port}" for w in workers)
    yield SocketBackend(workers=endpoints, stage_timeout=0.5)
    for w in workers:
        w.close()


@pytest.fixture(scope="module")
def dgraph():
    g = powerlaw_graph(120, eta=2.2, min_degree=2, seed=11, name="proto-pl")
    return build_distributed_graph(EBVPartitioner().partition(g, 2))


@pytest.fixture(scope="module")
def program():
    return ConnectedComponents()


# ----------------------------------------------------------------------
# Satellite 1: stage timeouts apply to stages, not just init
# ----------------------------------------------------------------------


def test_process_hung_worker_times_out_and_names_alive_workers(dgraph):
    backend = ProcessBackend(stage_timeout=0.5)
    with backend.session(dgraph, SleepyCC()) as session:
        with pytest.raises(BackendError, match="did not answer within") as excinfo:
            session.compute_stage(0)
        # The report distinguishes "hung" from "dead": both children are
        # alive, just wedged inside the sleeping kernel ...
        assert "alive workers: [0, 1]" in str(excinfo.value)
        # ... and teaches the spec knob for genuinely slow hosts.
        assert "stage_timeout" in str(excinfo.value)


@pytest.mark.parametrize("fake_pool", ["silent"], indirect=True)
def test_socket_hung_worker_times_out(fake_pool, dgraph, program):
    with fake_pool.session(dgraph, program) as session:
        with pytest.raises(BackendError, match="did not answer within"):
            session.compute_stage(0)


@pytest.mark.parametrize(
    "spec", ["process?stage_timeout=120", "socket?stage_timeout=120"]
)
def test_stage_timeout_reaches_backend_through_spec(spec):
    assert BACKENDS.create(spec).stage_timeout == 120


@pytest.mark.parametrize("cls", [ProcessBackend, SocketBackend])
def test_nonpositive_stage_timeout_rejected_at_session_start(cls, dgraph, program):
    with pytest.raises(ValueError, match="stage_timeout"):
        cls(stage_timeout=0).session(dgraph, program)


# ----------------------------------------------------------------------
# Satellite 2: the failed latch + the typed WorkerLostError
# ----------------------------------------------------------------------


def _kill_last_worker(session):
    """SIGKILL the highest-id worker of either backend's session."""
    procs = getattr(session, "_processes", None)
    if procs is not None:  # process backend
        os.kill(procs[-1].pid, signal.SIGKILL)
        procs[-1].join(timeout=30)
    else:  # socket backend (spawned-local)
        session._procs[-1].kill()
        session._procs[-1].wait(timeout=30)


@pytest.mark.parametrize("backend_cls", [ProcessBackend, SocketBackend])
def test_lost_worker_is_typed_and_latches_the_session(backend_cls, dgraph, program):
    with backend_cls().session(dgraph, program) as session:
        _kill_last_worker(session)
        # Waiting on the dead worker's reply is the deterministic path
        # to the typed error (a full stage call races the kill against
        # the command send, which may surface as "worker pool is down").
        with pytest.raises(WorkerLostError, match="died unexpectedly") as excinfo:
            session._expect(1, "ok")
        assert excinfo.value.worker_id == 1
        assert isinstance(excinfo.value, BackendError)
        # Every subsequent stage call refuses instead of desyncing.
        with pytest.raises(BackendError, match="session is failed"):
            session.compute_stage(1)
        with pytest.raises(BackendError, match="session is failed"):
            session.exchange_stage(1)
    # context-manager exit: close() after the latch is clean.


def test_hung_worker_also_latches_the_session(dgraph):
    with ProcessBackend(stage_timeout=0.5).session(dgraph, SleepyCC()) as session:
        with pytest.raises(BackendError, match="did not answer"):
            session.compute_stage(0)
        with pytest.raises(BackendError, match="session is failed"):
            session.exchange_stage(0)


@pytest.mark.parametrize("fake_pool", ["malformed"], indirect=True)
def test_socket_malformed_reply_latches_instead_of_crashing(
    fake_pool, dgraph, program
):
    """A peer shipping a non-(status, payload) object is a protocol
    fault reported as BackendError, never a bare unpacking ValueError."""
    with fake_pool.session(dgraph, program) as session:
        with pytest.raises(BackendError, match="malformed reply"):
            session.compute_stage(0)
        with pytest.raises(BackendError, match="session is failed"):
            session.compute_stage(1)


# ----------------------------------------------------------------------
# Satellite 3: teardown with a partially-dead pool
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend_cls", [ProcessBackend, SocketBackend])
def test_close_reaps_survivors_after_partial_death(backend_cls, dgraph, program):
    session = backend_cls().session(dgraph, program)
    procs = list(getattr(session, "_processes", None) or session._procs)
    _kill_last_worker(session)
    session.close()
    session.close()  # idempotent
    for proc in procs:
        alive = proc.is_alive() if hasattr(proc, "is_alive") else proc.poll() is None
        assert not alive, "close() left a worker running"
    with pytest.raises(BackendError, match="session is closed"):
        session.compute_stage(0)


_LEAK_SCRIPT = """
import os, signal
from repro.apps.cc import ConnectedComponents
from repro.bsp import build_distributed_graph
from repro.graph import powerlaw_graph
from repro.partition import EBVPartitioner
from repro.runtime import ProcessBackend

g = powerlaw_graph(120, eta=2.2, min_degree=2, seed=11, name="leak-pl")
dg = build_distributed_graph(EBVPartitioner().partition(g, 4))
session = ProcessBackend().session(dg, ConnectedComponents())
names = [spec.name for table in session._specs for spec in table.values()]
session.compute_stage(0)
# Kill half the pool, then tear down with survivors still mapped.
for proc in session._processes[2:]:
    os.kill(proc.pid, signal.SIGKILL)
    proc.join(timeout=30)
session.close()
for name in names:
    assert not os.path.exists(os.path.join("/dev/shm", name)), name
print("CLEAN", len(names))
"""


def test_partial_death_teardown_is_resource_tracker_quiet():
    """Full-interpreter check: no 'leaked shared_memory' warnings on exit.

    The resource tracker prints its leak report at interpreter shutdown,
    so the assertion must run over a subprocess's stderr, not in-process.
    """
    result = subprocess.run(
        [sys.executable, "-c", _LEAK_SCRIPT],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "CLEAN" in result.stdout
    assert "leaked" not in result.stderr.lower(), result.stderr
