"""The socket backend's frame protocol (:mod:`repro.runtime.wire`).

Property tests over the framing layer — every payload round-trips
exactly, including multi-frame sequences and payloads far past 64 KiB
(multiple ``recv_into`` chunks) — plus the failure taxonomy the
coordinator relies on to classify worker death: truncation mid-frame is
:class:`FrameError`, a clean close at a frame boundary is
:class:`ConnectionClosed`, silence is :class:`WireTimeout`, and a
mismatched protocol version fails the handshake with
:class:`ProtocolError` before any graph data moves.
"""

import pickle
import socket
import struct
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import wire


@pytest.fixture()
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(payload=st.binary(max_size=4096))
def test_frame_round_trip(payload):
    a, b = socket.socketpair()
    try:
        wire.send_frame(a, payload)
        assert wire.recv_frame(b, timeout=5.0) == payload
    finally:
        a.close()
        b.close()


@settings(max_examples=25, deadline=None)
@given(
    objs=st.lists(
        st.one_of(
            st.integers(),
            st.text(max_size=64),
            st.dictionaries(st.integers(0, 8), st.binary(max_size=32), max_size=4),
            st.tuples(st.sampled_from(["ok", "error", "ready"]), st.integers()),
        ),
        min_size=1,
        max_size=8,
    )
)
def test_msg_sequence_round_trip(objs):
    """Back-to-back frames on one stream stay aligned (no desync)."""
    a, b = socket.socketpair()
    try:
        for obj in objs:
            wire.send_msg(a, obj)
        for obj in objs:
            assert wire.recv_msg(b, timeout=5.0) == obj
    finally:
        a.close()
        b.close()


def test_large_payload_round_trip(pair):
    """Payloads far beyond 64 KiB survive chunked recv_into reassembly."""
    a, b = pair
    arrays = {
        "values": np.arange(300_000, dtype=np.float64),
        "changed": np.ones(300_000, dtype=bool),
    }
    done = threading.Event()
    # > 2 MiB: larger than any socket buffer, so the sender must run
    # concurrently with the receiver.
    t = threading.Thread(target=lambda: (wire.send_msg(a, arrays), done.set()))
    t.start()
    got = wire.recv_msg(b, timeout=30.0)
    t.join(timeout=30)
    assert done.is_set()
    assert np.array_equal(got["values"], arrays["values"])
    assert np.array_equal(got["changed"], arrays["changed"])


def test_empty_payload_round_trip(pair):
    a, b = pair
    wire.send_frame(a, b"")
    assert wire.recv_frame(b, timeout=5.0) == b""


# ----------------------------------------------------------------------
# Failure taxonomy
# ----------------------------------------------------------------------


def test_clean_close_at_boundary_is_connection_closed(pair):
    a, b = pair
    wire.send_msg(a, ("ok", 1))
    a.close()
    assert wire.recv_msg(b, timeout=5.0) == ("ok", 1)
    with pytest.raises(wire.ConnectionClosed):
        wire.recv_msg(b, timeout=5.0)


def test_truncated_frame_is_frame_error(pair):
    """A peer dying mid-send is truncation, never a clean close."""
    a, b = pair
    payload = b"x" * 1000
    header = struct.Struct(">4sQ").pack(b"RBW\x01", len(payload))
    a.sendall(header + payload[:137])
    a.close()
    with pytest.raises(wire.FrameError, match="truncated"):
        wire.recv_frame(b, timeout=5.0)


def test_truncated_header_is_frame_error(pair):
    a, b = pair
    a.sendall(b"RBW")
    a.close()
    with pytest.raises(wire.FrameError, match="truncated"):
        wire.recv_frame(b, timeout=5.0)


def test_bad_magic_is_frame_error(pair):
    a, b = pair
    a.sendall(struct.Struct(">4sQ").pack(b"HTTP", 12) + b"x" * 12)
    with pytest.raises(wire.FrameError, match="magic"):
        wire.recv_frame(b, timeout=5.0)


def test_oversize_frame_rejected_without_allocation(pair):
    a, b = pair
    a.sendall(struct.Struct(">4sQ").pack(b"RBW\x01", wire.MAX_FRAME_BYTES + 1))
    with pytest.raises(wire.FrameError, match="exceeds"):
        wire.recv_frame(b, timeout=5.0)


def test_recv_cap_is_tunable(pair):
    a, b = pair
    wire.send_frame(a, b"y" * 2048)
    with pytest.raises(wire.FrameError, match="exceeds"):
        wire.recv_frame(b, timeout=5.0, max_bytes=1024)


def test_undecodable_payload_is_frame_error(pair):
    a, b = pair
    wire.send_frame(a, b"\x80\x05 this is not a pickle")
    with pytest.raises(wire.FrameError, match="undecodable"):
        wire.recv_msg(b, timeout=5.0)


def test_silence_is_wire_timeout(pair):
    _a, b = pair
    with pytest.raises(wire.WireTimeout):
        wire.recv_frame(b, timeout=0.2)


def test_trickle_cannot_reset_the_deadline(pair):
    """The timeout covers the whole frame, not each chunk."""
    a, b = pair
    header = struct.Struct(">4sQ").pack(b"RBW\x01", 64)

    def trickle():
        for byte in header + b"z" * 8:  # never completes the frame
            a.sendall(bytes([byte]))
            if stop.wait(0.05):
                return

    stop = threading.Event()
    t = threading.Thread(target=trickle)
    t.start()
    try:
        with pytest.raises(wire.WireTimeout):
            wire.recv_frame(b, timeout=0.5)
    finally:
        stop.set()
        t.join(timeout=10)


# ----------------------------------------------------------------------
# Handshake
# ----------------------------------------------------------------------


def test_hello_round_trip(pair):
    a, b = pair
    wire.send_hello(a, "worker")
    msg = wire.expect_hello(b, "worker", timeout=5.0)
    assert msg["version"] == wire.WIRE_VERSION


def test_version_mismatch_is_protocol_error(pair):
    a, b = pair
    wire.send_msg(
        a, {"kind": "repro-wire-hello", "version": wire.WIRE_VERSION + 1, "role": "worker"}
    )
    with pytest.raises(wire.ProtocolError, match="version mismatch"):
        wire.expect_hello(b, "worker", timeout=5.0)


def test_role_mismatch_is_protocol_error(pair):
    """Two coordinators dialing each other fail fast instead of hanging."""
    a, b = pair
    wire.send_hello(a, "coordinator")
    with pytest.raises(wire.ProtocolError, match="expected a 'worker' peer"):
        wire.expect_hello(b, "worker", timeout=5.0)


def test_non_hello_opening_is_protocol_error(pair):
    a, b = pair
    wire.send_msg(a, ("compute", 0))
    with pytest.raises(wire.ProtocolError, match="did not open with a hello"):
        wire.expect_hello(b, "worker", timeout=5.0)


# ----------------------------------------------------------------------
# Address parsing
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "spec,expected",
    [
        ("localhost:7001", ("localhost", 7001)),
        ("127.0.0.1:0", ("127.0.0.1", 0)),
        ("node-3.cluster:65535", ("node-3.cluster", 65535)),
    ],
)
def test_parse_hostport(spec, expected):
    assert wire.parse_hostport(spec) == expected


@pytest.mark.parametrize("spec", ["nohost", ":7001", "host:", "host:port", "h:70000"])
def test_parse_hostport_rejects(spec):
    with pytest.raises(ValueError):
        wire.parse_hostport(spec)
