"""Worker-side exchange: route-plan sharding, per-stage bit-identity.

The exchange stage is now a backend responsibility, sharded per worker
over a :class:`~repro.runtime.base.RoutePlan`.  This module locks down
the three load-bearing properties of that refactor:

* the route plan is a faithful, order-preserving reshard of the
  distributed graph's route dictionaries, and it is built exactly once
  per run — never per superstep;
* driving a parallel session stage-by-stage produces bit-identical
  state arrays (values, changed, active/partials) and identical
  :class:`~repro.runtime.base.ExchangeResult` tallies to the serial
  reference session *after every individual stage*, not just at the end
  of the run;
* the tally assembly (pull counts → global sent/received) matches the
  per-route send/receive accounting by construction.
"""

import numpy as np
import pytest

import repro.runtime.base as runtime_base
import repro.runtime.process as runtime_process
from repro.bsp import BSPEngine, build_distributed_graph
from repro.graph import powerlaw_graph
from repro.partition import EBVPartitioner
from repro.pipeline import APPS
from repro.runtime import (
    ExchangeResult,
    assemble_exchange,
    build_route_plan,
    create_backend,
)

PARTS = (2, 4)


@pytest.fixture(scope="module")
def graph():
    return powerlaw_graph(300, eta=2.2, min_degree=2, seed=11, name="pl-ex")


@pytest.fixture(scope="module")
def dgraphs(graph):
    return {
        p: build_distributed_graph(EBVPartitioner().partition(graph, p))
        for p in PARTS
    }


# ----------------------------------------------------------------------
# RoutePlan construction
# ----------------------------------------------------------------------


class TestRoutePlan:
    @pytest.mark.parametrize("p", PARTS)
    def test_plan_is_a_partition_of_the_route_dicts(self, dgraphs, p):
        """Every route lands in exactly one inbound slice, keyed by dest."""
        dgraph = dgraphs[p]
        plan = build_route_plan(dgraph)
        assert plan.num_workers == p

        seen_up = []
        for dest, inbound in enumerate(plan.inbound_up):
            for src, route in inbound:
                assert route is dgraph.up_routes[(src, dest)]
                seen_up.append((src, dest))
        assert sorted(seen_up) == sorted(dgraph.up_routes)

        seen_down = []
        for dest, inbound in enumerate(plan.inbound_down):
            for src, route in inbound:
                assert route is dgraph.down_routes[(src, dest)]
                seen_down.append((src, dest))
        assert sorted(seen_down) == sorted(dgraph.down_routes)

    def test_plan_preserves_per_destination_route_order(self, dgraphs):
        """Within one destination, dict insertion order survives.

        This is what keeps floating-point accumulation (``np.add.at``
        over inbound partials) bit-identical to the historical
        coordinator-side loop, which visited the route dict in
        insertion order.
        """
        dgraph = dgraphs[4]
        plan = build_route_plan(dgraph)
        for dest in range(4):
            expected = [w for (w, mw) in dgraph.up_routes if mw == dest]
            assert [src for src, _ in plan.inbound_up[dest]] == expected
            expected = [mw for (mw, w) in dgraph.down_routes if w == dest]
            assert [src for src, _ in plan.inbound_down[dest]] == expected


class TestRoutePlanBuiltOncePerRun:
    """Satellite: the plan is built once per session, never per superstep."""

    @pytest.mark.parametrize("backend_name", ["serial", "thread", "process"])
    def test_multi_superstep_run_builds_plan_exactly_once(
        self, graph, dgraphs, backend_name, monkeypatch
    ):
        calls = []
        real = runtime_base.build_route_plan

        def counting(dgraph):
            calls.append(dgraph)
            return real(dgraph)

        # The serial/thread sessions resolve the name through base's
        # module globals; the process session imported its own binding.
        monkeypatch.setattr(runtime_base, "build_route_plan", counting)
        monkeypatch.setattr(runtime_process, "build_route_plan", counting)

        run = BSPEngine(backend=backend_name).run(
            dgraphs[2], APPS.create("cc", graph)
        )
        assert run.num_supersteps >= 2, "need a multi-superstep run to prove it"
        assert len(calls) == 1

    def test_each_run_gets_a_fresh_plan(self, graph, dgraphs, monkeypatch):
        count = 0
        real = runtime_base.build_route_plan

        def counting(dgraph):
            nonlocal count
            count += 1
            return real(dgraph)

        monkeypatch.setattr(runtime_base, "build_route_plan", counting)
        engine = BSPEngine(backend="serial")
        engine.run(dgraphs[2], APPS.create("cc", graph))
        engine.run(dgraphs[2], APPS.create("cc", graph))
        assert count == 2


# ----------------------------------------------------------------------
# ExchangeResult assembly
# ----------------------------------------------------------------------


class TestAssembleExchange:
    def test_counts_fold_to_sent_received(self):
        # worker 0 pulled 3 msgs from worker 1 (up) and 2 from worker 2
        # (down); worker 1 pulled 5 from worker 0 (up); worker 2 nothing.
        up = [
            np.array([0, 3, 0], dtype=np.int64),
            np.array([5, 0, 0], dtype=np.int64),
            np.zeros(3, dtype=np.int64),
        ]
        down = [
            np.array([0, 0, 2], dtype=np.int64),
            np.zeros(3, dtype=np.int64),
            np.zeros(3, dtype=np.int64),
        ]
        result = assemble_exchange(up, down, [0.0, 0.0, 0.0])
        assert isinstance(result, ExchangeResult)
        # received[i] = everything i pulled; sent[j] = everything pulled from j.
        assert result.received.tolist() == [5, 5, 0]
        assert result.sent.tolist() == [5, 3, 2]
        assert result.sent.dtype == np.int64
        assert result.delta == 0.0

    def test_deltas_sum_in_worker_order(self):
        deltas = [0.1, 0.2, 0.3]
        result = assemble_exchange(
            [np.zeros(3, dtype=np.int64)] * 3,
            [np.zeros(3, dtype=np.int64)] * 3,
            deltas,
        )
        expected = 0.0
        for d in deltas:
            expected += float(d)
        assert result.delta == expected


# ----------------------------------------------------------------------
# Per-stage bit-identity: drive sessions directly, compare after every
# stage of every superstep — a strictly stronger check than comparing
# finished runs.
# ----------------------------------------------------------------------


def _state_snapshot(state):
    snap = {"values": [v.copy() for v in state.values],
            "changed": [c.copy() for c in state.changed]}
    if state.active is not None:
        snap["active"] = [a.copy() for a in state.active]
    if state.partials is not None:
        snap["partials"] = [pt.copy() for pt in state.partials]
    return snap


def _assert_states_equal(got, want, where):
    assert got.keys() == want.keys()
    for kind in got:
        for w, (g, e) in enumerate(zip(got[kind], want[kind])):
            assert np.array_equal(g, e, equal_nan=True), (
                f"{where}: state {kind!r} of worker {w} diverged"
            )


@pytest.mark.parametrize("backend_name", ["thread", "process"])
@pytest.mark.parametrize("p", PARTS)
@pytest.mark.parametrize("app", ["cc", "pr"])
def test_per_stage_state_bit_identity(graph, dgraphs, backend_name, p, app):
    """After every compute and every exchange, all arrays match serial."""
    dgraph = dgraphs[p]
    ref_session = create_backend("serial").session(dgraph, APPS.create(app, graph))
    par_session = create_backend(backend_name).session(dgraph, APPS.create(app, graph))
    max_steps = 6
    with ref_session, par_session:
        _assert_states_equal(
            _state_snapshot(par_session.state),
            _state_snapshot(ref_session.state),
            "initial allocation",
        )
        for step in range(max_steps):
            ref_comp = ref_session.compute_stage(step)
            par_comp = par_session.compute_stage(step)
            assert np.array_equal(par_comp.work, ref_comp.work), f"work units, step {step}"
            # Per-worker walls ride every stage return, traced or not.
            assert len(par_comp.walls) == p and all(w >= 0.0 for w in par_comp.walls)
            _assert_states_equal(
                _state_snapshot(par_session.state),
                _state_snapshot(ref_session.state),
                f"after compute {step}",
            )

            ref_ex = ref_session.exchange_stage(step)
            par_ex = par_session.exchange_stage(step)
            assert np.array_equal(par_ex.sent, ref_ex.sent), f"sent, step {step}"
            assert np.array_equal(par_ex.received, ref_ex.received), (
                f"received, step {step}"
            )
            assert par_ex.delta == ref_ex.delta, f"delta, step {step}"
            assert len(par_ex.up_walls) == p and len(par_ex.down_walls) == p
            _assert_states_equal(
                _state_snapshot(par_session.state),
                _state_snapshot(ref_session.state),
                f"after exchange {step}",
            )
