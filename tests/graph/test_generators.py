"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph import (
    barabasi_albert,
    erdos_renyi,
    estimate_eta_fit,
    paper_graph_suite,
    powerlaw_graph,
    rmat,
    road_network,
)


class TestRoadNetwork:
    def test_vertex_count(self):
        g = road_network(10, 8)
        assert g.num_vertices == 80

    def test_not_directed(self):
        assert not road_network(5, 5).directed

    def test_has_weights(self):
        g = road_network(6, 6)
        assert g.weights is not None
        assert np.all(g.weights >= 1.0) and np.all(g.weights < 2.0)

    def test_degree_concentrated(self):
        g = road_network(30, 30, seed=1)
        deg = g.degrees()
        # Grid degrees sit in a narrow band (some drop/diagonal noise).
        assert np.percentile(deg, 95) <= 12
        assert deg.max() <= 16

    def test_deterministic(self):
        a = road_network(8, 8, seed=9)
        b = road_network(8, 8, seed=9)
        assert np.array_equal(a.src, b.src) and np.array_equal(a.dst, b.dst)

    def test_seed_changes_graph(self):
        a = road_network(8, 8, seed=1, drop_fraction=0.2)
        b = road_network(8, 8, seed=2, drop_fraction=0.2)
        assert a.num_edges != b.num_edges or not np.array_equal(a.src, b.src)

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            road_network(1, 5)

    def test_no_diagonals_or_drops(self):
        g = road_network(5, 5, diagonal_fraction=0.0, drop_fraction=0.0)
        # Full 5x5 grid: 2 * 5 * 4 undirected edges.
        assert g.num_undirected_edges == 40


class TestPowerlawGraph:
    def test_basic_shape(self):
        g = powerlaw_graph(500, eta=2.5, seed=1)
        assert g.num_vertices == 500
        assert g.num_edges > 0
        assert not g.directed

    def test_directed_variant(self):
        g = powerlaw_graph(500, eta=2.5, directed=True, seed=1)
        assert g.directed

    def test_lower_eta_more_skewed(self):
        flat = powerlaw_graph(3000, eta=3.5, min_degree=3, seed=4)
        skew = powerlaw_graph(3000, eta=1.8, min_degree=3, seed=4)
        assert skew.degrees().max() > flat.degrees().max()

    def test_no_self_loops(self):
        g = powerlaw_graph(400, eta=2.0, seed=2)
        assert np.all(g.src != g.dst)

    def test_no_duplicate_undirected_pairs(self):
        g = powerlaw_graph(400, eta=2.0, seed=2)
        lo = np.minimum(g.src, g.dst)
        hi = np.maximum(g.src, g.dst)
        keys = lo * g.num_vertices + hi
        # Doubled representation: every undirected pair appears exactly twice.
        _, counts = np.unique(keys, return_counts=True)
        assert np.all(counts == 2)

    def test_deterministic(self):
        a = powerlaw_graph(300, eta=2.2, seed=7)
        b = powerlaw_graph(300, eta=2.2, seed=7)
        assert np.array_equal(a.src, b.src)

    def test_invalid_eta_raises(self):
        with pytest.raises(ValueError):
            powerlaw_graph(100, eta=0.0)

    def test_too_few_vertices_raises(self):
        with pytest.raises(ValueError):
            powerlaw_graph(1, eta=2.0)

    def test_min_degree_respected_in_expectation(self):
        g = powerlaw_graph(2000, eta=2.5, min_degree=4, seed=3)
        assert g.degrees().mean() >= 4  # doubled representation


class TestBarabasiAlbert:
    def test_shape(self):
        g = barabasi_albert(300, attach=3, seed=1)
        assert g.num_vertices == 300
        # Each non-seed vertex adds `attach` undirected edges.
        assert g.num_undirected_edges == (300 - 3) * 3

    def test_heavy_tail(self):
        g = barabasi_albert(2000, attach=2, seed=1)
        deg = g.degrees()
        assert deg.max() > 20 * np.median(deg) / 2

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            barabasi_albert(5, attach=0)
        with pytest.raises(ValueError):
            barabasi_albert(3, attach=3)


class TestRmat:
    def test_shape(self):
        g = rmat(8, edge_factor=8, seed=1)
        assert g.num_vertices == 256
        assert g.num_edges > 0
        assert g.directed

    def test_undirected_variant(self):
        g = rmat(6, edge_factor=4, directed=False, seed=1)
        assert not g.directed

    def test_skewed(self):
        g = rmat(10, edge_factor=8, seed=1)
        deg = g.degrees()
        assert deg.max() > 10 * max(np.median(deg), 1)

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            rmat(5, a=0.5, b=0.4, c=0.2)


class TestErdosRenyi:
    def test_directed(self):
        g = erdos_renyi(200, 1000, directed=True, seed=1)
        assert g.directed
        assert 0 < g.num_edges <= 1000

    def test_undirected(self):
        g = erdos_renyi(200, 1000, directed=False, seed=1)
        assert not g.directed

    def test_no_self_loops(self):
        g = erdos_renyi(100, 500, seed=2)
        assert np.all(g.src != g.dst)


class TestPaperSuite:
    def test_contains_four_graphs(self):
        suite = paper_graph_suite(scale=0.1)
        assert set(suite) == {"usa-road", "livejournal", "friendster", "twitter"}

    def test_eta_ordering_matches_paper(self):
        suite = paper_graph_suite(scale=0.5)
        etas = {name: estimate_eta_fit(g) for name, g in suite.items()}
        # Road is by far the steepest; Twitter the heaviest tail.
        assert etas["usa-road"] > etas["livejournal"]
        assert etas["usa-road"] > etas["friendster"]
        assert etas["livejournal"] > etas["twitter"]

    def test_directedness_matches_paper(self):
        suite = paper_graph_suite(scale=0.1)
        assert not suite["usa-road"].directed
        assert suite["livejournal"].directed
        assert not suite["friendster"].directed
        assert suite["twitter"].directed

    def test_road_sparsest(self):
        suite = paper_graph_suite(scale=0.25)
        assert (
            suite["usa-road"].average_degree
            < suite["friendster"].average_degree
        )

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            paper_graph_suite(scale=0.0)

    def test_deterministic(self):
        a = paper_graph_suite(scale=0.1, seed=3)
        b = paper_graph_suite(scale=0.1, seed=3)
        for name in a:
            assert np.array_equal(a[name].src, b[name].src)


class TestGenerateGraphFrontDoor:
    def test_rmat_rounds_to_nearest_scale(self):
        from repro.graph import generate_graph

        # log2(12000) = 13.55 -> scale 14 (the old int() truncation gave 13,
        # an 8192-vertex graph for a 12000-vertex request).
        g = generate_graph("rmat", vertices=12_000, edge_factor=2, seed=1)
        assert g.num_vertices == 16_384
        # log2(10000) = 13.29 -> nearest scale is still 13.
        g = generate_graph("rmat", vertices=10_000, edge_factor=2, seed=1)
        assert g.num_vertices == 8_192

    @pytest.mark.parametrize("kind", ["road", "ba"])
    def test_directed_rejected_for_undirected_kinds(self, kind):
        from repro.graph import generate_graph

        with pytest.raises(ValueError, match="undirected"):
            generate_graph(kind, vertices=100, directed=True)

    @pytest.mark.parametrize("kind", ["road", "ba"])
    def test_undirected_kinds_still_work_by_default(self, kind):
        from repro.graph import generate_graph

        g = generate_graph(kind, vertices=100, seed=2)
        assert not g.directed
