"""Property-based tests for the synthetic graph generators."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graph import erdos_renyi, powerlaw_graph, road_network


@given(
    n=st.integers(10, 400),
    eta=st.floats(1.2, 4.0),
    min_degree=st.integers(1, 4),
    seed=st.integers(0, 10),
)
@settings(max_examples=25, deadline=None)
def test_powerlaw_structural_invariants(n, eta, min_degree, seed):
    g = powerlaw_graph(n, eta=eta, min_degree=min_degree, seed=seed)
    assert g.num_vertices == n
    assert np.all(g.src != g.dst)  # no self loops
    # Doubled representation: symmetric edge multiset.
    fwd = set(zip(g.src.tolist(), g.dst.tolist()))
    assert all((v, u) in fwd for (u, v) in fwd)


@given(
    n=st.integers(10, 400),
    eta=st.floats(1.2, 4.0),
    seed=st.integers(0, 10),
)
@settings(max_examples=20, deadline=None)
def test_powerlaw_directed_variant(n, eta, seed):
    g = powerlaw_graph(n, eta=eta, min_degree=2, directed=True, seed=seed)
    assert g.directed
    assert np.all(g.src != g.dst)


@given(
    w=st.integers(2, 20),
    h=st.integers(2, 20),
    seed=st.integers(0, 10),
)
@settings(max_examples=25, deadline=None)
def test_road_network_invariants(w, h, seed):
    g = road_network(w, h, seed=seed)
    assert g.num_vertices == w * h
    assert g.weights is not None and np.all(g.weights >= 1.0)
    # Grid degrees are bounded: <= 4 axis neighbors + diagonals, doubled.
    assert g.degrees().max() <= 2 * 8


@given(
    n=st.integers(4, 200),
    m=st.integers(1, 400),
    seed=st.integers(0, 10),
)
@settings(max_examples=25, deadline=None)
def test_erdos_renyi_invariants(n, m, seed):
    g = erdos_renyi(n, m, directed=True, seed=seed)
    assert g.num_vertices == n
    assert g.num_edges <= m
    assert np.all(g.src != g.dst)
    keys = g.src * np.int64(n) + g.dst
    assert np.unique(keys).size == g.num_edges  # simplified


@given(seed=st.integers(0, 30))
@settings(max_examples=15, deadline=None)
def test_generators_deterministic_per_seed(seed):
    a = powerlaw_graph(100, eta=2.0, seed=seed)
    b = powerlaw_graph(100, eta=2.0, seed=seed)
    assert np.array_equal(a.src, b.src) and np.array_equal(a.dst, b.dst)
