"""Unit tests for graph statistics and eta estimation."""

import numpy as np
import pytest

from repro.graph import (
    Graph,
    degree_histogram,
    estimate_eta_fit,
    estimate_eta_mle,
    graph_stats,
    powerlaw_graph,
    road_network,
    stats_table,
)


class TestDegreeHistogram:
    def test_simple(self, path_graph):
        values, counts = degree_histogram(path_graph)
        # Path: two endpoints of degree 1, eight of degree 2.
        assert values.tolist() == [1, 2]
        assert counts.tolist() == [2, 8]

    def test_excludes_isolated(self):
        g = Graph.from_edges([(0, 1)], num_vertices=5)
        values, counts = degree_histogram(g)
        assert counts.sum() == 2  # only the two endpoints

    def test_empty_graph(self):
        g = Graph.from_edges([], num_vertices=3)
        values, counts = degree_histogram(g)
        assert values.size == 0 and counts.size == 0


class TestEtaMLE:
    def test_recovers_exponent_roughly(self):
        g = powerlaw_graph(20000, eta=2.5, min_degree=2, seed=11)
        est = estimate_eta_mle(g, d_min=4)
        assert 1.8 < est < 3.5

    def test_requires_enough_vertices(self):
        g = Graph.from_edges([(0, 1)], num_vertices=2)
        with pytest.raises(ValueError):
            estimate_eta_mle(g, d_min=100)


class TestEtaFit:
    def test_power_law_ordering(self):
        heavy = powerlaw_graph(5000, eta=1.8, min_degree=3, seed=1)
        light = powerlaw_graph(5000, eta=3.2, min_degree=3, seed=1)
        assert estimate_eta_fit(heavy) < estimate_eta_fit(light)

    def test_road_graph_is_steep(self):
        road = road_network(40, 40, seed=1)
        pl = powerlaw_graph(1600, eta=2.0, min_degree=3, seed=1)
        assert estimate_eta_fit(road) > estimate_eta_fit(pl)

    def test_degenerate_distribution_sentinel(self):
        # A perfect cycle: every vertex degree 2 -> single-point tail.
        g = Graph.from_undirected_edges(
            [(i, (i + 1) % 10) for i in range(10)], num_vertices=10
        )
        assert estimate_eta_fit(g) == 20.0

    def test_empty_graph_sentinel(self):
        g = Graph.from_edges([], num_vertices=3)
        assert estimate_eta_fit(g) == 20.0


class TestGraphStats:
    def test_fields(self, tiny_graph):
        s = graph_stats(tiny_graph)
        assert s.name == "fig1"
        assert s.kind == "Undirected"
        assert s.num_vertices == 6
        assert s.num_edges == 6  # undirected count
        assert s.average_degree == pytest.approx(2.0)

    def test_directed_kind(self, path_graph):
        s = graph_stats(path_graph)
        assert s.kind == "Directed"
        assert s.num_edges == 9

    def test_as_row_rounding(self, tiny_graph):
        row = graph_stats(tiny_graph).as_row()
        assert row[0] == "fig1"
        assert isinstance(row[4], float)

    def test_stats_table_renders(self, tiny_graph, path_graph):
        text = stats_table({"a": tiny_graph, "b": path_graph})
        assert "fig1" in text and "path" in text
        assert "eta" in text.splitlines()[0]
