"""Property-based tests for the graph substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graph import Graph

# Strategy: a random small edge list over up to 20 vertices.
edge_lists = st.lists(
    st.tuples(st.integers(0, 19), st.integers(0, 19)), min_size=0, max_size=60
)


@given(edges=edge_lists)
@settings(max_examples=60, deadline=None)
def test_degree_sums_equal_edge_count(edges):
    g = Graph.from_edges(edges, num_vertices=20)
    assert g.out_degrees().sum() == g.num_edges
    assert g.in_degrees().sum() == g.num_edges
    assert g.degrees().sum() == 2 * g.num_edges


@given(edges=edge_lists)
@settings(max_examples=60, deadline=None)
def test_csr_partitions_every_edge(edges):
    g = Graph.from_edges(edges, num_vertices=20)
    idx = g.out_index()
    seen = np.concatenate(
        [idx.edges_of(v) for v in range(g.num_vertices)]
    ) if g.num_edges else np.array([], dtype=np.int64)
    assert sorted(seen.tolist()) == list(range(g.num_edges))


@given(edges=edge_lists)
@settings(max_examples=60, deadline=None)
def test_out_index_neighbors_are_correct(edges):
    g = Graph.from_edges(edges, num_vertices=20)
    idx = g.out_index()
    for v in range(g.num_vertices):
        expected = sorted(g.dst[g.src == v].tolist())
        assert sorted(idx.neighbors_of(v).tolist()) == expected


@given(edges=edge_lists)
@settings(max_examples=60, deadline=None)
def test_undirected_doubling_symmetric(edges):
    g = Graph.from_undirected_edges(edges, num_vertices=20)
    fwd = set(zip(g.src.tolist(), g.dst.tolist()))
    assert all((v, u) in fwd for (u, v) in fwd)


@given(edges=edge_lists)
@settings(max_examples=60, deadline=None)
def test_simplify_idempotent(edges):
    g = Graph.from_edges(edges, num_vertices=20).simplify()
    again = g.simplify()
    assert np.array_equal(g.src, again.src)
    assert np.array_equal(g.dst, again.dst)


@given(edges=edge_lists)
@settings(max_examples=60, deadline=None)
def test_simplify_has_no_loops_or_duplicates(edges):
    g = Graph.from_edges(edges, num_vertices=20).simplify()
    assert np.all(g.src != g.dst)
    keys = g.src * 20 + g.dst
    assert np.unique(keys).size == g.num_edges


@given(edges=edge_lists)
@settings(max_examples=60, deadline=None)
def test_reversed_involution(edges):
    g = Graph.from_edges(edges, num_vertices=20)
    rr = g.reversed().reversed()
    assert np.array_equal(g.src, rr.src)
    assert np.array_equal(g.dst, rr.dst)
