"""Unit tests for graph IO round-trips."""

import numpy as np
import pytest

from repro.graph import (
    Graph,
    iter_edge_chunks,
    read_edge_list,
    read_edge_list_header,
    read_metis,
    road_network,
    write_edge_list,
    write_metis,
)


class TestEdgeList:
    def test_roundtrip_directed(self, tmp_path, path_graph):
        p = str(tmp_path / "g.txt")
        write_edge_list(path_graph, p)
        g = read_edge_list(p)
        assert g.num_vertices == path_graph.num_vertices
        assert g.directed
        assert np.array_equal(g.src, path_graph.src)
        assert np.array_equal(g.dst, path_graph.dst)

    def test_roundtrip_undirected(self, tmp_path, tiny_graph):
        p = str(tmp_path / "g.txt")
        write_edge_list(tiny_graph, p)
        g = read_edge_list(p)
        assert not g.directed
        assert g.num_edges == tiny_graph.num_edges

    def test_roundtrip_weights(self, tmp_path):
        src = Graph(3, [0, 1], [1, 2], weights=[1.25, 3.5])
        p = str(tmp_path / "w.txt")
        write_edge_list(src, p)
        g = read_edge_list(p)
        assert np.allclose(g.weights, [1.25, 3.5])

    def test_snap_style_comments(self, tmp_path):
        p = tmp_path / "snap.txt"
        p.write_text("# Nodes: 3 Edges: 2\n% another comment\n0 1\n1 2\n")
        g = read_edge_list(str(p))
        assert g.num_edges == 2
        assert g.directed  # SNAP default

    def test_explicit_overrides(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 1\n")
        g = read_edge_list(str(p), directed=False, num_vertices=10)
        assert g.num_vertices == 10
        assert not g.directed

    def test_no_header_mode(self, tmp_path, path_graph):
        p = str(tmp_path / "g.txt")
        write_edge_list(path_graph, p, header=False)
        text = open(p).read()
        assert not text.startswith("#")
        g = read_edge_list(p)
        assert g.num_edges == path_graph.num_edges

    def test_name_from_filename(self, tmp_path):
        p = tmp_path / "mygraph.txt"
        p.write_text("0 1\n")
        assert read_edge_list(str(p)).name == "mygraph"


def _concat_chunks(path, chunk_size):
    srcs, dsts, wts = [], [], []
    for src, dst, w in iter_edge_chunks(path, chunk_size):
        srcs.append(src)
        dsts.append(dst)
        if w is not None:
            wts.append(w)
    src = np.concatenate(srcs) if srcs else np.empty(0, dtype=np.int64)
    dst = np.concatenate(dsts) if dsts else np.empty(0, dtype=np.int64)
    w = np.concatenate(wts) if wts else None
    return src, dst, w


class TestIterEdgeChunks:
    """Property: concatenated chunks == the read_edge_list arrays."""

    @pytest.mark.parametrize("chunk_size", [1, 3, 7, 10_000])
    def test_roundtrip_matches_read_edge_list(
        self, tmp_path, path_graph, chunk_size
    ):
        p = str(tmp_path / "g.txt")
        write_edge_list(path_graph, p)
        full = read_edge_list(p)
        src, dst, w = _concat_chunks(p, chunk_size)
        assert np.array_equal(src, full.src)
        assert np.array_equal(dst, full.dst)
        assert w is None and full.weights is None

    @pytest.mark.parametrize("chunk_size", [1, 4, 9999])
    def test_roundtrip_weighted(self, tmp_path, chunk_size):
        g = Graph(4, [0, 1, 2], [1, 2, 3], weights=[1.25, -3.5, 0.0])
        p = str(tmp_path / "w.txt")
        write_edge_list(g, p)
        full = read_edge_list(p)
        src, dst, w = _concat_chunks(p, chunk_size)
        assert np.array_equal(src, full.src)
        assert np.array_equal(dst, full.dst)
        assert np.allclose(w, full.weights)

    def test_roundtrip_without_header(self, tmp_path, path_graph):
        p = str(tmp_path / "g.txt")
        write_edge_list(path_graph, p, header=False)
        src, dst, _ = _concat_chunks(p, 4)
        assert np.array_equal(src, path_graph.src)
        assert np.array_equal(dst, path_graph.dst)

    def test_chunk_sizes_are_respected(self, tmp_path, path_graph):
        p = str(tmp_path / "g.txt")
        write_edge_list(path_graph, p)  # 9 edges
        sizes = [s.shape[0] for s, _, _ in iter_edge_chunks(p, 4)]
        assert sizes == [4, 4, 1]

    def test_empty_file_yields_nothing(self, tmp_path):
        p = tmp_path / "empty.txt"
        p.write_text("")
        assert list(iter_edge_chunks(str(p), 4)) == []

    def test_comment_only_file_yields_nothing(self, tmp_path):
        p = tmp_path / "comments.txt"
        p.write_text("# just a comment\n% another\n\n   \n")
        assert list(iter_edge_chunks(str(p), 4)) == []

    def test_comments_and_blanks_skipped_mid_file(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 1\n# interlude\n\n1 2\n% more\n2 3\n")
        src, dst, _ = _concat_chunks(str(p), 2)
        assert src.tolist() == [0, 1, 2]
        assert dst.tolist() == [1, 2, 3]

    def test_malformed_line_reports_line_number(self, tmp_path):
        p = tmp_path / "bad.txt"
        p.write_text("0 1\n1 2\nnot-an-edge\n")
        with pytest.raises(ValueError, match=r"bad\.txt:3"):
            list(iter_edge_chunks(str(p), 10))

    def test_single_token_line_rejected(self, tmp_path):
        p = tmp_path / "bad.txt"
        p.write_text("0 1\n42\n")
        with pytest.raises(ValueError, match="expected 'u v"):
            list(iter_edge_chunks(str(p), 10))

    def test_mixed_weight_columns_rejected(self, tmp_path):
        p = tmp_path / "mixed.txt"
        p.write_text("0 1 0.5\n1 2\n")
        with pytest.raises(ValueError, match="inconsistent column count"):
            list(iter_edge_chunks(str(p), 10))

    def test_invalid_chunk_size(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 1\n")
        with pytest.raises(ValueError):
            list(iter_edge_chunks(str(p), 0))


class TestReadEdgeListHeader:
    def test_reads_repro_header(self, tmp_path, path_graph):
        p = str(tmp_path / "g.txt")
        write_edge_list(path_graph, p)
        directed, vertices = read_edge_list_header(p)
        assert directed is True
        assert vertices == path_graph.num_vertices

    def test_plain_snap_file_has_no_hints(self, tmp_path):
        p = tmp_path / "snap.txt"
        p.write_text("# Nodes: 3 Edges: 2\n0 1\n1 2\n")
        assert read_edge_list_header(str(p)) == (None, None)

    def test_header_after_first_edge_ignored(self, tmp_path):
        p = tmp_path / "late.txt"
        p.write_text("0 1\n# repro-graph directed 99 1\n")
        assert read_edge_list_header(str(p)) == (None, None)


class TestMetisFormat:
    def test_roundtrip_structure(self, tmp_path, tiny_graph):
        p = str(tmp_path / "g.metis")
        write_metis(tiny_graph, p)
        g = read_metis(p)
        assert g.num_vertices == tiny_graph.num_vertices
        assert g.num_undirected_edges == tiny_graph.num_undirected_edges

    def test_header_counts(self, tmp_path, two_triangles):
        p = str(tmp_path / "g.metis")
        write_metis(two_triangles, p)
        header = open(p).readline().split()
        assert header == ["6", "6"]

    def test_directed_is_symmetrized(self, tmp_path, path_graph):
        p = str(tmp_path / "g.metis")
        write_metis(path_graph, p)
        g = read_metis(p)
        # The path has 9 undirected edges after symmetrization.
        assert g.num_undirected_edges == 9

    def test_self_loops_dropped(self, tmp_path):
        g = Graph.from_edges([(0, 0), (0, 1)], num_vertices=2)
        p = str(tmp_path / "g.metis")
        write_metis(g, p)
        assert read_metis(p).num_undirected_edges == 1

    def test_roundtrip_road(self, tmp_path):
        g = road_network(5, 5, seed=1)
        p = str(tmp_path / "road.metis")
        write_metis(g, p)
        r = read_metis(p)
        assert r.num_undirected_edges == g.num_undirected_edges
