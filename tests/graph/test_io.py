"""Unit tests for graph IO round-trips."""

import numpy as np
import pytest

from repro.graph import (
    Graph,
    read_edge_list,
    read_metis,
    road_network,
    write_edge_list,
    write_metis,
)


class TestEdgeList:
    def test_roundtrip_directed(self, tmp_path, path_graph):
        p = str(tmp_path / "g.txt")
        write_edge_list(path_graph, p)
        g = read_edge_list(p)
        assert g.num_vertices == path_graph.num_vertices
        assert g.directed
        assert np.array_equal(g.src, path_graph.src)
        assert np.array_equal(g.dst, path_graph.dst)

    def test_roundtrip_undirected(self, tmp_path, tiny_graph):
        p = str(tmp_path / "g.txt")
        write_edge_list(tiny_graph, p)
        g = read_edge_list(p)
        assert not g.directed
        assert g.num_edges == tiny_graph.num_edges

    def test_roundtrip_weights(self, tmp_path):
        src = Graph(3, [0, 1], [1, 2], weights=[1.25, 3.5])
        p = str(tmp_path / "w.txt")
        write_edge_list(src, p)
        g = read_edge_list(p)
        assert np.allclose(g.weights, [1.25, 3.5])

    def test_snap_style_comments(self, tmp_path):
        p = tmp_path / "snap.txt"
        p.write_text("# Nodes: 3 Edges: 2\n% another comment\n0 1\n1 2\n")
        g = read_edge_list(str(p))
        assert g.num_edges == 2
        assert g.directed  # SNAP default

    def test_explicit_overrides(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 1\n")
        g = read_edge_list(str(p), directed=False, num_vertices=10)
        assert g.num_vertices == 10
        assert not g.directed

    def test_no_header_mode(self, tmp_path, path_graph):
        p = str(tmp_path / "g.txt")
        write_edge_list(path_graph, p, header=False)
        text = open(p).read()
        assert not text.startswith("#")
        g = read_edge_list(p)
        assert g.num_edges == path_graph.num_edges

    def test_name_from_filename(self, tmp_path):
        p = tmp_path / "mygraph.txt"
        p.write_text("0 1\n")
        assert read_edge_list(str(p)).name == "mygraph"


class TestMetisFormat:
    def test_roundtrip_structure(self, tmp_path, tiny_graph):
        p = str(tmp_path / "g.metis")
        write_metis(tiny_graph, p)
        g = read_metis(p)
        assert g.num_vertices == tiny_graph.num_vertices
        assert g.num_undirected_edges == tiny_graph.num_undirected_edges

    def test_header_counts(self, tmp_path, two_triangles):
        p = str(tmp_path / "g.metis")
        write_metis(two_triangles, p)
        header = open(p).readline().split()
        assert header == ["6", "6"]

    def test_directed_is_symmetrized(self, tmp_path, path_graph):
        p = str(tmp_path / "g.metis")
        write_metis(path_graph, p)
        g = read_metis(p)
        # The path has 9 undirected edges after symmetrization.
        assert g.num_undirected_edges == 9

    def test_self_loops_dropped(self, tmp_path):
        g = Graph.from_edges([(0, 0), (0, 1)], num_vertices=2)
        p = str(tmp_path / "g.metis")
        write_metis(g, p)
        assert read_metis(p).num_undirected_edges == 1

    def test_roundtrip_road(self, tmp_path):
        g = road_network(5, 5, seed=1)
        p = str(tmp_path / "road.metis")
        write_metis(g, p)
        r = read_metis(p)
        assert r.num_undirected_edges == g.num_undirected_edges
