"""Unit tests for the core Graph data structure."""

import numpy as np
import pytest

from repro.graph import CSRIndex, Graph


class TestConstruction:
    def test_from_edges_basic(self):
        g = Graph.from_edges([(0, 1), (1, 2)], directed=True)
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert g.directed

    def test_explicit_num_vertices(self):
        g = Graph.from_edges([(0, 1)], num_vertices=10)
        assert g.num_vertices == 10

    def test_from_undirected_doubles_edges(self):
        g = Graph.from_undirected_edges([(0, 1), (1, 2)])
        assert g.num_edges == 4
        assert not g.directed
        pairs = set(zip(g.src.tolist(), g.dst.tolist()))
        assert (0, 1) in pairs and (1, 0) in pairs
        assert (1, 2) in pairs and (2, 1) in pairs

    def test_num_undirected_edges(self):
        g = Graph.from_undirected_edges([(0, 1), (1, 2)])
        assert g.num_undirected_edges == 2
        d = Graph.from_edges([(0, 1), (1, 2)], directed=True)
        assert d.num_undirected_edges == 2

    def test_empty_edge_list(self):
        g = Graph.from_edges([], num_vertices=5)
        assert g.num_edges == 0
        assert g.num_vertices == 5

    def test_mismatched_arrays_raises(self):
        with pytest.raises(ValueError):
            Graph(3, [0, 1], [1])

    def test_out_of_range_endpoint_raises(self):
        with pytest.raises(ValueError):
            Graph(2, [0], [5])
        with pytest.raises(ValueError):
            Graph(2, [-1], [0])

    def test_zero_vertices_raises(self):
        with pytest.raises(ValueError):
            Graph(0, [], [])

    def test_bad_edge_shape_raises(self):
        with pytest.raises(ValueError):
            Graph.from_edges([(0, 1, 2)])

    def test_weights_must_parallel_edges(self):
        with pytest.raises(ValueError):
            Graph(3, [0, 1], [1, 2], weights=[1.0])

    def test_weights_stored(self):
        g = Graph(3, [0, 1], [1, 2], weights=[1.5, 2.5])
        assert np.allclose(g.weights, [1.5, 2.5])


class TestDegrees:
    def test_out_in_degrees(self, path_graph):
        out = path_graph.out_degrees()
        inn = path_graph.in_degrees()
        assert out[0] == 1 and out[9] == 0
        assert inn[0] == 0 and inn[9] == 1
        assert out.sum() == path_graph.num_edges
        assert inn.sum() == path_graph.num_edges

    def test_total_degrees(self, path_graph):
        deg = path_graph.degrees()
        assert deg[0] == 1 and deg[5] == 2 and deg[9] == 1

    def test_degrees_cached(self, path_graph):
        assert path_graph.degrees() is path_graph.degrees()

    def test_average_degree(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 0)], num_vertices=3)
        assert g.average_degree == pytest.approx(1.0)

    def test_undirected_degree_counts_both_directions(self):
        g = Graph.from_undirected_edges([(0, 1)])
        assert g.degrees()[0] == 2  # one out, one in


class TestAdjacency:
    def test_out_neighbors(self, path_graph):
        assert path_graph.out_neighbors(3).tolist() == [4]
        assert path_graph.out_neighbors(9).tolist() == []

    def test_in_neighbors(self, path_graph):
        assert path_graph.in_neighbors(3).tolist() == [2]
        assert path_graph.in_neighbors(0).tolist() == []

    def test_neighbors_union(self, path_graph):
        assert path_graph.neighbors(3).tolist() == [2, 4]

    def test_csr_index_edges_of(self):
        g = Graph.from_edges([(0, 1), (0, 2), (1, 2)])
        idx = g.out_index()
        eids = idx.edges_of(0)
        assert sorted(g.dst[eids].tolist()) == [1, 2]
        assert idx.degree(0) == 2
        assert idx.degree(2) == 0

    def test_csr_matches_bruteforce(self, small_powerlaw):
        g = small_powerlaw
        idx = g.out_index()
        for v in [0, 1, 17, 500, g.num_vertices - 1]:
            expected = sorted(g.dst[g.src == v].tolist())
            assert sorted(idx.neighbors_of(v).tolist()) == expected

    def test_csr_index_standalone(self):
        key = np.array([2, 0, 2, 1])
        other = np.array([10, 11, 12, 13])
        idx = CSRIndex(key, other, 3)
        assert sorted(idx.neighbors_of(2).tolist()) == [10, 12]
        assert idx.neighbors_of(0).tolist() == [11]


class TestTransforms:
    def test_edges_iterator(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        assert list(g.edges()) == [(0, 1), (1, 2)]

    def test_edge_array(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        assert g.edge_array().tolist() == [[0, 1], [1, 2]]

    def test_reversed(self, path_graph):
        r = path_graph.reversed()
        assert r.out_neighbors(1).tolist() == [0]
        assert r.num_edges == path_graph.num_edges

    def test_reversed_preserves_weights(self):
        g = Graph(3, [0, 1], [1, 2], weights=[1.5, 2.5])
        r = g.reversed()
        assert np.allclose(r.weights, [1.5, 2.5])

    def test_with_weights(self, path_graph):
        w = path_graph.with_weights(np.arange(9, dtype=float))
        assert w.weights[3] == 3.0
        assert path_graph.weights is None  # original untouched

    def test_with_unit_weights(self, path_graph):
        w = path_graph.with_unit_weights()
        assert np.all(w.weights == 1.0)

    def test_simplify_removes_self_loops(self):
        g = Graph.from_edges([(0, 0), (0, 1), (1, 1)], num_vertices=2)
        s = g.simplify()
        assert s.num_edges == 1
        assert (s.src[0], s.dst[0]) == (0, 1)

    def test_simplify_removes_duplicates(self):
        g = Graph.from_edges([(0, 1), (0, 1), (1, 0)], num_vertices=2)
        s = g.simplify()
        assert s.num_edges == 2  # (0,1) and (1,0) are distinct directed edges

    def test_simplify_preserves_weights_of_first_occurrence(self):
        g = Graph(2, [0, 0], [1, 1], weights=[7.0, 9.0])
        s = g.simplify()
        assert s.weights.tolist() == [7.0]
