"""The committed example trace stays valid and Fig.-4-shaped.

``examples/traces/pagerank_p4_process.trace.json`` is a real p=4
process-backend PageRank run recorded through ``repro run --trace``.
It is the artifact the README points users at, so the suite pins its
contract: Chrome trace-event shape, one tid per worker, and a
per-worker timeline with compute + exchange spans in *every*
superstep — the reconstruction of the paper's Figure 4 Gantt chart
from real execution.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs import (
    load_trace,
    render_trace_summary,
    summarize_trace,
    validate_chrome_trace,
)

EXAMPLE = (
    Path(__file__).resolve().parents[2]
    / "examples"
    / "traces"
    / "pagerank_p4_process.trace.json"
)


@pytest.fixture(scope="module")
def trace():
    assert EXAMPLE.is_file(), f"committed example trace missing: {EXAMPLE}"
    return load_trace(str(EXAMPLE))


class TestExampleTrace:
    def test_chrome_shape_valid(self):
        stats = validate_chrome_trace(str(EXAMPLE))
        assert stats["num_workers"] == 4
        # coordinator tid 0 plus one tid per worker.
        assert stats["tids"] == [0, 1, 2, 3, 4]
        assert stats["num_events"] > 0

    def test_one_tid_per_worker_metadata(self):
        doc = json.loads(EXAMPLE.read_text())
        names = {
            e["tid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e.get("ph") == "M" and e.get("name") == "thread_name"
        }
        assert names[0] == "coordinator"
        assert {names[w + 1] for w in range(4)} == {f"worker {w}" for w in range(4)}

    def test_fig4_timeline_every_worker_every_superstep(self, trace):
        """Each worker shows compute and exchange work in each superstep."""
        supersteps = sorted(
            {e["superstep"] for e in trace["events"] if e["superstep"] is not None}
        )
        assert len(supersteps) == 20  # pagerank?pagerank_iters default run
        seen = {
            (e["name"], e["worker"], e["superstep"])
            for e in trace["events"]
            if e["worker"] is not None
        }
        for step in supersteps:
            for w in range(4):
                for stage in ("compute", "exchange.up", "exchange.down"):
                    assert (stage, w, step) in seen, (stage, w, step)

    def test_summary_statistics(self, trace):
        summary = summarize_trace(trace)
        assert summary.num_workers == 4
        assert summary.num_supersteps == 20
        busy = summary.worker_busy_seconds()
        assert len(busy) == 4 and all(b > 0.0 for b in busy)
        assert summary.straggler_ratio >= 1.0
        assert summary.stage_imbalance["compute"] >= 1.0
        assert "superstep" in summary.coordinator_seconds
        # the run's message totals were snapshotted into the trace.
        assert summary.metrics["messages.sent"]["total"] > 0

    def test_summary_renders(self, trace):
        text = render_trace_summary(summarize_trace(trace))
        assert "workers=4" in text
        assert "straggler ratio" in text
        rows = [line for line in text.splitlines() if line[:1].isdigit()]
        assert [row.split()[0] for row in rows] == ["0", "1", "2", "3"]
        assert "Coordinator span" in text
