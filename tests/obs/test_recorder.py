"""TraceRecorder / MetricsRegistry unit tests, and the null-object contract."""

import pytest

from repro.obs import (
    NULL_RECORDER,
    MetricsRegistry,
    TraceRecorder,
    sample_peak_rss_kb,
)


class TestTraceRecorder:
    def test_add_records_labeled_span(self):
        rec = TraceRecorder(label="t")
        rec.add("compute", 1000, 3000, worker=2, superstep=5, cat="worker")
        (span,) = rec.spans()
        assert span.name == "compute"
        assert span.cat == "worker"
        assert (span.worker, span.superstep) == (2, 5)
        assert (span.t0_ns, span.t1_ns) == (1000, 3000)
        assert span.duration_seconds == pytest.approx(2e-6)

    def test_span_context_manager_records_on_exit(self):
        rec = TraceRecorder()
        with rec.span("gather", cat="engine"):
            pass
        assert len(rec) == 1
        span = rec.spans()[0]
        assert span.name == "gather"
        assert span.t1_ns >= span.t0_ns
        assert span.worker is None

    def test_num_workers_is_one_past_highest_id(self):
        rec = TraceRecorder()
        assert rec.num_workers() == 0
        rec.add("stage.compute", 0, 1)  # coordinator span: no worker
        assert rec.num_workers() == 0
        rec.add("compute", 0, 1, worker=3)
        assert rec.num_workers() == 4

    def test_iteration_preserves_record_order(self):
        rec = TraceRecorder()
        for name in ("a", "b", "c"):
            rec.add(name, 0, 1)
        assert [s.name for s in rec] == ["a", "b", "c"]

    def test_enabled_and_header_fields(self):
        rec = TraceRecorder(label="pipeline")
        assert rec.enabled is True
        assert rec.label == "pipeline"
        assert rec.origin_ns > 0
        assert rec.wall_time > 0


class TestMetrics:
    def test_counter_shards_by_worker(self):
        reg = MetricsRegistry()
        c = reg.counter("messages.sent")
        c.inc(5, worker=0)
        c.inc(7, worker=1)
        c.inc(1, worker=0)
        assert c.total() == 13
        snap = c.snapshot()
        assert snap["kind"] == "counter"
        assert snap["series"] == {"worker_0": 6, "worker_1": 7}

    def test_counter_unlabeled_series_is_total(self):
        c = MetricsRegistry().counter("spill.bytes")
        c.inc(100)
        assert c.snapshot()["series"] == {"total": 100}

    def test_gauge_tracks_last_and_max(self):
        g = MetricsRegistry().gauge("vertices.active")
        g.sample(10)
        g.sample(30)
        g.sample(20)
        snap = g.snapshot()
        assert snap["kind"] == "gauge"
        assert snap["last"] == {"total": 20}
        assert snap["max"] == {"total": 30}

    def test_registry_memoizes_by_name(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.gauge("y") is reg.gauge("y")

    def test_cross_kind_name_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already a counter"):
            reg.gauge("x")
        reg.gauge("y")
        with pytest.raises(ValueError, match="already a gauge"):
            reg.counter("y")

    def test_snapshot_is_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("zz").inc()
        reg.gauge("aa").sample(1)
        reg.counter("mm").inc()
        assert list(reg.snapshot()) == ["aa", "mm", "zz"]

    def test_peak_rss_sample_is_positive_on_posix(self):
        peak = sample_peak_rss_kb()
        assert peak is None or peak > 0


class TestNullRecorder:
    """Tracing disabled must cost nothing and store nothing."""

    def test_disabled_flag(self):
        assert NULL_RECORDER.enabled is False

    def test_add_and_iterate_are_noops(self):
        NULL_RECORDER.add("compute", 0, 1, worker=0, superstep=0)
        assert len(NULL_RECORDER) == 0
        assert NULL_RECORDER.spans() == ()
        assert list(NULL_RECORDER) == []
        assert NULL_RECORDER.num_workers() == 0

    def test_span_returns_one_shared_context(self):
        a = NULL_RECORDER.span("x")
        b = NULL_RECORDER.span("y", worker=1, superstep=2, cat="stage")
        assert a is b  # zero allocations per use
        with a:
            pass
        assert len(NULL_RECORDER) == 0

    def test_metrics_sink_accepts_and_discards(self):
        c = NULL_RECORDER.metrics.counter("messages.sent")
        c.inc(100, worker=3)
        assert c.total() == 0
        g = NULL_RECORDER.metrics.gauge("vertices.active")
        g.sample(42)
        assert NULL_RECORDER.metrics.snapshot() == {}

    def test_metrics_objects_are_shared_singletons(self):
        m = NULL_RECORDER.metrics
        assert m.counter("a") is m.counter("b")
        assert m.gauge("a") is m.gauge("b")
