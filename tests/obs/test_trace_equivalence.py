"""Tracing is strictly observational.

The two halves of the acceptance criterion:

* tracing **disabled vs. enabled**: application values, the
  deterministic half of ``SuperstepStats`` (work / sent / received and
  the cost-model clocks) and the checkpoint payload checksums are
  bit-identical, on every backend at p in {2, 4};
* tracing **enabled across backends**: serial, thread and process
  record the same set of spans (same names, workers, supersteps), so a
  trace is comparable across backends and the span schema cannot
  silently fork per backend.
"""

import json
import os

import numpy as np
import pytest

from repro.pipeline import Pipeline

SOURCE = "powerlaw?min_degree=2,seed=3,vertices=300"
BACKENDS = ["serial", "thread", "process"]
PARTS = [2, 4]


def _run(tmp_path, backend, p, traced, tag):
    pipe = (
        Pipeline()
        .source(SOURCE)
        .partition("ebv", parts=p)
        .run("pr", pagerank_iters=4)
        .backend(backend)
        .checkpoint(str(tmp_path / f"ckpt-{tag}"), every=2)
    )
    if traced:
        pipe.trace(str(tmp_path / f"{tag}.trace.json"))
    return pipe.execute()


def _snapshot_checksums(ckpt_dir):
    """{snapshot dir: payload sha256s} from the manifests (deterministic)."""
    out = {}
    for entry in sorted(os.listdir(ckpt_dir)):
        manifest = os.path.join(ckpt_dir, entry, "manifest.json")
        if not os.path.isfile(manifest):
            continue
        with open(manifest) as fh:
            data = json.load(fh)
        out[entry] = {name: info["sha256"] for name, info in data["files"].items()}
    assert out, f"no snapshots under {ckpt_dir}"
    return out


def _deterministic_stats(result):
    return [
        (s.work.tolist(), s.sent.tolist(), s.received.tolist(),
         s.comp_seconds.tolist(), s.comm_seconds.tolist())
        for s in result.run.supersteps
    ]


@pytest.mark.parametrize("p", PARTS)
@pytest.mark.parametrize("backend", BACKENDS)
def test_tracing_does_not_perturb_results(tmp_path, backend, p):
    plain = _run(tmp_path, backend, p, traced=False, tag=f"plain-{backend}-{p}")
    traced = _run(tmp_path, backend, p, traced=True, tag=f"traced-{backend}-{p}")

    # Bit-identical application values.
    assert np.array_equal(traced.run.values, plain.run.values)

    # Bit-identical deterministic stats, including CostModel accounting.
    assert _deterministic_stats(traced) == _deterministic_stats(plain)
    assert traced.run.num_supersteps == plain.run.num_supersteps

    # Bit-identical checkpoint payloads (state + superstep npz checksums).
    assert _snapshot_checksums(
        tmp_path / f"ckpt-traced-{backend}-{p}"
    ) == _snapshot_checksums(tmp_path / f"ckpt-plain-{backend}-{p}")

    # The trace actually materialized and names the right worker count.
    trace_doc = json.load(open(tmp_path / f"traced-{backend}-{p}.trace.json"))
    assert trace_doc["otherData"]["num_workers"] == p
    assert traced.trace_path.endswith(".trace.json")
    assert plain.trace_path is None


@pytest.mark.parametrize("p", PARTS)
def test_span_schema_identical_across_backends(tmp_path, p):
    keys = {}
    for backend in BACKENDS:
        result = _run(tmp_path, backend, p, traced=True, tag=f"spans-{backend}-{p}")
        doc = json.load(open(tmp_path / f"spans-{backend}-{p}.trace.json"))
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        keys[backend] = sorted(
            (e["name"], e["tid"], e["args"].get("superstep"))
            for e in events
        )
        assert result.run is not None
    assert keys["thread"] == keys["serial"]
    assert keys["process"] == keys["serial"]


def test_real_seconds_has_three_stage_keys(tmp_path):
    result = _run(tmp_path, "serial", 2, traced=False, tag="keys")
    for stats in result.run.supersteps:
        assert set(stats.real_seconds) == {"compute", "exchange", "converge"}
        assert all(v >= 0.0 for v in stats.real_seconds.values())


def test_untraced_result_dict_has_no_trace_key(tmp_path):
    plain = _run(tmp_path, "serial", 2, traced=False, tag="dict-plain")
    traced = _run(tmp_path, "serial", 2, traced=True, tag="dict-traced")
    assert "trace" not in plain.to_dict()
    assert "trace" not in plain.spec.to_dict()
    assert traced.to_dict()["trace"] == traced.trace_path
    assert traced.spec.to_dict()["trace"] == traced.trace_path
