"""Exporter round-trips: Chrome trace shape, JSONL, and the loader."""

import json

import pytest

from repro.obs import (
    TraceRecorder,
    load_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl_trace,
    write_trace,
)


@pytest.fixture
def recorder():
    """Two workers, two supersteps, nested coordinator spans + metrics."""
    rec = TraceRecorder(label="unit")
    o = rec.origin_ns
    for step in range(2):
        base = o + step * 10_000
        for w in range(2):
            t0 = base + w * 100
            rec.add("compute", t0, t0 + 2_000, worker=w, superstep=step, cat="worker")
            rec.add(
                "barrier.compute", t0 + 2_000, base + 2_200,
                worker=w, superstep=step, cat="barrier",
            )
        rec.add("stage.compute", base, base + 2_500, superstep=step)
        rec.add("converge", base + 2_500, base + 2_600, superstep=step)
        rec.add("superstep", base, base + 9_000, superstep=step, cat="superstep")
    rec.metrics.counter("messages.sent").inc(10, worker=0)
    rec.metrics.counter("messages.sent").inc(12, worker=1)
    rec.metrics.gauge("vertices.active").sample(42)
    return rec


class TestChromeTrace:
    def test_document_shape(self, recorder, tmp_path):
        path = write_chrome_trace(recorder, str(tmp_path / "t.json"))
        with open(path) as fh:
            doc = json.load(fh)
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        meta = doc["otherData"]
        assert meta["format"] == "repro-trace"
        assert meta["label"] == "unit"
        assert meta["num_workers"] == 2
        assert meta["num_spans"] == len(recorder)
        assert meta["metrics"]["messages.sent"]["total"] == 22

    def test_one_tid_per_worker_plus_coordinator(self, recorder, tmp_path):
        path = write_chrome_trace(recorder, str(tmp_path / "t.json"))
        with open(path) as fh:
            doc = json.load(fh)
        names = {
            e["tid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names == {0: "coordinator", 1: "worker 0", 2: "worker 1"}
        x_tids = {e["tid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert x_tids == {0, 1, 2}

    def test_timestamps_relative_to_origin_in_us(self, recorder, tmp_path):
        path = write_chrome_trace(recorder, str(tmp_path / "t.json"))
        with open(path) as fh:
            doc = json.load(fh)
        first_compute = next(
            e for e in doc["traceEvents"]
            if e.get("ph") == "X" and e["name"] == "compute"
        )
        assert first_compute["ts"] == pytest.approx(0.0)
        assert first_compute["dur"] == pytest.approx(2.0)  # 2000 ns = 2 us
        assert first_compute["args"]["superstep"] == 0

    def test_validates(self, recorder, tmp_path):
        path = write_chrome_trace(recorder, str(tmp_path / "t.json"))
        stats = validate_chrome_trace(path)
        assert stats["num_workers"] == 2
        assert stats["tids"] == [0, 1, 2]
        assert stats["num_events"] == len(recorder)
        assert stats["duration_us"] > 0

    def test_validate_rejects_partial_overlap(self):
        events = [
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": 0,
             "args": {"name": "coordinator"}},
            {"name": "a", "ph": "X", "pid": 1, "tid": 0, "ts": 0.0, "dur": 10.0},
            {"name": "b", "ph": "X", "pid": 1, "tid": 0, "ts": 5.0, "dur": 10.0},
        ]
        with pytest.raises(ValueError, match="partially overlaps"):
            validate_chrome_trace({"traceEvents": events})

    def test_validate_rejects_missing_fields_and_gappy_tids(self):
        events = [
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": 2,
             "args": {"name": "worker 1"}},
            {"name": "a", "ph": "X", "pid": 1, "tid": 2, "ts": 0.0},  # no dur
        ]
        with pytest.raises(ValueError) as err:
            validate_chrome_trace({"traceEvents": events})
        assert "missing" in str(err.value)
        assert "not contiguous" in str(err.value)

    def test_validate_rejects_non_trace(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"hello": 1})


class TestJsonlAndLoader:
    def test_jsonl_structure(self, recorder, tmp_path):
        path = write_jsonl_trace(recorder, str(tmp_path / "t.jsonl"))
        lines = [json.loads(l) for l in open(path) if l.strip()]
        assert lines[0]["type"] == "header"
        assert lines[0]["num_workers"] == 2
        assert lines[-1]["type"] == "metrics"
        spans = [l for l in lines if l["type"] == "span"]
        assert len(spans) == len(recorder)

    def test_loader_normalizes_both_forms_identically(self, recorder, tmp_path):
        chrome = load_trace(write_chrome_trace(recorder, str(tmp_path / "t.json")))
        jsonl = load_trace(write_jsonl_trace(recorder, str(tmp_path / "t.jsonl")))
        assert chrome["format"] == "chrome"
        assert jsonl["format"] == "jsonl"
        key = lambda e: (e["name"], e["worker"], e["superstep"], e["ts_us"], e["dur_us"])
        assert [key(e) for e in chrome["events"]] == [key(e) for e in jsonl["events"]]
        assert chrome["metrics"] == jsonl["metrics"]
        assert chrome["meta"]["label"] == jsonl["meta"]["label"] == "unit"

    def test_write_trace_dispatches_on_extension(self, recorder, tmp_path):
        jsonl = write_trace(recorder, str(tmp_path / "a.jsonl"))
        chrome = write_trace(recorder, str(tmp_path / "a.trace.json"))
        assert load_trace(jsonl)["format"] == "jsonl"
        assert load_trace(chrome)["format"] == "chrome"

    def test_loader_rejects_non_trace_files(self, tmp_path):
        plain = tmp_path / "notes.txt"
        plain.write_text("just some text\n")
        with pytest.raises(ValueError):
            load_trace(str(plain))
        empty = tmp_path / "empty.json"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_trace(str(empty))
        wrong_json = tmp_path / "doc.json"
        wrong_json.write_text(json.dumps({"results": [1, 2, 3]}))
        with pytest.raises(ValueError):
            load_trace(str(wrong_json))


class TestCrashedTraces:
    """Traces from crashed runs degrade gracefully instead of raising."""

    def test_truncated_final_jsonl_line_is_dropped_and_counted(
        self, recorder, tmp_path
    ):
        path = write_jsonl_trace(recorder, str(tmp_path / "t.jsonl"))
        with open(path) as fh:
            text = fh.read()
        # a crash mid-write leaves the last line torn
        crashed = tmp_path / "crashed.jsonl"
        crashed.write_text(text[:-40])
        trace = load_trace(str(crashed))
        assert trace["meta"]["dropped_events"] == 1
        assert len(trace["events"]) > 0

    def test_torn_jsonl_span_records_are_dropped(self, recorder, tmp_path):
        path = write_jsonl_trace(recorder, str(tmp_path / "t.jsonl"))
        lines = open(path).read().splitlines()
        # tear two span records: one missing dur_us, one with junk ts_us
        torn = []
        mangled = 0
        for line in lines:
            rec = json.loads(line)
            if rec.get("type") == "span" and mangled < 2:
                if mangled == 0:
                    del rec["dur_us"]
                else:
                    rec["ts_us"] = "not-a-number"
                mangled += 1
            torn.append(json.dumps(rec))
        crashed = tmp_path / "torn.jsonl"
        crashed.write_text("\n".join(torn) + "\n")
        trace = load_trace(str(crashed))
        assert trace["meta"]["dropped_events"] == 2
        assert len(trace["events"]) == len(recorder) - 2

    def test_torn_chrome_events_are_dropped(self, recorder, tmp_path):
        path = write_chrome_trace(recorder, str(tmp_path / "t.json"))
        doc = json.load(open(path))
        for event in doc["traceEvents"]:
            if event["ph"] == "X":
                del event["dur"]
                break
        crashed = tmp_path / "torn.json"
        crashed.write_text(json.dumps(doc))
        trace = load_trace(str(crashed))
        assert trace["meta"]["dropped_events"] == 1
        assert len(trace["events"]) == len(recorder) - 1

    def test_bad_line_before_the_tail_is_still_corruption(
        self, recorder, tmp_path
    ):
        path = write_jsonl_trace(recorder, str(tmp_path / "t.jsonl"))
        lines = open(path).read().splitlines()
        lines[2] = lines[2][:-5]  # torn in the middle, not the tail
        crashed = tmp_path / "mid.jsonl"
        crashed.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=":3:"):
            load_trace(str(crashed))

    def test_summarize_survives_dropped_events(self, recorder, tmp_path):
        from repro.obs import summarize_trace

        path = write_jsonl_trace(recorder, str(tmp_path / "t.jsonl"))
        text = open(path).read()
        crashed = tmp_path / "crashed.jsonl"
        crashed.write_text(text[:-40])
        summary = summarize_trace(load_trace(str(crashed)))
        assert summary  # partial tables still render
