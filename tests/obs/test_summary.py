"""summarize_trace math (straggler/imbalance ratios) and the rendered report."""

import pytest

from repro.obs import summarize_trace, render_trace_summary
from repro.obs.summary import _max_mean


def _event(name, worker=None, superstep=None, ts=0.0, dur=1.0, cat="worker"):
    return {
        "name": name, "cat": cat, "worker": worker, "superstep": superstep,
        "ts_us": ts, "dur_us": dur, "args": {},
    }


@pytest.fixture
def skewed_trace():
    """Two workers, one superstep; worker 1 computes 3x longer.

    Durations are in microseconds; summarize_trace reports seconds.
    """
    events = [
        _event("compute", worker=0, superstep=0, dur=1_000_000.0),   # 1 s
        _event("compute", worker=1, superstep=0, dur=3_000_000.0),   # 3 s
        _event("exchange.up", worker=0, superstep=0, dur=500_000.0),
        _event("exchange.up", worker=1, superstep=0, dur=500_000.0),
        _event("exchange.down", worker=0, superstep=0, dur=250_000.0),
        _event("exchange.down", worker=1, superstep=0, dur=250_000.0),
        _event("barrier.compute", worker=0, superstep=0, dur=2_000_000.0, cat="barrier"),
        _event("barrier.compute", worker=1, superstep=0, dur=0.0, cat="barrier"),
        _event("stage.compute", superstep=0, dur=3_100_000.0, cat="stage"),
        _event("converge", superstep=0, dur=10_000.0, cat="stage"),
        _event("superstep", superstep=0, dur=4_000_000.0, cat="superstep"),
    ]
    return {"format": "chrome", "meta": {"label": "skew"}, "events": events,
            "metrics": {"messages.sent": {"kind": "counter", "total": 42.0,
                                          "series": {"worker_0": 20.0, "worker_1": 22.0}}}}


class TestSummarizeTrace:
    def test_per_worker_stage_seconds(self, skewed_trace):
        s = summarize_trace(skewed_trace)
        assert s.num_workers == 2
        assert s.num_supersteps == 1
        assert s.worker_stage_seconds[0]["compute"] == pytest.approx(1.0)
        assert s.worker_stage_seconds[1]["compute"] == pytest.approx(3.0)
        assert s.worker_stage_seconds[0]["exchange.up"] == pytest.approx(0.5)
        assert s.worker_stage_seconds[1]["exchange.down"] == pytest.approx(0.25)

    def test_barrier_seconds_localize_waiting(self, skewed_trace):
        s = summarize_trace(skewed_trace)
        assert s.worker_barrier_seconds[0] == pytest.approx(2.0)
        assert s.worker_barrier_seconds[1] == pytest.approx(0.0)

    def test_straggler_ratio_is_max_over_mean_busy(self, skewed_trace):
        s = summarize_trace(skewed_trace)
        # busy: w0 = 1.75 s, w1 = 3.75 s -> max/mean = 3.75 / 2.75
        assert s.worker_busy_seconds() == pytest.approx([1.75, 3.75])
        assert s.straggler_ratio == pytest.approx(3.75 / 2.75)

    def test_stage_imbalance_localizes_skew(self, skewed_trace):
        s = summarize_trace(skewed_trace)
        assert s.stage_imbalance["compute"] == pytest.approx(3.0 / 2.0)
        assert s.stage_imbalance["exchange"] == pytest.approx(1.0)

    def test_coordinator_spans_and_metrics_carried(self, skewed_trace):
        s = summarize_trace(skewed_trace)
        assert s.coordinator_seconds["stage.compute"] == pytest.approx(3.1)
        assert s.coordinator_seconds["converge"] == pytest.approx(0.01)
        assert s.metrics["messages.sent"]["total"] == 42.0

    def test_coordinator_only_trace(self):
        trace = {"format": "jsonl", "meta": {"label": "x", "num_workers": 0},
                 "events": [_event("pipeline.partition", dur=100.0, cat="pipeline")],
                 "metrics": {}}
        s = summarize_trace(trace)
        assert s.num_workers == 0
        assert s.straggler_ratio == 1.0
        assert s.worker_stage_seconds == []


class TestMaxMean:
    def test_empty_and_zero_are_balanced(self):
        assert _max_mean([]) == 1.0
        assert _max_mean([0.0, 0.0]) == 1.0

    def test_ratio(self):
        assert _max_mean([1.0, 3.0]) == pytest.approx(1.5)


class TestRender:
    def test_report_has_worker_table_and_ratios(self, skewed_trace):
        text = render_trace_summary(summarize_trace(skewed_trace))
        assert "trace: skew  workers=2  supersteps=1" in text
        assert "Worker" in text and "Barrier" in text
        assert "straggler ratio" in text
        assert "Coordinator span" in text
        assert "messages.sent" in text

    def test_report_without_workers_skips_worker_table(self):
        trace = {"format": "jsonl", "meta": {"label": "x"},
                 "events": [_event("pipeline.source", dur=5.0, cat="pipeline")],
                 "metrics": {}}
        text = render_trace_summary(summarize_trace(trace))
        assert "Worker" not in text
        assert "pipeline.source" in text
