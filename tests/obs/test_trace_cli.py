"""``repro run --trace`` and the ``repro trace`` summary verb."""

import json

import pytest

from repro.cli import main
from repro.graph import powerlaw_graph, write_edge_list
from repro.obs import validate_chrome_trace


@pytest.fixture
def edge_file(tmp_path):
    g = powerlaw_graph(300, eta=2.2, min_degree=2, seed=1, name="obs-cli")
    path = str(tmp_path / "g.txt")
    write_edge_list(g, path)
    return path


@pytest.fixture
def trace_file(edge_file, tmp_path, capsys):
    path = str(tmp_path / "run.trace.json")
    code = main(
        ["run", edge_file, "--app", "pr", "--workers", "2",
         "--backend", "thread", "--trace", path]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "trace written to" in out and "repro trace" in out
    return path


class TestRunTrace:
    def test_trace_file_is_valid_chrome_trace(self, trace_file):
        stats = validate_chrome_trace(trace_file)
        assert stats["num_workers"] == 2
        assert stats["num_events"] > 0

    def test_jsonl_extension_selects_jsonl(self, edge_file, tmp_path, capsys):
        path = str(tmp_path / "run.jsonl")
        assert main(
            ["run", edge_file, "--app", "cc", "--workers", "2", "--trace", path]
        ) == 0
        first = json.loads(open(path).readline())
        assert first["type"] == "header"


class TestTraceVerb:
    def test_summary_report(self, trace_file, capsys):
        assert main(["trace", trace_file]) == 0
        out = capsys.readouterr().out
        assert "workers=2" in out
        assert "straggler ratio" in out
        assert "Worker" in out and "Compute" in out

    def test_json_output(self, trace_file, capsys):
        assert main(["trace", trace_file, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["num_workers"] == 2
        assert len(doc["worker_stage_seconds"]) == 2
        assert doc["straggler_ratio"] >= 1.0

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.json")]) == 2
        assert "No such file" in capsys.readouterr().err

    def test_non_trace_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"results": [1, 2]}))
        assert main(["trace", str(bad)]) == 2
        assert capsys.readouterr().err

    def test_crashed_trace_warns_but_summarizes(self, edge_file, tmp_path, capsys):
        """A trace torn by a crash still renders partial tables, with a
        stderr warning counting what was dropped."""
        path = str(tmp_path / "run.jsonl")
        assert main(
            ["run", edge_file, "--app", "cc", "--workers", "2", "--trace", path]
        ) == 0
        capsys.readouterr()
        text = open(path).read()
        crashed = str(tmp_path / "crashed.jsonl")
        open(crashed, "w").write(text[:-40])  # tear the final record
        assert main(["trace", crashed]) == 0
        captured = capsys.readouterr()
        assert "torn record(s) dropped" in captured.err
        assert "crashed run" in captured.err
        assert "Worker" in captured.out  # the surviving spans still render
