"""Unit tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.graph import powerlaw_graph, write_edge_list


@pytest.fixture
def edge_file(tmp_path):
    g = powerlaw_graph(300, eta=2.2, min_degree=2, seed=1, name="cli")
    path = str(tmp_path / "cli.txt")
    write_edge_list(g, path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_partition_defaults(self):
        args = build_parser().parse_args(["partition", "g.txt"])
        assert args.method == "ebv"
        assert args.parts == 8

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["partition", "g.txt", "--method", "bogus"])

    def test_method_accepts_spec_kwargs(self):
        args = build_parser().parse_args(
            ["partition", "g.txt", "--method", "ebv?alpha=2,sort_order=input"]
        )
        assert args.method == "ebv?alpha=2,sort_order=input"

    def test_unknown_app_rejected_and_error_lists_new_apps(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "g.txt", "--app", "bogus"])
        err = capsys.readouterr().err
        assert "bfs" in err and "kcore" in err


class TestGenerate:
    def test_powerlaw(self, tmp_path, capsys):
        out = str(tmp_path / "g.txt")
        assert main(["generate", out, "--vertices", "200", "--seed", "3"]) == 0
        assert "wrote" in capsys.readouterr().out
        assert main(["stats", out]) == 0

    def test_road(self, tmp_path, capsys):
        out = str(tmp_path / "road.txt")
        assert main(["generate", out, "--kind", "road", "--vertices", "100"]) == 0
        assert "wrote" in capsys.readouterr().out

    def test_rmat(self, tmp_path):
        out = str(tmp_path / "rmat.txt")
        assert main(["generate", out, "--kind", "rmat", "--vertices", "256"]) == 0

    def test_er(self, tmp_path):
        out = str(tmp_path / "er.txt")
        assert main(["generate", out, "--kind", "er", "--vertices", "100"]) == 0


class TestStats:
    def test_prints_table(self, edge_file, capsys):
        assert main(["stats", edge_file]) == 0
        out = capsys.readouterr().out
        assert "AvgDeg" in out and "eta" in out


class TestPartition:
    @pytest.mark.parametrize("method", ["ebv", "dbh", "ne", "metis", "hdrf"])
    def test_methods(self, edge_file, capsys, method):
        assert main(["partition", edge_file, "--method", method, "--parts", "4"]) == 0
        assert "RF" in capsys.readouterr().out

    def test_refine_flag(self, edge_file, capsys):
        assert main(["partition", edge_file, "--refine"]) == 0
        assert "+refine" in capsys.readouterr().out

    def test_output_file(self, edge_file, tmp_path, capsys):
        out = str(tmp_path / "parts.txt")
        assert main(["partition", edge_file, "--output", out, "--parts", "4"]) == 0
        parts = np.loadtxt(out, dtype=int)
        assert parts.min() >= 0 and parts.max() < 4


class TestStreamPartition:
    def test_spills_and_prints_table(self, edge_file, tmp_path, capsys):
        spill = str(tmp_path / "spill")
        assert main([
            "stream-partition", edge_file, "--parts", "4",
            "--chunk-size", "128", "--spill-dir", spill,
        ]) == 0
        out = capsys.readouterr().out
        assert "RF" in out and "PeakRSS" in out and spill in out
        import os
        assert os.path.exists(os.path.join(spill, "manifest.json"))

    def test_matches_inmemory_partition(self, edge_file, tmp_path, capsys):
        from repro.graph import read_edge_list
        from repro.partition import StreamingEBVPartitioner
        from repro.stream import SpilledPartition

        spill = str(tmp_path / "spill")
        assert main([
            "stream-partition", edge_file,
            "--method", "ebv-stream?chunk_size=64",
            "--parts", "4", "--chunk-size", "100", "--spill-dir", spill,
        ]) == 0
        g = read_edge_list(edge_file)
        expected = StreamingEBVPartitioner(chunk_size=64).partition(g, 4)
        assert np.array_equal(
            SpilledPartition(spill).edge_parts(), expected.edge_parts
        )

    def test_json_output(self, edge_file, tmp_path, capsys):
        spill = str(tmp_path / "spill")
        assert main([
            "stream-partition", edge_file, "--parts", "2",
            "--spill-dir", spill, "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_parts"] == 2
        assert payload["spill_dir"] == spill
        assert payload["seconds"] > 0

    def test_npy_format_auto_detected(self, edge_file, tmp_path, capsys):
        from repro.graph import read_edge_list
        from repro.stream import SpilledPartition, save_edge_npy

        g = read_edge_list(edge_file)
        npy = str(tmp_path / "g.npy")
        save_edge_npy(npy, g)
        text_spill = str(tmp_path / "text-spill")
        npy_spill = str(tmp_path / "npy-spill")
        assert main([
            "stream-partition", edge_file, "--parts", "4",
            "--spill-dir", text_spill,
        ]) == 0
        assert main([
            "stream-partition", npy, "--parts", "4", "--spill-dir", npy_spill,
        ]) == 0
        assert np.array_equal(
            SpilledPartition(text_spill).edge_parts(),
            SpilledPartition(npy_spill).edge_parts(),
        )

    def test_non_streaming_method_reports_error(self, edge_file, tmp_path, capsys):
        assert main([
            "stream-partition", edge_file, "--method", "ebv",
            "--spill-dir", str(tmp_path / "s"),
        ]) == 2
        assert "does not support streaming" in capsys.readouterr().err

    def test_existing_spill_needs_overwrite(self, edge_file, tmp_path, capsys):
        spill = str(tmp_path / "spill")
        args = ["stream-partition", edge_file, "--parts", "2", "--spill-dir", spill]
        assert main(args) == 0
        assert main(args) == 2
        assert "overwrite" in capsys.readouterr().err
        assert main(args + ["--overwrite"]) == 0

    def test_missing_input_reports_error(self, tmp_path, capsys):
        assert main([
            "stream-partition", str(tmp_path / "nope.txt"),
            "--spill-dir", str(tmp_path / "s"),
        ]) == 2
        assert "error" in capsys.readouterr().err


class TestRun:
    def test_cc(self, edge_file, capsys):
        assert main(["run", edge_file, "--app", "CC", "--workers", "4"]) == 0
        out = capsys.readouterr().out
        assert "Supersteps" in out and "Messages" in out

    def test_sssp_reports_reach(self, edge_file, capsys):
        assert main(["run", edge_file, "--app", "SSSP", "--workers", "4"]) == 0
        assert "reached" in capsys.readouterr().out

    def test_pr(self, edge_file, capsys):
        assert main(["run", edge_file, "--app", "PR", "--method", "dbh"]) == 0
        assert "PR" in capsys.readouterr().out

    def test_run_reports_true_partition_method(self, edge_file, capsys):
        assert main(["run", edge_file, "--app", "CC", "--method", "dbh"]) == 0
        out = capsys.readouterr().out
        assert "DBH" in out and "?" not in out

    def test_bfs(self, edge_file, capsys):
        assert main(["run", edge_file, "--app", "BFS", "--workers", "4"]) == 0
        out = capsys.readouterr().out
        assert "BFS" in out and "reached" in out

    def test_kcore(self, edge_file, capsys):
        assert main(["run", edge_file, "--app", "kcore", "--workers", "4"]) == 0
        assert "KCORE" in capsys.readouterr().out

    def test_featprop(self, edge_file, capsys):
        assert main(
            ["run", edge_file, "--app", "featprop?hops=2,feature_dims=4"]
        ) == 0
        assert "FEATPROP" in capsys.readouterr().out

    def test_app_spec_kwargs(self, edge_file, capsys):
        assert main(["run", edge_file, "--app", "pr?pagerank_iters=3"]) == 0
        assert "PR" in capsys.readouterr().out

    def test_default_backend_is_serial(self, edge_file, capsys):
        assert main(["run", edge_file, "--app", "CC"]) == 0
        out = capsys.readouterr().out
        assert "Backend" in out and "serial" in out

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_backends(self, edge_file, capsys, backend):
        assert main(
            ["run", edge_file, "--app", "CC", "--workers", "2",
             "--backend", backend]
        ) == 0
        assert backend in capsys.readouterr().out

    def test_backend_accepts_spec_kwargs(self, edge_file, capsys):
        assert main(
            ["run", edge_file, "--app", "CC", "--workers", "2",
             "--backend", "thread?max_workers=1"]
        ) == 0
        assert "thread" in capsys.readouterr().out

    def test_unknown_backend_rejected_with_available_names(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "g.txt", "--backend", "gpu"])
        err = capsys.readouterr().err
        assert "unknown backend 'gpu'" in err
        assert "process" in err and "serial" in err and "thread" in err


class TestPipeline:
    def spec_path(self, tmp_path, payload):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_executes_full_spec(self, tmp_path, capsys):
        path = self.spec_path(
            tmp_path,
            {
                "source": "powerlaw?vertices=200,min_degree=2,seed=3",
                "partition": "ebv",
                "parts": 4,
                "refine": True,
                "app": "cc",
            },
        )
        assert main(["pipeline", path]) == 0
        out = capsys.readouterr().out
        assert "EdgeImb" in out and "Supersteps" in out and "Stage" in out

    def test_json_output_round_trips(self, tmp_path, capsys):
        path = self.spec_path(
            tmp_path,
            {"source": "powerlaw?vertices=200,min_degree=2,seed=3", "parts": 4,
             "app": "pr"},
        )
        assert main(["pipeline", path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["run"]["program"] == "PR"
        assert payload["spec"]["app"] == "pr"

    def test_spec_backend_field_reaches_the_run(self, tmp_path, capsys):
        path = self.spec_path(
            tmp_path,
            {"source": "powerlaw?vertices=200,min_degree=2,seed=3", "parts": 2,
             "app": "cc", "backend": "process"},
        )
        assert main(["pipeline", path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["run"]["backend"] == "process"
        assert payload["spec"]["backend"] == "process"
        assert payload["timings"]["run.compute"] >= 0.0

    def test_unknown_backend_in_spec_reports_error(self, tmp_path, capsys):
        path = self.spec_path(
            tmp_path,
            {"source": "powerlaw?vertices=100", "app": "cc", "backend": "gpu"},
        )
        assert main(["pipeline", path]) == 2
        err = capsys.readouterr().err
        assert "unknown backend 'gpu'" in err and "serial" in err

    def test_file_source(self, edge_file, tmp_path, capsys):
        path = self.spec_path(
            tmp_path, {"source": f"file?path={edge_file}", "parts": 4}
        )
        assert main(["pipeline", path]) == 0
        assert "EdgeImb" in capsys.readouterr().out

    def test_bad_spec_reports_error(self, tmp_path, capsys):
        path = self.spec_path(tmp_path, {"source": "bogus?vertices=10"})
        assert main(["pipeline", path]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_key_reports_error(self, tmp_path, capsys):
        path = self.spec_path(tmp_path, {"source": "powerlaw", "partitions": 2})
        assert main(["pipeline", path]) == 2
        assert "unknown pipeline spec keys" in capsys.readouterr().err

    def test_missing_file_reports_error(self, capsys):
        assert main(["pipeline", "/nonexistent/spec.json"]) == 2
        assert "cannot read spec file" in capsys.readouterr().err

    def test_missing_graph_file_reports_clean_error(self, tmp_path, capsys):
        path = self.spec_path(
            tmp_path, {"source": "file?path=/nonexistent/graph.txt", "parts": 2}
        )
        assert main(["pipeline", path]) == 2
        assert "source stage failed" in capsys.readouterr().err

    def test_refine_on_edge_cut_reports_clean_error(self, tmp_path, capsys):
        path = self.spec_path(
            tmp_path,
            {"source": "powerlaw?vertices=200,min_degree=2", "partition": "metis",
             "parts": 4, "refine": True},
        )
        assert main(["pipeline", path]) == 2
        assert "refine stage failed" in capsys.readouterr().err

    def test_bad_constructor_kwarg_reports_clean_error(self, edge_file, capsys):
        assert main(["partition", edge_file, "--method", "ebv?bogus=1"]) == 2
        assert "partition stage failed" in capsys.readouterr().err


class TestDeprecationShims:
    def test_partitioners_view_warns_and_works(self):
        import repro.cli as cli

        with pytest.warns(DeprecationWarning, match="PARTITIONERS"):
            view = cli.PARTITIONERS
        assert "ebv" in view
        assert callable(view["ebv"])
        assert sorted(view)  # iterable like the old dict

    def test_experiments_view_warns_and_works(self):
        import repro.cli as cli

        with pytest.warns(DeprecationWarning, match="EXPERIMENTS"):
            view = cli.EXPERIMENTS
        assert "table1" in view and "all" in view

    def test_unknown_attribute_still_raises(self):
        import repro.cli as cli

        with pytest.raises(AttributeError):
            cli.NOT_A_THING


class TestExperiment:
    def test_table1(self, capsys):
        assert main(["experiment", "table1", "--scale", "0.1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_fig5(self, capsys):
        assert main(["experiment", "fig5", "--scale", "0.1"]) == 0
        assert "Figure 5" in capsys.readouterr().out

    def test_unknown_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "table99"])
