"""Unit tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.graph import powerlaw_graph, write_edge_list


@pytest.fixture
def edge_file(tmp_path):
    g = powerlaw_graph(300, eta=2.2, min_degree=2, seed=1, name="cli")
    path = str(tmp_path / "cli.txt")
    write_edge_list(g, path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_partition_defaults(self):
        args = build_parser().parse_args(["partition", "g.txt"])
        assert args.method == "ebv"
        assert args.parts == 8

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["partition", "g.txt", "--method", "bogus"])


class TestGenerate:
    def test_powerlaw(self, tmp_path, capsys):
        out = str(tmp_path / "g.txt")
        assert main(["generate", out, "--vertices", "200", "--seed", "3"]) == 0
        assert "wrote" in capsys.readouterr().out
        assert main(["stats", out]) == 0

    def test_road(self, tmp_path, capsys):
        out = str(tmp_path / "road.txt")
        assert main(["generate", out, "--kind", "road", "--vertices", "100"]) == 0
        assert "wrote" in capsys.readouterr().out

    def test_rmat(self, tmp_path):
        out = str(tmp_path / "rmat.txt")
        assert main(["generate", out, "--kind", "rmat", "--vertices", "256"]) == 0

    def test_er(self, tmp_path):
        out = str(tmp_path / "er.txt")
        assert main(["generate", out, "--kind", "er", "--vertices", "100"]) == 0


class TestStats:
    def test_prints_table(self, edge_file, capsys):
        assert main(["stats", edge_file]) == 0
        out = capsys.readouterr().out
        assert "AvgDeg" in out and "eta" in out


class TestPartition:
    @pytest.mark.parametrize("method", ["ebv", "dbh", "ne", "metis", "hdrf"])
    def test_methods(self, edge_file, capsys, method):
        assert main(["partition", edge_file, "--method", method, "--parts", "4"]) == 0
        assert "RF" in capsys.readouterr().out

    def test_refine_flag(self, edge_file, capsys):
        assert main(["partition", edge_file, "--refine"]) == 0
        assert "+refine" in capsys.readouterr().out

    def test_output_file(self, edge_file, tmp_path, capsys):
        out = str(tmp_path / "parts.txt")
        assert main(["partition", edge_file, "--output", out, "--parts", "4"]) == 0
        parts = np.loadtxt(out, dtype=int)
        assert parts.min() >= 0 and parts.max() < 4


class TestRun:
    def test_cc(self, edge_file, capsys):
        assert main(["run", edge_file, "--app", "CC", "--workers", "4"]) == 0
        out = capsys.readouterr().out
        assert "Supersteps" in out and "Messages" in out

    def test_sssp_reports_reach(self, edge_file, capsys):
        assert main(["run", edge_file, "--app", "SSSP", "--workers", "4"]) == 0
        assert "reached" in capsys.readouterr().out

    def test_pr(self, edge_file, capsys):
        assert main(["run", edge_file, "--app", "PR", "--method", "dbh"]) == 0
        assert "PR" in capsys.readouterr().out


class TestExperiment:
    def test_table1(self, capsys):
        assert main(["experiment", "table1", "--scale", "0.1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_fig5(self, capsys):
        assert main(["experiment", "fig5", "--scale", "0.1"]) == 0
        assert "Figure 5" in capsys.readouterr().out

    def test_unknown_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "table99"])
