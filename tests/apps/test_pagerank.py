"""PageRank validated against the sequential reference and networkx."""

import numpy as np
import pytest

from repro.apps import PageRank, pagerank_reference
from repro.bsp import BSPEngine, build_distributed_graph
from repro.graph import Graph
from repro.partition import (
    CVCPartitioner,
    DBHPartitioner,
    EBVPartitioner,
    GingerPartitioner,
    MetisLikePartitioner,
    NEPartitioner,
)

ALL = [
    EBVPartitioner,
    GingerPartitioner,
    DBHPartitioner,
    CVCPartitioner,
    NEPartitioner,
    MetisLikePartitioner,
]


@pytest.mark.parametrize("cls", ALL)
def test_pagerank_matches_reference(cls, small_directed_powerlaw):
    g = small_directed_powerlaw
    ref = pagerank_reference(g, max_iters=15)
    dg = build_distributed_graph(cls().partition(g, 4))
    run = BSPEngine().run(dg, PageRank(g.num_vertices, max_iters=15))
    assert np.allclose(run.values, ref, atol=1e-12)


def test_pagerank_matches_networkx_on_undirected(small_powerlaw):
    # An undirected-doubled graph with no isolated vertices has no
    # dangling nodes, so networkx's dangling redistribution is a no-op
    # and the two formulations coincide.  Compact away isolated
    # vertices first.
    networkx = pytest.importorskip("networkx")
    g0 = small_powerlaw
    covered = np.unique(np.concatenate([g0.src, g0.dst]))
    remap = np.full(g0.num_vertices, -1, dtype=np.int64)
    remap[covered] = np.arange(covered.size)
    g = Graph(
        covered.size, remap[g0.src], remap[g0.dst], directed=False, name="compact"
    )
    G = networkx.DiGraph(list(zip(g.src.tolist(), g.dst.tolist())))
    nx_pr = networkx.pagerank(G, alpha=0.85, max_iter=500, tol=1e-13)
    dg = build_distributed_graph(EBVPartitioner().partition(g, 4))
    run = BSPEngine().run(
        dg, PageRank(g.num_vertices, max_iters=500, tol=1e-13)
    )
    for v in range(g.num_vertices):
        assert run.values[v] == pytest.approx(nx_pr[v], rel=1e-5)


def test_pagerank_sums_to_at_most_one(small_directed_powerlaw):
    g = small_directed_powerlaw
    dg = build_distributed_graph(EBVPartitioner().partition(g, 4))
    run = BSPEngine().run(dg, PageRank(g.num_vertices, max_iters=20))
    total = run.values.sum()
    assert 0.2 < total <= 1.0 + 1e-9  # dangling mass leaks, never grows


def test_pagerank_iteration_cap():
    g = Graph.from_undirected_edges([(0, 1), (1, 2)], num_vertices=3)
    dg = build_distributed_graph(EBVPartitioner().partition(g, 2))
    run = BSPEngine().run(dg, PageRank(3, max_iters=5, tol=0.0))
    assert run.num_supersteps == 5


def test_pagerank_tol_stops_early():
    g = Graph.from_undirected_edges([(0, 1), (1, 2)], num_vertices=3)
    dg = build_distributed_graph(EBVPartitioner().partition(g, 2))
    run = BSPEngine().run(dg, PageRank(3, max_iters=500, tol=1e-6))
    assert run.num_supersteps < 500


def test_pagerank_uniform_on_cycle():
    # Symmetric cycle: stationary distribution is uniform.
    n = 8
    g = Graph.from_edges([(i, (i + 1) % n) for i in range(n)], num_vertices=n)
    dg = build_distributed_graph(EBVPartitioner().partition(g, 2))
    run = BSPEngine().run(dg, PageRank(n, max_iters=200, tol=1e-14))
    assert np.allclose(run.values, 1.0 / n, atol=1e-10)


def test_pagerank_validates_damping():
    with pytest.raises(ValueError):
        PageRank(10, damping=1.5)
    with pytest.raises(ValueError):
        PageRank(10, damping=0.0)


def test_pagerank_messages_every_superstep(small_directed_powerlaw):
    g = small_directed_powerlaw
    dg = build_distributed_graph(DBHPartitioner().partition(g, 4))
    run = BSPEngine().run(dg, PageRank(g.num_vertices, max_iters=5, tol=0.0))
    # Unlike CC, PR communicates continuously: every superstep sends.
    assert all(s.sent.sum() > 0 for s in run.supersteps)


def test_reference_deterministic(small_directed_powerlaw):
    a = pagerank_reference(small_directed_powerlaw, max_iters=10)
    b = pagerank_reference(small_directed_powerlaw, max_iters=10)
    assert np.array_equal(a, b)
