"""Property-based end-to-end check: distributed == sequential, always.

For random graphs and random (valid) partitions, the BSP engine must
produce exactly the sequential reference results.  This is the single
strongest invariant in the system — it exercises partition derivation,
distributed construction, replica routing, the engine's two sync
phases, and each application's local algorithm at once.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.apps import (
    ConnectedComponents,
    PageRank,
    SSSP,
    cc_reference,
    pagerank_reference,
    sssp_reference,
)
from repro.bsp import BSPEngine, build_distributed_graph
from repro.graph import Graph
from repro.partition import PartitionResult


@st.composite
def graph_and_partition(draw):
    n = draw(st.integers(2, 14))
    m = draw(st.integers(1, 40))
    edges = [
        (draw(st.integers(0, n - 1)), draw(st.integers(0, n - 1)))
        for _ in range(m)
    ]
    g = Graph.from_edges(edges, num_vertices=n)
    p = draw(st.integers(1, 4))
    parts = np.array([draw(st.integers(0, p - 1)) for _ in range(m)])
    return g, PartitionResult(g, p, edge_parts=parts, method="random")


@given(gp=graph_and_partition())
@settings(max_examples=40, deadline=None)
def test_cc_equals_reference_on_random_partitions(gp):
    g, result = gp
    run = BSPEngine().run(build_distributed_graph(result), ConnectedComponents())
    assert np.array_equal(run.values, cc_reference(g))


@given(gp=graph_and_partition(), source=st.integers(0, 13))
@settings(max_examples=40, deadline=None)
def test_sssp_equals_reference_on_random_partitions(gp, source):
    g, result = gp
    source = source % g.num_vertices
    run = BSPEngine().run(build_distributed_graph(result), SSSP(source))
    ref = sssp_reference(g.with_unit_weights(), source)
    assert np.allclose(run.values, ref)


@given(gp=graph_and_partition())
@settings(max_examples=30, deadline=None)
def test_pagerank_equals_reference_on_random_partitions(gp):
    g, result = gp
    run = BSPEngine().run(
        build_distributed_graph(result), PageRank(g.num_vertices, max_iters=8)
    )
    ref = pagerank_reference(g, max_iters=8)
    assert np.allclose(run.values, ref, atol=1e-12)


@given(gp=graph_and_partition())
@settings(max_examples=30, deadline=None)
def test_message_conservation(gp):
    _, result = gp
    run = BSPEngine().run(build_distributed_graph(result), ConnectedComponents())
    for s in run.supersteps:
        assert int(s.sent.sum()) == int(s.received.sum())
        assert np.all(s.sent >= 0) and np.all(s.received >= 0)
