"""Unit tests for the extension apps: k-core and GNN feature propagation."""

import numpy as np
import pytest

from repro.apps import (
    FeaturePropagation,
    KCore,
    feature_propagation_reference,
    kcore_reference,
)
from repro.bsp import BSPEngine, build_distributed_graph
from repro.graph import Graph, powerlaw_graph
from repro.partition import DBHPartitioner, EBVPartitioner, MetisLikePartitioner


class TestKCoreReference:
    def test_triangle_is_2core(self, two_triangles):
        # Doubled representation: each triangle vertex has degree 4.
        alive = kcore_reference(two_triangles, 4)
        assert alive.tolist() == [1.0] * 6
        dead = kcore_reference(two_triangles, 5)
        assert dead.tolist() == [0.0] * 6

    def test_path_has_no_2core(self, path_graph):
        # Directed path: interior degree 2, cascading removal kills all.
        assert kcore_reference(path_graph, 2).sum() == 0

    def test_isolated_die_at_k1(self):
        g = Graph.from_edges([(0, 1), (1, 0)], num_vertices=3)
        alive = kcore_reference(g, 1)
        assert alive.tolist() == [1.0, 1.0, 0.0]


class TestKCoreDistributed:
    @pytest.mark.parametrize("cls", [EBVPartitioner, DBHPartitioner, MetisLikePartitioner])
    @pytest.mark.parametrize("k", [2, 4, 6])
    def test_matches_reference(self, cls, k, small_powerlaw):
        ref = kcore_reference(small_powerlaw, k)
        dg = build_distributed_graph(cls().partition(small_powerlaw, 4))
        run = BSPEngine().run(dg, KCore(k))
        assert np.array_equal(run.values, ref), (cls.__name__, k)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KCore(0)

    def test_k1_keeps_non_isolated(self, tiny_graph):
        dg = build_distributed_graph(EBVPartitioner().partition(tiny_graph, 2))
        run = BSPEngine().run(dg, KCore(1))
        # Vertices 0-4 have edges; vertex 5 is isolated and dies at k=1.
        assert run.values.tolist() == [1.0, 1.0, 1.0, 1.0, 1.0, 0.0]
        assert np.array_equal(run.values, kcore_reference(tiny_graph, 1))


class TestFeaturePropagation:
    def _features(self, n, d=3, seed=0):
        return np.random.default_rng(seed).normal(size=(n, d))

    @pytest.mark.parametrize("cls", [EBVPartitioner, DBHPartitioner, MetisLikePartitioner])
    def test_matches_reference(self, cls, small_powerlaw):
        g = small_powerlaw
        x = self._features(g.num_vertices)
        ref = feature_propagation_reference(g, x, hops=3, mix=0.5)
        dg = build_distributed_graph(cls().partition(g, 4))
        run = BSPEngine().run(dg, FeaturePropagation(x, hops=3, mix=0.5))
        assert np.allclose(run.values, ref, atol=1e-10)

    def test_hops_equal_supersteps(self, small_powerlaw):
        g = small_powerlaw
        x = self._features(g.num_vertices)
        dg = build_distributed_graph(EBVPartitioner().partition(g, 4))
        run = BSPEngine().run(dg, FeaturePropagation(x, hops=4))
        assert run.num_supersteps == 4

    def test_pure_mean_on_regular_cycle(self):
        # Symmetric cycle with mix=1: features converge toward the
        # neighbor average; a constant vector is a fixed point.
        n = 6
        g = Graph.from_undirected_edges(
            [(i, (i + 1) % n) for i in range(n)], num_vertices=n
        )
        x = np.ones((n, 2)) * 7.0
        dg = build_distributed_graph(EBVPartitioner().partition(g, 2))
        run = BSPEngine().run(dg, FeaturePropagation(x, hops=3, mix=1.0))
        assert np.allclose(run.values, 7.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FeaturePropagation(np.zeros(5), hops=1)  # 1-D features
        with pytest.raises(ValueError):
            FeaturePropagation(np.zeros((5, 2)), hops=0)
        with pytest.raises(ValueError):
            FeaturePropagation(np.zeros((5, 2)), mix=0.0)

    def test_messages_scale_with_replication(self):
        g = powerlaw_graph(800, eta=2.0, min_degree=3, seed=8)
        x = self._features(g.num_vertices, d=4, seed=1)
        runs = {}
        for cls in (EBVPartitioner, DBHPartitioner):
            dg = build_distributed_graph(cls().partition(g, 8))
            runs[cls.__name__] = BSPEngine().run(dg, FeaturePropagation(x, hops=3))
        # EBV's lower replication factor translates into fewer GNN
        # aggregation messages — the paper's proposed GNN application.
        assert (
            runs["EBVPartitioner"].total_messages
            < runs["DBHPartitioner"].total_messages
        )
