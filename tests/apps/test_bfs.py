"""BFS (extension app) validated against the hop-count reference."""

import numpy as np
import pytest

from repro.apps import BFS, bfs_reference, default_source
from repro.bsp import BSPEngine, build_distributed_graph
from repro.graph import Graph
from repro.partition import DBHPartitioner, EBVPartitioner


def test_bfs_matches_reference(small_powerlaw):
    src = default_source(small_powerlaw)
    ref = bfs_reference(small_powerlaw, src)
    dg = build_distributed_graph(EBVPartitioner().partition(small_powerlaw, 4))
    run = BSPEngine().run(dg, BFS(src))
    assert np.allclose(run.values, ref)


def test_bfs_ignores_weights(small_road):
    # The road graph has non-unit weights; BFS must count hops instead.
    src = default_source(small_road)
    ref = bfs_reference(small_road, src)
    dg = build_distributed_graph(DBHPartitioner().partition(small_road, 4))
    run = BSPEngine().run(dg, BFS(src))
    assert np.allclose(run.values, ref)


def test_bfs_levels_on_path(path_graph):
    dg = build_distributed_graph(EBVPartitioner().partition(path_graph, 2))
    run = BSPEngine().run(dg, BFS(0))
    assert run.values.tolist() == list(range(10))


def test_bfs_vertex_centric_mode(path_graph):
    dg = build_distributed_graph(EBVPartitioner().partition(path_graph, 2))
    run = BSPEngine(max_supersteps=1000).run(dg, BFS(0, local_convergence=False))
    assert run.values.tolist() == list(range(10))


def test_bfs_unreachable():
    g = Graph.from_edges([(0, 1), (2, 3)], num_vertices=4)
    dg = build_distributed_graph(EBVPartitioner().partition(g, 2))
    run = BSPEngine().run(dg, BFS(0))
    assert run.values[1] == 1.0
    assert np.isinf(run.values[2]) and np.isinf(run.values[3])
