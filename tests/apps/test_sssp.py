"""SSSP validated against Dijkstra on every partitioner, both modes."""

import numpy as np
import pytest

from repro.apps import SSSP, default_source, sssp_reference
from repro.bsp import BSPEngine, build_distributed_graph
from repro.graph import Graph
from repro.partition import (
    CVCPartitioner,
    DBHPartitioner,
    EBVPartitioner,
    GingerPartitioner,
    MetisLikePartitioner,
    NEPartitioner,
)

ALL = [
    EBVPartitioner,
    GingerPartitioner,
    DBHPartitioner,
    CVCPartitioner,
    NEPartitioner,
    MetisLikePartitioner,
]


@pytest.mark.parametrize("cls", ALL)
def test_sssp_weighted_road(cls, small_road):
    src = default_source(small_road)
    ref = sssp_reference(small_road, src)
    dg = build_distributed_graph(cls().partition(small_road, 4))
    run = BSPEngine().run(dg, SSSP(src))
    assert np.allclose(run.values, ref)


@pytest.mark.parametrize("cls", [EBVPartitioner, DBHPartitioner, MetisLikePartitioner])
def test_sssp_unit_weights_powerlaw(cls, small_powerlaw):
    src = default_source(small_powerlaw)
    ref = sssp_reference(small_powerlaw.with_unit_weights(), src)
    dg = build_distributed_graph(cls().partition(small_powerlaw, 4))
    run = BSPEngine().run(dg, SSSP(src))
    assert np.allclose(run.values, ref)


def test_sssp_vertex_centric_mode(small_road):
    src = default_source(small_road)
    ref = sssp_reference(small_road, src)
    dg = build_distributed_graph(EBVPartitioner().partition(small_road, 4))
    run = BSPEngine(max_supersteps=20000).run(
        dg, SSSP(src, local_convergence=False)
    )
    assert np.allclose(run.values, ref)


def test_sssp_unreachable_is_inf(path_graph):
    # Directed path: nothing reaches vertex 0 except itself.
    dg = build_distributed_graph(EBVPartitioner().partition(path_graph, 2))
    run = BSPEngine().run(dg, SSSP(5))
    assert run.values[5] == 0.0
    assert np.isinf(run.values[0])
    assert run.values[9] == pytest.approx(4.0)


def test_sssp_respects_direction():
    g = Graph.from_edges([(0, 1), (2, 1)], num_vertices=3)
    dg = build_distributed_graph(EBVPartitioner().partition(g, 2))
    run = BSPEngine().run(dg, SSSP(0))
    assert run.values[1] == pytest.approx(1.0)
    assert np.isinf(run.values[2])


def test_sssp_weighted_respects_weights():
    g = Graph(3, [0, 0, 1], [1, 2, 2], weights=[5.0, 1.0, 1.0])
    dg = build_distributed_graph(EBVPartitioner().partition(g, 1))
    run = BSPEngine().run(dg, SSSP(0))
    assert run.values.tolist() == [0.0, 5.0, 1.0]


def test_default_source_is_max_degree(small_powerlaw):
    src = default_source(small_powerlaw)
    deg = small_powerlaw.degrees()
    assert deg[src] == deg.max()


def test_sssp_source_only_active_initially(small_road):
    src = default_source(small_road)
    dg = build_distributed_graph(EBVPartitioner().partition(small_road, 4))
    prog = SSSP(src)
    for local in dg.locals:
        active = prog.initial_active(local)
        hosted = (local.global_ids == src)
        assert np.array_equal(active, hosted)


def test_sssp_reference_against_networkx(small_road):
    networkx = pytest.importorskip("networkx")
    G = networkx.DiGraph()
    for (u, v), w in zip(small_road.edges(), small_road.weights):
        G.add_edge(u, v, weight=w)
    src = default_source(small_road)
    nx_dist = networkx.single_source_dijkstra_path_length(G, src)
    ref = sssp_reference(small_road, src)
    for v, d in nx_dist.items():
        assert ref[v] == pytest.approx(d)
