"""CC validated against the sequential reference on every partitioner."""

import numpy as np
import pytest

from repro.apps import ConnectedComponents, cc_reference
from repro.bsp import BSPEngine, build_distributed_graph
from repro.graph import Graph
from repro.partition import (
    CVCPartitioner,
    DBHPartitioner,
    EBVPartitioner,
    GingerPartitioner,
    MetisLikePartitioner,
    NEPartitioner,
)

ALL = [
    EBVPartitioner,
    GingerPartitioner,
    DBHPartitioner,
    CVCPartitioner,
    NEPartitioner,
    MetisLikePartitioner,
]


@pytest.mark.parametrize("cls", ALL)
def test_cc_matches_reference_powerlaw(cls, small_powerlaw):
    ref = cc_reference(small_powerlaw)
    dg = build_distributed_graph(cls().partition(small_powerlaw, 4))
    run = BSPEngine().run(dg, ConnectedComponents())
    assert np.array_equal(run.values, ref)


@pytest.mark.parametrize("cls", ALL)
def test_cc_matches_reference_road(cls, small_road):
    ref = cc_reference(small_road)
    dg = build_distributed_graph(cls().partition(small_road, 6))
    run = BSPEngine().run(dg, ConnectedComponents())
    assert np.array_equal(run.values, ref)


def test_cc_vertex_centric_mode(small_powerlaw):
    ref = cc_reference(small_powerlaw)
    dg = build_distributed_graph(EBVPartitioner().partition(small_powerlaw, 4))
    run = BSPEngine(max_supersteps=5000).run(
        dg, ConnectedComponents(local_convergence=False)
    )
    assert np.array_equal(run.values, ref)


def test_vertex_centric_needs_more_supersteps(small_road):
    dg = build_distributed_graph(EBVPartitioner().partition(small_road, 4))
    sub = BSPEngine(max_supersteps=5000).run(dg, ConnectedComponents())
    vc = BSPEngine(max_supersteps=5000).run(
        dg, ConnectedComponents(local_convergence=False)
    )
    assert vc.num_supersteps > sub.num_supersteps


def test_cc_two_components(two_triangles):
    dg = build_distributed_graph(EBVPartitioner().partition(two_triangles, 2))
    run = BSPEngine().run(dg, ConnectedComponents())
    assert run.values.tolist() == [0, 0, 0, 3, 3, 3]


def test_cc_isolated_vertices():
    g = Graph.from_edges([(0, 1)], num_vertices=5)
    dg = build_distributed_graph(EBVPartitioner().partition(g, 2))
    run = BSPEngine().run(dg, ConnectedComponents())
    assert run.values.tolist() == [0, 0, 2, 3, 4]


def test_cc_directed_uses_weak_connectivity(path_graph):
    dg = build_distributed_graph(EBVPartitioner().partition(path_graph, 3))
    run = BSPEngine().run(dg, ConnectedComponents())
    assert np.all(run.values == 0)


def test_cc_work_is_incremental_after_first_superstep(small_powerlaw):
    dg = build_distributed_graph(EBVPartitioner().partition(small_powerlaw, 4))
    run = BSPEngine().run(dg, ConnectedComponents())
    if run.num_supersteps > 1:
        first = float(run.supersteps[0].work.sum())
        later = float(run.supersteps[1].work.sum())
        assert later < first


def test_cc_reference_itself(two_triangles):
    labels = cc_reference(two_triangles)
    assert labels.tolist() == [0, 0, 0, 3, 3, 3]
