"""Unit tests for the static communication analysis."""

import numpy as np
import pytest

from repro.analysis import (
    per_worker_sync_messages,
    quotient_graph,
    replica_sync_volume,
)
from repro.apps import PageRank
from repro.bsp import BSPEngine, build_distributed_graph
from repro.graph import Graph
from repro.partition import (
    DBHPartitioner,
    EBVPartitioner,
    NEPartitioner,
    PartitionResult,
    replication_factor,
)


@pytest.fixture
def square_partition():
    g = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)], num_vertices=4)
    return PartitionResult(g, 2, edge_parts=np.array([0, 0, 1, 1]))


class TestSyncVolume:
    def test_hand_computed(self, square_partition):
        # Vertices 0 and 2 have 2 replicas each: 2 * (2-1) * 2 = 4.
        assert replica_sync_volume(square_partition) == 4

    def test_zero_without_replication(self):
        g = Graph.from_edges([(0, 1), (2, 3)], num_vertices=4)
        r = PartitionResult(g, 2, edge_parts=np.array([0, 1]))
        assert replica_sync_volume(r) == 0

    def test_tracks_replication_factor(self, small_powerlaw):
        ebv = EBVPartitioner().partition(small_powerlaw, 8)
        dbh = DBHPartitioner().partition(small_powerlaw, 8)
        assert replication_factor(ebv) < replication_factor(dbh)
        assert replica_sync_volume(ebv) < replica_sync_volume(dbh)

    def test_matches_pagerank_superstep_messages(self, small_powerlaw):
        """A PR superstep sends at most one full sync's worth of messages."""
        result = EBVPartitioner().partition(small_powerlaw, 4)
        run = BSPEngine().run(
            build_distributed_graph(result),
            PageRank(small_powerlaw.num_vertices, max_iters=3, tol=0.0),
        )
        bound = replica_sync_volume(result)
        for s in run.supersteps:
            assert int(s.sent.sum()) <= bound


class TestPerWorkerMessages:
    def test_sums_to_volume(self, square_partition):
        per_worker = per_worker_sync_messages(square_partition)
        assert int(per_worker.sum()) == replica_sync_volume(square_partition)

    def test_ne_more_skewed_than_ebv(self, small_powerlaw):
        ebv = per_worker_sync_messages(EBVPartitioner().partition(small_powerlaw, 8))
        ne = per_worker_sync_messages(NEPartitioner().partition(small_powerlaw, 8))

        def max_mean(x):
            return x.max() / max(x.mean(), 1e-9)

        assert max_mean(ne) > max_mean(ebv)


class TestQuotientGraph:
    def test_hand_computed(self, square_partition):
        q = quotient_graph(square_partition)
        assert q.shape == (2, 2)
        assert q[0, 1] == 2 and q[1, 0] == 2  # vertices 0 and 2 shared
        assert q[0, 0] == 0 and q[1, 1] == 0

    def test_symmetric(self, small_powerlaw):
        q = quotient_graph(DBHPartitioner().partition(small_powerlaw, 8))
        assert np.array_equal(q, q.T)
        assert np.all(np.diag(q) == 0)

    def test_total_pairs_consistent(self, small_powerlaw):
        result = EBVPartitioner().partition(small_powerlaw, 4)
        q = quotient_graph(result)
        expected = sum(
            len(parts) * (len(parts) - 1) // 2 for parts in result.replica_map()
        )
        assert int(q.sum()) // 2 == expected
