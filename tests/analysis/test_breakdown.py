"""Unit tests for breakdown rows and the Figure 4 timeline renderer."""

import numpy as np
import pytest

from repro.analysis import breakdown_row, render_breakdown_table, render_timeline
from repro.apps import ConnectedComponents
from repro.bsp import BSPEngine, BSPRun, SuperstepStats, build_distributed_graph
from repro.partition import EBVPartitioner


@pytest.fixture
def sample_run(small_powerlaw):
    dg = build_distributed_graph(EBVPartitioner().partition(small_powerlaw, 4))
    run = BSPEngine().run(dg, ConnectedComponents())
    run.partition_method = "EBV"
    return run


def test_breakdown_row_fields(sample_run):
    row = breakdown_row(sample_run)
    assert row.method == "EBV"
    assert row.comp == pytest.approx(sample_run.comp)
    assert row.comm == pytest.approx(sample_run.comm)
    assert row.delta_c == pytest.approx(sample_run.delta_c)
    assert row.execution_time == pytest.approx(sample_run.execution_time)


def test_breakdown_invariants(sample_run):
    row = breakdown_row(sample_run)
    # Average busy time can never exceed the barrier-paced wall time;
    # wall time can never exceed busy + accumulated spread.
    assert row.comp + row.comm <= row.execution_time + 1e-12
    assert row.execution_time <= row.comp + row.comm + row.delta_c + 1e-12


def test_render_breakdown_table(sample_run):
    text = render_breakdown_table([breakdown_row(sample_run)], title="T")
    assert text.splitlines()[0] == "T"
    assert "EBV" in text


def test_render_timeline_structure(sample_run):
    text = render_timeline(sample_run, width=40)
    lines = text.splitlines()
    assert len(lines) == 1 + sample_run.num_workers
    for lane in lines[1:]:
        assert lane.rstrip().endswith("|")


def test_render_timeline_empty_run():
    run = BSPRun(program="CC", partition_method="X", graph_name="g", num_workers=2)
    assert "empty" in render_timeline(run)


def test_timeline_glyph_budget(sample_run):
    # Each worker lane is capped at the requested width.
    text = render_timeline(sample_run, width=30)
    for lane in text.splitlines()[1:]:
        body = lane.split(": ", 1)[1].rstrip("|")
        assert len(body) <= 31
