"""Unit tests for the message statistics used by Tables IV and V."""

import pytest

from repro.analysis import (
    message_stats,
    render_max_mean_table,
    render_message_table,
)
from repro.apps import ConnectedComponents
from repro.bsp import BSPEngine, build_distributed_graph
from repro.partition import DBHPartitioner, partition_metrics


@pytest.fixture
def run_and_metrics(small_powerlaw):
    result = DBHPartitioner().partition(small_powerlaw, 4)
    run = BSPEngine().run(build_distributed_graph(result), ConnectedComponents())
    run.partition_method = "DBH"
    return run, partition_metrics(result)


def test_stats_extraction(run_and_metrics):
    run, metrics = run_and_metrics
    s = message_stats(run, replication_factor=metrics.replication)
    assert s.method == "DBH"
    assert s.total_messages == run.total_messages
    assert s.max_mean_ratio == pytest.approx(run.message_max_mean_ratio)
    assert s.replication_factor == metrics.replication


def test_render_message_table(run_and_metrics):
    run, metrics = run_and_metrics
    s = message_stats(run, replication_factor=metrics.replication)
    text = render_message_table([s], title="Table IV")
    assert "Table IV" in text
    assert f"({metrics.replication:.2f})" in text


def test_render_message_table_without_rf(run_and_metrics):
    run, _ = run_and_metrics
    text = render_message_table([message_stats(run)])
    assert "(" not in text.splitlines()[-1]


def test_render_max_mean_table(run_and_metrics):
    run, metrics = run_and_metrics
    s = message_stats(
        run,
        edge_imbalance=metrics.edge_imbalance,
        vertex_imbalance=metrics.vertex_imbalance,
    )
    text = render_max_mean_table([s], title="Table V")
    assert "Table V" in text
    assert "/" in text.splitlines()[-1]
