"""Unit tests for the table renderer."""

from repro.analysis import format_sci, render_table


def test_basic_alignment():
    text = render_table(["A", "Bee"], [(1, 2.5), (33, 4.125)])
    lines = text.splitlines()
    assert lines[0].startswith("A")
    assert set(lines[1]) == {"-"}
    assert "33" in lines[3]


def test_title_prepended():
    text = render_table(["X"], [(1,)], title="My Table")
    assert text.splitlines()[0] == "My Table"


def test_float_format_applied():
    text = render_table(["X"], [(3.14159,)], float_fmt="{:.1f}")
    assert "3.1" in text
    assert "3.14" not in text


def test_string_cells_passthrough():
    text = render_table(["X"], [("hello",)])
    assert "hello" in text


def test_empty_rows():
    text = render_table(["A", "B"], [])
    assert "A" in text


def test_format_sci():
    assert format_sci(40500000.0) == "4.05e+07"
    assert format_sci(0.5) == "5.00e-01"
