"""Unit tests for the ASCII chart renderer."""

import numpy as np
import pytest

from repro.analysis import ascii_curve, ascii_multi_curve


class TestAsciiCurve:
    def test_shape(self):
        text = ascii_curve([0, 1, 2], [1, 2, 3], width=20, height=5)
        lines = text.splitlines()
        assert len(lines) >= 6  # 5 rows + separator + axis line
        assert all(len(l) <= 20 for l in lines[:5])

    def test_monotone_series_fills_corners(self):
        text = ascii_curve([0, 10], [0, 10], width=20, height=5)
        rows = text.splitlines()[:5]
        assert rows[-1][0] == "*"  # low-left
        assert rows[0][-1] == "*"  # top-right

    def test_flat_series_single_row(self):
        text = ascii_curve([0, 1], [5, 5], width=10, height=4)
        rows = text.splitlines()[:4]
        star_rows = [i for i, r in enumerate(rows) if "*" in r]
        assert len(star_rows) == 1


class TestMultiCurve:
    def test_legend_and_glyphs(self):
        text = ascii_multi_curve(
            {"a": ([0, 1], [0, 1]), "b": ([0, 1], [1, 0])}, width=16, height=6
        )
        assert "*=a" in text and "o=b" in text
        assert "*" in text and "o" in text

    def test_log_scale(self):
        text = ascii_multi_curve(
            {"t": ([1, 2, 3], [1, 100, 10000])}, logy=True, width=16, height=6
        )
        assert "log10(y)" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_multi_curve({})

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ascii_multi_curve({"x": ([1, 2], [1])})

    def test_numpy_inputs(self):
        text = ascii_curve(np.arange(5), np.arange(5) ** 2)
        assert "*" in text
