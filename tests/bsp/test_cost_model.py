"""Unit tests for the cost model arithmetic."""

import pytest

from repro.bsp import CostModel


class TestCostModel:
    def test_defaults_sane(self):
        cm = CostModel()
        assert cm.seconds_per_work_unit > 0
        assert cm.seconds_per_message > 0
        assert cm.superstep_overhead > 0
        # Work units cost more than individual messages (edges dominate).
        assert cm.seconds_per_work_unit > cm.seconds_per_message

    def test_comp_seconds(self):
        cm = CostModel(seconds_per_work_unit=2.0)
        assert cm.comp_seconds(5) == pytest.approx(10.0)

    def test_comm_seconds(self):
        cm = CostModel(seconds_per_message=0.5)
        assert cm.comm_seconds(sent=3, received=4) == pytest.approx(3.5)

    def test_frozen(self):
        cm = CostModel()
        with pytest.raises(Exception):
            cm.seconds_per_message = 1.0

    def test_zero_work(self):
        assert CostModel().comp_seconds(0) == 0.0
