"""Equivalence: vectorized distributed-graph build vs. the legacy loop build.

The vectorized :func:`build_distributed_graph` must produce *byte
identical* local subgraphs and replica routes to the original
per-vertex Python implementation, across both partition families
(vertex-cut and edge-cut) and every generator kind, including graphs
with isolated vertices and edge weights.
"""

import numpy as np
import pytest

from repro.bsp.distributed import (
    build_distributed_graph,
    build_distributed_graph_legacy,
)
from repro.graph import Graph, generate_graph
from repro.partition import (
    DBHPartitioner,
    EBVPartitioner,
    MetisLikePartitioner,
    PartitionResult,
)
from repro.partition.fennel import FennelPartitioner


def assert_builds_identical(result: PartitionResult) -> None:
    new = build_distributed_graph(result)
    old = build_distributed_graph_legacy(result)

    assert new.num_workers == old.num_workers
    assert new.partition_method == old.partition_method
    for ln, lo in zip(new.locals, old.locals):
        assert ln.worker_id == lo.worker_id
        assert np.array_equal(ln.global_ids, lo.global_ids)
        assert ln.global_ids.dtype == lo.global_ids.dtype
        assert np.array_equal(ln.src, lo.src)
        assert np.array_equal(ln.dst, lo.dst)
        assert ln.src.dtype == lo.src.dtype
        if lo.weights is None:
            assert ln.weights is None
        else:
            assert np.array_equal(ln.weights, lo.weights)
        assert np.array_equal(ln.is_master, lo.is_master)
        assert np.array_equal(ln.master_worker, lo.master_worker)
        assert np.array_equal(ln.global_out_degree, lo.global_out_degree)

    assert set(new.up_routes) == set(old.up_routes)
    assert set(new.down_routes) == set(old.down_routes)
    for key, route in old.up_routes.items():
        assert np.array_equal(new.up_routes[key].src_index, route.src_index)
        assert np.array_equal(new.up_routes[key].dst_index, route.dst_index)
    for key, route in old.down_routes.items():
        assert np.array_equal(new.down_routes[key].src_index, route.src_index)
        assert np.array_equal(new.down_routes[key].dst_index, route.dst_index)


GRAPHS = {
    "powerlaw": lambda: generate_graph("powerlaw", vertices=600, seed=11),
    "road": lambda: generate_graph("road", vertices=400, seed=12),
    "rmat": lambda: generate_graph("rmat", vertices=512, edge_factor=4, seed=13),
    "er": lambda: generate_graph("er", vertices=400, seed=14),
    "ba": lambda: generate_graph("ba", vertices=300, seed=15),
}

PARTITIONERS = {
    "ebv": EBVPartitioner,
    "dbh": DBHPartitioner,
    "fennel": FennelPartitioner,
    "metis-like": MetisLikePartitioner,
}


@pytest.mark.parametrize("graph_kind", sorted(GRAPHS))
@pytest.mark.parametrize("method", sorted(PARTITIONERS))
@pytest.mark.parametrize("p", [2, 7])
def test_generator_suite_equivalence(graph_kind, method, p):
    graph = GRAPHS[graph_kind]()
    result = PARTITIONERS[method]().partition(graph, p)
    assert_builds_identical(result)


def test_equivalence_with_isolated_vertices():
    g = Graph.from_edges([(0, 1), (2, 3)], num_vertices=9)
    result = EBVPartitioner().partition(g, 3)
    assert_builds_identical(result)


def test_equivalence_single_part():
    g = generate_graph("er", vertices=100, seed=5)
    result = DBHPartitioner().partition(g, 1)
    assert_builds_identical(result)


@pytest.mark.parametrize("method", ["ebv", "fennel"])
def test_equivalence_on_sparse_fallback_paths(method, monkeypatch):
    """Force the large-scale (sorted-key / searchsorted) code paths."""
    import repro.bsp.distributed as dist
    import repro.partition.base as base

    monkeypatch.setattr(dist, "_DENSE_CELLS", 0)
    monkeypatch.setattr(base, "_DENSE_CELLS", 0)
    graph = GRAPHS["powerlaw"]()
    result = PARTITIONERS[method]().partition(graph, 5)
    assert_builds_identical(result)


def test_equivalence_master_tie_break():
    # Vertex 0 has exactly one edge in each part: the master must land on
    # the smallest worker id under both implementations.
    g = Graph.from_edges([(0, 1), (0, 2), (0, 3)], num_vertices=4)
    result = PartitionResult(
        g, 3, edge_parts=np.array([2, 1, 0]), method="manual"
    )
    assert_builds_identical(result)
    dg = build_distributed_graph(result)
    for local in dg.locals:
        j = int(np.searchsorted(local.global_ids, 0))
        assert local.master_worker[j] == 0
