"""Unit tests for distributed graph construction and replica routing."""

import numpy as np
import pytest

from repro.graph import Graph
from repro.partition import (
    EBVPartitioner,
    EDGE_CUT,
    MetisLikePartitioner,
    PartitionResult,
)
from repro.bsp import build_distributed_graph


@pytest.fixture
def square_partition():
    g = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)], num_vertices=4)
    return PartitionResult(g, 2, edge_parts=np.array([0, 0, 1, 1]), method="manual")


class TestBuildVertexCut:
    def test_local_edge_counts(self, square_partition):
        dg = build_distributed_graph(square_partition)
        assert dg.locals[0].num_edges == 2
        assert dg.locals[1].num_edges == 2

    def test_local_vertices(self, square_partition):
        dg = build_distributed_graph(square_partition)
        assert dg.locals[0].global_ids.tolist() == [0, 1, 2]
        assert dg.locals[1].global_ids.tolist() == [0, 2, 3]

    def test_local_edges_reference_local_ids(self, square_partition):
        dg = build_distributed_graph(square_partition)
        for local in dg.locals:
            assert np.all(local.src < local.num_vertices)
            assert np.all(local.dst < local.num_vertices)
            # Re-map back to global and compare against the partition.
            globals_src = local.global_ids[local.src]
            globals_dst = local.global_ids[local.dst]
            mask = square_partition.edge_parts == local.worker_id
            g = square_partition.graph
            assert sorted(
                zip(globals_src.tolist(), globals_dst.tolist())
            ) == sorted(zip(g.src[mask].tolist(), g.dst[mask].tolist()))

    def test_exactly_one_master_per_vertex(self, square_partition):
        dg = build_distributed_graph(square_partition)
        masters = {}
        for local in dg.locals:
            for j in np.nonzero(local.is_master)[0].tolist():
                gv = int(local.global_ids[j])
                assert gv not in masters, "vertex has two masters"
                masters[gv] = local.worker_id
        assert set(masters) == {0, 1, 2, 3}

    def test_master_worker_consistency(self, square_partition):
        dg = build_distributed_graph(square_partition)
        for local in dg.locals:
            own = local.master_worker[local.is_master]
            assert np.all(own == local.worker_id)

    def test_routes_pair_up(self, square_partition):
        dg = build_distributed_graph(square_partition)
        for (w, mw), up in dg.up_routes.items():
            down = dg.down_routes[(mw, w)]
            assert np.array_equal(up.src_index, down.dst_index)
            assert np.array_equal(up.dst_index, down.src_index)

    def test_routes_connect_same_global_vertex(self, square_partition):
        dg = build_distributed_graph(square_partition)
        for (w, mw), route in dg.up_routes.items():
            mirror_ids = dg.locals[w].global_ids[route.src_index]
            master_ids = dg.locals[mw].global_ids[route.dst_index]
            assert np.array_equal(mirror_ids, master_ids)

    def test_replication_factor_matches_partition(self, square_partition):
        dg = build_distributed_graph(square_partition)
        assert dg.replication_factor() == pytest.approx(6 / 4)

    def test_out_degree_is_global(self, square_partition):
        dg = build_distributed_graph(square_partition)
        g = square_partition.graph
        out = g.out_degrees()
        for local in dg.locals:
            assert np.array_equal(local.global_out_degree, out[local.global_ids])


class TestIsolatedVertices:
    def test_isolated_vertices_get_homes(self):
        g = Graph.from_edges([(0, 1)], num_vertices=6)
        r = EBVPartitioner().partition(g, 3)
        dg = build_distributed_graph(r)
        hosted = np.zeros(6, dtype=bool)
        master_count = np.zeros(6, dtype=int)
        for local in dg.locals:
            hosted[local.global_ids] = True
            master_count[local.global_ids[local.is_master]] += 1
        assert hosted.all()
        assert np.all(master_count == 1)


class TestBuildEdgeCut:
    def test_ghosts_present(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)], num_vertices=4)
        r = PartitionResult(
            g, 2, vertex_parts=np.array([0, 0, 1, 1]), kind=EDGE_CUT
        )
        dg = build_distributed_graph(r)
        # Worker 0 executes (0,1) and (1,2): hosts {0,1} plus ghost 2.
        assert dg.locals[0].global_ids.tolist() == [0, 1, 2]
        assert dg.locals[1].global_ids.tolist() == [0, 2, 3]

    def test_owner_is_master(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)], num_vertices=4)
        r = PartitionResult(
            g, 2, vertex_parts=np.array([0, 0, 1, 1]), kind=EDGE_CUT
        )
        dg = build_distributed_graph(r)
        for local in dg.locals:
            for j, gv in enumerate(local.global_ids.tolist()):
                assert local.master_worker[j] == r.vertex_parts[gv]

    def test_metis_end_to_end_build(self, small_powerlaw):
        r = MetisLikePartitioner().partition(small_powerlaw, 4)
        dg = build_distributed_graph(r)
        total_edges = sum(l.num_edges for l in dg.locals)
        assert total_edges == small_powerlaw.num_edges


class TestGather:
    def test_gather_master_values(self, square_partition):
        dg = build_distributed_graph(square_partition)
        values = []
        for local in dg.locals:
            values.append(local.global_ids.astype(np.float64) * 10)
        out = dg.gather_master_values(values, default=-1.0)
        assert out.tolist() == [0.0, 10.0, 20.0, 30.0]


class TestLocalCaches:
    def test_out_csr(self, square_partition):
        dg = build_distributed_graph(square_partition)
        local = dg.locals[0]
        indptr, order = local.out_csr()
        assert indptr[-1] == local.num_edges
        # Cached object identity.
        assert local.out_csr()[1] is order

    def test_cc_roots_static(self, square_partition):
        dg = build_distributed_graph(square_partition)
        local = dg.locals[0]  # path 0-1-2 locally: one component
        roots = local.cc_roots()
        assert np.unique(roots).size == 1
        assert local.cc_roots() is roots
