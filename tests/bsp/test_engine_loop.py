"""The engine has exactly one superstep loop.

PR 7 collapsed the historical per-mode loops (and with them the
duplicated fresh-run/resume sequencing) into ``BSPEngine._superstep_loop``.
These are the regression tests that keep it that way: fresh runs,
resumed runs, and both program modes must all flow through the same
loop and the same ``_stats`` construction — a resume differs only in
its starting boundary, never in which code builds its records.
"""

import numpy as np
import pytest

from repro.bsp import BSPEngine, build_distributed_graph
from repro.bsp.engine import BSPEngine as EngineClass
from repro.graph import powerlaw_graph
from repro.partition import EBVPartitioner
from repro.pipeline import APPS


@pytest.fixture(scope="module")
def graph():
    return powerlaw_graph(220, eta=2.2, min_degree=2, seed=17, name="pl-loop")


@pytest.fixture(scope="module")
def dgraph(graph):
    return build_distributed_graph(EBVPartitioner().partition(graph, 2))


def _spy(monkeypatch, method_name, calls):
    real = getattr(EngineClass, method_name)

    def wrapper(self, *args, **kwargs):
        calls.append(method_name)
        return real(self, *args, **kwargs)

    monkeypatch.setattr(EngineClass, method_name, wrapper)


@pytest.mark.parametrize("app", ["cc", "pr"])
def test_fresh_and_resumed_runs_share_the_loop(
    tmp_path, graph, dgraph, app, monkeypatch
):
    """Both paths call _superstep_loop once; resume replays via _stats."""
    loop_calls = []
    _spy(monkeypatch, "_superstep_loop", loop_calls)

    ckpt = tmp_path / f"ck-{app}"
    engine = BSPEngine(checkpoint_dir=str(ckpt), checkpoint_every=1, checkpoint_keep=None)
    golden = engine.run(dgraph, APPS.create(app, graph))
    assert loop_calls == ["_superstep_loop"]
    assert golden.num_supersteps >= 2, "need >=2 supersteps for a mid-run resume"

    stats_calls = []
    loop_calls.clear()
    _spy(monkeypatch, "_stats", stats_calls)
    resume_point = ckpt / "step-000001"
    resumed = BSPEngine().run(dgraph, APPS.create(app, graph), resume_from=str(resume_point))

    # The resume went through the same single loop...
    assert loop_calls == ["_superstep_loop"]
    # ...and every replayed superstep's record came out of _stats.
    assert len(stats_calls) == resumed.num_supersteps - 1
    assert resumed.resumed_from == 1
    assert np.array_equal(resumed.values, golden.values, equal_nan=True)
    for step, (a, b) in enumerate(zip(resumed.supersteps, golden.supersteps)):
        for fieldname in ("work", "sent", "received", "comp_seconds", "comm_seconds"):
            assert np.array_equal(getattr(a, fieldname), getattr(b, fieldname)), (
                step,
                fieldname,
            )


def test_both_modes_share_the_loop(graph, dgraph, monkeypatch):
    """Minimize and accumulate programs execute the identical loop."""
    calls = []
    _spy(monkeypatch, "_superstep_loop", calls)
    BSPEngine().run(dgraph, APPS.create("cc", graph))
    BSPEngine().run(dgraph, APPS.create("pr", graph))
    assert calls == ["_superstep_loop", "_superstep_loop"]


def test_resumed_finished_run_builds_no_new_stats(tmp_path, graph, dgraph, monkeypatch):
    """Resuming a done run replays nothing through the loop's stats path."""
    ckpt = tmp_path / "ck-done"
    engine = BSPEngine(checkpoint_dir=str(ckpt), checkpoint_keep=None)
    golden = engine.run(dgraph, APPS.create("cc", graph))

    stats_calls = []
    _spy(monkeypatch, "_stats", stats_calls)
    resumed = BSPEngine().run(dgraph, APPS.create("cc", graph), resume_from=str(ckpt))
    assert stats_calls == []
    assert resumed.num_supersteps == golden.num_supersteps
    assert np.array_equal(resumed.values, golden.values)
