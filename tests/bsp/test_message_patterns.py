"""Hand-counted message patterns through the minimize sync path."""

import numpy as np
import pytest

from repro.apps import SSSP, ConnectedComponents
from repro.bsp import BSPEngine, build_distributed_graph
from repro.graph import Graph
from repro.partition import PartitionResult


def split_path():
    """Directed path 0→1→2→3 split as worker0={(0,1),(1,2)}, worker1={(2,3)}."""
    g = Graph.from_edges([(0, 1), (1, 2), (2, 3)], num_vertices=4)
    r = PartitionResult(g, 2, edge_parts=np.array([0, 0, 1]))
    return g, build_distributed_graph(r)


class TestSSSPMessagePattern:
    def test_single_boundary_broadcast(self):
        g, dg = split_path()
        run = BSPEngine().run(dg, SSSP(0))
        # Vertex 2 is the only replicated vertex; its master (worker 0)
        # computes dist 2 in superstep 1 and broadcasts once.  Worker 1
        # then relaxes 3 locally; vertex 3 is unreplicated.
        assert run.values.tolist() == [0.0, 1.0, 2.0, 3.0]
        assert run.total_messages == 1

    def test_reverse_source_sends_nothing(self):
        g, dg = split_path()
        run = BSPEngine().run(dg, SSSP(3))
        # 3 has no out-edges: nothing propagates, no messages at all.
        assert run.total_messages == 0
        assert np.isinf(run.values[0])

    def test_messages_attributed_to_sender(self):
        g, dg = split_path()
        run = BSPEngine().run(dg, SSSP(0))
        per_worker = run.messages_per_worker()
        assert per_worker.tolist() == [1, 0]


class TestMirrorPushPattern:
    def test_mirror_improvement_pushes_up(self):
        # Worker 1 holds the master of vertex 2 this time (it gets two
        # of 2's edges); worker 0's mirror discovers the better label
        # and must push it up, then the master rebroadcasts.
        g = Graph.from_edges([(0, 2), (2, 3), (2, 1)], num_vertices=4)
        r = PartitionResult(g, 2, edge_parts=np.array([0, 1, 1]))
        dg = build_distributed_graph(r)
        # Confirm master placement assumption.
        w1 = dg.locals[1]
        idx = np.nonzero(w1.global_ids == 2)[0][0]
        assert w1.is_master[idx]
        run = BSPEngine().run(dg, ConnectedComponents())
        assert np.all(run.values == 0)
        # Superstep 1: worker0 computes {0,2}→0, mirror 2 changed →
        # push (1 msg); master combines 0 < 2 → dirty → broadcast to the
        # one mirror (1 msg).  Superstep 2: worker1's local CC spreads 0
        # to 1 and 3; none replicated → no more traffic.
        assert run.total_messages == 2

    def test_broadcast_counts_all_mirrors(self):
        # Vertex 0 in all three parts; master broadcast goes to both
        # mirrors even though only one pushed.
        g = Graph.from_edges([(0, 1), (0, 2), (0, 3)], num_vertices=4)
        r = PartitionResult(g, 3, edge_parts=np.array([0, 1, 2]))
        dg = build_distributed_graph(r)
        run = BSPEngine().run(dg, ConnectedComponents())
        assert np.all(run.values == 0)
        # All replicas already agree on label 0 after local compute
        # except none improve over initial 0... vertex 0's label is 0
        # everywhere from the start, so only vertices 1..3 change
        # locally and none are replicated: zero messages.
        assert run.total_messages == 0
