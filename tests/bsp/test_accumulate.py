"""Hand-verifiable tests of the engine's accumulate (sum-combine) path."""

import numpy as np
import pytest

from repro.apps import PageRank
from repro.bsp import (
    ACCUMULATE,
    BSPEngine,
    ComputeResult,
    SubgraphProgram,
    build_distributed_graph,
)
from repro.graph import Graph
from repro.partition import PartitionResult


class SumInDegrees(SubgraphProgram):
    """Trivial accumulate program: value = global in-degree after 1 step."""

    mode = ACCUMULATE
    name = "SumIn"

    def initial_values(self, local):
        return np.zeros(local.num_vertices)

    def compute(self, local, values, active, superstep=0):
        partials = np.zeros(local.num_vertices)
        if local.dst.size:
            np.add.at(partials, local.dst, 1.0)
        return ComputeResult(
            changed=partials > 0, work_units=float(local.num_edges),
            partials=partials,
        )

    def apply(self, local, values, sums):
        return sums

    def has_converged(self, superstep, global_delta):
        return True  # single superstep


def split_star():
    """Star into vertex 0 from 1..4, edges split across two workers."""
    g = Graph.from_edges([(1, 0), (2, 0), (3, 0), (4, 0)], num_vertices=5)
    r = PartitionResult(g, 2, edge_parts=np.array([0, 0, 1, 1]))
    return g, build_distributed_graph(r)


class TestAccumulateSemantics:
    def test_partials_summed_across_replicas(self):
        g, dg = split_star()
        run = BSPEngine().run(dg, SumInDegrees())
        # Vertex 0's global in-degree is 4 even though each worker only
        # sees 2 of its in-edges.
        assert run.values[0] == pytest.approx(4.0)
        assert run.values[1:].tolist() == [0.0, 0.0, 0.0, 0.0]

    def test_mirror_messages_counted(self):
        g, dg = split_star()
        run = BSPEngine().run(dg, SumInDegrees())
        s = run.supersteps[0]
        # Vertex 0 has one mirror: 1 upward partial push + 1 broadcast.
        assert int(s.sent.sum()) == 2
        assert int(s.received.sum()) == 2

    def test_broadcast_keeps_replicas_consistent(self):
        # After PageRank, every replica of a vertex holds the master's
        # value — verified through the gather being master-only anyway,
        # so instead check determinism across partitionings.
        g = Graph.from_undirected_edges(
            [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)], num_vertices=4
        )
        runs = []
        for parts in ([0, 0, 0, 1, 1, 1, 0, 1, 1, 0], [1, 0, 1, 0, 1, 0, 1, 0, 1, 0]):
            r = PartitionResult(g, 2, edge_parts=np.array(parts))
            run = BSPEngine().run(
                build_distributed_graph(r), PageRank(4, max_iters=10)
            )
            runs.append(run.values)
        assert np.allclose(runs[0], runs[1], atol=1e-12)

    def test_vector_values_roundtrip(self):
        """2-D (feature-matrix) values flow through routes and gather."""
        from repro.apps import FeaturePropagation

        g = Graph.from_edges([(1, 0), (2, 0), (0, 3)], num_vertices=4)
        r = PartitionResult(g, 2, edge_parts=np.array([0, 1, 1]))
        x = np.arange(8, dtype=float).reshape(4, 2)
        run = BSPEngine().run(
            build_distributed_graph(r), FeaturePropagation(x, hops=1, mix=1.0)
        )
        outdeg = np.array([1, 1, 1, 0], dtype=float)
        expected = np.zeros((4, 2))
        expected[0] = x[1] / 1 + x[2] / 1
        expected[3] = x[0] / 1
        assert np.allclose(run.values, expected)
