"""Unit tests for the BSP engine: semantics, message counting, termination."""

import numpy as np
import pytest

from repro.graph import Graph
from repro.partition import PartitionResult
from repro.bsp import (
    BSPEngine,
    CostModel,
    MINIMIZE,
    ComputeResult,
    SubgraphProgram,
    build_distributed_graph,
)
from repro.apps import ConnectedComponents


def two_worker_path():
    """Path 0-1-2-3 split at the middle: worker 0 gets (0,1),(1,2)."""
    g = Graph.from_edges([(0, 1), (1, 2), (2, 3)], num_vertices=4)
    r = PartitionResult(g, 2, edge_parts=np.array([0, 0, 1]), method="manual")
    return g, build_distributed_graph(r)


class TestMinimizeSemantics:
    def test_cc_on_split_path(self):
        g, dg = two_worker_path()
        run = BSPEngine().run(dg, ConnectedComponents())
        assert run.values.tolist() == [0, 0, 0, 0]

    def test_supersteps_counted(self):
        g, dg = two_worker_path()
        run = BSPEngine().run(dg, ConnectedComponents())
        # Superstep 1: local convergence + sync of vertex 2.
        # Superstep 2: worker 1 adopts label 0; no further changes.
        assert 2 <= run.num_supersteps <= 3

    def test_message_counts_exact(self):
        g, dg = two_worker_path()
        run = BSPEngine().run(dg, ConnectedComponents())
        # Vertex 2 is replicated; its master lands on worker 0 (which
        # holds 2 of its edges).  Superstep 1: worker 0 locally resolves
        # {0,1,2} to label 0 (master copy of 2 changes); worker 1
        # resolves {2,3} to label 2 (its mirror of 2 does NOT improve,
        # so no upward push).  The dirty master broadcasts once.
        # Superstep 2: worker 1 adopts 0 for vertex 3 locally; vertex 3
        # is unreplicated, so nothing else is sent.
        assert run.total_messages == 1

    def test_quiescence_termination(self):
        # A graph with no edges terminates immediately after one sweep.
        g = Graph.from_edges([(0, 1)], num_vertices=2)
        r = PartitionResult(g, 1, edge_parts=np.array([0]))
        run = BSPEngine().run(build_distributed_graph(r), ConnectedComponents())
        assert run.num_supersteps <= 2
        assert run.total_messages == 0

    def test_max_supersteps_cap(self):
        g, dg = two_worker_path()
        run = BSPEngine(max_supersteps=1).run(dg, ConnectedComponents())
        assert run.num_supersteps == 1

    def test_unknown_mode_rejected(self):
        class Bad(SubgraphProgram):
            mode = "bogus"

            def initial_values(self, local):
                return np.zeros(local.num_vertices)

            def compute(self, local, values, active, superstep=0):
                raise AssertionError

        g, dg = two_worker_path()
        with pytest.raises(ValueError):
            BSPEngine().run(dg, Bad())


class TestCostAccounting:
    def test_comp_uses_cost_model(self):
        g, dg = two_worker_path()
        cm = CostModel(seconds_per_work_unit=1.0, seconds_per_message=0.0,
                       superstep_overhead=0.0)
        run = BSPEngine(cost_model=cm).run(dg, ConnectedComponents())
        total_work = sum(float(s.work.sum()) for s in run.supersteps)
        assert run.comp * dg.num_workers == pytest.approx(total_work)

    def test_comm_uses_cost_model(self):
        g, dg = two_worker_path()
        cm = CostModel(seconds_per_work_unit=0.0, seconds_per_message=1.0,
                       superstep_overhead=0.0)
        run = BSPEngine(cost_model=cm).run(dg, ConnectedComponents())
        sent = sum(int(s.sent.sum()) for s in run.supersteps)
        received = sum(int(s.received.sum()) for s in run.supersteps)
        assert run.comm * dg.num_workers == pytest.approx(sent + received)

    def test_execution_time_is_sum_of_wall(self):
        g, dg = two_worker_path()
        run = BSPEngine().run(dg, ConnectedComponents())
        assert run.execution_time == pytest.approx(
            sum(s.wall_seconds for s in run.supersteps)
        )

    def test_delta_c_definition(self):
        g, dg = two_worker_path()
        run = BSPEngine().run(dg, ConnectedComponents())
        for s in run.supersteps:
            busy = s.comp_seconds + s.comm_seconds
            assert s.delta_c == pytest.approx(busy.max() - busy.min())

    def test_sent_received_balance(self):
        g, dg = two_worker_path()
        run = BSPEngine().run(dg, ConnectedComponents())
        for s in run.supersteps:
            assert s.sent.sum() == s.received.sum()


class TestRunAggregates:
    def test_messages_per_worker_sums_to_total(self, small_powerlaw):
        from repro.partition import EBVPartitioner

        dg = build_distributed_graph(EBVPartitioner().partition(small_powerlaw, 4))
        run = BSPEngine().run(dg, ConnectedComponents())
        assert run.messages_per_worker().sum() == run.total_messages

    def test_max_mean_ratio_at_least_one(self, small_powerlaw):
        from repro.partition import DBHPartitioner

        dg = build_distributed_graph(DBHPartitioner().partition(small_powerlaw, 4))
        run = BSPEngine().run(dg, ConnectedComponents())
        assert run.message_max_mean_ratio >= 1.0

    def test_max_mean_ratio_no_messages(self):
        g = Graph.from_edges([(0, 1)], num_vertices=2)
        r = PartitionResult(g, 1, edge_parts=np.array([0]))
        run = BSPEngine().run(build_distributed_graph(r), ConnectedComponents())
        assert run.message_max_mean_ratio == 1.0

    def test_worker_timeline_shape(self):
        g, dg = two_worker_path()
        run = BSPEngine().run(dg, ConnectedComponents())
        timeline = run.worker_timeline()
        assert len(timeline) == 2
        assert all(len(lane) == run.num_supersteps for lane in timeline)
        # comp + comm + sync == wall for every worker and superstep.
        for k, s in enumerate(run.supersteps):
            for lane in timeline:
                assert sum(lane[k]) == pytest.approx(s.wall_seconds)

    def test_values_gathered(self):
        g, dg = two_worker_path()
        run = BSPEngine().run(dg, ConnectedComponents())
        assert run.values.shape == (4,)
