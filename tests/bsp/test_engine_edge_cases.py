"""Engine edge cases and failure-injection tests."""

import numpy as np
import pytest

from repro.apps import BFS, ConnectedComponents, PageRank, SSSP
from repro.bsp import (
    ACCUMULATE,
    BSPEngine,
    ComputeResult,
    CostModel,
    SubgraphProgram,
    build_distributed_graph,
)
from repro.graph import Graph
from repro.partition import EBVPartitioner, PartitionResult


def build(g, parts, p):
    return build_distributed_graph(
        PartitionResult(g, p, edge_parts=np.asarray(parts))
    )


class TestDegenerateGraphs:
    def test_edgeless_graph(self):
        g = Graph.from_edges([], num_vertices=5)
        dg = build(g, [], 2)
        run = BSPEngine().run(dg, ConnectedComponents())
        assert run.values.tolist() == [0, 1, 2, 3, 4]
        assert run.total_messages == 0

    def test_single_vertex_self_loop(self):
        g = Graph.from_edges([(0, 0)], num_vertices=1)
        dg = build(g, [0], 1)
        run = BSPEngine().run(dg, ConnectedComponents())
        assert run.values.tolist() == [0]

    def test_source_outside_any_subgraph(self):
        # SSSP from an isolated vertex: everything else unreachable.
        g = Graph.from_edges([(0, 1)], num_vertices=3)
        dg = build(g, [0], 2)
        run = BSPEngine().run(dg, SSSP(2))
        assert run.values[2] == 0.0
        assert np.isinf(run.values[0]) and np.isinf(run.values[1])

    def test_all_edges_one_worker(self, small_powerlaw):
        # Extreme imbalance: still correct, zero messages.
        g = small_powerlaw
        dg = build(g, np.zeros(g.num_edges, dtype=int), 3)
        run = BSPEngine().run(dg, ConnectedComponents())
        assert run.total_messages == 0


class TestProgramContract:
    def test_accumulate_requires_apply(self):
        class NoApply(SubgraphProgram):
            mode = ACCUMULATE

            def initial_values(self, local):
                return np.zeros(local.num_vertices)

            def compute(self, local, values, active, superstep=0):
                return ComputeResult(
                    changed=np.zeros(local.num_vertices, dtype=bool),
                    work_units=0.0,
                    partials=np.zeros(local.num_vertices),
                )

        g = Graph.from_edges([(0, 1)], num_vertices=2)
        dg = build(g, [0], 1)
        with pytest.raises(NotImplementedError):
            BSPEngine().run(dg, NoApply())

    def test_accumulate_hits_max_supersteps(self):
        g = Graph.from_undirected_edges([(0, 1)], num_vertices=2)
        dg = build_distributed_graph(EBVPartitioner().partition(g, 1))
        run = BSPEngine(max_supersteps=7).run(
            dg, PageRank(2, max_iters=10**9, tol=0.0)
        )
        assert run.num_supersteps == 7


class TestCostModelInjection:
    def test_zero_overhead_model(self):
        g = Graph.from_edges([(0, 1)], num_vertices=2)
        dg = build(g, [0], 1)
        cm = CostModel(seconds_per_work_unit=0.0, seconds_per_message=0.0,
                       superstep_overhead=0.0)
        run = BSPEngine(cost_model=cm).run(dg, ConnectedComponents())
        assert run.execution_time == 0.0
        assert run.delta_c == 0.0

    def test_message_dominated_model(self, small_powerlaw):
        from repro.partition import DBHPartitioner

        dg = build_distributed_graph(DBHPartitioner().partition(small_powerlaw, 4))
        cm = CostModel(seconds_per_work_unit=0.0, seconds_per_message=1.0,
                       superstep_overhead=0.0)
        run = BSPEngine(cost_model=cm).run(dg, ConnectedComponents())
        # With pure message costing, comm equals 2x total messages / p
        # (each message charged to sender and receiver).
        assert run.comm * dg.num_workers == pytest.approx(
            2.0 * run.total_messages
        )


class TestAppsOnWeirdPartitions:
    def test_bfs_with_replicated_source(self):
        # Source vertex replicated on both workers: both start active.
        g = Graph.from_edges([(0, 1), (0, 2)], num_vertices=3)
        dg = build(g, [0, 1], 2)
        run = BSPEngine().run(dg, BFS(0))
        assert run.values.tolist() == [0.0, 1.0, 1.0]

    def test_cc_labels_are_component_minima(self, two_triangles):
        dg = build_distributed_graph(EBVPartitioner().partition(two_triangles, 3))
        run = BSPEngine().run(dg, ConnectedComponents())
        assert set(run.values.tolist()) == {0, 3}
