"""Streaming degree-sketch fidelity: a 10-edge graph traced by hand.

Mirrors ``tests/partition/test_ebv_hand_traced.py``: the expected state
after every chunk is computed on paper, not by re-running the code.
"""

import numpy as np
import pytest

from repro.graph import Graph
from repro.stream import ArrayEdgeStream, DegreeSketch

#: the 10 edges of the trace, fed in chunks of 3, 3, 3, 1.
EDGES = [
    (0, 1), (0, 2), (1, 2),        # chunk 1
    (3, 3), (2, 4), (0, 5),        # chunk 2 (note the self loop at 3)
    (5, 1), (4, 3), (2, 2),        # chunk 3 (self loop at 2)
    (1, 4),                        # chunk 4
]


class TestHandTrace:
    def test_degrees_after_every_chunk(self):
        """Each endpoint occurrence adds 1; a self loop adds 2 to its vertex.

        chunk 1: (0,1) (0,2) (1,2)
            0: 2, 1: 2, 2: 2                         -> [2, 2, 2]
        chunk 2: (3,3) (2,4) (0,5)
            3: +2 = 2, 2: +1 = 3, 4: +1 = 1,
            0: +1 = 3, 5: +1 = 1                     -> [3, 2, 3, 2, 1, 1]
        chunk 3: (5,1) (4,3) (2,2)
            5: +1 = 2, 1: +1 = 3, 4: +1 = 2,
            3: +1 = 3, 2: +2 = 5                     -> [3, 3, 5, 3, 2, 2]
        chunk 4: (1,4)
            1: +1 = 4, 4: +1 = 3                     -> [3, 4, 5, 3, 3, 2]
        """
        edges = np.asarray(EDGES, dtype=np.int64)
        sketch = DegreeSketch()

        sketch.update(edges[0:3, 0], edges[0:3, 1])
        assert sketch.degrees.tolist() == [2, 2, 2]
        assert sketch.num_vertices == 3
        assert sketch.num_edges == 3

        sketch.update(edges[3:6, 0], edges[3:6, 1])
        assert sketch.degrees.tolist() == [3, 2, 3, 2, 1, 1]
        assert sketch.num_vertices == 6
        assert sketch.num_edges == 6

        sketch.update(edges[6:9, 0], edges[6:9, 1])
        assert sketch.degrees.tolist() == [3, 3, 5, 3, 2, 2]
        assert sketch.num_edges == 9

        sketch.update(edges[9:10, 0], edges[9:10, 1])
        assert sketch.degrees.tolist() == [3, 4, 5, 3, 3, 2]
        assert sketch.num_vertices == 6
        assert sketch.num_edges == 10
        assert sketch.max_degree == 5

    def test_matches_graph_degrees(self):
        """The final sketch equals Graph.degrees() on the same edges."""
        g = Graph.from_edges(EDGES, num_vertices=6)
        sketch = DegreeSketch.from_stream(ArrayEdgeStream.from_graph(g, chunk_size=3))
        assert np.array_equal(sketch.degrees, g.degrees())
        assert sketch.num_edges == g.num_edges
        assert sketch.num_vertices == g.num_vertices

    def test_chunking_is_invisible(self):
        """Any chunking of the same edges yields the same sketch."""
        g = Graph.from_edges(EDGES, num_vertices=6)
        references = [
            DegreeSketch.from_stream(ArrayEdgeStream.from_graph(g, chunk_size=c))
            for c in (1, 4, 10)
        ]
        for sketch in references:
            assert sketch.degrees.tolist() == [3, 4, 5, 3, 3, 2]

    def test_degree_of_unseen_vertex_is_zero(self):
        sketch = DegreeSketch().update(np.array([0]), np.array([1]))
        assert sketch.degree(0) == 1
        assert sketch.degree(99) == 0

    def test_negative_ids_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            DegreeSketch().update(np.array([-1]), np.array([0]))

    def test_empty_sketch(self):
        sketch = DegreeSketch()
        assert sketch.num_vertices == 0
        assert sketch.num_edges == 0
        assert sketch.max_degree == 0
        assert sketch.degrees.shape == (0,)
