"""Differential harness: out-of-core output == in-memory output, always.

The contract this file locks down: for every partitioner that accepts
streams, feeding the edges chunk-by-chunk through
:func:`repro.stream.stream_partition` — any source, any reader chunk
size — produces an assignment *byte-identical* to running the same
partitioner's in-memory :meth:`partition` on the fully-loaded graph in
the same edge order.  If these tests pass, "out of core" is purely a
memory-footprint property, never a results property.
"""

import numpy as np
import pytest

from repro.bsp import build_distributed_graph
from repro.graph import Graph, powerlaw_graph, write_edge_list
from repro.partition import ShardedEBVPartitioner, StreamingEBVPartitioner
from repro.stream import (
    ArrayEdgeStream,
    GeneratorEdgeStream,
    NpyEdgeStream,
    TextEdgeListStream,
    save_edge_npy,
    stream_partition,
)


@pytest.fixture(scope="module")
def graph():
    """Small power-law graph: big enough to exercise many windows."""
    return powerlaw_graph(250, eta=2.2, min_degree=2, seed=7, name="pl-diff")


def _spill(stream, partitioner, p, tmp_path, tag):
    return stream_partition(stream, partitioner, p, str(tmp_path / tag))


class TestStreamingEBVDifferential:
    """EBV-stream: every (window, p, reader chunking) combination."""

    @pytest.mark.parametrize("p", [2, 4])
    @pytest.mark.parametrize("window", [1, 7, "all"])
    def test_chunked_equals_inmemory(self, graph, window, p, tmp_path):
        window = graph.num_edges if window == "all" else window
        partitioner = StreamingEBVPartitioner(chunk_size=window)
        expected = partitioner.partition(graph, p).edge_parts
        for reader_chunk in (1, 7, graph.num_edges):
            spilled = _spill(
                ArrayEdgeStream.from_graph(graph, chunk_size=reader_chunk),
                partitioner, p, tmp_path, f"w{window}-p{p}-r{reader_chunk}",
            )
            assert spilled.edge_parts().tobytes() == expected.tobytes(), (
                f"window={window} p={p} reader_chunk={reader_chunk}"
            )

    def test_reader_chunking_is_invisible(self, graph, tmp_path):
        """Different on-disk chunkings of the same stream: same bytes."""
        partitioner = StreamingEBVPartitioner(chunk_size=13)
        results = []
        for reader_chunk in (1, 7, 64, graph.num_edges):
            spilled = _spill(
                ArrayEdgeStream.from_graph(graph, chunk_size=reader_chunk),
                partitioner, 4, tmp_path, f"r{reader_chunk}",
            )
            results.append(spilled.edge_parts().tobytes())
        assert len(set(results)) == 1


class TestShardedEBVDifferential:
    """EBV-sharded (sort_edges=false): span-fed epochs == offline epochs."""

    @pytest.mark.parametrize("p", [2, 4])
    @pytest.mark.parametrize("num_shards,sync_interval", [(2, 5), (3, 17)])
    def test_chunked_equals_inmemory(
        self, graph, p, num_shards, sync_interval, tmp_path
    ):
        partitioner = ShardedEBVPartitioner(
            num_shards=num_shards, sync_interval=sync_interval, sort_edges=False
        )
        expected = partitioner.partition(graph, p).edge_parts
        for reader_chunk in (1, 7, graph.num_edges):
            spilled = _spill(
                ArrayEdgeStream.from_graph(graph, chunk_size=reader_chunk),
                partitioner, p, tmp_path,
                f"s{num_shards}-i{sync_interval}-p{p}-r{reader_chunk}",
            )
            assert spilled.edge_parts().tobytes() == expected.tobytes()


class TestSourceEquivalence:
    """Text, npy and generator sources all reproduce the same bytes."""

    def test_all_sources_identical(self, graph, tmp_path):
        partitioner = StreamingEBVPartitioner(chunk_size=32)
        expected = partitioner.partition(graph, 4).edge_parts.tobytes()

        text_path = str(tmp_path / "g.txt")
        write_edge_list(graph, text_path)
        npy_path = str(tmp_path / "g.npy")
        save_edge_npy(npy_path, graph)

        def produce():
            yield graph.src[:100], graph.dst[:100]
            yield graph.src[100:], graph.dst[100:]

        sources = {
            "text": TextEdgeListStream(text_path, chunk_size=23),
            "npy": NpyEdgeStream(npy_path, chunk_size=41),
            "generator": GeneratorEdgeStream(produce, name="gen"),
        }
        for tag, stream in sources.items():
            spilled = _spill(stream, partitioner, 4, tmp_path, tag)
            assert spilled.edge_parts().tobytes() == expected, tag

    def test_sharded_over_npy_with_vertex_hint(self, tmp_path):
        """|V| > max id + 1: the npy hint restores exact-|V| identity.

        EBV-sharded normalizes by exact |V|; a bare edge array only
        reveals the touched ids, so the stream must carry the real
        vertex count for the differential guarantee to hold on graphs
        with isolated trailing vertices.
        """
        rng = np.random.default_rng(5)
        src = rng.integers(0, 50, size=200)
        dst = rng.integers(0, 50, size=200)
        g = Graph(80, src, dst, name="isolated-tail")
        partitioner = ShardedEBVPartitioner(
            num_shards=2, sync_interval=9, sort_edges=False
        )
        expected = partitioner.partition(g, 4).edge_parts
        npy_path = str(tmp_path / "iso.npy")
        save_edge_npy(npy_path, g)
        spilled = _spill(
            NpyEdgeStream(npy_path, chunk_size=33, num_vertices=g.num_vertices),
            partitioner, 4, tmp_path, "iso",
        )
        assert spilled.edge_parts().tobytes() == expected.tobytes()
        assert spilled.assemble().graph.num_vertices == 80

    def test_weighted_stream_round_trips(self, graph, tmp_path):
        weighted = graph.with_weights(
            np.linspace(0.5, 2.5, graph.num_edges)
        )
        partitioner = StreamingEBVPartitioner(chunk_size=19)
        spilled = _spill(
            ArrayEdgeStream.from_graph(weighted, chunk_size=11),
            partitioner, 3, tmp_path, "weighted",
        )
        result = spilled.assemble()
        assert np.array_equal(result.graph.weights, weighted.weights)
        assert (
            result.edge_parts.tobytes()
            == partitioner.partition(weighted, 3).edge_parts.tobytes()
        )


class TestAssembledArtifacts:
    """The objects assembled from shards match the in-memory build."""

    def test_partition_result_matches(self, graph, tmp_path):
        partitioner = StreamingEBVPartitioner(chunk_size=64)
        expected = partitioner.partition(graph, 4)
        spilled = _spill(
            ArrayEdgeStream.from_graph(graph, chunk_size=29),
            partitioner, 4, tmp_path, "pr",
        )
        result = spilled.assemble()
        assert result.method == expected.method
        assert result.num_parts == expected.num_parts
        assert np.array_equal(result.graph.src, graph.src)
        assert np.array_equal(result.graph.dst, graph.dst)
        assert result.graph.num_vertices == graph.num_vertices
        assert result.graph.directed == graph.directed
        assert np.array_equal(result.edge_parts, expected.edge_parts)
        assert np.array_equal(result.edge_counts(), expected.edge_counts())
        for mine, theirs in zip(
            result.vertex_membership(), expected.vertex_membership()
        ):
            assert np.array_equal(mine, theirs)

    def test_distributed_graph_matches(self, graph, tmp_path):
        partitioner = StreamingEBVPartitioner(chunk_size=64)
        reference = build_distributed_graph(partitioner.partition(graph, 4))
        spilled = _spill(
            ArrayEdgeStream.from_graph(graph, chunk_size=37),
            partitioner, 4, tmp_path, "dg",
        )
        dgraph = spilled.to_distributed()
        assert dgraph.num_workers == reference.num_workers
        assert dgraph.partition_method == reference.partition_method
        assert dgraph.replication_factor() == reference.replication_factor()
        for mine, theirs in zip(dgraph.locals, reference.locals):
            assert np.array_equal(mine.global_ids, theirs.global_ids)
            assert np.array_equal(mine.src, theirs.src)
            assert np.array_equal(mine.dst, theirs.dst)
            assert np.array_equal(mine.is_master, theirs.is_master)
            assert np.array_equal(mine.master_worker, theirs.master_worker)
        assert sorted(dgraph.up_routes) == sorted(reference.up_routes)
        for key, route in dgraph.up_routes.items():
            assert np.array_equal(route.src_index, reference.up_routes[key].src_index)
            assert np.array_equal(route.dst_index, reference.up_routes[key].dst_index)

    def test_manifest_reports_stream_facts(self, graph, tmp_path):
        partitioner = StreamingEBVPartitioner(chunk_size=16)
        spilled = _spill(
            ArrayEdgeStream.from_graph(graph, chunk_size=50),
            partitioner, 4, tmp_path, "manifest",
        )
        expected = partitioner.partition(graph, 4)
        assert spilled.num_edges == graph.num_edges
        assert spilled.num_vertices == graph.num_vertices
        assert np.array_equal(spilled.edge_counts, expected.edge_counts())
        from repro.partition import replication_factor

        assert spilled.replication_factor == pytest.approx(
            replication_factor(expected)
        )
