"""Unit tests for the out-of-core driver, spill format and re-buffering."""

import os

import numpy as np
import pytest

from repro.graph import Graph, powerlaw_graph
from repro.partition import (
    EBVPartitioner,
    ShardedEBVPartitioner,
    StreamingEBVPartitioner,
)
from repro.stream import (
    ArrayEdgeStream,
    GeneratorEdgeStream,
    SpilledPartition,
    StreamError,
    stream_partition,
    windows,
)


@pytest.fixture(scope="module")
def graph():
    return powerlaw_graph(120, eta=2.2, min_degree=2, seed=11, name="pl-driver")


class TestWindows:
    def test_rebuffers_to_exact_windows(self):
        chunks = [
            (np.arange(i, i + 3, dtype=np.int64),
             np.arange(i, i + 3, dtype=np.int64) + 1, None)
            for i in range(0, 30, 3)
        ]
        sizes = [s.shape[0] for s, _, _ in windows(iter(chunks), 7)]
        assert sizes == [7, 7, 7, 7, 2]

    def test_concatenation_preserves_order(self):
        src = np.arange(23, dtype=np.int64)
        chunks = [(src[i : i + 4], src[i : i + 4] + 100, None) for i in range(0, 23, 4)]
        out = np.concatenate([s for s, _, _ in windows(iter(chunks), 5)])
        assert np.array_equal(out, src)

    def test_window_larger_than_stream(self):
        out = list(windows(iter([(np.array([1, 2]), np.array([3, 4]), None)]), 100))
        assert len(out) == 1 and out[0][0].shape[0] == 2

    def test_empty_chunks_skipped(self):
        empty = np.empty(0, dtype=np.int64)
        chunks = [(empty, empty, None), (np.array([1]), np.array([2]), None)]
        out = list(windows(iter(chunks), 4))
        assert len(out) == 1

    def test_weights_travel_with_edges(self):
        chunks = [
            (np.array([1, 2]), np.array([3, 4]), np.array([0.1, 0.2])),
            (np.array([5]), np.array([6]), np.array([0.3])),
        ]
        out = list(windows(iter(chunks), 2))
        assert np.allclose(out[0][2], [0.1, 0.2])
        assert np.allclose(out[1][2], [0.3])

    def test_mixed_weighting_rejected(self):
        chunks = [
            (np.array([1]), np.array([2]), None),
            (np.array([3]), np.array([4]), np.array([1.0])),
        ]
        with pytest.raises(StreamError, match="mixes weighted"):
            list(windows(iter(chunks), 10))

    def test_bad_window_rejected(self):
        with pytest.raises(StreamError):
            list(windows(iter([]), 0))


class TestStreamPartition:
    def test_spill_layout(self, graph, tmp_path):
        spill = str(tmp_path / "spill")
        spilled = stream_partition(
            ArrayEdgeStream.from_graph(graph, chunk_size=31),
            StreamingEBVPartitioner(chunk_size=16), 3, spill,
        )
        names = sorted(os.listdir(spill))
        assert "manifest.json" in names
        assert "edge_parts.bin" in names
        assert any(n.startswith("shard_") for n in names)
        total = sum(spilled.part_edges(i)[0].shape[0] for i in range(3))
        assert total == graph.num_edges

    def test_shards_cover_each_edge_once(self, graph, tmp_path):
        spilled = stream_partition(
            ArrayEdgeStream.from_graph(graph, chunk_size=31),
            StreamingEBVPartitioner(chunk_size=16), 4, str(tmp_path / "s"),
        )
        all_eids = np.concatenate(
            [spilled.part_edges(i)[0] for i in range(4)]
        )
        assert np.array_equal(np.sort(all_eids), np.arange(graph.num_edges))

    def test_refuses_overwrite_by_default(self, graph, tmp_path):
        spill = str(tmp_path / "s")
        stream = ArrayEdgeStream.from_graph(graph, chunk_size=31)
        part = StreamingEBVPartitioner(chunk_size=16)
        stream_partition(stream, part, 2, spill)
        with pytest.raises(StreamError, match="overwrite"):
            stream_partition(stream, part, 2, spill)
        stream_partition(stream, part, 2, spill, overwrite=True)

    def test_overwrite_clears_stale_shards(self, graph, tmp_path):
        """A re-spill must not inherit shard files from the previous run.

        The big first run populates every part's shard; the tiny second
        run leaves most parts empty — any stale shard would then crash
        assembly with out-of-range edge ids.
        """
        spill = str(tmp_path / "s")
        stream_partition(
            ArrayEdgeStream.from_graph(graph, chunk_size=31),
            StreamingEBVPartitioner(chunk_size=16), 8, spill,
        )
        tiny = stream_partition(
            ArrayEdgeStream([0, 1], [1, 2]),
            StreamingEBVPartitioner(), 8, spill, overwrite=True,
        )
        assert tiny.num_edges == 2
        result = tiny.assemble()
        assert result.graph.num_edges == 2
        assert sum(tiny.part_edges(i)[0].shape[0] for i in range(8)) == 2

    def test_partial_spill_without_manifest_needs_opt_in(self, graph, tmp_path):
        """Leftovers without a manifest (crashed run) are refused by
        default — the files could equally be someone else's data — and
        cleared only under an explicit overwrite=True."""
        spill = tmp_path / "s"
        spill.mkdir()
        (spill / "shard_00007.bin").write_bytes(b"\x00" * 24)
        (spill / "edge_parts.bin").write_bytes(b"\x00" * 8)
        with pytest.raises(StreamError, match="foreign files"):
            stream_partition(
                ArrayEdgeStream([0, 1], [1, 2]),
                StreamingEBVPartitioner(), 8, str(spill),
            )
        spilled = stream_partition(
            ArrayEdgeStream([0, 1], [1, 2]),
            StreamingEBVPartitioner(), 8, str(spill), overwrite=True,
        )
        assert spilled.edge_parts().shape == (2,)
        assert spilled.part_edges(7)[0].shape == (0,)

    def test_nonempty_foreign_dir_refused_and_untouched(self, graph, tmp_path):
        """A directory holding only files we never wrote is never spilled
        into silently — and the refusal must not delete anything."""
        spill = tmp_path / "precious"
        spill.mkdir()
        (spill / "thesis.tex").write_text("important")
        with pytest.raises(StreamError, match="manifest.json"):
            stream_partition(
                ArrayEdgeStream([0, 1], [1, 2]),
                StreamingEBVPartitioner(), 2, str(spill),
            )
        assert (spill / "thesis.tex").read_text() == "important"
        assert os.listdir(spill) == ["thesis.tex"]

    def test_non_streaming_partitioner_rejected(self, graph, tmp_path):
        with pytest.raises(StreamError, match="does not support streaming"):
            stream_partition(
                ArrayEdgeStream.from_graph(graph),
                EBVPartitioner(), 2, str(tmp_path / "s"),
            )

    def test_sorted_sharded_rejected(self, graph, tmp_path):
        with pytest.raises(ValueError, match="sort_edges"):
            stream_partition(
                ArrayEdgeStream.from_graph(graph),
                ShardedEBVPartitioner(sort_edges=True), 2, str(tmp_path / "s"),
            )

    def test_totals_partitioner_needs_reiterable_stream(self, graph, tmp_path):
        one_shot = GeneratorEdgeStream(iter([(graph.src, graph.dst)]))
        with pytest.raises(StreamError, match="one\\s*pass|only one"):
            stream_partition(
                one_shot,
                ShardedEBVPartitioner(sort_edges=False), 2, str(tmp_path / "s"),
            )

    def test_empty_stream(self, tmp_path):
        spilled = stream_partition(
            ArrayEdgeStream([], []), StreamingEBVPartitioner(), 3,
            str(tmp_path / "s"),
        )
        assert spilled.num_edges == 0
        assert spilled.edge_parts().shape == (0,)
        result = spilled.assemble()
        assert result.graph.num_edges == 0
        assert result.graph.num_vertices == 1

    def test_single_part(self, graph, tmp_path):
        spilled = stream_partition(
            ArrayEdgeStream.from_graph(graph, chunk_size=17),
            StreamingEBVPartitioner(), 1, str(tmp_path / "s"),
        )
        assert (spilled.edge_parts() == 0).all()

    def test_vertex_count_uses_header_hint(self, tmp_path):
        # A stream whose hint promises more vertices than the edges touch
        # (isolated trailing vertices must survive assembly).
        stream = ArrayEdgeStream([0, 1], [1, 2], name="hinted")
        stream.num_vertices_hint = 10
        spilled = stream_partition(
            stream, StreamingEBVPartitioner(), 2, str(tmp_path / "s")
        )
        assert spilled.num_vertices == 10
        assert spilled.assemble().graph.num_vertices == 10


class TestSpilledPartitionLoad:
    def test_reload_from_directory(self, graph, tmp_path):
        spill = str(tmp_path / "s")
        first = stream_partition(
            ArrayEdgeStream.from_graph(graph, chunk_size=31),
            StreamingEBVPartitioner(chunk_size=16), 3, spill,
        )
        reloaded = SpilledPartition(spill)
        assert reloaded.num_edges == first.num_edges
        assert np.array_equal(reloaded.edge_parts(), first.edge_parts())
        assert np.array_equal(
            reloaded.assemble().edge_parts, first.assemble().edge_parts
        )

    def test_not_a_spill_dir(self, tmp_path):
        with pytest.raises(StreamError):
            SpilledPartition(str(tmp_path))

    def test_part_out_of_range(self, graph, tmp_path):
        spilled = stream_partition(
            ArrayEdgeStream.from_graph(graph), StreamingEBVPartitioner(), 2,
            str(tmp_path / "s"),
        )
        with pytest.raises(StreamError, match="out of range"):
            spilled.part_edges(5)


class TestPartialSpillCleanup:
    """A failed spill must not leave orphan shards behind."""

    @staticmethod
    def _failing_stream(graph, fail_after_chunks=2, chunk_size=16):
        """Yield a few real chunks, then blow up mid-spill."""

        def chunks():
            count = 0
            for start in range(0, graph.num_edges, chunk_size):
                if count >= fail_after_chunks:
                    raise OSError("injected source failure mid-spill")
                stop = min(start + chunk_size, graph.num_edges)
                yield graph.src[start:stop], graph.dst[start:stop]
                count += 1

        return GeneratorEdgeStream(chunks, name="failing")

    def test_failing_source_leaves_no_orphan_shards(self, graph, tmp_path):
        spill = tmp_path / "spill"
        with pytest.raises(OSError, match="injected source failure"):
            stream_partition(
                self._failing_stream(graph),
                StreamingEBVPartitioner(chunk_size=8),
                3,
                str(spill),
            )
        # The driver created the directory, so it removes it outright.
        assert not spill.exists()

    def test_preexisting_directory_is_emptied_but_kept(self, graph, tmp_path):
        spill = tmp_path / "spill"
        spill.mkdir()
        keeper = spill / "unrelated.txt"
        keeper.write_text("not a shard")
        # overwrite=True is required now: a non-empty directory without a
        # manifest is refused by default (foreign-file guard).
        with pytest.raises(OSError, match="injected source failure"):
            stream_partition(
                self._failing_stream(graph),
                StreamingEBVPartitioner(chunk_size=8),
                3,
                str(spill),
                overwrite=True,
            )
        # Unrelated files survive; every spill artifact is gone.
        assert sorted(os.listdir(spill)) == ["unrelated.txt"]

    def test_failed_spill_dir_is_not_loadable(self, graph, tmp_path):
        spill = tmp_path / "spill"
        spill.mkdir()  # preexisting, so the dir itself remains
        with pytest.raises(OSError, match="injected source failure"):
            stream_partition(
                self._failing_stream(graph),
                StreamingEBVPartitioner(chunk_size=8),
                2,
                str(spill),
            )
        with pytest.raises(StreamError):
            SpilledPartition(str(spill))

    def test_successful_spill_after_failure_in_same_dir(self, graph, tmp_path):
        """A clean retry into the same directory works without --overwrite."""
        spill = tmp_path / "spill"
        spill.mkdir()
        with pytest.raises(OSError, match="injected source failure"):
            stream_partition(
                self._failing_stream(graph),
                StreamingEBVPartitioner(chunk_size=8),
                2,
                str(spill),
            )
        spilled = stream_partition(
            ArrayEdgeStream.from_graph(graph, chunk_size=16),
            StreamingEBVPartitioner(chunk_size=8),
            2,
            str(spill),
        )
        assert spilled.num_edges == graph.num_edges
        assert int(spilled.edge_counts.sum()) == graph.num_edges
