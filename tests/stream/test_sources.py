"""Unit tests for the EdgeChunkStream sources."""

import numpy as np
import pytest

from repro.graph import Graph, powerlaw_graph, write_edge_list
from repro.stream import (
    ArrayEdgeStream,
    GeneratorEdgeStream,
    NpyEdgeStream,
    StreamError,
    TextEdgeListStream,
    save_edge_npy,
)


@pytest.fixture(scope="module")
def graph():
    return powerlaw_graph(80, eta=2.2, min_degree=2, seed=13, name="pl-src")


def _concat(stream):
    srcs, dsts, wts = [], [], []
    for s, d, w in stream.chunks():
        srcs.append(s)
        dsts.append(d)
        if w is not None:
            wts.append(w)
    src = np.concatenate(srcs) if srcs else np.empty(0, dtype=np.int64)
    dst = np.concatenate(dsts) if dsts else np.empty(0, dtype=np.int64)
    w = np.concatenate(wts) if wts else None
    return src, dst, w


class TestTextEdgeListStream:
    def test_matches_graph(self, graph, tmp_path):
        path = str(tmp_path / "g.txt")
        write_edge_list(graph, path)
        stream = TextEdgeListStream(path, chunk_size=13)
        src, dst, _ = _concat(stream)
        assert np.array_equal(src, graph.src)
        assert np.array_equal(dst, graph.dst)

    def test_header_hints(self, graph, tmp_path):
        path = str(tmp_path / "g.txt")
        write_edge_list(graph, path)
        stream = TextEdgeListStream(path)
        assert stream.directed_hint == graph.directed
        assert stream.num_vertices_hint == graph.num_vertices

    def test_no_header_no_hints(self, tmp_path):
        path = tmp_path / "plain.txt"
        path.write_text("0 1\n1 2\n")
        stream = TextEdgeListStream(str(path))
        assert stream.directed_hint is None
        assert stream.num_vertices_hint is None

    def test_reiterable(self, graph, tmp_path):
        path = str(tmp_path / "g.txt")
        write_edge_list(graph, path)
        stream = TextEdgeListStream(path, chunk_size=17)
        first = _concat(stream)
        second = _concat(stream)
        assert np.array_equal(first[0], second[0])

    def test_invalid_chunk_size(self, tmp_path):
        with pytest.raises(StreamError):
            TextEdgeListStream(str(tmp_path / "x.txt"), chunk_size=0)


class TestNpyEdgeStream:
    def test_round_trip(self, graph, tmp_path):
        path = str(tmp_path / "g.npy")
        save_edge_npy(path, graph)
        src, dst, w = _concat(NpyEdgeStream(path, chunk_size=19))
        assert np.array_equal(src, graph.src)
        assert np.array_equal(dst, graph.dst)
        assert w is None

    def test_weighted_round_trip(self, graph, tmp_path):
        weighted = graph.with_weights(np.arange(graph.num_edges, dtype=float))
        path = str(tmp_path / "g.npy")
        wpath = str(tmp_path / "g.w.npy")
        save_edge_npy(path, weighted, weights_path=wpath)
        src, dst, w = _concat(
            NpyEdgeStream(path, weights_path=wpath, chunk_size=19)
        )
        assert np.array_equal(src, weighted.src)
        assert np.allclose(w, weighted.weights)

    def test_weights_need_explicit_path(self, graph, tmp_path):
        weighted = graph.with_weights(np.ones(graph.num_edges))
        with pytest.raises(StreamError, match="weights_path"):
            save_edge_npy(str(tmp_path / "g.npy"), weighted)

    def test_metadata_hints_are_explicit(self, tmp_path):
        """The bare array has no metadata; the kwargs supply it."""
        path = str(tmp_path / "g.npy")
        np.save(path, np.array([[0, 1]], dtype=np.int64))
        bare = NpyEdgeStream(path)
        assert bare.num_vertices_hint is None
        assert bare.directed_hint is None
        hinted = NpyEdgeStream(path, num_vertices=10, directed=False)
        assert hinted.num_vertices_hint == 10
        assert hinted.directed_hint is False

    def test_bad_shape_rejected(self, tmp_path):
        path = str(tmp_path / "bad.npy")
        np.save(path, np.arange(10))
        with pytest.raises(StreamError, match=r"\(m, 2\)"):
            list(NpyEdgeStream(path).chunks())

    def test_mismatched_weights_rejected(self, tmp_path):
        path = str(tmp_path / "g.npy")
        wpath = str(tmp_path / "w.npy")
        np.save(path, np.array([[0, 1], [1, 2]], dtype=np.int64))
        np.save(wpath, np.array([1.0]))
        with pytest.raises(StreamError, match="parallel"):
            list(NpyEdgeStream(path, weights_path=wpath).chunks())


class TestArrayEdgeStream:
    def test_from_graph_carries_hints(self, graph):
        stream = ArrayEdgeStream.from_graph(graph, chunk_size=9)
        assert stream.num_vertices_hint == graph.num_vertices
        assert stream.directed_hint == graph.directed
        src, dst, _ = _concat(stream)
        assert np.array_equal(src, graph.src)

    def test_shape_validation(self):
        with pytest.raises(StreamError):
            ArrayEdgeStream([1, 2], [3])
        with pytest.raises(StreamError):
            ArrayEdgeStream([1], [2], weights=[1.0, 2.0])


class TestGeneratorEdgeStream:
    def test_factory_is_reiterable(self, graph):
        def produce():
            yield graph.src[:40], graph.dst[:40]
            yield graph.src[40:], graph.dst[40:]

        stream = GeneratorEdgeStream(produce)
        assert stream.reiterable
        a = _concat(stream)
        b = _concat(stream)
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[0], graph.src)

    def test_one_shot_iterable_single_pass(self, graph):
        stream = GeneratorEdgeStream(iter([(graph.src, graph.dst)]))
        assert not stream.reiterable
        src, _, _ = _concat(stream)
        assert np.array_equal(src, graph.src)
        with pytest.raises(StreamError, match="one-shot"):
            list(stream.chunks())

    def test_bad_item_arity(self):
        stream = GeneratorEdgeStream(lambda: [(1, 2, 3, 4)])
        with pytest.raises(StreamError, match="length-4"):
            list(stream.chunks())
