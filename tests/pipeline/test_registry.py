"""Unit tests for the generic registry and the spec grammar."""

import pytest

from repro.pipeline.registry import (
    DuplicateComponentError,
    Registry,
    RegistryError,
    UnknownComponentError,
    format_spec,
    parse_spec,
)


class TestParseSpec:
    def test_bare_name(self):
        assert parse_spec("ebv") == ("ebv", {})

    def test_name_is_lowercased_and_stripped(self):
        assert parse_spec(" EBV ") == ("ebv", {})

    def test_kwargs_coercion(self):
        name, kwargs = parse_spec("ebv?alpha=2,beta=1.5,sort_order=input,flag=true,opt=none")
        assert name == "ebv"
        assert kwargs == {
            "alpha": 2,
            "beta": 1.5,
            "sort_order": "input",
            "flag": True,
            "opt": None,
        }
        assert isinstance(kwargs["alpha"], int)
        assert isinstance(kwargs["beta"], float)

    def test_quoted_values_stay_strings(self):
        assert parse_spec("file?path='123'")[1] == {"path": "123"}
        assert parse_spec('powerlaw?name="true"')[1] == {"name": "true"}

    def test_issue_examples(self):
        assert parse_spec("ebv?alpha=2,sort_order=input")[1]["alpha"] == 2
        assert parse_spec("powerlaw?vertices=20000,eta=2.2")[1] == {
            "vertices": 20000,
            "eta": 2.2,
        }

    @pytest.mark.parametrize(
        "bad",
        ["", "   ", "?alpha=2", "ebv?", "ebv?alpha", "ebv?=2", "ebv?alpha=1,,beta=2"],
    )
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(RegistryError):
            parse_spec(bad)

    def test_non_string_rejected(self):
        with pytest.raises(RegistryError, match="must be a string"):
            parse_spec(42)

    def test_malformed_error_is_descriptive(self):
        with pytest.raises(RegistryError, match="expected key=value"):
            parse_spec("ebv?alpha")


class TestFormatSpec:
    def test_round_trip_is_canonical(self):
        spec = "EBV?beta=1.5,alpha=2,flag=true"
        canonical = format_spec(*parse_spec(spec))
        assert canonical == "ebv?alpha=2,beta=1.5,flag=true"
        # Idempotent once canonical.
        assert format_spec(*parse_spec(canonical)) == canonical

    def test_no_kwargs(self):
        assert format_spec("EBV") == "ebv"
        assert format_spec("ebv", {}) == "ebv"

    def test_coercible_strings_round_trip_via_quoting(self):
        spec = format_spec("file", {"path": "123"})
        assert spec == "file?path='123'"
        assert parse_spec(spec)[1] == {"path": "123"}


class TestRegistry:
    def make(self):
        reg = Registry("widget")
        reg.register("alpha", lambda **kw: ("alpha", kw), aliases=("first",))
        return reg

    def test_get_and_create(self):
        reg = self.make()
        assert reg.get("alpha")() == ("alpha", {})
        assert reg.create("alpha?x=1") == ("alpha", {"x": 1})
        assert reg.create("alpha?x=1", x=2) == ("alpha", {"x": 2})

    def test_alias_and_case_insensitive_lookup(self):
        reg = self.make()
        assert reg.canonical("FIRST") == "alpha"
        assert reg.get("First")() == ("alpha", {})
        assert "first" in reg and "ALPHA" in reg

    def test_duplicate_names_rejected(self):
        reg = self.make()
        with pytest.raises(DuplicateComponentError):
            reg.register("alpha", lambda: None)
        with pytest.raises(DuplicateComponentError):
            reg.register("first", lambda: None)  # clashes with the alias
        with pytest.raises(DuplicateComponentError):
            reg.register("beta", lambda: None, aliases=("alpha",))

    def test_unknown_name_lists_available(self):
        reg = self.make()
        with pytest.raises(UnknownComponentError, match="available: alpha"):
            reg.get("bogus")
        assert "bogus" not in reg

    def test_decorator_registration(self):
        reg = self.make()

        @reg.register("beta")
        def make_beta(**kw):
            return ("beta", kw)

        assert reg.names() == ("alpha", "beta")
        assert reg.create("beta?y=2") == ("beta", {"y": 2})

    def test_view_is_live_and_read_only(self):
        reg = self.make()
        view = reg.as_view()
        assert set(view) == {"alpha"}
        reg.register("beta", lambda: "b")
        assert set(view) == {"alpha", "beta"}
        assert view["beta"]() == "b"
        with pytest.raises(KeyError):
            view["bogus"]
        with pytest.raises(TypeError):
            view["gamma"] = lambda: None


class TestConcreteRegistries:
    def test_partitioners_cover_cli_names(self):
        from repro.pipeline.registries import PARTITIONERS

        expected = {
            "ebv", "ebv-unsort", "ebv-stream", "ebv-sharded", "ginger",
            "dbh", "cvc", "ne", "metis", "hdrf", "fennel",
        }
        assert expected <= set(PARTITIONERS.names())

    def test_partitioner_spec_kwargs_reach_constructor(self):
        from repro.pipeline.registries import PARTITIONERS

        p = PARTITIONERS.create("ebv?alpha=2,sort_order=input")
        assert p.alpha == 2.0 and p.sort_order == "input"
        unsort = PARTITIONERS.create("ebv-unsort")
        assert unsort.sort_order == "input"

    def test_apps_include_the_missing_three(self):
        from repro.pipeline.registries import APPS

        assert {"bfs", "kcore", "featprop"} <= set(APPS.names())
        assert APPS.canonical("pagerank") == "pr"
        assert APPS.canonical("k-core") == "kcore"

    def test_experiments_match_paper_artifacts(self):
        from repro.pipeline.registries import EXPERIMENTS

        assert set(EXPERIMENTS.names()) == {
            "all", "fig2", "fig3", "fig4", "fig5",
            "table1", "table2", "table3", "table4", "table5",
        }

    def test_generators_build_graphs(self):
        from repro.pipeline.registries import GENERATORS

        g = GENERATORS.create("powerlaw?vertices=128,min_degree=2,seed=1")
        assert g.num_vertices == 128
        road = GENERATORS.create("road?vertices=100,seed=1")
        assert road.num_vertices > 0
