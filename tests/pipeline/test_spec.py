"""Spec parsing, validation and round-trip tests."""

import json

import pytest

from repro.pipeline import PipelineSpec, SpecError


class TestValidation:
    def test_minimal_spec(self):
        spec = PipelineSpec(source="powerlaw?vertices=200")
        assert spec.partition == "ebv"
        assert spec.parts == 8
        assert spec.app is None

    def test_component_specs_are_canonicalized(self):
        spec = PipelineSpec(
            source="POWERLAW?seed=1,vertices=200",
            partition="EBV?beta=1,alpha=2",
            app="pagerank",
        )
        assert spec.source == "powerlaw?seed=1,vertices=200"
        assert spec.partition == "ebv?alpha=2,beta=1"
        assert spec.app == "pr"  # alias resolved to canonical name

    def test_unknown_source_rejected(self):
        with pytest.raises(SpecError, match="invalid 'source'"):
            PipelineSpec(source="bogus?vertices=10")

    def test_unknown_partitioner_rejected(self):
        with pytest.raises(SpecError, match="invalid 'partition'"):
            PipelineSpec(source="powerlaw", partition="bogus")

    def test_unknown_app_rejected(self):
        with pytest.raises(SpecError, match="invalid 'app'"):
            PipelineSpec(source="powerlaw", app="triangles")

    def test_malformed_component_spec_rejected(self):
        with pytest.raises(SpecError, match="expected key=value"):
            PipelineSpec(source="powerlaw?vertices")

    @pytest.mark.parametrize("parts", [0, -1, 2.5, "8", True])
    def test_bad_parts_rejected(self, parts):
        with pytest.raises(SpecError, match="parts"):
            PipelineSpec(source="powerlaw", parts=parts)

    def test_refine_dict_normalizes(self):
        spec = PipelineSpec(source="powerlaw", refine={"max_passes": 1})
        assert spec.refine is True
        assert spec.refine_options == {"max_passes": 1}

    def test_bad_refine_rejected(self):
        with pytest.raises(SpecError, match="refine"):
            PipelineSpec(source="powerlaw", refine="yes")

    def test_unknown_cost_model_field_rejected(self):
        with pytest.raises(SpecError, match="cost_model"):
            PipelineSpec(source="powerlaw", cost_model={"bogus_field": 1.0})

    def test_cost_model_builds(self):
        spec = PipelineSpec(
            source="powerlaw", cost_model={"seconds_per_message": 2e-7}
        )
        model = spec.build_cost_model()
        assert model.seconds_per_message == 2e-7
        assert PipelineSpec(source="powerlaw").build_cost_model() is None


class TestRoundTrip:
    def full_spec(self):
        return PipelineSpec(
            source="powerlaw?min_degree=2,seed=3,vertices=300",
            partition="ebv?alpha=2",
            parts=4,
            refine=True,
            refine_options={"max_passes": 1},
            app="cc",
            cost_model={"seconds_per_message": 2e-7},
        )

    def test_to_dict_from_dict_is_stable(self):
        spec = self.full_spec()
        clone = PipelineSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.to_dict() == spec.to_dict()

    def test_json_round_trip(self):
        spec = self.full_spec()
        clone = PipelineSpec.from_json(spec.to_json())
        assert clone == spec
        # to_json is valid, sorted JSON.
        payload = json.loads(spec.to_json())
        assert payload["parts"] == 4

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(SpecError, match="unknown pipeline spec keys"):
            PipelineSpec.from_dict({"source": "powerlaw", "partitions": 4})

    def test_from_dict_requires_source(self):
        with pytest.raises(SpecError, match="'source'"):
            PipelineSpec.from_dict({"partition": "ebv"})

    def test_from_dict_rejects_non_dict(self):
        with pytest.raises(SpecError, match="JSON object"):
            PipelineSpec.from_dict(["powerlaw"])

    def test_from_json_rejects_invalid_json(self):
        with pytest.raises(SpecError, match="not valid JSON"):
            PipelineSpec.from_json("{not json")


class TestBackendField:
    def test_default_is_serial(self):
        assert PipelineSpec(source="powerlaw").backend == "serial"

    def test_backend_spec_is_canonicalized(self):
        spec = PipelineSpec(source="powerlaw", backend="MP?start_method=fork")
        assert spec.backend == "process?start_method=fork"
        assert PipelineSpec(source="powerlaw", backend="threads").backend == "thread"

    def test_unknown_backend_rejected_with_available_names(self):
        with pytest.raises(
            SpecError, match="invalid 'backend' spec: unknown backend 'gpu'"
        ) as excinfo:
            PipelineSpec(source="powerlaw", backend="gpu")
        # The message must teach the fix: list what exists.
        assert "process, serial, socket, thread" in str(excinfo.value)

    def test_non_string_backend_rejected(self):
        with pytest.raises(SpecError, match="'backend' must be a spec string"):
            PipelineSpec(source="powerlaw", backend=4)

    def test_backend_round_trips_through_dict_and_json(self):
        spec = PipelineSpec(source="powerlaw", app="pr", backend="process")
        assert spec.to_dict()["backend"] == "process"
        assert PipelineSpec.from_dict(spec.to_dict()) == spec
        assert PipelineSpec.from_json(spec.to_json()) == spec

    def test_documents_without_backend_key_still_load(self):
        """Pre-runtime JSON specs (no 'backend' entry) stay valid."""
        spec = PipelineSpec.from_json(
            json.dumps({"source": "powerlaw?vertices=200", "app": "cc"})
        )
        assert spec.backend == "serial"


class TestStreamSources:
    """Out-of-core stream sources in the 'source' slot."""

    def test_stream_source_accepted_and_canonicalized(self):
        spec = PipelineSpec(
            source="TEXT?path=g.txt,chunk_size=100",
            partition="ebv-stream",
        )
        assert spec.source == "edgelist?chunk_size=100,path=g.txt"
        assert spec.source_is_stream

    def test_generator_source_is_not_a_stream(self):
        assert not PipelineSpec(source="powerlaw?vertices=200").source_is_stream
        assert not PipelineSpec(source="file?path=g.txt").source_is_stream

    def test_npy_stream_source(self):
        spec = PipelineSpec(source="npy?path=g.npy", partition="ebv-stream")
        assert spec.source_is_stream

    def test_unknown_source_lists_both_families(self):
        with pytest.raises(SpecError, match="available streams") as excinfo:
            PipelineSpec(source="bogus?path=x")
        assert "edgelist" in str(excinfo.value)
        assert "powerlaw" in str(excinfo.value)

    def test_stream_source_requires_streaming_partitioner(self):
        with pytest.raises(SpecError, match="cannot consume a stream"):
            PipelineSpec(source="edgelist?path=g.txt", partition="ebv")

    def test_sharded_streams_only_without_sorting(self):
        with pytest.raises(SpecError, match="cannot consume a stream"):
            PipelineSpec(source="edgelist?path=g.txt", partition="ebv-sharded")
        spec = PipelineSpec(
            source="edgelist?path=g.txt",
            partition="ebv-sharded?sort_edges=false",
        )
        assert spec.source_is_stream

    def test_stream_spec_round_trips(self):
        spec = PipelineSpec(
            source="edgelist?chunk_size=64,path=g.txt",
            partition="ebv-stream?chunk_size=32",
            parts=4,
            app="cc",
        )
        clone = PipelineSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.source_is_stream
