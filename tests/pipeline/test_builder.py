"""Fluent builder and PipelineResult tests, including the spec-equality
acceptance criterion: a run built fluently equals the same run executed
from its JSON spec, modulo wall-clock timings."""

import numpy as np
import pytest

from repro.bsp import CostModel
from repro.graph import powerlaw_graph
from repro.pipeline import Pipeline, PipelineSpec, SpecError, run_spec

SOURCE = "powerlaw?min_degree=2,seed=3,vertices=300"


def strip_timings(result_dict):
    d = dict(result_dict)
    d.pop("timings")
    return d


class TestExecute:
    def test_partition_only_pipeline(self):
        result = Pipeline().source(SOURCE).partition("ebv", parts=4).execute()
        assert result.run is None
        assert result.partition.num_parts == 4
        assert result.metrics.replication >= 1.0
        assert {"source", "partition", "total"} <= set(result.timings)
        assert result.to_dict()["run"] is None

    def test_full_pipeline_with_app(self):
        result = (
            Pipeline().source(SOURCE).partition("ebv", parts=4).run("cc").execute()
        )
        assert result.run is not None
        assert result.run.num_supersteps > 0
        d = result.to_dict()
        assert d["run"]["program"] == "CC"
        assert d["graph"]["num_vertices"] == 300
        assert "run" in result.timings and "distribute" in result.timings

    def test_run_is_born_labeled_with_partition_method(self):
        result = (
            Pipeline().source(SOURCE).partition("dbh", parts=4).run("cc").execute()
        )
        assert result.run.partition_method == result.partition.method
        assert result.run.partition_method != "?"

    def test_refine_stage(self):
        result = (
            Pipeline().source(SOURCE).partition("ebv", parts=4).refine().execute()
        )
        assert result.partition.method.endswith("+refine")
        assert "refine" in result.timings

    def test_in_memory_graph_source(self):
        g = powerlaw_graph(200, eta=2.2, min_degree=2, seed=1)
        result = Pipeline().source(g).partition("ebv", parts=4).execute()
        assert result.graph is g
        assert result.spec is None  # not serializable, still runnable
        with pytest.raises(SpecError, match="cannot be serialized"):
            Pipeline().source(g).spec()

    def test_graph_source_rejects_kwargs(self):
        g = powerlaw_graph(100, eta=2.2, min_degree=2, seed=1)
        with pytest.raises(SpecError):
            Pipeline().source(g, vertices=100)

    def test_missing_source_raises(self):
        with pytest.raises(SpecError, match="no source"):
            Pipeline().partition("ebv").execute()

    def test_cost_model_is_applied(self):
        base = (
            Pipeline().source(SOURCE).partition("ebv", parts=4).run("cc").execute()
        )
        scaled = (
            Pipeline()
            .source(SOURCE)
            .partition("ebv", parts=4)
            .run("cc")
            .with_cost_model(seconds_per_work_unit=2e-6)
            .execute()
        )
        # Identical partition/messages, strictly more modeled compute time.
        assert scaled.run.total_messages == base.run.total_messages
        assert scaled.run.comp > base.run.comp
        with pytest.raises(SpecError):
            Pipeline().with_cost_model(CostModel(), seconds_per_message=1.0)

    def test_stage_errors_become_spec_errors(self):
        # refine on an edge-cut partition is a configuration error.
        with pytest.raises(SpecError, match="refine stage failed"):
            Pipeline().source(SOURCE).partition("metis", parts=4).refine().execute()
        # so is a bad constructor kwarg smuggled through a spec string.
        with pytest.raises(SpecError, match="partition stage failed"):
            Pipeline().source(SOURCE).partition("ebv?bogus=1", parts=4).execute()
        with pytest.raises(SpecError, match="run stage failed"):
            Pipeline().source(SOURCE).partition("ebv", parts=4).run(
                "featprop?hops=0"
            ).execute()

    def test_new_apps_run_end_to_end(self):
        for app in ("bfs", "kcore", "featprop?hops=2,feature_dims=4"):
            result = (
                Pipeline().source(SOURCE).partition("ebv", parts=4).run(app).execute()
            )
            assert result.run.num_supersteps > 0

    def test_missing_source_file_is_a_spec_error(self):
        with pytest.raises(SpecError, match="source stage failed"):
            Pipeline().source("file?path=/nonexistent/graph.txt").partition(
                "ebv", parts=2
            ).execute()

    def test_unknown_app_fails_before_any_work(self):
        pipe = Pipeline().source(SOURCE).partition("ebv", parts=4).run("bogusapp")
        with pytest.raises(SpecError, match="invalid 'app'"):
            pipe.execute()

    def test_object_kwargs_reach_the_program(self):
        features = np.ones((300, 4))
        result = (
            Pipeline()
            .source(SOURCE)
            .partition("ebv", parts=4)
            .run("featprop", hops=2, features=features)
            .execute()
        )
        assert result.run.values.shape == (300, 4)
        assert result.spec is None  # features are not serializable
        with pytest.raises(SpecError, match="cannot be serialized"):
            Pipeline().source(SOURCE).run("featprop", features=features).spec()

    def test_distributed_graph_is_reusable(self):
        from repro.bsp import BSPEngine
        from repro.pipeline import APPS

        cc = Pipeline().source(SOURCE).partition("ebv", parts=4).run("cc").execute()
        assert cc.distributed is not None
        pr = BSPEngine().run(cc.distributed, APPS.create("pr", cc.graph))
        assert pr.partition_method == cc.partition.method


class TestSpecEquivalence:
    def test_fluent_equals_spec_round_trip(self):
        """PipelineSpec -> to_dict -> from_dict -> run == fluent run."""
        fluent = (
            Pipeline()
            .source("powerlaw", vertices=300, min_degree=2, seed=3)
            .partition("ebv", parts=4)
            .refine()
            .run("cc")
            .execute()
        )
        spec = PipelineSpec.from_dict(fluent.spec.to_dict())
        via_spec = run_spec(spec)
        assert strip_timings(via_spec.to_dict()) == strip_timings(fluent.to_dict())
        # And the runs themselves are value-identical.
        assert np.array_equal(via_spec.run.values, fluent.run.values)

    def test_fluent_kwargs_equal_spec_string(self):
        a = Pipeline().source("powerlaw", vertices=300, seed=3).spec()
        b = Pipeline().source("powerlaw?seed=3,vertices=300").spec()
        assert a == b

    def test_run_spec_accepts_plain_dict(self):
        result = run_spec({"source": SOURCE, "parts": 4, "app": "cc"})
        assert result.run is not None
        assert result.spec.parts == 4

    def test_run_spec_rejects_other_types(self):
        with pytest.raises(SpecError):
            run_spec("powerlaw?vertices=100")

    def test_deterministic_across_executions(self):
        spec = {"source": SOURCE, "parts": 4, "app": "pr"}
        first = strip_timings(run_spec(spec).to_dict())
        second = strip_timings(run_spec(spec).to_dict())
        assert first == second

    def test_to_json_is_machine_consumable(self):
        import json

        result = run_spec({"source": SOURCE, "parts": 4, "app": "cc"})
        payload = json.loads(result.to_json())
        assert set(payload) == {"spec", "graph", "partition", "run", "timings"}
        assert payload["spec"]["app"] == "cc"


class TestBackendStage:
    def test_backend_round_trips_through_spec(self):
        pipe = Pipeline().source(SOURCE).run("cc").backend("process")
        spec = pipe.spec()
        assert spec.backend == "process"
        assert Pipeline.from_spec(spec).spec() == spec

    def test_backend_kwargs_fold_into_spec(self):
        spec = Pipeline().source(SOURCE).backend("thread", max_workers=2).spec()
        assert spec.backend == "thread?max_workers=2"

    def test_backend_rejects_object_kwargs(self):
        with pytest.raises(SpecError, match="must be scalars"):
            Pipeline().source(SOURCE).backend("thread", pool=object())

    def test_unknown_backend_fails_before_any_work(self):
        with pytest.raises(SpecError, match="unknown backend"):
            Pipeline().source(SOURCE).run("cc").backend("gpu").execute()

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_backends_match_serial_results(self, backend):
        base = {"source": SOURCE, "parts": 4, "app": "pr"}
        serial = run_spec(dict(base, backend="serial"))
        other = run_spec(dict(base, backend=backend))
        assert other.run.backend == backend
        assert np.array_equal(other.run.values, serial.run.values)
        assert strip_timings(other.to_dict())["run"].pop("backend") == backend
        serial_summary = strip_timings(serial.to_dict())["run"]
        serial_summary.pop("backend")
        assert strip_timings(other.to_dict())["run"] == dict(
            serial_summary, backend=backend
        )

    def test_run_substage_walls_reported_in_timings(self):
        result = run_spec({"source": SOURCE, "parts": 2, "app": "cc"})
        assert "run.compute" in result.timings
        assert "run.exchange" in result.timings
        # Sub-stage walls are components of "run", not extra stages.
        total_of_stages = sum(
            v for k, v in result.timings.items()
            if k != "total" and "." not in k
        )
        assert result.timings["total"] == pytest.approx(total_of_stages)


class TestStreamPipelines:
    """Pipelines whose source is an out-of-core edge stream."""

    @pytest.fixture
    def stream_file(self, tmp_path):
        from repro.graph import powerlaw_graph, write_edge_list

        g = powerlaw_graph(250, eta=2.2, min_degree=2, seed=9, name="pl-bldr")
        path = str(tmp_path / "g.txt")
        write_edge_list(g, path)
        return path, g

    def test_stream_spec_equals_inmemory_partition(self, stream_file):
        path, g = stream_file
        result = run_spec(
            {
                "source": f"edgelist?path={path},chunk_size=100",
                "partition": "ebv-stream?chunk_size=64",
                "parts": 4,
            }
        )
        from repro.partition import StreamingEBVPartitioner

        expected = StreamingEBVPartitioner(chunk_size=64).partition(g, 4)
        assert np.array_equal(result.partition.edge_parts, expected.edge_parts)
        assert result.stream is not None
        assert result.stream["num_edges"] == g.num_edges
        assert "partition.spill" in result.timings
        assert "partition.assemble" in result.timings
        assert "stream" in result.to_dict()

    def test_stream_run_matches_generator_run(self, stream_file):
        """Same edges, same app: stream-sourced == file-sourced values."""
        path, _ = stream_file
        streamed = run_spec(
            {
                "source": f"edgelist?path={path}",
                "partition": "ebv-stream",
                "parts": 2,
                "app": "cc",
            }
        )
        in_memory = (
            Pipeline()
            .source(f"file?path={path}")
            .partition("ebv-stream", parts=2)
            .run("cc")
            .execute()
        )
        assert np.array_equal(streamed.run.values, in_memory.run.values)
        assert streamed.run.num_supersteps == in_memory.run.num_supersteps

    def test_from_stream_with_live_object(self, stream_file):
        path, g = stream_file
        from repro.stream import TextEdgeListStream

        result = (
            Pipeline.from_stream(TextEdgeListStream(path, chunk_size=77))
            .partition("ebv-stream?chunk_size=64", parts=4)
            .execute()
        )
        from repro.partition import StreamingEBVPartitioner

        expected = StreamingEBVPartitioner(chunk_size=64).partition(g, 4)
        assert np.array_equal(result.partition.edge_parts, expected.edge_parts)
        assert result.spec is None  # live objects are not serializable

    def test_live_stream_source_cannot_be_serialized(self, stream_file):
        path, _ = stream_file
        from repro.stream import TextEdgeListStream

        pipe = Pipeline.from_stream(TextEdgeListStream(path))
        with pytest.raises(SpecError, match="cannot be serialized"):
            pipe.spec()

    def test_nonstream_result_has_no_stream_key(self):
        result = Pipeline().source("powerlaw?vertices=200").execute()
        assert result.stream is None
        assert "stream" not in result.to_dict()
