"""Snapshot store unit tests: atomicity, retention, corruption rejection.

Torn writes, bit flips, truncated payloads, hand-edited manifests and
wrong-format directories must all be *rejected* with a clear
:class:`~repro.checkpoint.CheckpointError` — a damaged checkpoint is
never silently resumed (acceptance criterion #4).
"""

import json
import os

import numpy as np
import pytest

from repro.bsp.engine import SuperstepStats
from repro.checkpoint import (
    CheckpointError,
    CheckpointWriter,
    latest_snapshot_dir,
    list_snapshots,
    load_snapshot,
    write_snapshot,
)

FINGERPRINT = {"fingerprint_version": 1, "graph": {"name": "t", "edges_crc": 7}}
META = {
    "program": "CC",
    "partition_method": "ebv",
    "graph_name": "t",
    "num_workers": 2,
    "backend": "serial",
}


def _stats(p=2):
    return SuperstepStats(
        work=np.array([1.5, 2.5]),
        sent=np.array([3, 4], dtype=np.int64),
        received=np.array([4, 3], dtype=np.int64),
        comp_seconds=np.array([0.1, 0.2]),
        comm_seconds=np.array([0.01, 0.02]),
        real_seconds={"compute": 0.5, "exchange": 0.25},
    )


def _arrays():
    return {
        "values": [np.array([1.0, 2.0, np.inf]), np.array([4.0])],
        "changed": [np.array([True, False, True]), np.array([False])],
        "active": [np.array([False, True, False]), np.array([True])],
    }


def _write(root, superstep=2, done=False, keep=None):
    return write_snapshot(
        str(root),
        superstep=superstep,
        done=done,
        fingerprint=FINGERPRINT,
        meta=META,
        arrays=_arrays(),
        supersteps=[_stats() for _ in range(superstep)],
        keep=keep,
    )


def test_round_trip_is_bit_identical(tmp_path):
    snap_dir = _write(tmp_path)
    snap = load_snapshot(snap_dir)
    assert snap.superstep == 2
    assert snap.done is False
    assert snap.fingerprint == FINGERPRINT
    assert snap.meta == META
    want = _arrays()
    assert set(snap.arrays) == set(want)
    for kind, worker_arrays in want.items():
        for got, exp in zip(snap.arrays[kind], worker_arrays):
            assert got.dtype == exp.dtype
            assert np.array_equal(got, exp)
    assert len(snap.supersteps) == 2
    ref = _stats()
    for s in snap.supersteps:
        for f in ("work", "sent", "received", "comp_seconds", "comm_seconds"):
            assert np.array_equal(getattr(s, f), getattr(ref, f))
        assert s.real_seconds == ref.real_seconds


def test_load_from_root_resolves_newest(tmp_path):
    _write(tmp_path, superstep=1)
    _write(tmp_path, superstep=3)
    assert latest_snapshot_dir(str(tmp_path)).endswith("step-000003")
    assert load_snapshot(str(tmp_path)).superstep == 3


def test_stale_staging_dirs_are_ignored_and_collected(tmp_path):
    (tmp_path / ".tmp-step-000009-123").mkdir()
    _write(tmp_path, superstep=1)
    assert load_snapshot(str(tmp_path)).superstep == 1
    # Staging garbage from a crashed writer is removed by the next write.
    assert not [d for d in os.listdir(tmp_path) if d.startswith(".tmp-")]


def test_keep_prunes_oldest_snapshots(tmp_path):
    for k in (1, 2, 3, 4):
        _write(tmp_path, superstep=k, keep=2)
    names = [os.path.basename(d) for d in list_snapshots(str(tmp_path))]
    assert names == ["step-000003", "step-000004"]


def test_keep_none_retains_everything(tmp_path):
    for k in (1, 2, 3):
        _write(tmp_path, superstep=k, keep=None)
    assert len(list_snapshots(str(tmp_path))) == 3


def test_missing_directory_is_rejected(tmp_path):
    with pytest.raises(CheckpointError, match="does not exist"):
        load_snapshot(str(tmp_path / "nope"))


def test_empty_root_is_rejected(tmp_path):
    with pytest.raises(CheckpointError, match="no checkpoint snapshots"):
        load_snapshot(str(tmp_path))


def test_truncated_payload_is_rejected_as_torn(tmp_path):
    snap_dir = _write(tmp_path)
    state = os.path.join(snap_dir, "state.npz")
    with open(state, "r+b") as fh:
        fh.truncate(os.path.getsize(state) - 7)
    with pytest.raises(CheckpointError, match="torn"):
        load_snapshot(snap_dir)


def test_flipped_byte_fails_the_checksum(tmp_path):
    snap_dir = _write(tmp_path)
    state = os.path.join(snap_dir, "state.npz")
    raw = bytearray(open(state, "rb").read())
    raw[len(raw) // 2] ^= 0xFF
    open(state, "wb").write(bytes(raw))
    with pytest.raises(CheckpointError, match="[Cc]hecksum"):
        load_snapshot(snap_dir)


def test_missing_payload_is_rejected(tmp_path):
    snap_dir = _write(tmp_path)
    os.remove(os.path.join(snap_dir, "supersteps.npz"))
    with pytest.raises(CheckpointError, match="missing"):
        load_snapshot(snap_dir)


def test_invalid_manifest_json_is_rejected(tmp_path):
    snap_dir = _write(tmp_path)
    with open(os.path.join(snap_dir, "manifest.json"), "w") as fh:
        fh.write('{"format": "repro-checkpoint", ')  # torn mid-write
    with pytest.raises(CheckpointError, match="corrupted checkpoint manifest"):
        load_snapshot(snap_dir)


def test_foreign_manifest_format_is_rejected(tmp_path):
    snap_dir = _write(tmp_path)
    path = os.path.join(snap_dir, "manifest.json")
    manifest = json.load(open(path))
    manifest["format"] = "something-else"
    json.dump(manifest, open(path, "w"))
    with pytest.raises(CheckpointError, match="not a repro-checkpoint manifest"):
        load_snapshot(snap_dir)


def test_future_version_is_rejected(tmp_path):
    snap_dir = _write(tmp_path)
    path = os.path.join(snap_dir, "manifest.json")
    manifest = json.load(open(path))
    manifest["version"] = 99
    json.dump(manifest, open(path, "w"))
    with pytest.raises(CheckpointError, match="unsupported checkpoint version"):
        load_snapshot(snap_dir)


def test_superstep_count_mismatch_is_rejected(tmp_path):
    snap_dir = _write(tmp_path, superstep=2)
    path = os.path.join(snap_dir, "manifest.json")
    manifest = json.load(open(path))
    manifest["superstep"] = 5  # claims more progress than it recorded
    json.dump(manifest, open(path, "w"))
    with pytest.raises(CheckpointError, match="claims boundary"):
        load_snapshot(snap_dir)


def test_rewriting_a_boundary_replaces_the_snapshot(tmp_path):
    _write(tmp_path, superstep=2, done=False)
    _write(tmp_path, superstep=2, done=True)
    assert len(list_snapshots(str(tmp_path))) == 1
    assert load_snapshot(str(tmp_path)).done is True


def test_write_snapshot_rejects_zero_retention(tmp_path):
    """Direct write_snapshot calls validate keep too — keep=0 would prune
    every snapshot a recovery could restore from."""
    for bad in (0, -1, True):
        with pytest.raises(CheckpointError, match="keep"):
            _write(tmp_path, superstep=1, keep=bad)
    assert list_snapshots(str(tmp_path)) == []  # nothing was published


def test_writer_validates_configuration(tmp_path):
    with pytest.raises(CheckpointError, match="checkpoint_every"):
        CheckpointWriter(str(tmp_path), every=0)
    with pytest.raises(CheckpointError, match="checkpoint_every"):
        CheckpointWriter(str(tmp_path), every=True)
    with pytest.raises(CheckpointError, match="checkpoint_keep"):
        CheckpointWriter(str(tmp_path), keep=0)
    with pytest.raises(CheckpointError, match="directory"):
        CheckpointWriter("")
    writer = CheckpointWriter(str(tmp_path), every=3)
    assert [k for k in range(1, 8) if writer.due(k)] == [3, 6]


def test_clear_snapshots_removes_everything(tmp_path):
    from repro.checkpoint import clear_snapshots

    for k in (1, 2):
        _write(tmp_path, superstep=k)
    (tmp_path / ".old-step-000001-99").mkdir()
    assert clear_snapshots(str(tmp_path)) == 2
    assert list_snapshots(str(tmp_path)) == []
    assert not any(d.startswith(".old-") for d in os.listdir(tmp_path))
    assert clear_snapshots(str(tmp_path / "missing")) == 0


def test_root_load_falls_back_when_newest_is_damaged(tmp_path):
    _write(tmp_path, superstep=1)
    newest = _write(tmp_path, superstep=2)
    state = os.path.join(newest, "state.npz")
    with open(state, "r+b") as fh:
        fh.truncate(os.path.getsize(state) - 3)
    snap = load_snapshot(str(tmp_path))
    assert snap.superstep == 1
    # Explicitly naming the damaged snapshot never falls back.
    with pytest.raises(CheckpointError, match="torn"):
        load_snapshot(newest)


def test_root_load_reports_every_failure_when_all_damaged(tmp_path):
    for k in (1, 2):
        snap_dir = _write(tmp_path, superstep=k)
        os.remove(os.path.join(snap_dir, "state.npz"))
    with pytest.raises(CheckpointError, match="every snapshot .* failed"):
        load_snapshot(str(tmp_path))


@pytest.mark.parametrize("missing_key", ["superstep", "done"])
def test_manifest_missing_required_key_is_checkpoint_error(tmp_path, missing_key):
    snap_dir = _write(tmp_path)
    path = os.path.join(snap_dir, "manifest.json")
    manifest = json.load(open(path))
    del manifest[missing_key]
    json.dump(manifest, open(path, "w"))
    with pytest.raises(CheckpointError, match=f"'{missing_key}'"):
        load_snapshot(snap_dir)


def test_root_load_falls_back_past_a_keyless_manifest(tmp_path):
    """A junk manifest must not abort the root fallback scan."""
    _write(tmp_path, superstep=1)
    newest = _write(tmp_path, superstep=2)
    path = os.path.join(newest, "manifest.json")
    manifest = json.load(open(path))
    del manifest["superstep"]
    json.dump(manifest, open(path, "w"))
    assert load_snapshot(str(tmp_path)).superstep == 1
