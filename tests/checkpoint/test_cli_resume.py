"""``repro resume`` CLI verb: happy path, JSON identity, clear errors."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def spec_file(tmp_path):
    ckpt = tmp_path / "ck"
    spec = {
        "source": "powerlaw?vertices=300,seed=17",
        "partition": "ebv",
        "parts": 2,
        "app": "pr?pagerank_iters=5",
        "checkpoint": {"dir": str(ckpt), "every": 2},
    }
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec))
    return str(path), str(ckpt)


def test_resume_reproduces_the_pipeline_json(spec_file, capsys):
    spec_path, ckpt = spec_file
    assert main(["pipeline", spec_path, "--json"]) == 0
    golden = json.loads(capsys.readouterr().out)
    assert main(["resume", ckpt, "--json"]) == 0
    resumed = json.loads(capsys.readouterr().out)
    for key in set(golden["run"]) - {"resumed_from"}:
        assert resumed["run"][key] == golden["run"][key], key
    assert resumed["run"]["resumed_from"] == golden["run"]["num_supersteps"]
    assert resumed["partition"] == golden["partition"]
    assert resumed["graph"] == golden["graph"]


def test_resume_human_output_reports_provenance(spec_file, capsys):
    spec_path, ckpt = spec_file
    assert main(["pipeline", spec_path]) == 0
    out = capsys.readouterr().out
    assert f"checkpoints in {ckpt}" in out
    assert main(["resume", ckpt]) == 0
    out = capsys.readouterr().out
    assert "resumed from superstep" in out


def test_resume_missing_directory_fails_cleanly(tmp_path, capsys):
    assert main(["resume", str(tmp_path / "nope")]) == 2
    assert "error:" in capsys.readouterr().err


def test_pipeline_rejects_bad_checkpoint_spec(tmp_path, capsys):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({
        "source": "powerlaw?vertices=100",
        "app": "cc",
        "checkpoint": {"dir": str(tmp_path / "ck"), "every": 0},
    }))
    assert main(["pipeline", str(path)]) == 2
    assert "checkpoint 'every'" in capsys.readouterr().err
