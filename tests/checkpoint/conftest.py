"""Shared fixtures for the crash-injection & resume-equivalence harness.

The central contract under test: a :class:`~repro.bsp.engine.BSPRun`
resumed from *any* snapshot is **bit-identical** to the golden
uninterrupted run in every deterministic field — final values,
superstep count, per-superstep work/message tallies, and the
cost-model accounting that feeds every paper artifact.  Only real
wall-clock (``real_seconds``) may differ: the pre-crash supersteps of a
resumed run keep the walls measured before the crash.
"""

import numpy as np
import pytest

from repro.bsp import build_distributed_graph
from repro.graph import powerlaw_graph
from repro.partition import EBVPartitioner

#: every deterministic per-superstep field of a SuperstepStats record.
DETERMINISTIC_STEP_FIELDS = ("work", "sent", "received", "comp_seconds", "comm_seconds")

PARTS = (2, 4)


def _assert_runs_identical(got, want):
    """Bit-identity over every deterministic field of two BSPRuns."""
    assert got.program == want.program
    assert got.partition_method == want.partition_method
    assert got.graph_name == want.graph_name
    assert got.num_workers == want.num_workers
    assert got.num_supersteps == want.num_supersteps
    assert got.values.shape == want.values.shape
    assert got.values.dtype == want.values.dtype
    # Identical, not merely close: the resumed run replays the same
    # kernels over the same restored arrays in the same order.
    assert np.array_equal(got.values, want.values, equal_nan=True)
    assert got.total_messages == want.total_messages
    assert got.comp == want.comp
    assert got.comm == want.comm
    assert got.delta_c == want.delta_c
    assert got.execution_time == want.execution_time
    assert got.message_max_mean_ratio == want.message_max_mean_ratio
    for step, (g_s, w_s) in enumerate(zip(got.supersteps, want.supersteps)):
        for fieldname in DETERMINISTIC_STEP_FIELDS:
            assert np.array_equal(
                getattr(g_s, fieldname), getattr(w_s, fieldname)
            ), f"superstep {step} field {fieldname!r} diverged"


@pytest.fixture(scope="session")
def assert_runs_identical():
    return _assert_runs_identical


@pytest.fixture(scope="session")
def ckpt_graph():
    """Seeded ~220-vertex power-law graph shared by the whole harness.

    The seed is chosen so every minimize-mode app needs >= 2 supersteps
    at both worker counts — otherwise a crash point strictly before the
    last boundary would not exist.
    """
    return powerlaw_graph(220, eta=2.2, min_degree=2, seed=17, name="ckpt-pl")


@pytest.fixture(scope="session")
def ckpt_dgraphs(ckpt_graph):
    """One routed distributed graph per worker count."""
    return {
        p: build_distributed_graph(EBVPartitioner().partition(ckpt_graph, p))
        for p in PARTS
    }
