"""Pipeline-layer checkpoint integration: spec, builder, resume, spill reuse."""

import json
import os

import numpy as np
import pytest

from repro.checkpoint import list_snapshots
from repro.graph import powerlaw_graph, write_edge_list
from repro.pipeline import (
    Pipeline,
    PipelineSpec,
    SpecError,
    resume_pipeline,
    run_spec,
)
from repro.pipeline import builder as builder_module


# ----------------------------------------------------------------------
# Spec validation + round trip
# ----------------------------------------------------------------------


def test_checkpoint_string_normalizes_to_dict():
    spec = PipelineSpec(source="powerlaw?vertices=100", app="cc", checkpoint="ck")
    assert spec.checkpoint == {"dir": "ck", "every": 1, "keep": 2}


def test_checkpoint_round_trips_through_json():
    spec = PipelineSpec(
        source="powerlaw?vertices=100",
        app="cc",
        checkpoint={"dir": "ck", "every": 3, "keep": None},
    )
    reloaded = PipelineSpec.from_json(spec.to_json())
    assert reloaded.checkpoint == {"dir": "ck", "every": 3, "keep": None}
    assert reloaded.to_dict() == spec.to_dict()


def test_checkpoint_none_round_trips():
    spec = PipelineSpec(source="powerlaw?vertices=100")
    assert spec.checkpoint is None
    assert PipelineSpec.from_json(spec.to_json()).checkpoint is None


@pytest.mark.parametrize(
    "bad",
    [
        42,
        {"every": 1},  # no dir
        {"dir": ""},
        {"dir": "ck", "every": 0},
        {"dir": "ck", "every": True},
        {"dir": "ck", "keep": 0},
        {"dir": "ck", "nope": 1},
    ],
)
def test_invalid_checkpoint_specs_are_rejected(bad):
    with pytest.raises(SpecError):
        PipelineSpec(source="powerlaw?vertices=100", app="cc", checkpoint=bad)


def test_fluent_checkpoint_serializes_into_the_spec():
    pipe = (
        Pipeline()
        .source("powerlaw?vertices=100")
        .partition("ebv", parts=2)
        .run("cc")
        .checkpoint("ck", every=2, keep=None)
    )
    assert pipe.spec().checkpoint == {"dir": "ck", "every": 2, "keep": None}
    # and .checkpoint(None) disables it again
    assert pipe.checkpoint(None).spec().checkpoint is None


# ----------------------------------------------------------------------
# Execution + resume
# ----------------------------------------------------------------------


def _spec(ckpt_dir, **overrides):
    base = dict(
        source="powerlaw?vertices=300,seed=17",
        partition="ebv",
        parts=2,
        app="pr?pagerank_iters=6",
        checkpoint={"dir": str(ckpt_dir), "every": 2, "keep": None},
    )
    base.update(overrides)
    return PipelineSpec(**base)


def test_checkpointed_pipeline_writes_spec_and_snapshots(tmp_path):
    root = tmp_path / "ck"
    result = run_spec(_spec(root))
    assert result.checkpoint_dir == str(root)
    assert result.run.resumed_from is None
    # The serialized spec lands next to the snapshots...
    saved = json.load(open(root / "pipeline.json"))
    assert PipelineSpec.from_dict(saved).to_dict() == result.spec.to_dict()
    # ...and snapshots exist at the cadence plus the final boundary.
    assert [os.path.basename(s) for s in list_snapshots(str(root))] == [
        "step-000002", "step-000004", "step-000006",
    ]


def test_resume_pipeline_reproduces_the_run(tmp_path):
    root = tmp_path / "ck"
    golden = run_spec(_spec(root))
    resumed = resume_pipeline(str(root))
    assert resumed.run.resumed_from == golden.run.num_supersteps
    assert resumed.run.num_supersteps == golden.run.num_supersteps
    assert resumed.run.total_messages == golden.run.total_messages
    assert np.array_equal(resumed.run.values, golden.run.values, equal_nan=True)
    assert resumed.run.comp == golden.run.comp
    assert resumed.run.comm == golden.run.comm
    # The machine-readable summaries agree on every deterministic field.
    a, b = resumed.to_dict()["run"], golden.to_dict()["run"]
    for key in set(a) - {"resumed_from"}:
        assert a[key] == b[key], key


def test_resume_pipeline_from_mid_run_snapshot(tmp_path):
    """Resume from an intermediate boundary (as after a real crash)."""
    root = tmp_path / "ck"
    golden = run_spec(_spec(root))
    # Drop the later snapshots: the run now looks crashed after step 2.
    import shutil

    for snap in list_snapshots(str(root))[1:]:
        shutil.rmtree(snap)
    resumed = resume_pipeline(str(root))
    assert resumed.run.resumed_from == 2
    assert resumed.run.num_supersteps == golden.run.num_supersteps
    assert np.array_equal(resumed.run.values, golden.run.values)
    assert resumed.run.comp == golden.run.comp


def test_resume_requires_pipeline_json(tmp_path):
    with pytest.raises(SpecError, match="pipeline.json"):
        resume_pipeline(str(tmp_path))


def test_resume_requires_an_app(tmp_path):
    root = tmp_path / "ck"
    root.mkdir()
    spec = PipelineSpec(source="powerlaw?vertices=100", checkpoint=str(root))
    (root / "pipeline.json").write_text(spec.to_json())
    with pytest.raises(SpecError, match="no app stage"):
        resume_pipeline(str(root))


def test_execute_resume_from_requires_checkpoint_config():
    pipe = Pipeline().source("powerlaw?vertices=100").run("cc")
    with pytest.raises(SpecError, match="resume_from requires a checkpointed"):
        pipe.execute(resume_from="somewhere")


# ----------------------------------------------------------------------
# Stream sources: persistent spill, reused on resume
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def edge_file(tmp_path_factory):
    g = powerlaw_graph(600, eta=2.2, min_degree=2, seed=23, name="stream-ck")
    path = tmp_path_factory.mktemp("stream") / "g.txt"
    write_edge_list(g, str(path))
    return str(path)


def _stream_spec(edge_file, ckpt_dir):
    return PipelineSpec(
        source=f"edgelist?path={edge_file},chunk_size=256",
        partition="ebv-stream",
        parts=2,
        app="cc",
        checkpoint={"dir": str(ckpt_dir), "every": 1, "keep": None},
    )


def test_stream_spill_is_persistent_under_the_checkpoint_root(tmp_path, edge_file):
    root = tmp_path / "ck"
    result = run_spec(_stream_spec(edge_file, root))
    assert result.stream["spill_reused"] is False
    assert os.path.isfile(root / "spill" / "manifest.json")
    assert "partition.spill" in result.timings


def test_resume_reuses_spill_and_skips_repartitioning(
    tmp_path, edge_file, monkeypatch
):
    root = tmp_path / "ck"
    golden = run_spec(_stream_spec(edge_file, root))

    def boom(*args, **kwargs):  # resume must never re-partition
        raise AssertionError("stream_partition called during resume")

    monkeypatch.setattr(builder_module, "stream_partition", boom)
    resumed = resume_pipeline(str(root))
    assert resumed.stream["spill_reused"] is True
    assert "partition.spill" not in resumed.timings
    assert np.array_equal(resumed.run.values, golden.run.values)
    assert resumed.run.num_supersteps == golden.run.num_supersteps
    assert resumed.run.total_messages == golden.run.total_messages


def test_checkpointing_unserializable_pipeline_warns(tmp_path):
    """In-memory sources cannot produce pipeline.json; say so up front."""
    g = powerlaw_graph(150, eta=2.2, min_degree=2, seed=3, name="mem")
    pipe = (
        Pipeline().source(g).partition("ebv", parts=2).run("cc")
        .checkpoint(str(tmp_path / "ck"))
    )
    with pytest.warns(UserWarning, match="repro.?resume|pipeline.json"):
        result = pipe.execute()
    # Engine snapshots are still written and in-process resume works.
    assert list_snapshots(str(tmp_path / "ck"))
    resumed = pipe.execute(resume_from=str(tmp_path / "ck"))
    assert resumed.run.resumed_from == result.run.num_supersteps


def test_resume_with_damaged_spill_manifest_respills(tmp_path, edge_file):
    """A spill torn by the crash falls back to a deterministic re-spill."""
    root = tmp_path / "ck"
    golden = run_spec(_stream_spec(edge_file, root))
    manifest = root / "spill" / "manifest.json"
    manifest.write_text('{"format": "repro-stream-partition", ')  # torn write
    resumed = resume_pipeline(str(root))
    assert resumed.stream["spill_reused"] is False
    assert "partition.spill" in resumed.timings
    assert np.array_equal(resumed.run.values, golden.run.values)
    assert resumed.run.total_messages == golden.run.total_messages
