"""The crash matrix: resume from *every* checkpoint boundary, every app.

One checkpointed run per (app, p) with ``checkpoint_every=1`` and
unlimited retention produces a snapshot at every superstep boundary —
exactly the state a crash immediately after that boundary would leave
on disk.  Resuming from each snapshot and asserting bit-identity
against the golden uninterrupted run therefore covers every possible
crash point, a strict superset of the k ∈ {1, 2, mid, last} matrix.
"""

import os

import pytest

from repro.bsp import BSPEngine
from repro.checkpoint import list_snapshots, load_snapshot
from repro.pipeline import APPS

PARTS = (2, 4)
#: the apps of the crash matrix (pagerank capped so the sweep stays fast).
APP_SPECS = ("cc", "pr?pagerank_iters=10", "sssp", "bfs", "kcore")


@pytest.fixture(scope="module")
def matrix(ckpt_graph, ckpt_dgraphs, tmp_path_factory):
    """Golden run + every-boundary snapshots per (app, p)."""
    out = {}
    for app in APP_SPECS:
        for p in PARTS:
            golden = BSPEngine().run(ckpt_dgraphs[p], APPS.create(app, ckpt_graph))
            root = str(tmp_path_factory.mktemp("crash-matrix"))
            BSPEngine(
                checkpoint_dir=root, checkpoint_every=1, checkpoint_keep=None
            ).run(ckpt_dgraphs[p], APPS.create(app, ckpt_graph))
            out[(app, p)] = (golden, root)
    return out


@pytest.mark.parametrize("p", PARTS)
@pytest.mark.parametrize("app", APP_SPECS)
def test_every_boundary_has_a_snapshot(app, p, matrix):
    golden, root = matrix[(app, p)]
    assert golden.num_supersteps >= 2, "graph too easy to exercise resume"
    boundaries = [
        int(os.path.basename(s).split("-")[1]) for s in list_snapshots(root)
    ]
    assert boundaries == list(range(1, golden.num_supersteps + 1))
    # The canonical crash points are all present by construction.
    k = golden.num_supersteps
    assert {1, 2, max(1, k // 2), k} <= set(boundaries) | {2}


@pytest.mark.parametrize("p", PARTS)
@pytest.mark.parametrize("app", APP_SPECS)
def test_resume_from_every_boundary_is_bit_identical(
    app, p, matrix, ckpt_graph, ckpt_dgraphs, assert_runs_identical
):
    golden, root = matrix[(app, p)]
    for snap in list_snapshots(root):
        resumed = BSPEngine().run(
            ckpt_dgraphs[p], APPS.create(app, ckpt_graph), resume_from=snap
        )
        assert_runs_identical(resumed, golden)
        assert resumed.resumed_from == load_snapshot(snap).superstep


@pytest.mark.parametrize("p", PARTS)
@pytest.mark.parametrize("app", APP_SPECS)
def test_resume_from_root_uses_newest_snapshot(
    app, p, matrix, ckpt_graph, ckpt_dgraphs, assert_runs_identical
):
    """Resuming the root (not a specific snapshot) picks the final one."""
    golden, root = matrix[(app, p)]
    resumed = BSPEngine().run(
        ckpt_dgraphs[p], APPS.create(app, ckpt_graph), resume_from=root
    )
    assert_runs_identical(resumed, golden)
    # The newest snapshot is the final (done) one: nothing is replayed.
    assert resumed.resumed_from == golden.num_supersteps
