"""Real crash injection: SIGKILL a process-backend worker mid-run.

The only crash the in-process harness cannot simulate is an actual
process death.  This test launches ``python -m repro pipeline`` as a
subprocess on the process backend, waits for the first snapshot to
land, then SIGKILLs one of the *worker children* (found via
``/proc/<pid>/task/<pid>/children``) — the coordinator sees the dead
pipe, raises ``BackendError`` and exits non-zero, exactly the failure
mode of an OOM-killed or crashed worker in production.  Resuming from
the surviving snapshots must then reproduce the golden uninterrupted
run bit-for-bit.

If the run finishes before the kill lands (fast machine), the test
still proves the full property: resuming from the final snapshot
replays nothing and reproduces the recorded result.
"""

import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.checkpoint import list_snapshots
from repro.pipeline import PipelineSpec, resume_pipeline, run_spec

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/proc"), reason="needs /proc to find worker children"
)


def _spec_dict(ckpt_dir):
    return {
        "source": "powerlaw?vertices=2500,seed=31",
        "partition": "ebv",
        "parts": 2,
        "app": "pr?pagerank_iters=120",
        "backend": "process",
        "checkpoint": {"dir": str(ckpt_dir), "every": 1, "keep": None},
    }


def _children_of(pid):
    try:
        with open(f"/proc/{pid}/task/{pid}/children") as fh:
            return [int(tok) for tok in fh.read().split()]
    except OSError:
        return []


def test_sigkilled_worker_child_then_resume_is_bit_identical(tmp_path):
    ckpt = tmp_path / "ck"
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(_spec_dict(ckpt)))

    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "pipeline", str(spec_path)],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        # Wait for the first snapshot, then SIGKILL one worker child.
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if list_snapshots(str(ckpt)) or proc.poll() is not None:
                break
            time.sleep(0.02)
        killed_a_child = False
        if proc.poll() is None:
            # Kill every child: the BSP workers (the resource tracker may
            # be among the children too — its death is harmless, but a
            # dead worker must crash the coordinator's barrier).
            for child in _children_of(proc.pid):
                try:
                    os.kill(child, signal.SIGKILL)
                    killed_a_child = True
                except OSError:
                    pass
        returncode = proc.wait(timeout=120)
    finally:
        if proc.poll() is None:  # pragma: no cover - safety net
            proc.kill()
            proc.wait()

    if killed_a_child:
        # The coordinator must crash loudly, never report success.
        assert returncode != 0
    snapshots = list_snapshots(str(ckpt))
    assert snapshots, "no snapshot survived the crash"

    # Golden uninterrupted run of the same spec (serial backend — the
    # backend is part of wall-clock, not of the results).
    golden_spec = _spec_dict(tmp_path / "golden-ck")
    golden_spec["backend"] = "serial"
    golden = run_spec(PipelineSpec.from_dict(golden_spec)).run

    resumed_result = resume_pipeline(str(ckpt))
    resumed = resumed_result.run
    assert resumed.resumed_from is not None
    assert resumed.num_supersteps == golden.num_supersteps
    assert np.array_equal(resumed.values, golden.values, equal_nan=True)
    assert resumed.total_messages == golden.total_messages
    assert resumed.comp == golden.comp
    assert resumed.comm == golden.comm
    assert resumed.delta_c == golden.delta_c
    for step, (a, b) in enumerate(zip(resumed.supersteps, golden.supersteps)):
        for field in ("work", "sent", "received", "comp_seconds", "comm_seconds"):
            assert np.array_equal(getattr(a, field), getattr(b, field)), (step, field)
