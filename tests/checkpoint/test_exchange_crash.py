"""Crash injection inside the worker-side exchange stage.

The exchange stage now runs in the process backend's children, so a
worker can die *mid-exchange* — after the compute barrier, with changed
masks and partials already published but the pull phases incomplete.
The contract is unchanged from every other crash point: the coordinator
must fail loudly (:class:`~repro.runtime.BackendError`), never publish
a half-exchanged result, and the snapshots written at earlier superstep
boundaries must resume to a run bit-identical to the golden
uninterrupted one.

The injection wraps the process backend so that at a chosen superstep a
SIGKILL lands on one worker child right as the exchange stage begins —
the in-process analogue of the ``test_sigkill_integration`` subprocess
test, precise enough to target the exchange stage specifically.
"""

import os
import signal

import numpy as np
import pytest

from repro.bsp import BSPEngine
from repro.checkpoint import list_snapshots
from repro.pipeline import APPS
from repro.runtime import Backend, BackendError, ProcessBackend


class _KillDuringExchange(Backend):
    """Process backend that SIGKILLs one child as exchange N starts."""

    name = "process"

    def __init__(self, kill_at_superstep: int):
        self._inner = ProcessBackend()
        self._kill_at = kill_at_superstep

    def session(self, dgraph, program):
        session = self._inner.session(dgraph, program)
        real_exchange = session.exchange_stage
        kill_at = self._kill_at

        def exchange_with_kill(superstep: int = 0):
            if superstep == kill_at:
                victim = session._processes[-1]
                os.kill(victim.pid, signal.SIGKILL)
                victim.join(timeout=30)
            return real_exchange(superstep)

        session.exchange_stage = exchange_with_kill
        return session


@pytest.mark.parametrize("app", ["cc", "pr"])
@pytest.mark.parametrize("p", [2, 4])
def test_sigkill_during_exchange_then_resume_is_bit_identical(
    tmp_path, ckpt_graph, ckpt_dgraphs, assert_runs_identical, app, p
):
    dgraph = ckpt_dgraphs[p]
    golden = BSPEngine().run(dgraph, APPS.create(app, ckpt_graph))
    kill_at = 1
    assert golden.num_supersteps > kill_at, "crash point must be mid-run"

    ckpt = tmp_path / f"ck-{app}-{p}"
    engine = BSPEngine(
        backend=_KillDuringExchange(kill_at),
        checkpoint_dir=str(ckpt),
        checkpoint_every=1,
        checkpoint_keep=None,
    )
    with pytest.raises(BackendError, match="died unexpectedly|worker pool is down"):
        engine.run(dgraph, APPS.create(app, ckpt_graph))

    # Only boundaries strictly before the killed exchange were written.
    snapshots = list_snapshots(str(ckpt))
    assert snapshots, "no snapshot survived the mid-exchange crash"
    boundaries = [int(os.path.basename(path).split("-")[1]) for path in snapshots]
    assert max(boundaries) == kill_at

    resumed = BSPEngine().run(
        dgraph, APPS.create(app, ckpt_graph), resume_from=str(ckpt)
    )
    assert resumed.resumed_from == kill_at
    assert_runs_identical(resumed, golden)


def test_killed_exchange_worker_does_not_poison_later_sessions(
    ckpt_graph, ckpt_dgraphs
):
    """After a mid-exchange kill, a fresh session on the same backend works."""
    dgraph = ckpt_dgraphs[2]
    backend = _KillDuringExchange(kill_at_superstep=0)
    with pytest.raises(BackendError):
        BSPEngine(backend=backend).run(dgraph, APPS.create("cc", ckpt_graph))
    # The wrapper kills at superstep 0 of *every* session, so run the
    # retry on a plain process backend: the point is that the crashed
    # session's teardown left shared memory and children cleaned up.
    run = BSPEngine(backend="process").run(dgraph, APPS.create("cc", ckpt_graph))
    ref = BSPEngine().run(dgraph, APPS.create("cc", ckpt_graph))
    assert np.array_equal(run.values, ref.values)
