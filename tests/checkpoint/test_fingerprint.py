"""Fingerprint unit tests: every parameter shape contributes to identity."""

import numpy as np
import pytest

from repro.bsp import BSPEngine, build_distributed_graph
from repro.bsp.program import MINIMIZE, ComputeResult, SubgraphProgram
from repro.checkpoint import CheckpointError, compute_fingerprint, verify_fingerprint
from repro.bsp.cost_model import CostModel
from repro.graph import powerlaw_graph
from repro.partition import EBVPartitioner


class _ParamProgram(SubgraphProgram):
    """Minimal program carrying every fingerprintable parameter shape."""

    mode = MINIMIZE
    name = "param-prog"

    def __init__(self, **params):
        for key, value in params.items():
            setattr(self, key, value)

    def initial_values(self, local):
        return np.zeros(local.num_vertices)

    def compute(self, local, values, active, superstep=0):
        return ComputeResult(
            changed=np.zeros(local.num_vertices, dtype=bool), work_units=0.0
        )


@pytest.fixture(scope="module")
def dgraph():
    g = powerlaw_graph(80, eta=2.2, min_degree=2, seed=5, name="fp")
    return build_distributed_graph(EBVPartitioner().partition(g, 2))


def _fp(dgraph, **params):
    return compute_fingerprint(dgraph, _ParamProgram(**params), CostModel(), 500)


@pytest.mark.parametrize(
    "a, b",
    [
        ({"thresholds": [0.1, 0.2]}, {"thresholds": [0.1, 0.3]}),
        ({"thresholds": [1, 2]}, {"thresholds": (1, 2)}),  # list vs tuple
        ({"config": {"k": 1}}, {"config": {"k": 2}}),
        ({"config": {"k": 1}}, {"config": {"j": 1}}),
        ({"weights": np.arange(4.0)}, {"weights": np.arange(4.0) + 1}),
        ({"scale": 1.0}, {"scale": 2.0}),
        ({"nested": [{"a": [1]}]}, {"nested": [{"a": [2]}]}),
    ],
)
def test_container_params_are_part_of_the_identity(dgraph, a, b):
    with pytest.raises(CheckpointError, match="fingerprint"):
        verify_fingerprint(_fp(dgraph, **a), _fp(dgraph, **b))


def test_identical_params_match(dgraph):
    params = {"thresholds": [0.1, 0.2], "config": {"k": 1}, "w": np.arange(3.0)}
    verify_fingerprint(_fp(dgraph, **params), _fp(dgraph, **params))


def test_unfingerprintable_params_are_excluded_not_fatal(dgraph):
    """Callables/rngs carry no stable identity; they are skipped."""
    verify_fingerprint(
        _fp(dgraph, hook=print, rng=np.random.default_rng(1)),
        _fp(dgraph, hook=len, rng=np.random.default_rng(2)),
    )


def test_private_attributes_never_enter_the_identity(dgraph):
    verify_fingerprint(_fp(dgraph, _cache=[1, 2]), _fp(dgraph, _cache=[3]))
