"""Engine-level checkpoint semantics: cadence, retention, fingerprints.

The crash matrix (``test_crash_matrix.py``) proves resume equivalence;
this module pins down the configuration surface around it — when
snapshots appear, how many survive, and that every flavour of
mismatched resume is rejected instead of silently corrupting results.
"""

import os

import numpy as np
import pytest

from repro.bsp import BSPEngine, CostModel, build_distributed_graph
from repro.checkpoint import (
    CheckpointError,
    list_snapshots,
    load_snapshot,
    restore_state,
)
from repro.graph import powerlaw_graph
from repro.partition import EBVPartitioner
from repro.pipeline import APPS

PR = "pr?pagerank_iters=8"


def _boundaries(root):
    return [int(os.path.basename(s).split("-")[1]) for s in list_snapshots(root)]


def test_cadence_plus_final_done_snapshot(ckpt_graph, ckpt_dgraphs, tmp_path):
    root = str(tmp_path)
    run = BSPEngine(checkpoint_dir=root, checkpoint_every=3, checkpoint_keep=None).run(
        ckpt_dgraphs[2], APPS.create(PR, ckpt_graph)
    )
    assert run.num_supersteps == 8
    # Due boundaries {3, 6} plus the forced final (done) snapshot at 8.
    assert _boundaries(root) == [3, 6, 8]
    finals = [load_snapshot(s).done for s in list_snapshots(root)]
    assert finals == [False, False, True]


def test_retention_default_keeps_two(ckpt_graph, ckpt_dgraphs, tmp_path):
    root = str(tmp_path)
    BSPEngine(checkpoint_dir=root, checkpoint_every=1).run(
        ckpt_dgraphs[2], APPS.create(PR, ckpt_graph)
    )
    assert _boundaries(root) == [7, 8]


def test_fresh_run_has_no_resume_provenance(ckpt_graph, ckpt_dgraphs, tmp_path):
    run = BSPEngine(checkpoint_dir=str(tmp_path)).run(
        ckpt_dgraphs[2], APPS.create("cc", ckpt_graph)
    )
    assert run.resumed_from is None


def test_resume_of_finished_run_replays_nothing(
    ckpt_graph, ckpt_dgraphs, tmp_path, assert_runs_identical
):
    root = str(tmp_path)
    golden = BSPEngine(checkpoint_dir=root, checkpoint_every=2).run(
        ckpt_dgraphs[4], APPS.create(PR, ckpt_graph)
    )
    resumed = BSPEngine().run(
        ckpt_dgraphs[4], APPS.create(PR, ckpt_graph), resume_from=root
    )
    assert_runs_identical(resumed, golden)
    assert resumed.resumed_from == golden.num_supersteps


def test_resumed_run_continues_checkpointing(
    ckpt_graph, ckpt_dgraphs, tmp_path, assert_runs_identical
):
    """Resume with a writer configured keeps snapshotting into the root."""
    root = str(tmp_path)
    golden = BSPEngine(
        checkpoint_dir=root, checkpoint_every=1, checkpoint_keep=None
    ).run(ckpt_dgraphs[2], APPS.create(PR, ckpt_graph))
    early = list_snapshots(root)[0]
    resumed = BSPEngine(
        checkpoint_dir=root, checkpoint_every=1, checkpoint_keep=None
    ).run(ckpt_dgraphs[2], APPS.create(PR, ckpt_graph), resume_from=early)
    assert_runs_identical(resumed, golden)
    assert _boundaries(root) == list(range(1, golden.num_supersteps + 1))


def test_bad_checkpoint_config_fails_at_construction(tmp_path):
    with pytest.raises(CheckpointError, match="checkpoint_every"):
        BSPEngine(checkpoint_dir=str(tmp_path), checkpoint_every=0)
    with pytest.raises(CheckpointError, match="checkpoint_keep"):
        BSPEngine(checkpoint_dir=str(tmp_path), checkpoint_keep=-1)


# ----------------------------------------------------------------------
# Stale-fingerprint rejection: every axis of run identity
# ----------------------------------------------------------------------


@pytest.fixture()
def pr_checkpoint(ckpt_graph, ckpt_dgraphs, tmp_path):
    root = str(tmp_path)
    BSPEngine(checkpoint_dir=root).run(ckpt_dgraphs[2], APPS.create(PR, ckpt_graph))
    return root


def test_rejects_different_app(pr_checkpoint, ckpt_graph, ckpt_dgraphs):
    with pytest.raises(CheckpointError, match="fingerprint"):
        BSPEngine().run(
            ckpt_dgraphs[2], APPS.create("cc", ckpt_graph), resume_from=pr_checkpoint
        )


def test_rejects_different_program_params(pr_checkpoint, ckpt_graph, ckpt_dgraphs):
    with pytest.raises(CheckpointError, match="fingerprint"):
        BSPEngine().run(
            ckpt_dgraphs[2],
            APPS.create("pr?pagerank_iters=4", ckpt_graph),
            resume_from=pr_checkpoint,
        )


def test_rejects_different_worker_count(pr_checkpoint, ckpt_graph, ckpt_dgraphs):
    with pytest.raises(CheckpointError, match="fingerprint"):
        BSPEngine().run(
            ckpt_dgraphs[4], APPS.create(PR, ckpt_graph), resume_from=pr_checkpoint
        )


def test_rejects_different_graph(pr_checkpoint, ckpt_graph):
    other = powerlaw_graph(220, eta=2.2, min_degree=2, seed=14, name="ckpt-pl")
    dg = build_distributed_graph(EBVPartitioner().partition(other, 2))
    with pytest.raises(CheckpointError, match="fingerprint"):
        BSPEngine().run(dg, APPS.create(PR, other), resume_from=pr_checkpoint)


def test_rejects_different_partition_layout(pr_checkpoint, ckpt_graph):
    from repro.partition import DBHPartitioner

    dg = build_distributed_graph(DBHPartitioner().partition(ckpt_graph, 2))
    with pytest.raises(CheckpointError, match="fingerprint"):
        BSPEngine().run(dg, APPS.create(PR, ckpt_graph), resume_from=pr_checkpoint)


def test_rejects_different_cost_model(pr_checkpoint, ckpt_graph, ckpt_dgraphs):
    engine = BSPEngine(cost_model=CostModel(seconds_per_message=123.0))
    with pytest.raises(CheckpointError, match="fingerprint"):
        engine.run(
            ckpt_dgraphs[2], APPS.create(PR, ckpt_graph), resume_from=pr_checkpoint
        )


def test_rejects_different_max_supersteps(pr_checkpoint, ckpt_graph, ckpt_dgraphs):
    with pytest.raises(CheckpointError, match="fingerprint"):
        BSPEngine(max_supersteps=7).run(
            ckpt_dgraphs[2], APPS.create(PR, ckpt_graph), resume_from=pr_checkpoint
        )


def test_corrupted_snapshot_rejected_through_engine(
    pr_checkpoint, ckpt_graph, ckpt_dgraphs
):
    snap = list_snapshots(pr_checkpoint)[-1]
    state = os.path.join(snap, "state.npz")
    raw = bytearray(open(state, "rb").read())
    raw[len(raw) // 2] ^= 0xFF
    open(state, "wb").write(bytes(raw))
    with pytest.raises(CheckpointError, match="[Cc]hecksum"):
        BSPEngine().run(
            ckpt_dgraphs[2], APPS.create(PR, ckpt_graph), resume_from=snap
        )


def test_restore_state_validates_before_touching_anything(
    pr_checkpoint, ckpt_graph, ckpt_dgraphs
):
    """A kind/shape mismatch fails atomically (no half-restored arrays)."""
    from repro.runtime import SerialBackend

    snap = load_snapshot(pr_checkpoint)
    with SerialBackend().session(
        ckpt_dgraphs[2], APPS.create("cc", ckpt_graph)
    ) as session:
        before = [v.copy() for v in session.state.values]
        with pytest.raises(CheckpointError, match="array kinds"):
            restore_state(session.state, snap.arrays)  # pr arrays, cc session
        for got, want in zip(session.state.values, before):
            assert np.array_equal(got, want)


def test_fresh_run_clears_stale_snapshots_from_previous_run(
    ckpt_graph, ckpt_dgraphs, tmp_path, assert_runs_identical
):
    """Reusing a checkpoint dir for a new run must not mix the two runs."""
    root = str(tmp_path)
    BSPEngine(checkpoint_dir=root).run(ckpt_dgraphs[2], APPS.create(PR, ckpt_graph))
    stale = set(list_snapshots(root))
    # Fresh run with a *different* program into the same directory.
    golden = BSPEngine().run(ckpt_dgraphs[2], APPS.create("cc", ckpt_graph))
    BSPEngine(checkpoint_dir=root, checkpoint_every=1, checkpoint_keep=None).run(
        ckpt_dgraphs[2], APPS.create("cc", ckpt_graph)
    )
    assert not stale & set(list_snapshots(root)), "stale snapshots survived"
    # And the root now resumes the NEW run, not the old one.
    resumed = BSPEngine().run(
        ckpt_dgraphs[2], APPS.create("cc", ckpt_graph), resume_from=root
    )
    assert_runs_identical(resumed, golden)


def test_root_resume_falls_back_past_a_damaged_newest_snapshot(
    ckpt_graph, ckpt_dgraphs, tmp_path, assert_runs_identical
):
    """A snapshot torn by the crash itself must not make the run unresumable."""
    root = str(tmp_path)
    golden = BSPEngine(
        checkpoint_dir=root, checkpoint_every=1, checkpoint_keep=None
    ).run(ckpt_dgraphs[2], APPS.create(PR, ckpt_graph))
    newest = list_snapshots(root)[-1]
    state = os.path.join(newest, "state.npz")
    raw = bytearray(open(state, "rb").read())
    raw[len(raw) // 2] ^= 0xFF
    open(state, "wb").write(bytes(raw))
    resumed = BSPEngine().run(
        ckpt_dgraphs[2], APPS.create(PR, ckpt_graph), resume_from=root
    )
    assert_runs_identical(resumed, golden)
    assert resumed.resumed_from == golden.num_supersteps - 1
    # Naming the damaged snapshot explicitly stays a hard error.
    with pytest.raises(CheckpointError, match="[Cc]hecksum"):
        BSPEngine().run(
            ckpt_dgraphs[2], APPS.create(PR, ckpt_graph), resume_from=newest
        )
