"""Kill-a-worker recovery on the socket backend.

The socket backend's spawned-local sessions can *replace* dead workers:
``BSPEngine(..., max_recoveries=N)`` catches the typed
:class:`~repro.runtime.WorkerLostError`, respawns the dead shard's
process, pushes the newest fingerprint-valid snapshot into the whole
pool (replacements come up with initial state, survivors have advanced
past the boundary) and replays.  The contract is the same bit-identity
bar as a manual resume: the recovered run must equal the golden
uninterrupted one in every deterministic field — values, superstep
count, work/message tallies, cost-model accounting — and the snapshots
it keeps writing must be byte-identical to a serial run's.
"""

import hashlib
import json
import os

import numpy as np
import pytest

from repro.bsp import BSPEngine
from repro.checkpoint import list_snapshots
from repro.pipeline import APPS
from repro.runtime import Backend, BackendError, SocketBackend, WorkerLostError


class _KillWorkerOnce(Backend):
    """Socket backend that SIGKILLs one spawned worker as exchange N starts.

    One-shot by default: the replayed superstep after recovery runs
    unharmed, so a single ``max_recoveries=1`` budget must carry the run
    to completion.  ``once=False`` re-kills on every replay of the same
    superstep — the budget-exhaustion case.
    """

    name = "socket"

    def __init__(self, kill_at_superstep: int, once: bool = True):
        self._inner = SocketBackend()
        self._kill_at = kill_at_superstep
        self._once = once
        self.killed = False
        self.last_session = None

    def session(self, dgraph, program):
        session = self._inner.session(dgraph, program)
        self.last_session = session
        real = session.exchange_stage

        def exchange_with_kill(superstep: int = 0):
            if superstep == self._kill_at and (not self.killed or not self._once):
                self.killed = True
                victim = session._procs[-1]
                victim.kill()
                victim.wait(timeout=30)
            return real(superstep)

        session.exchange_stage = exchange_with_kill
        return session


@pytest.mark.parametrize("app", ["cc", "pr"])
@pytest.mark.parametrize("p", [4])
def test_killed_worker_recovers_to_bit_identical_run(
    tmp_path, ckpt_graph, ckpt_dgraphs, assert_runs_identical, app, p
):
    dgraph = ckpt_dgraphs[p]
    golden = BSPEngine().run(dgraph, APPS.create(app, ckpt_graph))
    kill_at = 1
    assert golden.num_supersteps > kill_at, "crash point must be mid-run"

    backend = _KillWorkerOnce(kill_at)
    engine = BSPEngine(
        backend=backend,
        checkpoint_dir=str(tmp_path / f"rec-{app}-{p}"),
        checkpoint_every=1,
        checkpoint_keep=None,
        max_recoveries=1,
    )
    recovered = engine.run(dgraph, APPS.create(app, ckpt_graph))
    assert backend.killed, "the injection never fired"
    assert_runs_identical(recovered, golden)


def test_recovery_budget_exhausts_to_the_typed_error(
    tmp_path, ckpt_graph, ckpt_dgraphs
):
    """A second loss with max_recoveries=1 re-raises WorkerLostError."""
    backend = _KillWorkerOnce(1, once=False)  # every replay dies again
    engine = BSPEngine(
        backend=backend,
        checkpoint_dir=str(tmp_path / "rec-exhaust"),
        checkpoint_every=1,
        checkpoint_keep=None,
        max_recoveries=1,
    )
    with pytest.raises(WorkerLostError, match="died unexpectedly") as excinfo:
        engine.run(ckpt_dgraphs[4], APPS.create("cc", ckpt_graph))
    assert excinfo.value.worker_id == 3


def test_no_recovery_budget_keeps_worker_death_fail_fast(
    tmp_path, ckpt_graph, ckpt_dgraphs
):
    """Default max_recoveries=0: same loud failure as every other
    backend, snapshots intact for a manual resume."""
    backend = _KillWorkerOnce(1)
    ckpt = tmp_path / "rec-failfast"
    engine = BSPEngine(
        backend=backend,
        checkpoint_dir=str(ckpt),
        checkpoint_every=1,
        checkpoint_keep=None,
    )
    with pytest.raises(BackendError, match="died unexpectedly|worker pool is down"):
        engine.run(ckpt_dgraphs[4], APPS.create("cc", ckpt_graph))
    assert list_snapshots(str(ckpt)), "no snapshot survived the crash"


def test_manual_resume_after_socket_crash_is_bit_identical(
    tmp_path, ckpt_graph, ckpt_dgraphs, assert_runs_identical
):
    """The socket analogue of the process-backend exchange-crash test."""
    dgraph = ckpt_dgraphs[2]
    golden = BSPEngine().run(dgraph, APPS.create("cc", ckpt_graph))
    backend = _KillWorkerOnce(1)
    ckpt = tmp_path / "rec-resume"
    engine = BSPEngine(
        backend=backend,
        checkpoint_dir=str(ckpt),
        checkpoint_every=1,
        checkpoint_keep=None,
    )
    with pytest.raises(BackendError, match="died unexpectedly|worker pool is down"):
        engine.run(dgraph, APPS.create("cc", ckpt_graph))

    resumed = BSPEngine(backend=SocketBackend()).run(
        dgraph, APPS.create("cc", ckpt_graph), resume_from=str(ckpt)
    )
    assert_runs_identical(resumed, golden)


def test_external_endpoint_sessions_refuse_recovery(ckpt_graph, ckpt_dgraphs):
    """The coordinator cannot respawn a worker it did not launch."""
    with SocketBackend().session(
        ckpt_dgraphs[2], APPS.create("cc", ckpt_graph)
    ) as session:
        assert session.supports_recovery
        # Flip the provenance flag to an externally-launched pool: the
        # engine must not even try (it gates on supports_recovery), and
        # a direct call refuses explicitly.
        session._spawned = False
        assert not session.supports_recovery
        with pytest.raises(BackendError, match="cannot recover"):
            session.recover_workers()


def _snapshot_checksums(ckpt_dir):
    """{snapshot dir: payload sha256s} from the manifests."""
    out = {}
    for entry in sorted(os.listdir(ckpt_dir)):
        manifest = os.path.join(ckpt_dir, entry, "manifest.json")
        if not os.path.isfile(manifest):
            continue
        with open(manifest) as fh:
            data = json.load(fh)
        out[entry] = {name: info["sha256"] for name, info in data["files"].items()}
    assert out, f"no snapshots under {ckpt_dir}"
    return out


@pytest.mark.parametrize("app", ["cc", "pr"])
def test_socket_checkpoints_are_byte_identical_to_serial(
    tmp_path, ckpt_graph, ckpt_dgraphs, app
):
    """Snapshot payload SHA-256s must match the serial reference exactly
    — state that round-tripped the wire is the same state."""
    dgraph = ckpt_dgraphs[2]
    for backend in ("serial", "socket"):
        BSPEngine(
            backend=backend,
            checkpoint_dir=str(tmp_path / f"ck-{backend}"),
            checkpoint_every=1,
            checkpoint_keep=None,
        ).run(dgraph, APPS.create(app, ckpt_graph))
    assert _snapshot_checksums(tmp_path / "ck-serial") == _snapshot_checksums(
        tmp_path / "ck-socket"
    )


def test_recovered_values_match_final_gather(tmp_path, ckpt_graph, ckpt_dgraphs):
    """Cross-check: sha256 of the recovered run's gathered values equals
    the golden run's — catches divergence past the checkpoint layer."""
    dgraph = ckpt_dgraphs[4]
    golden = BSPEngine().run(dgraph, APPS.create("pr", ckpt_graph))
    backend = _KillWorkerOnce(1)
    recovered = BSPEngine(
        backend=backend,
        checkpoint_dir=str(tmp_path / "rec-hash"),
        checkpoint_every=1,
        max_recoveries=1,
    ).run(dgraph, APPS.create("pr", ckpt_graph))
    assert backend.killed
    digest = lambda run: hashlib.sha256(
        np.ascontiguousarray(run.values).tobytes()
    ).hexdigest()
    assert digest(recovered) == digest(golden)
