"""Resume-equivalence across the full APPS registry × every backend.

Snapshots written by one backend must resume bit-identically on *any*
backend: the snapshot captures engine-side state arrays, and every
backend — including the process backend, whose persistent children map
the state through ``multiprocessing.shared_memory`` — observes the
restored values exactly as it observes exchange-stage writes.  The
sweep resumes serial-written snapshots on all three backends at crash
points {1, mid, last}, and separately proves the reverse direction:
snapshots written *by* a process-backend run resume on the serial
reference.
"""

import os

import pytest

from repro.bsp import BSPEngine
from repro.checkpoint import list_snapshots
from repro.pipeline import APPS

PARTS = (2, 4)
BACKENDS = ("serial", "thread", "process")


def _app_spec(name: str) -> str:
    """Registry name -> spec (pagerank capped to keep the sweep fast)."""
    return "pr?pagerank_iters=6" if name == "pr" else name


@pytest.fixture(scope="module")
def goldens(ckpt_graph, ckpt_dgraphs, tmp_path_factory):
    """Serial golden + serial-written every-boundary snapshots per (app, p)."""
    out = {}
    for name in APPS.names():
        app = _app_spec(name)
        for p in PARTS:
            golden = BSPEngine().run(ckpt_dgraphs[p], APPS.create(app, ckpt_graph))
            root = str(tmp_path_factory.mktemp("backend-resume"))
            BSPEngine(
                checkpoint_dir=root, checkpoint_every=1, checkpoint_keep=None
            ).run(ckpt_dgraphs[p], APPS.create(app, ckpt_graph))
            out[(name, p)] = (golden, root)
    return out


def _crash_points(root, num_supersteps):
    """Snapshot dirs for boundaries {1, mid, last} (deduplicated)."""
    snaps = {
        int(os.path.basename(s).split("-")[1]): s for s in list_snapshots(root)
    }
    picks = sorted({1, max(1, num_supersteps // 2), num_supersteps})
    return [snaps[k] for k in picks]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("p", PARTS)
@pytest.mark.parametrize("name", APPS.names())
def test_resume_on_every_backend_matches_serial_golden(
    name, p, backend, goldens, ckpt_graph, ckpt_dgraphs, assert_runs_identical
):
    golden, root = goldens[(name, p)]
    for snap in _crash_points(root, golden.num_supersteps):
        resumed = BSPEngine(backend=backend).run(
            ckpt_dgraphs[p], APPS.create(_app_spec(name), ckpt_graph), resume_from=snap
        )
        assert resumed.backend == backend
        assert_runs_identical(resumed, golden)


@pytest.mark.parametrize("name", ("cc", "pr"))
def test_process_written_snapshots_resume_on_serial(
    name, goldens, ckpt_graph, ckpt_dgraphs, tmp_path, assert_runs_identical
):
    """The shared-memory session state checkpoints and restores exactly."""
    golden, _ = goldens[(name, 2)]
    root = str(tmp_path / "process-written")
    BSPEngine(
        backend="process", checkpoint_dir=root, checkpoint_every=1,
        checkpoint_keep=None,
    ).run(ckpt_dgraphs[2], APPS.create(_app_spec(name), ckpt_graph))
    for snap in _crash_points(root, golden.num_supersteps):
        resumed = BSPEngine().run(
            ckpt_dgraphs[2], APPS.create(_app_spec(name), ckpt_graph), resume_from=snap
        )
        assert resumed.backend == "serial"
        assert_runs_identical(resumed, golden)
