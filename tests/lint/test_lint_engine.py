"""Engine behavior: caching, parse errors, and self-lint of the real tree."""

from repro.lint import run_lint

BAD = """\
def endpoints(u, v, out):
    for w in {u, v}:
        out.append(w)
"""


class TestCache:
    def test_second_run_hits_cache_with_same_findings(self, tmp_path):
        src = tmp_path / "partition"
        src.mkdir()
        (src / "a.py").write_text(BAD, encoding="utf-8")
        cache = tmp_path / "cache.json"

        first = run_lint(tmp_path, rule_ids=["determinism"], cache_path=cache)
        assert first.cache_hits == 0
        assert len(first.findings) == 1

        second = run_lint(tmp_path, rule_ids=["determinism"], cache_path=cache)
        assert second.cache_hits == second.files_scanned == 1
        assert [f.to_dict() for f in second.findings] == [
            f.to_dict() for f in first.findings
        ]

    def test_edited_file_invalidates_its_entry(self, tmp_path):
        src = tmp_path / "partition"
        src.mkdir()
        (src / "a.py").write_text(BAD, encoding="utf-8")
        cache = tmp_path / "cache.json"
        run_lint(tmp_path, rule_ids=["determinism"], cache_path=cache)

        (src / "a.py").write_text("def endpoints(u, v, out):\n    out.append(u)\n")
        report = run_lint(tmp_path, rule_ids=["determinism"], cache_path=cache)
        assert report.cache_hits == 0
        assert report.findings == []

    def test_corrupt_cache_is_ignored(self, tmp_path):
        src = tmp_path / "partition"
        src.mkdir()
        (src / "a.py").write_text(BAD, encoding="utf-8")
        cache = tmp_path / "cache.json"
        cache.write_text("{not json", encoding="utf-8")
        report = run_lint(tmp_path, rule_ids=["determinism"], cache_path=cache)
        assert len(report.findings) == 1


class TestParseErrors:
    def test_syntax_error_becomes_finding(self, lint_tree):
        report = lint_tree({"apps/broken.py": "def f(:\n"})
        assert [f.rule for f in report.findings] == ["parse-error"]
        assert report.exit_code == 1


class TestSelfLint:
    def test_src_repro_is_clean_at_head(self):
        """The acceptance bar: the shipped tree lints clean, no baseline needed."""
        report = run_lint(use_cache=False)
        assert report.findings == [], "\n".join(f.render() for f in report.findings)
        assert report.exit_code == 0
        assert report.files_scanned > 80
