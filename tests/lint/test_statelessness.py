"""program-statelessness: the PR-5 ``_built`` bug class stays dead."""

from lintutil import rule_ids

RULE = ["program-statelessness"]


class TestFires:
    def test_pr5_built_flag_regression(self, lint_tree):
        """The exact PR-5 bug: CC caching a one-shot flag on self in compute."""
        report = lint_tree(
            {
                "apps/cc.py": """\
                from repro.bsp.program import SubgraphProgram

                class ConnectedComponents(SubgraphProgram):
                    def __init__(self):
                        self._built = False

                    def compute(self, local, values, active, superstep):
                        if not self._built:
                            self._built = True
                        return values
                """
            },
            rules=RULE,
        )
        assert rule_ids(report) == ["program-statelessness"]
        assert "_built" in report.findings[0].message
        assert report.exit_code == 1

    def test_transitive_subclass_and_augassign(self, lint_tree):
        report = lint_tree(
            {
                "apps/deep.py": """\
                from repro.bsp.program import SubgraphProgram

                class Base(SubgraphProgram):
                    pass

                class Derived(Base):
                    def compute(self, local, values, active, superstep):
                        self.calls += 1
                        return values
                """
            },
            rules=RULE,
        )
        assert rule_ids(report) == ["program-statelessness"]

    def test_subscript_and_delete_writes(self, lint_tree):
        report = lint_tree(
            {
                "apps/cachey.py": """\
                from repro.bsp.program import SubgraphProgram

                class P(SubgraphProgram):
                    def __init__(self):
                        self.cache = {}

                    def compute(self, local, values, active, superstep):
                        self.cache[superstep] = values
                        return values

                    def reset(self):
                        del self.cache
                """
            },
            rules=RULE,
        )
        assert len(report.findings) == 2

    def test_write_in_nested_function(self, lint_tree):
        report = lint_tree(
            {
                "apps/nested.py": """\
                from repro.bsp.program import SubgraphProgram

                class P(SubgraphProgram):
                    def compute(self, local, values, active, superstep):
                        def helper():
                            self.sneaky = 1
                        helper()
                        return values
                """
            },
            rules=RULE,
        )
        assert rule_ids(report) == ["program-statelessness"]


class TestQuiet:
    def test_init_writes_pass(self, lint_tree):
        report = lint_tree(
            {
                "apps/good.py": """\
                from repro.bsp.program import SubgraphProgram

                class P(SubgraphProgram):
                    def __init__(self, seed):
                        self.seed = seed
                        self.mode = "minimize"

                    def compute(self, local, values, active, superstep):
                        limit = self.seed + superstep
                        return values * limit
                """
            },
            rules=RULE,
        )
        assert report.findings == []
        assert report.exit_code == 0

    def test_non_program_classes_pass(self, lint_tree):
        report = lint_tree(
            {
                "apps/other.py": """\
                class Accumulator:
                    def bump(self):
                        self.total = getattr(self, "total", 0) + 1
                """
            },
            rules=RULE,
        )
        assert report.findings == []
