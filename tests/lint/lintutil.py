"""Tiny helpers shared by the lint test modules."""


def rule_ids(report):
    return [f.rule for f in report.findings]
