"""registry-spec: spec literals validated against the live registries."""

from lintutil import rule_ids

RULE = ["registry-spec"]


class TestFires:
    def test_unknown_option_rejected(self, lint_tree):
        report = lint_tree(
            {
                "experiments/custom.py": """\
                APP_SPEC = "cc?bogus_option=1"
                """
            },
            rules=RULE,
        )
        assert rule_ids(report) == ["registry-spec"]
        assert "bogus_option" in report.findings[0].message

    def test_unknown_component_rejected(self, lint_tree):
        report = lint_tree(
            {
                "experiments/typo.py": """\
                METHOD = "ebw?alpha=2"
                """
            },
            rules=RULE,
        )
        assert rule_ids(report) == ["registry-spec"]
        assert "unknown component" in report.findings[0].message


class TestQuiet:
    def test_valid_specs_pass(self, lint_tree):
        report = lint_tree(
            {
                "experiments/ok.py": """\
                APP = "cc?local_convergence=false"
                PR = "pr?pagerank_iters=10"
                """
            },
            rules=RULE,
        )
        assert report.findings == []

    def test_non_spec_strings_ignored(self, lint_tree):
        report = lint_tree(
            {
                "experiments/strings.py": """\
                QUERY = "what?answer=42 with spaces"
                URL = "https://example.com/a?b=c"
                DOC = "plain prose"
                """
            },
            rules=RULE,
        )
        assert report.findings == []

    def test_docstrings_ignored(self, lint_tree):
        report = lint_tree(
            {
                "experiments/doc.py": '''\
                """nosuchthing?opt=1"""

                def f():
                    """another?bad=spec"""
                ''',
            },
            rules=RULE,
        )
        assert report.findings == []


class TestRegistryAudit:
    def test_live_registries_are_sound(self):
        """Every registered factory passes the audit on the real registries.py."""
        from pathlib import Path

        import repro
        from repro.lint import run_lint

        registries_py = Path(repro.__file__).parent / "pipeline" / "registries.py"
        report = run_lint(registries_py, rule_ids=RULE, use_cache=False)
        assert report.findings == []
