"""determinism: unseeded RNGs, wall-clock reads, unordered-set iteration."""

from lintutil import rule_ids

RULE = ["determinism"]


class TestFires:
    def test_wall_clock_module_call(self, lint_tree):
        report = lint_tree(
            {
                "partition/stamp.py": """\
                import time

                def assign(edges):
                    return time.time()
                """
            },
            rules=RULE,
        )
        assert rule_ids(report) == ["determinism"]
        assert "time.time" in report.findings[0].message

    def test_wall_clock_from_import(self, lint_tree):
        report = lint_tree(
            {
                "apps/stamp.py": """\
                from datetime import datetime

                def label():
                    return datetime.now()
                """
            },
            rules=RULE,
        )
        assert rule_ids(report) == ["determinism"]

    def test_global_numpy_rng(self, lint_tree):
        report = lint_tree(
            {
                "partition/shuffle.py": """\
                import numpy as np

                def scramble(a):
                    np.random.shuffle(a)
                    return a
                """
            },
            rules=RULE,
        )
        assert rule_ids(report) == ["determinism"]

    def test_unseeded_default_rng(self, lint_tree):
        report = lint_tree(
            {
                "graph/gen.py": """\
                import numpy as np

                def noise(n):
                    rng = np.random.default_rng()
                    return rng.random(n)
                """
            },
            rules=RULE,
        )
        assert rule_ids(report) == ["determinism"]
        assert "unseeded" in report.findings[0].message

    def test_global_stdlib_random(self, lint_tree):
        report = lint_tree(
            {
                "stream/pick.py": """\
                import random

                def pick(items):
                    return random.choice(items)
                """
            },
            rules=RULE,
        )
        assert rule_ids(report) == ["determinism"]

    def test_set_iteration_in_for(self, lint_tree):
        report = lint_tree(
            {
                "partition/ends.py": """\
                def endpoints(u, v, out):
                    for w in {u, v}:
                        out.append(w)
                """
            },
            rules=RULE,
        )
        assert rule_ids(report) == ["determinism"]

    def test_list_of_set(self, lint_tree):
        report = lint_tree(
            {
                "bsp/order.py": """\
                def order(parts):
                    return list(set(parts))
                """
            },
            rules=RULE,
        )
        assert rule_ids(report) == ["determinism"]

    def test_comprehension_over_set_union(self, lint_tree):
        report = lint_tree(
            {
                "checkpoint/keys.py": """\
                def merged(a, b):
                    return [k for k in set(a) | set(b)]
                """
            },
            rules=RULE,
        )
        assert rule_ids(report) == ["determinism"]


class TestQuiet:
    def test_seeded_rng_and_perf_counter(self, lint_tree):
        report = lint_tree(
            {
                "partition/good.py": """\
                import time

                import numpy as np

                def assign(edges, seed):
                    t0 = time.perf_counter()
                    rng = np.random.default_rng(seed)
                    order = rng.permutation(len(edges))
                    return order, time.perf_counter() - t0
                """
            },
            rules=RULE,
        )
        assert report.findings == []

    def test_sorted_set_passes(self, lint_tree):
        report = lint_tree(
            {
                "checkpoint/keys.py": """\
                def merged(a, b):
                    return sorted(set(a) | set(b))

                def total(s):
                    return sum(x for x in set(s))
                """
            },
            rules=RULE,
        )
        assert report.findings == []

    def test_cold_paths_exempt(self, lint_tree):
        """analysis/ and cli-level timing is recorded output, not a result input."""
        report = lint_tree(
            {
                "analysis/report.py": """\
                import time

                def stamp():
                    return time.time()
                """
            },
            rules=RULE,
        )
        assert report.findings == []

    def test_method_named_today_passes(self, lint_tree):
        report = lint_tree(
            {
                "apps/calendar_app.py": """\
                def schedule(self_like):
                    return self_like.date.today()
                """
            },
            rules=RULE,
        )
        assert report.findings == []


class TestObsPackage:
    """obs/ is a hot prefix; only the audited exemptions pass."""

    def test_obs_wall_clock_fires(self, lint_tree):
        report = lint_tree(
            {
                "obs/sneaky.py": """\
                import time

                def stamp():
                    return time.time()
                """
            },
            rules=RULE,
        )
        assert rule_ids(report) == ["determinism"]

    def test_audited_exemption_is_quiet(self, lint_tree):
        """The one blessed call site: trace.py's header wall stamp."""
        report = lint_tree(
            {
                "obs/trace.py": """\
                import time

                def header_stamp():
                    return time.time()
                """
            },
            rules=RULE,
        )
        assert report.findings == []

    def test_exemption_is_per_call_not_per_module(self, lint_tree):
        """Other wall-clock calls in the exempted module still fire."""
        report = lint_tree(
            {
                "obs/trace.py": """\
                import time
                import uuid

                def header_stamp():
                    return time.time()

                def label():
                    return uuid.uuid4()
                """
            },
            rules=RULE,
        )
        assert rule_ids(report) == ["determinism"]
        assert "uuid.uuid4" in report.findings[0].message

    def test_exemption_resolves_through_alias(self, lint_tree):
        """``import time as t; t.time()`` matches the same exemption."""
        report = lint_tree(
            {
                "obs/trace.py": """\
                import time as t

                def header_stamp():
                    return t.time()
                """
            },
            rules=RULE,
        )
        assert report.findings == []

    def test_from_import_in_exempted_module_is_quiet(self, lint_tree):
        report = lint_tree(
            {
                "obs/trace.py": """\
                from time import time

                def header_stamp():
                    return time()
                """
            },
            rules=RULE,
        )
        assert report.findings == []

    def test_exemption_does_not_leak_to_other_modules(self, lint_tree):
        report = lint_tree(
            {
                "obs/metrics.py": """\
                import time

                def stamp():
                    return time.time()
                """
            },
            rules=RULE,
        )
        assert rule_ids(report) == ["determinism"]

    def test_monotonic_in_obs_is_fine(self, lint_tree):
        report = lint_tree(
            {
                "obs/spans.py": """\
                import time

                def now_ns():
                    return time.monotonic_ns()
                """
            },
            rules=RULE,
        )
        assert report.findings == []

    def test_real_exemption_matches_shipped_source(self):
        """The allowlist key must track the actual call in repro.obs.trace."""
        from repro.lint.rules.determinism import WALL_CLOCK_EXEMPTIONS

        assert ("obs/trace.py", "time.time") in WALL_CLOCK_EXEMPTIONS
        for (rel, call), why in WALL_CLOCK_EXEMPTIONS.items():
            assert why.strip(), f"exemption ({rel}, {call}) must justify itself"
