"""Shared fixtures for the lint suite: tiny on-disk package trees.

Rules scope themselves by path prefix relative to the lint root
(``apps/``, ``runtime/``, ...), so fixture files are written into a
temporary tree that mimics the ``src/repro`` layout and linted with the
tree root as the scan root.
"""

import textwrap

import pytest

from repro.lint import run_lint


@pytest.fixture
def lint_tree(tmp_path):
    """Write ``{relpath: source}`` files under a temp tree and lint it."""

    def _lint(files, rules=None, **kwargs):
        for rel, source in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source), encoding="utf-8")
        kwargs.setdefault("use_cache", False)
        return run_lint(tmp_path, rule_ids=rules, **kwargs)

    _lint.root = tmp_path
    return _lint
