"""process-safety: picklable pool targets, paired shared-memory lifecycles."""

from lintutil import rule_ids

RULE = ["process-safety"]


class TestFires:
    def test_lambda_process_target(self, lint_tree):
        report = lint_tree(
            {
                "runtime/bad_pool.py": """\
                import multiprocessing

                def launch():
                    p = multiprocessing.Process(target=lambda: None)
                    p.start()
                """
            },
            rules=RULE,
        )
        assert rule_ids(report) == ["process-safety"]
        assert "lambda" in report.findings[0].message

    def test_closure_submitted_to_pool(self, lint_tree):
        report = lint_tree(
            {
                "runtime/bad_submit.py": """\
                from concurrent.futures import ProcessPoolExecutor

                def launch(items):
                    def work(item):
                        return item * 2
                    with ProcessPoolExecutor() as pool:
                        return [f.result() for f in [pool.submit(work, i) for i in items]]
                """
            },
            rules=RULE,
        )
        assert rule_ids(report) == ["process-safety"]
        assert "closure" in report.findings[0].message

    def test_unpaired_shm_create(self, lint_tree):
        report = lint_tree(
            {
                "runtime/leaky.py": """\
                from multiprocessing.shared_memory import SharedMemory

                def allocate(nbytes):
                    return SharedMemory(create=True, size=nbytes)
                """
            },
            rules=RULE,
        )
        assert rule_ids(report) == ["process-safety"]
        assert "leak" in report.findings[0].message

    def test_unpaired_helper_create(self, lint_tree):
        report = lint_tree(
            {
                "runtime/leaky_helper.py": """\
                from repro.runtime.shm import create_shared_array

                def allocate(template):
                    shm, array, spec = create_shared_array(template)
                    return array
                """
            },
            rules=RULE,
        )
        assert rule_ids(report) == ["process-safety"]


class TestQuiet:
    def test_module_level_target_passes(self, lint_tree):
        report = lint_tree(
            {
                "runtime/good_pool.py": """\
                import multiprocessing

                def _worker(conn):
                    conn.close()

                def launch(conn):
                    p = multiprocessing.Process(target=_worker, args=(conn,))
                    p.start()
                    return p
                """
            },
            rules=RULE,
        )
        assert report.findings == []

    def test_paired_shm_passes(self, lint_tree):
        report = lint_tree(
            {
                "runtime/tidy.py": """\
                from multiprocessing.shared_memory import SharedMemory

                def roundtrip(nbytes):
                    shm = SharedMemory(create=True, size=nbytes)
                    try:
                        return bytes(shm.buf[:1])
                    finally:
                        shm.close()
                        shm.unlink()
                """
            },
            rules=RULE,
        )
        assert report.findings == []

    def test_real_process_backend_passes(self):
        """runtime/process.py + shm.py obey the pairing discipline for real."""
        from pathlib import Path

        import repro
        from repro.lint import run_lint

        runtime_dir = Path(repro.__file__).parent / "runtime"
        report = run_lint(runtime_dir, rule_ids=RULE, use_cache=False)
        assert report.findings == []
