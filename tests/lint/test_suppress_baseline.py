"""Suppression comments, baseline semantics, and the CLI exit-code contract."""

import json

from repro.cli import main
from repro.lint import Baseline, Finding
from repro.lint.suppress import collect_suppressions, is_suppressed

BAD_SET_ITER = """\
def endpoints(u, v, out):
    for w in {u, v}:
        out.append(w)
"""

BAD_SET_ITER_SAMELINE = """\
def endpoints(u, v, out):
    for w in {u, v}:  # repro: lint-ignore[determinism]
        out.append(w)
"""

BAD_SET_ITER_ABOVE = """\
def endpoints(u, v, out):
    # hash order is irrelevant here: out is re-sorted by the caller
    # repro: lint-ignore[determinism]
    for w in {u, v}:
        out.append(w)
"""


class TestSuppressionParsing:
    def test_same_line_and_comment_above(self):
        lines = [
            "x = 1  # repro: lint-ignore[determinism]",
            "# repro: lint-ignore[worker-purity, process-safety]",
            "",
            "y = 2",
        ]
        supp = collect_suppressions(lines)
        assert supp[1] == {"determinism"}
        assert supp[4] == {"worker-purity", "process-safety"}

    def test_is_suppressed_matches_rule_and_line(self):
        supp = {3: {"determinism"}}
        hit = Finding(rule="determinism", path="a.py", line=3, col=0, message="m")
        miss_rule = Finding(rule="worker-purity", path="a.py", line=3, col=0, message="m")
        miss_line = Finding(rule="determinism", path="a.py", line=4, col=0, message="m")
        assert is_suppressed(hit, supp)
        assert not is_suppressed(miss_rule, supp)
        assert not is_suppressed(miss_line, supp)


class TestSuppressionThroughEngine:
    def test_both_comment_styles_silence(self, lint_tree):
        report = lint_tree(
            {
                "partition/a.py": BAD_SET_ITER_SAMELINE,
                "partition/b.py": BAD_SET_ITER_ABOVE,
            },
            rules=["determinism"],
        )
        assert report.findings == []
        assert len(report.suppressed) == 2
        assert report.exit_code == 0


class TestBaseline:
    def test_partition_consumes_count_budget(self):
        f = Finding(rule="r", path="p.py", line=1, col=0, message="m")
        again = Finding(rule="r", path="p.py", line=9, col=0, message="m")
        baseline = Baseline.from_findings([f])
        new, carried = baseline.partition([f, again])
        assert carried == [f] and new == [again]

    def test_round_trip(self, tmp_path):
        f = Finding(rule="r", path="p.py", line=1, col=0, message="m")
        Baseline.from_findings([f, f]).save(tmp_path / "b.json")
        loaded = Baseline.load(tmp_path / "b.json")
        assert len(loaded) == 2
        new, carried = loaded.partition([f, f, f])
        assert len(carried) == 2 and len(new) == 1

    def test_missing_file_is_empty(self, tmp_path):
        assert len(Baseline.load(tmp_path / "nope.json")) == 0


class TestCliExitCodes:
    """The ISSUE's contract: ignored -> 0, baselined -> 0, new -> 1."""

    def _write(self, tmp_path, name, source):
        path = tmp_path / "partition"
        path.mkdir(exist_ok=True)
        (path / name).write_text(source, encoding="utf-8")
        return tmp_path

    def test_suppressed_finding_exits_zero(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        root = self._write(tmp_path, "a.py", BAD_SET_ITER_SAMELINE)
        assert main(["lint", str(root), "--no-cache"]) == 0

    def test_baselined_finding_exits_zero(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        root = self._write(tmp_path, "a.py", BAD_SET_ITER)
        assert main(["lint", str(root), "--no-cache"]) == 1
        assert main(["lint", str(root), "--no-cache", "--write-baseline"]) == 0
        assert (tmp_path / "lint-baseline.json").is_file()
        assert main(["lint", str(root), "--no-cache"]) == 0

    def test_new_finding_on_top_of_baseline_exits_one(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        root = self._write(tmp_path, "a.py", BAD_SET_ITER)
        assert main(["lint", str(root), "--no-cache", "--write-baseline"]) == 0
        self._write(tmp_path, "b.py", "import time\n\ndef f():\n    return time.time()\n")
        assert main(["lint", str(root), "--no-cache"]) == 1

    def test_json_report_shape(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        root = self._write(tmp_path, "a.py", BAD_SET_ITER)
        assert main(["lint", str(root), "--no-cache", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_code"] == 1
        assert payload["findings"][0]["rule"] == "determinism"
        assert payload["findings"][0]["path"] == "partition/a.py"

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in (
            "determinism",
            "process-safety",
            "program-statelessness",
            "registry-spec",
            "worker-purity",
        ):
            assert rule in out

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["lint", "--rules", "bogus-rule"]) == 2
        assert "unknown lint rule" in capsys.readouterr().err
