"""worker-purity: no module globals in runtime/, stage-local session writes."""

from lintutil import rule_ids

RULE = ["worker-purity"]


class TestFires:
    def test_global_statement(self, lint_tree):
        report = lint_tree(
            {
                "runtime/counters.py": """\
                _CALLS = 0

                def bump():
                    global _CALLS
                    _CALLS += 1
                """
            },
            rules=RULE,
        )
        assert "worker-purity" in rule_ids(report)

    def test_mutable_global_used_in_function(self, lint_tree):
        report = lint_tree(
            {
                "runtime/cachey.py": """\
                _CACHE = {}

                def lookup(key):
                    return _CACHE.get(key)
                """
            },
            rules=RULE,
        )
        assert rule_ids(report) == ["worker-purity"]
        assert "_CACHE" in report.findings[0].message

    def test_session_array_write_outside_stages(self, lint_tree):
        report = lint_tree(
            {
                "runtime/sneaky.py": """\
                from repro.runtime.base import BackendSession

                class _Sneaky(BackendSession):
                    def compute_stage(self, superstep=0):
                        self.state.values[0][:] = 1.0

                    def poke(self):
                        self.state.values[0][:] = 0.0
                """
            },
            rules=RULE,
        )
        assert rule_ids(report) == ["worker-purity"]
        assert "poke" in report.findings[0].message


class TestExchangeStageAllowance:
    """Regression: sessions now *really* implement ``exchange_stage``.

    Since PR 7 the exchange stage is a backend responsibility, so the
    rule's stage allowance is load-bearing: state writes inside
    ``exchange_stage`` must pass, while the same write in any sibling
    helper (the shape a botched refactor would naturally produce —
    e.g. an exchange helper that skips the stage method) must fire.
    """

    def test_real_session_shape_passes_and_helper_write_fires(self, lint_tree):
        report = lint_tree(
            {
                "runtime/twostage.py": """\
                import numpy as np

                from repro.runtime.base import BackendSession, allocate_state


                class _TwoStageSession(BackendSession):
                    def __init__(self, dgraph, program):
                        self.state = allocate_state(dgraph, program)

                    def compute_stage(self, superstep=0):
                        self.state.changed[0][:] = False
                        return np.zeros(1)

                    def exchange_stage(self, superstep=0):
                        # Worker-side pull: exchange writes are stage writes.
                        self.state.values[0][:] = self.state.values[1][:1]
                        self.state.active[0][:] = True
                        return None

                    def _exchange_helper(self):
                        # Identical write outside the stage methods: flagged.
                        self.state.values[0][:] = 0.0
                """
            },
            rules=RULE,
        )
        assert rule_ids(report) == ["worker-purity"]
        assert "_exchange_helper" in report.findings[0].message
        assert "exchange_stage" not in report.findings[0].message.split("(")[0]

    def test_shipped_sessions_are_clean(self):
        """The real runtime/ sessions implement exchange_stage lint-clean."""
        from pathlib import Path

        from repro.lint import run_lint

        src = Path(__file__).resolve().parents[2] / "src" / "repro"
        report = run_lint(src, rule_ids=RULE, use_cache=False)
        offenders = [f for f in report.findings if f.rule == "worker-purity"]
        assert offenders == []


class TestQuiet:
    def test_stage_methods_may_write(self, lint_tree):
        report = lint_tree(
            {
                "runtime/good.py": """\
                from repro.runtime.base import BackendSession

                class _Good(BackendSession):
                    def __init__(self, state):
                        self.state = state

                    def compute_stage(self, superstep=0):
                        self.state.changed[0][:] = False
                        return None

                    def exchange_stage(self):
                        self.state.values[0][:] = 0.0
                """
            },
            rules=RULE,
        )
        assert report.findings == []

    def test_immutable_globals_and_all_pass(self, lint_tree):
        report = lint_tree(
            {
                "runtime/consts.py": """\
                __all__ = ["TIMEOUT", "flavors"]

                TIMEOUT = 5.0
                _NAMES = ("serial", "thread")

                def flavors():
                    return _NAMES
                """
            },
            rules=RULE,
        )
        assert report.findings == []

    def test_outside_runtime_exempt(self, lint_tree):
        report = lint_tree(
            {
                "analysis/tallies.py": """\
                _CACHE = {}

                def lookup(key):
                    return _CACHE.get(key)
                """
            },
            rules=RULE,
        )
        assert report.findings == []


class TestKernelObsFree:
    """runtime/worker.py must never import the obs package."""

    def test_plain_import_fires(self, lint_tree):
        report = lint_tree(
            {
                "runtime/worker.py": """\
                import repro.obs

                def compute_kernel(state):
                    return state
                """
            },
            rules=RULE,
        )
        assert rule_ids(report) == ["worker-purity"]
        assert "observability-free" in report.findings[0].message

    def test_relative_from_import_fires(self, lint_tree):
        report = lint_tree(
            {
                "runtime/worker.py": """\
                from ..obs import NULL_RECORDER

                def compute_kernel(state):
                    return state
                """
            },
            rules=RULE,
        )
        assert rule_ids(report) == ["worker-purity"]

    def test_submodule_import_fires(self, lint_tree):
        report = lint_tree(
            {
                "runtime/worker.py": """\
                from repro.obs.trace import TraceRecorder
                """
            },
            rules=RULE,
        )
        assert rule_ids(report) == ["worker-purity"]

    def test_obs_free_worker_is_quiet(self, lint_tree):
        report = lint_tree(
            {
                "runtime/worker.py": """\
                import numpy as np

                def compute_kernel(state):
                    return np.zeros(1)
                """
            },
            rules=RULE,
        )
        assert report.findings == []

    def test_other_runtime_modules_may_import_obs(self, lint_tree):
        """Sessions hold the recorder; the ban is on the kernel module only."""
        report = lint_tree(
            {
                "runtime/base.py": """\
                from ..obs import NULL_RECORDER

                CONSTANT = 1
                """
            },
            rules=RULE,
        )
        assert report.findings == []

    def test_module_merely_named_obs_like_is_quiet(self, lint_tree):
        """Only the obs package path component triggers, not substrings."""
        report = lint_tree(
            {
                "runtime/worker.py": """\
                import observability_notes_for_humans as notes
                """
            },
            rules=RULE,
        )
        assert report.findings == []
