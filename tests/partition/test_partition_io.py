"""Unit tests for partition save/load with fingerprint integrity."""

import numpy as np
import pytest

from repro.graph import Graph, powerlaw_graph
from repro.partition import (
    EBVPartitioner,
    MetisLikePartitioner,
    graph_fingerprint,
    load_partition,
    save_partition,
)


class TestFingerprint:
    def test_deterministic(self, small_powerlaw):
        assert graph_fingerprint(small_powerlaw) == graph_fingerprint(small_powerlaw)

    def test_differs_across_graphs(self, small_powerlaw, small_road):
        assert graph_fingerprint(small_powerlaw) != graph_fingerprint(small_road)

    def test_sensitive_to_edge_order(self):
        a = Graph.from_edges([(0, 1), (1, 2)], num_vertices=3)
        b = Graph.from_edges([(1, 2), (0, 1)], num_vertices=3)
        assert graph_fingerprint(a) != graph_fingerprint(b)


class TestRoundTrip:
    def test_vertex_cut(self, tmp_path, small_powerlaw):
        result = EBVPartitioner().partition(small_powerlaw, 6)
        path = str(tmp_path / "p.txt")
        save_partition(result, path)
        loaded = load_partition(path, small_powerlaw)
        assert loaded.kind == result.kind
        assert loaded.num_parts == 6
        assert loaded.method == "EBV"
        assert np.array_equal(loaded.edge_parts, result.edge_parts)

    def test_edge_cut(self, tmp_path, small_powerlaw):
        result = MetisLikePartitioner().partition(small_powerlaw, 4)
        path = str(tmp_path / "p.txt")
        save_partition(result, path)
        loaded = load_partition(path, small_powerlaw)
        assert loaded.kind == "edge-cut"
        assert np.array_equal(loaded.vertex_parts, result.vertex_parts)

    def test_wrong_graph_rejected(self, tmp_path, small_powerlaw):
        result = EBVPartitioner().partition(small_powerlaw, 4)
        path = str(tmp_path / "p.txt")
        save_partition(result, path)
        other = powerlaw_graph(500, eta=2.5, seed=99)
        with pytest.raises(ValueError, match="fingerprint"):
            load_partition(path, other)

    def test_non_partition_file_rejected(self, tmp_path, small_powerlaw):
        path = tmp_path / "junk.txt"
        path.write_text("0 1\n1 2\n")
        with pytest.raises(ValueError, match="not a repro partition"):
            load_partition(str(path), small_powerlaw)

    def test_single_edge_graph(self, tmp_path):
        g = Graph.from_edges([(0, 1)], num_vertices=2)
        result = EBVPartitioner().partition(g, 1)
        path = str(tmp_path / "p.txt")
        save_partition(result, path)
        loaded = load_partition(path, g)
        assert loaded.edge_parts.tolist() == [0]
