"""EBV fidelity: the implementation matches Algorithm 1 traced by hand."""

import numpy as np
import pytest

from repro.graph import Graph
from repro.partition import EBVPartitioner


class TestHandTrace:
    def test_three_edge_trace(self):
        """Trace Algorithm 1 on edges [(0,1), (2,3), (0,2)], p=2, α=β=1.

        |E|=3, |V|=4, so the balance units are α/(3/2)=2/3 per edge and
        β/(4/2)=1/2 per vertex.

        (0,1): both parts empty → Eva = 2 for both → tie → part 0.
               keep0={0,1}, ecount0=1, vcount0=2.
        (2,3): Eva[0] = 2 + 2/3 + 2·(1/2)·... = 2 + 0.667 + 1.0 = 3.667
               Eva[1] = 2 → part 1.  keep1={2,3}.
        (0,2): Eva[0] = 1 (only 2 missing) + 0.667 + 1.0 = 2.667
               Eva[1] = 1 (only 0 missing) + 0.667 + 1.0 = 2.667
               tie → argmin picks part 0.
        """
        g = Graph.from_edges([(0, 1), (2, 3), (0, 2)], num_vertices=4)
        r = EBVPartitioner(sort_order="input").partition(g, 2)
        assert r.edge_parts.tolist() == [0, 1, 0]

    def test_trace_with_heavy_alpha(self):
        """With α ≫ 1 the third edge's tie breaks toward the lighter part.

        After two edges both parts hold one edge, so the α terms still
        cancel; but assign a fourth edge (1,3) after (0,2) went to part 0:
        Eva[0] gets the extra edge unit and part 1 must win.
        """
        g = Graph.from_edges([(0, 1), (2, 3), (0, 2), (1, 3)], num_vertices=4)
        r = EBVPartitioner(alpha=100.0, beta=1e-9, sort_order="input").partition(g, 2)
        assert r.edge_parts.tolist()[:2] == [0, 1]
        # Edges 3 and 4 must land on different parts to keep |E_i| equal.
        assert sorted(r.edge_parts.tolist()[2:]) == [0, 1]

    def test_replica_penalty_dominates_small_weights(self):
        """With α=β≈0 the shared-endpoint part always wins (pure greedy)."""
        g = Graph.from_edges(
            [(0, 1), (2, 3), (1, 4), (3, 5), (4, 6), (5, 7)], num_vertices=8
        )
        r = EBVPartitioner(alpha=1e-9, beta=1e-9, sort_order="input").partition(g, 2)
        parts = r.edge_parts.tolist()
        # Chains {0-1-4-6} and {2-3-5-7} each stay wholly on one part.
        assert parts[0] == parts[2] == parts[4]
        assert parts[1] == parts[3] == parts[5]

    def test_sorting_preprocesses_degree_sum(self):
        """Hub edges are processed last under EBV-sort.

        Star plus a pendant pair: the pendant edge (5,6) has degree sum
        2+2=4 (doubled degrees), below every hub edge, so it seeds a
        subgraph before the hub's edges arrive.
        """
        g = Graph.from_edges(
            [(0, 1), (0, 2), (0, 3), (0, 4), (5, 6)], num_vertices=7
        )
        from repro.partition import edge_processing_order

        order = edge_processing_order(g, "ascending")
        assert order[0] == 4  # the pendant edge goes first


class TestEvaluationEquivalence:
    def test_matches_naive_reference_implementation(self, rng):
        """The optimized loop equals a straightforward Algorithm 1.

        Sizes are powers of two so the balance units (α/(|E|/p),
        β/(|V|/p)) are dyadic rationals: the optimized incremental sums
        and the naive recomputed quotients are then bit-identical and
        tie-breaking matches exactly.
        """
        n, m, p = 32, 128, 4
        src = rng.integers(0, n, size=m)
        dst = rng.integers(0, n, size=m)
        g = Graph(n, src, dst)

        def naive(graph, num_parts):
            keep = [set() for _ in range(num_parts)]
            ecount = [0] * num_parts
            vcount = [0] * num_parts
            out = []
            for u, v in zip(graph.src.tolist(), graph.dst.tolist()):
                best, best_eva = -1, None
                for i in range(num_parts):
                    eva = (
                        (u not in keep[i])
                        + (v not in keep[i])
                        + ecount[i] / (graph.num_edges / num_parts)
                        + vcount[i] / (graph.num_vertices / num_parts)
                    )
                    if best_eva is None or eva < best_eva - 1e-15:
                        best, best_eva = i, eva
                out.append(best)
                ecount[best] += 1
                if u not in keep[best]:
                    vcount[best] += 1
                if v not in keep[best] and v != u:
                    vcount[best] += 1
                keep[best].update((u, v))
            return out

        expected = naive(g, p)
        r = EBVPartitioner(sort_order="input").partition(g, p)
        assert r.edge_parts.tolist() == expected
