"""Property-based tests: invariants every partitioner must uphold."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import Graph
from repro.partition import (
    CVCPartitioner,
    DBHPartitioner,
    EBVPartitioner,
    GingerPartitioner,
    MetisLikePartitioner,
    NEPartitioner,
    VERTEX_CUT,
    edge_imbalance_factor,
    replication_factor,
    theorem1_edge_imbalance_bound,
    theorem2_vertex_imbalance_bound,
    vertex_imbalance_factor,
)

edge_lists = st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 15)),
    min_size=1,
    max_size=80,
)
num_parts = st.integers(1, 6)

VERTEX_CUT_CLASSES = [
    EBVPartitioner,
    DBHPartitioner,
    CVCPartitioner,
    GingerPartitioner,
    NEPartitioner,
]


@pytest.mark.parametrize("cls", VERTEX_CUT_CLASSES)
@given(edges=edge_lists, p=num_parts)
@settings(max_examples=25, deadline=None)
def test_vertex_cut_is_true_partition_of_edges(cls, edges, p):
    g = Graph.from_edges(edges, num_vertices=16)
    r = cls().partition(g, p)
    assert r.kind == VERTEX_CUT
    assert r.edge_parts.shape[0] == g.num_edges
    assert np.all((r.edge_parts >= 0) & (r.edge_parts < p))
    # Subgraph edge sets are disjoint and cover E.
    assert int(r.edge_counts().sum()) == g.num_edges


@pytest.mark.parametrize("cls", VERTEX_CUT_CLASSES)
@given(edges=edge_lists, p=num_parts)
@settings(max_examples=25, deadline=None)
def test_replication_factor_at_least_one(cls, edges, p):
    g = Graph.from_edges(edges, num_vertices=16)
    r = cls().partition(g, p)
    covered = np.unique(np.concatenate([g.src, g.dst])).size
    assert r.vertex_counts().sum() >= covered
    assert replication_factor(r) * g.num_vertices >= covered


@given(edges=edge_lists, p=num_parts)
@settings(max_examples=25, deadline=None)
def test_metis_partitions_vertices(edges, p):
    g = Graph.from_edges(edges, num_vertices=16)
    r = MetisLikePartitioner().partition(g, p)
    assert r.vertex_parts.shape[0] == g.num_vertices
    assert np.all((r.vertex_parts >= 0) & (r.vertex_parts < p))
    assert int(r.vertex_counts().sum()) == g.num_vertices


@given(
    edges=edge_lists,
    p=num_parts,
    alpha=st.floats(0.25, 4.0),
    beta=st.floats(0.25, 4.0),
)
@settings(max_examples=40, deadline=None)
def test_theorem_bounds_hold_for_ebv(edges, p, alpha, beta):
    """Theorems 1 and 2: EBV never exceeds the proved imbalance bounds."""
    g = Graph.from_edges(edges, num_vertices=16)
    r = EBVPartitioner(alpha=alpha, beta=beta).partition(g, p)
    bound1 = theorem1_edge_imbalance_bound(
        g.num_edges, g.num_vertices, p, alpha, beta
    )
    assert edge_imbalance_factor(r) <= bound1 + 1e-9
    covered = int(r.vertex_counts().sum())
    bound2 = theorem2_vertex_imbalance_bound(
        g.num_vertices, covered, p, alpha, beta
    )
    assert vertex_imbalance_factor(r) <= bound2 + 1e-9


@given(edges=edge_lists, p=st.integers(2, 6))
@settings(max_examples=25, deadline=None)
def test_ebv_replication_bounded_by_parts(edges, p):
    g = Graph.from_edges(edges, num_vertices=16)
    r = EBVPartitioner().partition(g, p)
    assert 1.0 <= replication_factor(r) * g.num_vertices / max(
        np.unique(np.concatenate([g.src, g.dst])).size, 1
    ) <= p


@given(edges=edge_lists, p=num_parts, seed=st.integers(0, 3))
@settings(max_examples=25, deadline=None)
def test_ebv_sort_orders_all_valid(edges, p, seed):
    g = Graph.from_edges(edges, num_vertices=16)
    for order in ("ascending", "descending", "random", "input"):
        r = EBVPartitioner(sort_order=order, seed=seed).partition(g, p)
        assert int(r.edge_counts().sum()) == g.num_edges


@given(edges=edge_lists)
@settings(max_examples=25, deadline=None)
def test_ne_edge_capacity_never_exceeded(edges):
    g = Graph.from_edges(edges, num_vertices=16)
    p = 4
    r = NEPartitioner().partition(g, p)
    capacity = -(-g.num_edges // p)  # ceil
    assert r.edge_counts().max() <= capacity + 1
