"""Property-based tests for the extension partitioners and refinement."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import Graph
from repro.partition import (
    HDRFPartitioner,
    ShardedEBVPartitioner,
    StreamingEBVPartitioner,
    refine_vertex_cut,
    replication_factor,
)

edge_lists = st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 15)),
    min_size=1,
    max_size=80,
)
num_parts = st.integers(1, 6)


@pytest.mark.parametrize(
    "make",
    [
        lambda: StreamingEBVPartitioner(chunk_size=16),
        lambda: ShardedEBVPartitioner(num_shards=3, sync_interval=8),
        lambda: HDRFPartitioner(),
    ],
    ids=["streaming", "sharded", "hdrf"],
)
@given(edges=edge_lists, p=num_parts)
@settings(max_examples=25, deadline=None)
def test_extension_partitioners_complete(make, edges, p):
    g = Graph.from_edges(edges, num_vertices=16)
    r = make().partition(g, p)
    assert np.all((r.edge_parts >= 0) & (r.edge_parts < p))
    assert int(r.edge_counts().sum()) == g.num_edges


def _objective(result, alpha=1.0, beta=1.0):
    """The refinement objective F from repro.partition.refine."""
    g = result.graph
    p = result.num_parts
    replicas = sum(parts.size for parts in result.replica_map())
    ecount = result.edge_counts().astype(float)
    vcount = result.vertex_counts().astype(float)
    return (
        replicas
        + alpha / (2 * g.num_edges / p) * float((ecount**2).sum())
        + beta / (2 * g.num_vertices / p) * float((vcount**2).sum())
    )


@given(edges=edge_lists, p=st.integers(2, 5), seed=st.integers(0, 5))
@settings(max_examples=25, deadline=None)
def test_refinement_preserves_partition_and_never_raises_objective(edges, p, seed):
    g = Graph.from_edges(edges, num_vertices=16)
    base = HDRFPartitioner().partition(g, p)
    refined = refine_vertex_cut(base, seed=seed)
    assert int(refined.edge_counts().sum()) == g.num_edges
    # The refinement may trade a replica for balance (or vice versa) but
    # its combined objective F must be monotone non-increasing.
    assert _objective(refined) <= _objective(base) + 1e-6


@given(edges=edge_lists, p=num_parts)
@settings(max_examples=20, deadline=None)
def test_sharded_single_shard_equals_big_interval(edges, p):
    """With one shard the sync interval must not matter."""
    g = Graph.from_edges(edges, num_vertices=16)
    a = ShardedEBVPartitioner(num_shards=1, sync_interval=4).partition(g, p)
    b = ShardedEBVPartitioner(num_shards=1, sync_interval=10**6).partition(g, p)
    assert np.array_equal(a.edge_parts, b.edge_parts)
