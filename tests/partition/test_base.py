"""Unit tests for PartitionResult and the partitioner interface."""

import numpy as np
import pytest

from repro.graph import Graph
from repro.partition import EDGE_CUT, VERTEX_CUT, PartitionResult


@pytest.fixture
def square():
    """4-cycle 0-1-2-3 (directed edges around the loop)."""
    return Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)], num_vertices=4)


class TestValidation:
    def test_vertex_cut_requires_edge_parts(self, square):
        with pytest.raises(ValueError):
            PartitionResult(square, 2, kind=VERTEX_CUT)

    def test_edge_cut_requires_vertex_parts(self, square):
        with pytest.raises(ValueError):
            PartitionResult(square, 2, kind=EDGE_CUT)

    def test_unknown_kind(self, square):
        with pytest.raises(ValueError):
            PartitionResult(square, 2, edge_parts=np.zeros(4), kind="bogus")

    def test_wrong_length_edge_parts(self, square):
        with pytest.raises(ValueError):
            PartitionResult(square, 2, edge_parts=np.zeros(3), kind=VERTEX_CUT)

    def test_wrong_length_vertex_parts(self, square):
        with pytest.raises(ValueError):
            PartitionResult(square, 2, vertex_parts=np.zeros(3), kind=EDGE_CUT)

    def test_part_ids_out_of_range(self, square):
        with pytest.raises(ValueError):
            PartitionResult(square, 2, edge_parts=np.array([0, 1, 2, 0]))

    def test_num_parts_positive(self, square):
        with pytest.raises(ValueError):
            PartitionResult(square, 0, edge_parts=np.zeros(4))


class TestVertexCutDerivations:
    def test_edge_counts(self, square):
        r = PartitionResult(square, 2, edge_parts=np.array([0, 0, 1, 1]))
        assert r.edge_counts().tolist() == [2, 2]

    def test_vertex_membership(self, square):
        r = PartitionResult(square, 2, edge_parts=np.array([0, 0, 1, 1]))
        members = r.vertex_membership()
        assert members[0].tolist() == [0, 1, 2]
        assert members[1].tolist() == [0, 2, 3]

    def test_vertex_counts_counts_replicas(self, square):
        r = PartitionResult(square, 2, edge_parts=np.array([0, 0, 1, 1]))
        assert r.vertex_counts().tolist() == [3, 3]  # 0 and 2 replicated

    def test_replica_map(self, square):
        r = PartitionResult(square, 2, edge_parts=np.array([0, 0, 1, 1]))
        rmap = r.replica_map()
        assert rmap[0].tolist() == [0, 1]
        assert rmap[1].tolist() == [0]
        assert rmap[2].tolist() == [0, 1]
        assert rmap[3].tolist() == [1]

    def test_subgraph_edges(self, square):
        r = PartitionResult(square, 2, edge_parts=np.array([0, 1, 0, 1]))
        assert r.subgraph_edges(0).tolist() == [0, 2]
        assert r.subgraph_edges(1).tolist() == [1, 3]

    def test_single_part(self, square):
        r = PartitionResult(square, 1, edge_parts=np.zeros(4, dtype=int))
        assert r.edge_counts().tolist() == [4]
        assert r.vertex_counts().tolist() == [4]


class TestEdgeCutDerivations:
    def test_edge_parts_follow_source(self, square):
        r = PartitionResult(
            square, 2, vertex_parts=np.array([0, 0, 1, 1]), kind=EDGE_CUT
        )
        # Edges (0,1),(1,2) start in part 0; (2,3),(3,0) in part 1.
        assert r.edge_parts.tolist() == [0, 0, 1, 1]

    def test_edge_counts_count_replicated_edges(self, square):
        r = PartitionResult(
            square, 2, vertex_parts=np.array([0, 0, 1, 1]), kind=EDGE_CUT
        )
        # Cross edges (1,2) and (3,0) belong to both sides (Section III-C).
        assert r.edge_counts().tolist() == [3, 3]

    def test_vertex_counts_partition_exactly(self, square):
        r = PartitionResult(
            square, 2, vertex_parts=np.array([0, 1, 0, 1]), kind=EDGE_CUT
        )
        assert r.vertex_counts().sum() == square.num_vertices

    def test_replica_map_includes_ghosts(self, square):
        r = PartitionResult(
            square, 2, vertex_parts=np.array([0, 0, 1, 1]), kind=EDGE_CUT
        )
        rmap = r.replica_map()
        # Vertex 2 is owned by part 1 and ghosted into part 0 via edge (1,2).
        assert rmap[2].tolist() == [0, 1]
