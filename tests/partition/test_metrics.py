"""Unit tests for the Section III-C metrics and theorem bounds."""

import numpy as np
import pytest

from repro.graph import Graph
from repro.partition import (
    EDGE_CUT,
    PartitionResult,
    edge_imbalance_factor,
    partition_metrics,
    replication_factor,
    theorem1_edge_imbalance_bound,
    theorem2_vertex_imbalance_bound,
    vertex_imbalance_factor,
)


@pytest.fixture
def square():
    return Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)], num_vertices=4)


class TestImbalanceFactors:
    def test_perfectly_balanced(self, square):
        r = PartitionResult(square, 2, edge_parts=np.array([0, 0, 1, 1]))
        assert edge_imbalance_factor(r) == pytest.approx(1.0)

    def test_fully_skewed(self, square):
        r = PartitionResult(square, 2, edge_parts=np.array([0, 0, 0, 0]))
        assert edge_imbalance_factor(r) == pytest.approx(2.0)

    def test_vertex_imbalance_balanced(self, square):
        r = PartitionResult(square, 2, edge_parts=np.array([0, 0, 1, 1]))
        # V_0 = {0,1,2}, V_1 = {0,2,3}: max 3 / (6/2) = 1.0
        assert vertex_imbalance_factor(r) == pytest.approx(1.0)

    def test_empty_graph(self):
        g = Graph.from_edges([], num_vertices=4)
        r = PartitionResult(g, 2, edge_parts=np.zeros(0, dtype=int))
        assert edge_imbalance_factor(r) == 1.0
        assert vertex_imbalance_factor(r) == 1.0


class TestReplicationFactor:
    def test_vertex_cut_counts_vertex_replicas(self, square):
        r = PartitionResult(square, 2, edge_parts=np.array([0, 0, 1, 1]))
        # 6 replicas over 4 vertices.
        assert replication_factor(r) == pytest.approx(1.5)

    def test_single_part_is_one(self, square):
        r = PartitionResult(square, 1, edge_parts=np.zeros(4, dtype=int))
        assert replication_factor(r) == pytest.approx(1.0)

    def test_edge_cut_counts_edge_replicas(self, square):
        r = PartitionResult(
            square, 2, vertex_parts=np.array([0, 0, 1, 1]), kind=EDGE_CUT
        )
        # 6 edge replicas over 4 edges.
        assert replication_factor(r) == pytest.approx(1.5)

    def test_edge_cut_no_cut_is_one(self):
        g = Graph.from_edges([(0, 1), (2, 3)], num_vertices=4)
        r = PartitionResult(
            g, 2, vertex_parts=np.array([0, 0, 1, 1]), kind=EDGE_CUT
        )
        assert replication_factor(r) == pytest.approx(1.0)


class TestTheoremBounds:
    def test_theorem1_formula(self):
        # |E|=100, p=4, alpha=beta=1: inner = floor(200/4 + 100) = 150.
        bound = theorem1_edge_imbalance_bound(100, 50, 4, 1.0, 1.0)
        assert bound == pytest.approx(1 + 3 / 100 * 151)

    def test_theorem1_tightens_with_alpha(self):
        loose = theorem1_edge_imbalance_bound(1000, 500, 8, 0.5, 1.0)
        tight = theorem1_edge_imbalance_bound(1000, 500, 8, 4.0, 1.0)
        assert tight < loose

    def test_theorem2_formula(self):
        bound = theorem2_vertex_imbalance_bound(100, 150, 4, 1.0, 1.0)
        inner = int(2 * 100 / 4 + 100)
        assert bound == pytest.approx(1 + 3 / 150 * (1 + inner))

    def test_theorem2_tightens_with_beta(self):
        loose = theorem2_vertex_imbalance_bound(1000, 1500, 8, 1.0, 0.5)
        tight = theorem2_vertex_imbalance_bound(1000, 1500, 8, 1.0, 4.0)
        assert tight < loose

    def test_degenerate_inputs(self):
        assert theorem1_edge_imbalance_bound(0, 10, 4, 1, 1) == 1.0
        assert theorem2_vertex_imbalance_bound(10, 0, 4, 1, 1) == 1.0


class TestPartitionMetrics:
    def test_bundle(self, square):
        r = PartitionResult(
            square, 2, edge_parts=np.array([0, 0, 1, 1]), method="X"
        )
        m = partition_metrics(r)
        assert m.method == "X"
        assert m.num_parts == 2
        assert m.replication == pytest.approx(1.5)
        assert "X" in m.as_row()
