"""Unit tests for the Fennel streaming edge-cut baseline."""

import numpy as np
import pytest

from repro.apps import ConnectedComponents, cc_reference
from repro.bsp import BSPEngine, build_distributed_graph
from repro.graph import Graph
from repro.partition import (
    EDGE_CUT,
    RandomVertexHashPartitioner,
    edge_imbalance_factor,
    replication_factor,
    vertex_imbalance_factor,
)
from repro.partition.fennel import FennelPartitioner


class TestFennelBasics:
    def test_kind_and_coverage(self, small_powerlaw):
        r = FennelPartitioner().partition(small_powerlaw, 8)
        assert r.kind == EDGE_CUT
        assert np.all((r.vertex_parts >= 0) & (r.vertex_parts < 8))

    def test_vertex_balance_capped(self, small_powerlaw):
        r = FennelPartitioner(slack=1.1).partition(small_powerlaw, 8)
        assert vertex_imbalance_factor(r) <= 1.1 + 1e-6

    def test_beats_random_vertex_hash_on_cut(self, small_powerlaw):
        fennel = FennelPartitioner().partition(small_powerlaw, 8)
        rnd = RandomVertexHashPartitioner().partition(small_powerlaw, 8)
        assert replication_factor(fennel) < replication_factor(rnd)

    def test_edge_imbalance_on_powerlaw(self, small_powerlaw):
        """Like METIS, Fennel balances vertices, not edges."""
        r = FennelPartitioner().partition(small_powerlaw, 8)
        assert edge_imbalance_factor(r) > 1.05

    def test_deterministic(self, small_powerlaw):
        a = FennelPartitioner().partition(small_powerlaw, 4)
        b = FennelPartitioner().partition(small_powerlaw, 4)
        assert np.array_equal(a.vertex_parts, b.vertex_parts)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            FennelPartitioner(gamma=1.0)
        with pytest.raises(ValueError):
            FennelPartitioner(slack=0.9)

    def test_single_part(self, tiny_graph):
        r = FennelPartitioner().partition(tiny_graph, 1)
        assert np.all(r.vertex_parts == 0)

    def test_unshuffled_stream(self, small_powerlaw):
        r = FennelPartitioner(shuffle=False).partition(small_powerlaw, 4)
        assert np.all(r.vertex_parts >= 0)


class TestFennelExecution:
    def test_cc_correct_through_engine(self, small_powerlaw):
        ref = cc_reference(small_powerlaw)
        dg = build_distributed_graph(FennelPartitioner().partition(small_powerlaw, 4))
        run = BSPEngine().run(dg, ConnectedComponents())
        assert np.array_equal(run.values, ref)

    def test_keeps_locality_on_road(self, small_road):
        r = FennelPartitioner().partition(small_road, 4)
        internal = (
            r.vertex_parts[small_road.src] == r.vertex_parts[small_road.dst]
        ).mean()
        assert internal > 0.5


class TestFennelValidation:
    def test_seed_must_be_integer(self):
        with pytest.raises(TypeError):
            FennelPartitioner(seed="7")
        with pytest.raises(TypeError):
            FennelPartitioner(seed=1.5)
        assert FennelPartitioner(seed=np.int64(3)).seed == 3

    def test_alpha_optional_but_positive(self):
        assert FennelPartitioner().alpha is None
        assert FennelPartitioner(alpha=0.5).alpha == 0.5
        with pytest.raises(ValueError):
            FennelPartitioner(alpha=0.0)
