"""Property tests for vertex-cut refinement.

Two invariants the greedy pass must keep:

* the EBV-style objective F (replicas + quadratic balance potentials)
  never increases — every accepted move strictly lowers it;
* the incident-count dict only ever holds strictly positive counts.
  A regression here is the O(m·p) memory blow-up where ``defaultdict``
  probes of candidate parts permanently insert zero-valued keys.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import Graph
from repro.partition import EBVPartitioner, PartitionResult, refine_vertex_cut
from repro.partition.base import VERTEX_CUT
from repro.partition.refine import _refine_edge_parts


def objective(result: PartitionResult, alpha: float, beta: float) -> float:
    """F = Σ_v |parts(v)| + α/(2m/p)·Σ ecount² + β/(2n/p)·Σ vcount²."""
    m = result.graph.num_edges
    n = result.graph.num_vertices
    p = result.num_parts
    replicas = sum(parts.size for parts in result.replica_map())
    ecount = np.bincount(result.edge_parts, minlength=p).astype(np.float64)
    vcount = np.array([v.size for v in result.vertex_membership()], dtype=np.float64)
    return (
        replicas
        + alpha / (2 * m / p) * float((ecount**2).sum())
        + beta / (2 * n / p) * float((vcount**2).sum())
    )


def random_partition(n, m, p, seed):
    rng = np.random.default_rng(seed)
    src = rng.integers(n, size=m)
    dst = rng.integers(n, size=m)
    g = Graph(n, src, dst, directed=True, name="rand")
    edge_parts = rng.integers(p, size=m).astype(np.int64)
    return PartitionResult(g, p, edge_parts=edge_parts, kind=VERTEX_CUT, method="rand")


@given(
    n=st.integers(5, 60),
    m=st.integers(1, 200),
    p=st.integers(2, 5),
    seed=st.integers(0, 50),
)
@settings(max_examples=30, deadline=None)
def test_refinement_never_increases_objective(n, m, p, seed):
    result = random_partition(n, m, p, seed)
    refined = refine_vertex_cut(result, alpha=1.0, beta=1.0, max_passes=2, seed=seed)
    before = objective(result, 1.0, 1.0)
    after = objective(refined, 1.0, 1.0)
    assert after <= before + 1e-9


@given(
    n=st.integers(5, 60),
    m=st.integers(1, 200),
    p=st.integers(2, 5),
    seed=st.integers(0, 50),
)
@settings(max_examples=30, deadline=None)
def test_incident_counts_stay_positive_and_exact(n, m, p, seed):
    result = random_partition(n, m, p, seed)
    edge_parts, incident, ecount, vcount = _refine_edge_parts(
        result.graph, result.edge_parts.copy(), p, 1.0, 1.0, 2, seed
    )
    # No zero-count (or negative) entries survive a full refinement run.
    assert all(c > 0 for c in incident.values())
    # The dict matches a from-scratch recount of the final assignment.
    expected = {}
    for e in range(result.graph.num_edges):
        a = int(edge_parts[e])
        for w in {int(result.graph.src[e]), int(result.graph.dst[e])}:
            expected[(w, a)] = expected.get((w, a), 0) + 1
    assert incident == expected
    assert np.array_equal(ecount, np.bincount(edge_parts, minlength=p))
    # vcount[i] is the number of distinct vertices incident to part i, so
    # Σ vcount equals the number of (vertex, part) pairs alive in the dict.
    assert vcount.sum() == len(incident)
    per_part = np.zeros(p, dtype=np.int64)
    for (_w, a) in incident:
        per_part[a] += 1
    assert np.array_equal(vcount, per_part)


def test_refinement_improves_real_partition(small_powerlaw):
    base = EBVPartitioner().partition(small_powerlaw, 6)
    refined = refine_vertex_cut(base, max_passes=2, seed=1)
    assert objective(refined, 1.0, 1.0) <= objective(base, 1.0, 1.0) + 1e-9
