"""Unit tests for the streaming and sharded EBV extensions."""

import numpy as np
import pytest

from repro.graph import Graph
from repro.partition import (
    EBVPartitioner,
    ShardedEBVPartitioner,
    StreamingEBVPartitioner,
    edge_imbalance_factor,
    replication_factor,
    vertex_imbalance_factor,
)


class TestStreamingEBV:
    def test_every_edge_assigned(self, small_powerlaw):
        r = StreamingEBVPartitioner().partition(small_powerlaw, 8)
        assert np.all((r.edge_parts >= 0) & (r.edge_parts < 8))
        assert int(r.edge_counts().sum()) == small_powerlaw.num_edges

    def test_single_part(self, small_powerlaw):
        r = StreamingEBVPartitioner().partition(small_powerlaw, 1)
        assert np.all(r.edge_parts == 0)

    def test_balanced(self, small_powerlaw):
        r = StreamingEBVPartitioner().partition(small_powerlaw, 8)
        assert edge_imbalance_factor(r) < 1.25
        assert vertex_imbalance_factor(r) < 1.25

    def test_close_to_offline_ebv(self, small_powerlaw):
        """One-pass streaming pays a bounded replication premium."""
        offline = EBVPartitioner().partition(small_powerlaw, 8)
        streaming = StreamingEBVPartitioner(chunk_size=2048).partition(
            small_powerlaw, 8
        )
        assert replication_factor(streaming) < 1.5 * replication_factor(offline)

    def test_bigger_window_helps_or_ties(self, small_powerlaw):
        tiny = StreamingEBVPartitioner(chunk_size=1).partition(small_powerlaw, 8)
        wide = StreamingEBVPartitioner(chunk_size=4096).partition(small_powerlaw, 8)
        assert replication_factor(wide) <= replication_factor(tiny) + 0.15

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            StreamingEBVPartitioner(chunk_size=0)
        with pytest.raises(ValueError):
            StreamingEBVPartitioner(alpha=0)

    def test_deterministic(self, small_powerlaw):
        a = StreamingEBVPartitioner().partition(small_powerlaw, 4)
        b = StreamingEBVPartitioner().partition(small_powerlaw, 4)
        assert np.array_equal(a.edge_parts, b.edge_parts)

    def test_self_loops(self):
        g = Graph.from_edges([(0, 0), (0, 1), (1, 1)], num_vertices=2)
        r = StreamingEBVPartitioner().partition(g, 2)
        assert int(r.edge_counts().sum()) == 3


class TestShardedEBV:
    def test_every_edge_assigned(self, small_powerlaw):
        r = ShardedEBVPartitioner(num_shards=4).partition(small_powerlaw, 8)
        assert np.all((r.edge_parts >= 0) & (r.edge_parts < 8))
        assert int(r.edge_counts().sum()) == small_powerlaw.num_edges

    def test_single_shard_matches_spirit_of_sequential(self, small_powerlaw):
        """1 shard with huge sync interval == sequential EBV exactly."""
        seq = EBVPartitioner().partition(small_powerlaw, 4)
        sharded = ShardedEBVPartitioner(
            num_shards=1, sync_interval=10**9
        ).partition(small_powerlaw, 4)
        assert replication_factor(sharded) == pytest.approx(
            replication_factor(seq), rel=0.02
        )

    def test_staleness_costs_replication(self, small_powerlaw):
        fresh = ShardedEBVPartitioner(num_shards=4, sync_interval=32).partition(
            small_powerlaw, 8
        )
        stale = ShardedEBVPartitioner(
            num_shards=4, sync_interval=100_000
        ).partition(small_powerlaw, 8)
        assert replication_factor(fresh) <= replication_factor(stale) + 0.05

    def test_balanced(self, small_powerlaw):
        r = ShardedEBVPartitioner(num_shards=4).partition(small_powerlaw, 8)
        assert edge_imbalance_factor(r) < 1.3

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ShardedEBVPartitioner(num_shards=0)
        with pytest.raises(ValueError):
            ShardedEBVPartitioner(sync_interval=0)

    def test_deterministic(self, small_powerlaw):
        a = ShardedEBVPartitioner().partition(small_powerlaw, 4)
        b = ShardedEBVPartitioner().partition(small_powerlaw, 4)
        assert np.array_equal(a.edge_parts, b.edge_parts)

    def test_unsorted_variant(self, small_powerlaw):
        r = ShardedEBVPartitioner(sort_edges=False).partition(small_powerlaw, 4)
        assert int(r.edge_counts().sum()) == small_powerlaw.num_edges
