"""Unit tests for the streaming and sharded EBV extensions."""

import numpy as np
import pytest

from repro.graph import Graph
from repro.partition import (
    EBVPartitioner,
    ShardedEBVPartitioner,
    StreamingEBVPartitioner,
    edge_imbalance_factor,
    replication_factor,
    vertex_imbalance_factor,
)


class TestStreamingEBV:
    def test_every_edge_assigned(self, small_powerlaw):
        r = StreamingEBVPartitioner().partition(small_powerlaw, 8)
        assert np.all((r.edge_parts >= 0) & (r.edge_parts < 8))
        assert int(r.edge_counts().sum()) == small_powerlaw.num_edges

    def test_single_part(self, small_powerlaw):
        r = StreamingEBVPartitioner().partition(small_powerlaw, 1)
        assert np.all(r.edge_parts == 0)

    def test_balanced(self, small_powerlaw):
        r = StreamingEBVPartitioner().partition(small_powerlaw, 8)
        assert edge_imbalance_factor(r) < 1.25
        assert vertex_imbalance_factor(r) < 1.25

    def test_close_to_offline_ebv(self, small_powerlaw):
        """One-pass streaming pays a bounded replication premium."""
        offline = EBVPartitioner().partition(small_powerlaw, 8)
        streaming = StreamingEBVPartitioner(chunk_size=2048).partition(
            small_powerlaw, 8
        )
        assert replication_factor(streaming) < 1.5 * replication_factor(offline)

    def test_bigger_window_helps_or_ties(self, small_powerlaw):
        tiny = StreamingEBVPartitioner(chunk_size=1).partition(small_powerlaw, 8)
        wide = StreamingEBVPartitioner(chunk_size=4096).partition(small_powerlaw, 8)
        assert replication_factor(wide) <= replication_factor(tiny) + 0.15

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            StreamingEBVPartitioner(chunk_size=0)
        with pytest.raises(ValueError):
            StreamingEBVPartitioner(alpha=0)

    def test_deterministic(self, small_powerlaw):
        a = StreamingEBVPartitioner().partition(small_powerlaw, 4)
        b = StreamingEBVPartitioner().partition(small_powerlaw, 4)
        assert np.array_equal(a.edge_parts, b.edge_parts)

    def test_self_loops(self):
        g = Graph.from_edges([(0, 0), (0, 1), (1, 1)], num_vertices=2)
        r = StreamingEBVPartitioner().partition(g, 2)
        assert int(r.edge_counts().sum()) == 3


class TestRunningCountNormalization:
    """Regression: the first chunk when p > |E_seen|.

    The streaming evaluation function recomputes the balance terms from
    the current per-part counts under the *running* normalization
    ``ecount[i] / (|E_seen|/p)`` + ``vcount[i] / (|V_covered|/p)`` —
    the offline Eq. 2 with running totals standing in for |E| and |V|.
    On the very first chunk both running averages are below one edge
    per part, and before any edge is assigned they are exactly zero, so
    the unguarded quotient divides by zero; the divisors floor at 1/p
    (one edge/vertex) to keep the degenerate regime finite without
    distorting any later unit.
    """

    def test_first_window_hand_trace(self):
        """Hand trace of the running-count eva: p=2, α=β=1, chunk_size=1.

        (0,1): counts all zero -> Eva = [2, 2], tie -> part 0.
               ecount=[1,0], vcount=[2,0], |E_seen|=1, |V_cov|=2.
        (2,3): units 1/max(1/2,1/2)=2 and 1/max(1,1/2)=1:
               Eva[0] = 1*2 + 2*1 + 2 = 6, Eva[1] = 2 -> part 1.
        (0,2): units 1/max(1,1/2)=1 and 1/max(2,1/2)=1/2:
               Eva = 1 + 1 + 2 - 1 = 3 on both sides (each holds one
               endpoint), tie -> part 0.
        (1,3): units 1/max(3/2,1/2)=2/3 and 1/max(5/2,1/2)=2/5:
               Eva[0] = 2*(2/3) + 3*(2/5) + 2 - 1 = 3.533...
               Eva[1] = 1*(2/3) + 2*(2/5) + 2 - 1 = 2.466... -> part 1.
        """
        g = Graph.from_edges([(0, 1), (2, 3), (0, 2), (1, 3)], num_vertices=4)
        r = StreamingEBVPartitioner(chunk_size=1).partition(g, 2)
        assert r.edge_parts.tolist() == [0, 1, 0, 1]

    @pytest.mark.parametrize("chunk_size", [1, 2, 64])
    def test_more_parts_than_edges_survives_first_chunk(self, chunk_size):
        """p > |E|: the whole run happens inside the degenerate regime
        where every unguarded divisor would be < 1 (or exactly 0)."""
        g = Graph.from_edges([(0, 1), (2, 3), (0, 2)], num_vertices=4)
        r = StreamingEBVPartitioner(chunk_size=chunk_size).partition(g, 8)
        parts = r.edge_parts.tolist()
        assert all(0 <= p < 8 for p in parts)
        # Disjoint edges spread out: [0, 1, 2] by the trace above.
        assert parts[0] != parts[1]

    def test_single_edge_many_parts(self):
        """|E| = 1, p = 4: both running averages are exactly zero when
        the first (and only) unit is computed — the unguarded quotient
        is literally 0.0/0.25 ... alpha/0.0."""
        g = Graph.from_edges([(0, 1)], num_vertices=2)
        r = StreamingEBVPartitioner(chunk_size=1).partition(g, 4)
        assert r.edge_parts.tolist() == [0]

    def test_early_units_do_not_persist(self, small_powerlaw):
        """The first-chunk units are p times larger than steady state;
        because the balance terms are recomputed from current counts,
        that must not skew the final balance (a permanent early offset
        shows up here as >>1.05 imbalance)."""
        for chunk_size in (1, 256):
            r = StreamingEBVPartitioner(chunk_size=chunk_size).partition(
                small_powerlaw, 8
            )
            assert edge_imbalance_factor(r) < 1.1
            assert vertex_imbalance_factor(r) < 1.1


class TestAssignerContract:
    """The chunk-core API the out-of-core driver builds on."""

    def test_streamer_window_matches_chunk_size(self):
        assigner = StreamingEBVPartitioner(chunk_size=37).streamer(4)
        assert assigner.window == 37

    def test_streaming_assigner_matches_partition(self, small_powerlaw):
        part = StreamingEBVPartitioner(chunk_size=33)
        expected = part.partition(small_powerlaw, 4).edge_parts
        assigner = part.streamer(4)
        got = np.concatenate([
            assigner.assign(
                small_powerlaw.src[i : i + 33], small_powerlaw.dst[i : i + 33]
            )
            for i in range(0, small_powerlaw.num_edges, 33)
        ])
        assert np.array_equal(got, expected)

    def test_sharded_streamer_requires_totals(self):
        part = ShardedEBVPartitioner(sort_edges=False)
        with pytest.raises(ValueError, match="degree-sketch"):
            part.streamer(4)
        assigner = part.streamer(4, num_edges=100, num_vertices=50)
        assert assigner.window == part.num_shards * part.sync_interval

    def test_sorted_sharded_cannot_stream(self):
        with pytest.raises(ValueError, match="sort_edges"):
            ShardedEBVPartitioner(sort_edges=True).streamer(4, 10, 10)

    def test_replication_factor_tracks_state(self, small_powerlaw):
        part = StreamingEBVPartitioner(chunk_size=small_powerlaw.num_edges)
        assigner = part.streamer(4)
        assigner.assign(small_powerlaw.src, small_powerlaw.dst)
        result = part.partition(small_powerlaw, 4)
        assert assigner.replication_factor(
            small_powerlaw.num_vertices
        ) == pytest.approx(replication_factor(result))
        # the seen-vertices default can only be >= the |V| convention
        assert assigner.replication_factor() >= assigner.replication_factor(
            small_powerlaw.num_vertices
        )


class TestShardedEBV:
    def test_every_edge_assigned(self, small_powerlaw):
        r = ShardedEBVPartitioner(num_shards=4).partition(small_powerlaw, 8)
        assert np.all((r.edge_parts >= 0) & (r.edge_parts < 8))
        assert int(r.edge_counts().sum()) == small_powerlaw.num_edges

    def test_single_shard_matches_spirit_of_sequential(self, small_powerlaw):
        """1 shard with huge sync interval == sequential EBV exactly."""
        seq = EBVPartitioner().partition(small_powerlaw, 4)
        sharded = ShardedEBVPartitioner(
            num_shards=1, sync_interval=10**9
        ).partition(small_powerlaw, 4)
        assert replication_factor(sharded) == pytest.approx(
            replication_factor(seq), rel=0.02
        )

    def test_staleness_costs_replication(self, small_powerlaw):
        fresh = ShardedEBVPartitioner(num_shards=4, sync_interval=32).partition(
            small_powerlaw, 8
        )
        stale = ShardedEBVPartitioner(
            num_shards=4, sync_interval=100_000
        ).partition(small_powerlaw, 8)
        assert replication_factor(fresh) <= replication_factor(stale) + 0.05

    def test_balanced(self, small_powerlaw):
        r = ShardedEBVPartitioner(num_shards=4).partition(small_powerlaw, 8)
        assert edge_imbalance_factor(r) < 1.3

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ShardedEBVPartitioner(num_shards=0)
        with pytest.raises(ValueError):
            ShardedEBVPartitioner(sync_interval=0)

    def test_deterministic(self, small_powerlaw):
        a = ShardedEBVPartitioner().partition(small_powerlaw, 4)
        b = ShardedEBVPartitioner().partition(small_powerlaw, 4)
        assert np.array_equal(a.edge_parts, b.edge_parts)

    def test_unsorted_variant(self, small_powerlaw):
        r = ShardedEBVPartitioner(sort_edges=False).partition(small_powerlaw, 4)
        assert int(r.edge_counts().sum()) == small_powerlaw.num_edges
