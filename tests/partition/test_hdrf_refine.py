"""Unit tests for the HDRF baseline and the refinement post-pass."""

import numpy as np
import pytest

from repro.graph import Graph
from repro.partition import (
    DBHPartitioner,
    EBVPartitioner,
    HDRFPartitioner,
    MetisLikePartitioner,
    RandomEdgeHashPartitioner,
    edge_imbalance_factor,
    refine_vertex_cut,
    replication_factor,
)


class TestHDRF:
    def test_every_edge_assigned(self, small_powerlaw):
        r = HDRFPartitioner().partition(small_powerlaw, 8)
        assert np.all((r.edge_parts >= 0) & (r.edge_parts < 8))
        assert int(r.edge_counts().sum()) == small_powerlaw.num_edges

    def test_single_part(self, small_powerlaw):
        r = HDRFPartitioner().partition(small_powerlaw, 1)
        assert np.all(r.edge_parts == 0)

    def test_balanced(self, small_powerlaw):
        r = HDRFPartitioner().partition(small_powerlaw, 8)
        assert edge_imbalance_factor(r) < 1.2

    def test_beats_random_hash_on_replication(self, small_powerlaw):
        hdrf = HDRFPartitioner().partition(small_powerlaw, 8)
        rnd = RandomEdgeHashPartitioner().partition(small_powerlaw, 8)
        assert replication_factor(hdrf) < replication_factor(rnd)

    def test_lambda_zero_reduces_replication(self, small_powerlaw):
        """With no balance term HDRF packs harder (lower RF)."""
        greedy = HDRFPartitioner(lam=0.0).partition(small_powerlaw, 8)
        balanced = HDRFPartitioner(lam=4.0).partition(small_powerlaw, 8)
        assert replication_factor(greedy) <= replication_factor(balanced) + 0.05

    def test_invalid_lambda(self):
        with pytest.raises(ValueError):
            HDRFPartitioner(lam=-1.0)

    def test_self_loops(self):
        g = Graph.from_edges([(0, 0), (0, 1)], num_vertices=2)
        r = HDRFPartitioner().partition(g, 2)
        assert int(r.edge_counts().sum()) == 2

    def test_deterministic(self, small_powerlaw):
        a = HDRFPartitioner().partition(small_powerlaw, 4)
        b = HDRFPartitioner().partition(small_powerlaw, 4)
        assert np.array_equal(a.edge_parts, b.edge_parts)


class TestRefinement:
    def test_never_worsens_objective_metrics(self, small_powerlaw):
        base = DBHPartitioner().partition(small_powerlaw, 8)
        refined = refine_vertex_cut(base)
        assert replication_factor(refined) <= replication_factor(base) + 1e-9

    def test_improves_random_hash_substantially(self, small_powerlaw):
        base = RandomEdgeHashPartitioner().partition(small_powerlaw, 8)
        refined = refine_vertex_cut(base)
        assert replication_factor(refined) < replication_factor(base) * 0.95

    def test_keeps_balance(self, small_powerlaw):
        base = DBHPartitioner().partition(small_powerlaw, 8)
        refined = refine_vertex_cut(base)
        assert edge_imbalance_factor(refined) < 1.5

    def test_ebv_already_near_local_optimum(self, small_powerlaw):
        base = EBVPartitioner().partition(small_powerlaw, 8)
        refined = refine_vertex_cut(base)
        gain = replication_factor(base) - replication_factor(refined)
        # EBV leaves much less on the table than random hashing does.
        assert gain < 0.5

    def test_method_name_tagged(self, small_powerlaw):
        base = EBVPartitioner().partition(small_powerlaw, 4)
        assert refine_vertex_cut(base).method == "EBV+refine"

    def test_rejects_edge_cut(self, small_powerlaw):
        base = MetisLikePartitioner().partition(small_powerlaw, 4)
        with pytest.raises(ValueError):
            refine_vertex_cut(base)

    def test_single_part_noop(self, small_powerlaw):
        base = EBVPartitioner().partition(small_powerlaw, 1)
        assert refine_vertex_cut(base) is base

    def test_partition_completeness_preserved(self, small_powerlaw):
        base = DBHPartitioner().partition(small_powerlaw, 8)
        refined = refine_vertex_cut(base)
        assert int(refined.edge_counts().sum()) == small_powerlaw.num_edges
