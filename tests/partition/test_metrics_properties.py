"""Property tests for the Section III-C metric invariants.

The existing ``test_metrics.py`` coverage is example-based (hand-traced
partitions with known metric values).  These properties pin down what
must hold for *every* partition of *every* graph: the imbalance factors
are maxima over means and therefore >= 1, the replication factor counts
at least one replica per reachable vertex, and no partitioner may lose
or invent edges or vertices.  Graphs are seeded random draws — both
hypothesis-generated edge lists and the repo's own generators — so the
invariants are exercised far from the hand-picked examples.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import Graph, powerlaw_graph, road_network
from repro.partition import (
    DBHPartitioner,
    EBVPartitioner,
    HDRFPartitioner,
    RandomEdgeHashPartitioner,
    StreamingEBVPartitioner,
    VERTEX_CUT,
    partition_metrics,
)

PARTITIONER_CLASSES = [
    EBVPartitioner,
    StreamingEBVPartitioner,
    DBHPartitioner,
    HDRFPartitioner,
    RandomEdgeHashPartitioner,
]

NUM_PARTS = (2, 4)


def _seeded_graphs():
    """Seeded random graphs with no isolated vertices.

    Isolated vertices appear in no E_i, so they legitimately push the
    replication factor below 1; the RF >= 1 invariant is stated for
    graphs where every vertex touches an edge (asserted below).
    """
    return [
        powerlaw_graph(300, eta=2.2, min_degree=2, seed=41, name="pl-41"),
        powerlaw_graph(500, eta=2.0, min_degree=2, seed=42, name="pl-42"),
        powerlaw_graph(250, eta=2.4, min_degree=3, directed=True, seed=43, name="pl-dir"),
        road_network(14, 14, seed=44, name="road-14"),
    ]


@pytest.mark.parametrize("cls", PARTITIONER_CLASSES)
@pytest.mark.parametrize("graph", _seeded_graphs(), ids=lambda g: g.name)
@pytest.mark.parametrize("p", NUM_PARTS)
def test_metric_invariants_on_seeded_random_graphs(cls, graph, p):
    result = cls().partition(graph, p)
    m = partition_metrics(result)
    touched = np.union1d(graph.src, graph.dst)

    # Imbalance factors are max/mean ratios: >= 1 by construction, and
    # bounded by p (one part holding everything).
    assert 1.0 <= m.edge_imbalance <= p + 1e-9
    assert 1.0 <= m.vertex_imbalance <= p + 1e-9

    # Every vertex incident to an edge has >= 1 replica and <= p
    # replicas; isolated vertices (none in the undirected draws, a
    # couple in the directed one) appear in no part.
    assert touched.size / graph.num_vertices <= m.replication
    assert m.replication <= min(p, graph.num_vertices) + 1e-9
    if touched.size == graph.num_vertices:
        assert m.replication >= 1.0

    # Conservation: edges are partitioned exactly (each edge in exactly
    # one part) and the parts' vertex sets cover exactly the touched
    # vertices — nothing lost, nothing invented.
    assert result.kind == VERTEX_CUT
    assert int(result.edge_counts().sum()) == graph.num_edges
    covered = np.unique(np.concatenate(list(result.vertex_membership())))
    assert np.array_equal(covered, touched)
    assert int(result.vertex_counts().sum()) >= touched.size


@pytest.mark.parametrize("cls", PARTITIONER_CLASSES)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 23), st.integers(0, 23)), min_size=1, max_size=120
    ),
    p=st.integers(1, 5),
)
@settings(max_examples=20, deadline=None)
def test_metric_invariants_hold_for_arbitrary_edge_lists(cls, edges, p):
    g = Graph.from_edges(edges, num_vertices=24)
    result = cls().partition(g, p)
    m = partition_metrics(result)
    assert m.edge_imbalance >= 1.0
    assert m.vertex_imbalance >= 1.0
    # Vertex counts conserved: the per-part unique-vertex counts sum to
    # at least the touched-vertex count and at most p * |touched|.
    touched = np.union1d(g.src, g.dst).size
    total_replicas = int(result.vertex_counts().sum())
    assert touched <= total_replicas <= p * touched
    assert m.replication == total_replicas / g.num_vertices
    assert int(result.edge_counts().sum()) == g.num_edges
