"""Unit tests for the five baseline partitioners + random hashes."""

import numpy as np
import pytest

from repro.graph import Graph
from repro.partition import (
    CVCPartitioner,
    DBHPartitioner,
    EDGE_CUT,
    GingerPartitioner,
    MetisLikePartitioner,
    NEPartitioner,
    RandomEdgeHashPartitioner,
    RandomVertexHashPartitioner,
    VERTEX_CUT,
    edge_imbalance_factor,
    grid_shape,
    replication_factor,
    vertex_imbalance_factor,
)

ALL_VERTEX_CUT = [
    DBHPartitioner,
    CVCPartitioner,
    GingerPartitioner,
    NEPartitioner,
    RandomEdgeHashPartitioner,
]


@pytest.mark.parametrize("cls", ALL_VERTEX_CUT)
def test_vertex_cut_assigns_every_edge(cls, small_powerlaw):
    r = cls().partition(small_powerlaw, 8)
    assert r.kind == VERTEX_CUT
    assert np.all(r.edge_parts >= 0) and np.all(r.edge_parts < 8)


@pytest.mark.parametrize("cls", ALL_VERTEX_CUT)
def test_vertex_cut_deterministic(cls, small_powerlaw):
    a = cls().partition(small_powerlaw, 4)
    b = cls().partition(small_powerlaw, 4)
    assert np.array_equal(a.edge_parts, b.edge_parts)


class TestDBH:
    def test_hashes_lower_degree_endpoint(self):
        # Star around hub 0: all edges share leaf-determined hashes, so
        # each leaf's edge placement is independent of the hub.
        g = Graph.from_edges([(0, i) for i in range(1, 9)], num_vertices=9)
        r = DBHPartitioner().partition(g, 4)
        # The hub must be the replicated vertex: every part that has
        # edges contains vertex 0.
        members = r.vertex_membership()
        for i in range(4):
            if r.edge_counts()[i] > 0:
                assert 0 in members[i]

    def test_roughly_balanced_on_powerlaw(self, small_powerlaw):
        r = DBHPartitioner().partition(small_powerlaw, 8)
        assert edge_imbalance_factor(r) < 1.35

    def test_seed_changes_placement(self, small_powerlaw):
        a = DBHPartitioner(seed=0).partition(small_powerlaw, 8)
        b = DBHPartitioner(seed=1).partition(small_powerlaw, 8)
        assert not np.array_equal(a.edge_parts, b.edge_parts)


class TestCVC:
    def test_grid_shape_square(self):
        assert grid_shape(16) == (4, 4)
        assert grid_shape(12) == (3, 4)
        assert grid_shape(7) == (1, 7)
        assert grid_shape(1) == (1, 1)

    def test_replicas_bounded_by_grid(self, small_powerlaw):
        # With a r x c grid each vertex lands in <= r + c parts
        # (its row band as a source plus its column band as a target).
        r = CVCPartitioner().partition(small_powerlaw, 16)
        rows, cols = grid_shape(16)
        rmap = r.replica_map()
        assert max(len(m) for m in rmap) <= rows + cols

    def test_balanced(self, small_powerlaw):
        r = CVCPartitioner().partition(small_powerlaw, 8)
        assert edge_imbalance_factor(r) < 1.4


class TestGinger:
    def test_balanced_edges(self, small_powerlaw):
        r = GingerPartitioner().partition(small_powerlaw, 8)
        assert edge_imbalance_factor(r) < 1.25

    def test_beats_dbh_on_denser_powerlaw(self, small_directed_powerlaw):
        # On the denser directed graph (hub-heavy), Ginger's greedy
        # placement wins over degree hashing; on very sparse graphs the
        # two can tie, so the paper-scale comparison lives in the
        # integration tests.
        ginger = GingerPartitioner().partition(small_directed_powerlaw, 8)
        dbh = DBHPartitioner().partition(small_directed_powerlaw, 8)
        assert replication_factor(ginger) < replication_factor(dbh)

    def test_beats_random_hash(self, small_powerlaw):
        ginger = GingerPartitioner().partition(small_powerlaw, 8)
        rnd = RandomEdgeHashPartitioner().partition(small_powerlaw, 8)
        assert replication_factor(ginger) < replication_factor(rnd)

    def test_custom_threshold(self, small_powerlaw):
        r = GingerPartitioner(threshold=2).partition(small_powerlaw, 8)
        assert np.all(r.edge_parts >= 0)

    def test_directed(self, small_directed_powerlaw):
        r = GingerPartitioner().partition(small_directed_powerlaw, 8)
        assert np.all(r.edge_parts >= 0)


class TestNE:
    def test_edge_balance_is_tight(self, small_powerlaw):
        r = NEPartitioner().partition(small_powerlaw, 8)
        assert edge_imbalance_factor(r) <= 1.01

    def test_low_replication(self, small_powerlaw):
        ne = NEPartitioner().partition(small_powerlaw, 8)
        dbh = DBHPartitioner().partition(small_powerlaw, 8)
        assert replication_factor(ne) < replication_factor(dbh)

    def test_single_part(self, small_powerlaw):
        r = NEPartitioner().partition(small_powerlaw, 1)
        assert np.all(r.edge_parts == 0)

    def test_handles_disconnected(self, two_triangles):
        r = NEPartitioner().partition(two_triangles, 2)
        assert np.all(r.edge_parts >= 0)
        assert edge_imbalance_factor(r) == pytest.approx(1.0)

    def test_more_parts_than_structure(self, tiny_graph):
        r = NEPartitioner().partition(tiny_graph, 4)
        assert np.all(r.edge_parts >= 0)

    def test_self_loops_terminate(self):
        """Regression: self loops once double-counted ext_deg and hung."""
        g = Graph.from_edges(
            [(0, 0), (1, 1), (0, 1), (2, 2), (3, 4)], num_vertices=5
        )
        for p in (1, 2, 3, 4):
            r = NEPartitioner().partition(g, p)
            assert int(r.edge_counts().sum()) == g.num_edges

    def test_all_self_loops(self):
        g = Graph.from_edges([(i, i) for i in range(10)], num_vertices=10)
        r = NEPartitioner().partition(g, 3)
        assert int(r.edge_counts().sum()) == 10


class TestMetisLike:
    def test_kind_is_edge_cut(self, small_powerlaw):
        r = MetisLikePartitioner().partition(small_powerlaw, 4)
        assert r.kind == EDGE_CUT

    def test_every_vertex_assigned(self, small_powerlaw):
        r = MetisLikePartitioner().partition(small_powerlaw, 4)
        assert np.all(r.vertex_parts >= 0) and np.all(r.vertex_parts < 4)

    def test_vertex_balance_within_tolerance(self, small_powerlaw):
        r = MetisLikePartitioner(tolerance=1.05).partition(small_powerlaw, 4)
        assert vertex_imbalance_factor(r) <= 1.25  # tolerance + rounding slack

    def test_edge_imbalance_blows_up_on_powerlaw(self, small_powerlaw):
        """The Table III failure mode: vertex balance != edge balance."""
        r = MetisLikePartitioner().partition(small_powerlaw, 8)
        assert edge_imbalance_factor(r) > 1.2

    def test_low_cut_on_road(self, small_road):
        r = MetisLikePartitioner().partition(small_road, 4)
        assert replication_factor(r) < 1.35

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            MetisLikePartitioner(tolerance=0.9)

    def test_deterministic(self, small_powerlaw):
        a = MetisLikePartitioner().partition(small_powerlaw, 4)
        b = MetisLikePartitioner().partition(small_powerlaw, 4)
        assert np.array_equal(a.vertex_parts, b.vertex_parts)


class TestRandomHash:
    def test_edge_hash_balanced(self, small_powerlaw):
        r = RandomEdgeHashPartitioner().partition(small_powerlaw, 8)
        assert edge_imbalance_factor(r) < 1.25

    def test_edge_hash_replicates_heavily(self, small_powerlaw):
        rnd = RandomEdgeHashPartitioner().partition(small_powerlaw, 8)
        ne = NEPartitioner().partition(small_powerlaw, 8)
        assert replication_factor(rnd) > replication_factor(ne)

    def test_vertex_hash_is_edge_cut(self, small_powerlaw):
        r = RandomVertexHashPartitioner().partition(small_powerlaw, 8)
        assert r.kind == EDGE_CUT
        assert vertex_imbalance_factor(r) < 1.3
