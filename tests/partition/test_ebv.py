"""Unit tests for the EBV partitioner (Algorithm 1)."""

import numpy as np
import pytest

from repro.graph import Graph
from repro.partition import (
    EBVPartitioner,
    edge_imbalance_factor,
    edge_processing_order,
    replication_factor,
    vertex_imbalance_factor,
)


class TestEdgeProcessingOrder:
    def test_input_order_is_identity(self, tiny_graph):
        order = edge_processing_order(tiny_graph, "input")
        assert order.tolist() == list(range(tiny_graph.num_edges))

    def test_ascending_sorts_by_degree_sum(self, tiny_graph):
        order = edge_processing_order(tiny_graph, "ascending")
        deg = tiny_graph.degrees()
        keys = deg[tiny_graph.src[order]] + deg[tiny_graph.dst[order]]
        assert np.all(np.diff(keys) >= 0)

    def test_descending_reverses(self, tiny_graph):
        asc = edge_processing_order(tiny_graph, "ascending")
        desc = edge_processing_order(tiny_graph, "descending")
        assert desc.tolist() == asc.tolist()[::-1]

    def test_random_is_permutation(self, tiny_graph):
        order = edge_processing_order(tiny_graph, "random", seed=3)
        assert sorted(order.tolist()) == list(range(tiny_graph.num_edges))

    def test_unknown_order_raises(self, tiny_graph):
        with pytest.raises(ValueError):
            edge_processing_order(tiny_graph, "zigzag")


class TestEBVBasics:
    def test_every_edge_assigned(self, small_powerlaw):
        r = EBVPartitioner().partition(small_powerlaw, 8)
        assert np.all(r.edge_parts >= 0)
        assert np.all(r.edge_parts < 8)

    def test_single_part(self, small_powerlaw):
        r = EBVPartitioner().partition(small_powerlaw, 1)
        assert np.all(r.edge_parts == 0)
        # RF = covered vertices / |V| (isolated vertices are in no V_i).
        covered = np.unique(
            np.concatenate([small_powerlaw.src, small_powerlaw.dst])
        ).size
        assert replication_factor(r) == pytest.approx(
            covered / small_powerlaw.num_vertices
        )

    def test_invalid_parts(self, tiny_graph):
        with pytest.raises(ValueError):
            EBVPartitioner().partition(tiny_graph, 0)

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            EBVPartitioner(alpha=0.0)
        with pytest.raises(ValueError):
            EBVPartitioner(beta=-1.0)
        with pytest.raises(ValueError):
            EBVPartitioner(sort_order="bogus")

    def test_deterministic(self, small_powerlaw):
        a = EBVPartitioner().partition(small_powerlaw, 4)
        b = EBVPartitioner().partition(small_powerlaw, 4)
        assert np.array_equal(a.edge_parts, b.edge_parts)

    def test_method_names(self, tiny_graph):
        assert EBVPartitioner().partition(tiny_graph, 2).method == "EBV"
        assert (
            EBVPartitioner(sort_order="input").partition(tiny_graph, 2).method
            == "EBV-unsort"
        )

    def test_self_loop_counts_vertex_once(self):
        g = Graph.from_edges([(0, 0), (1, 2)], num_vertices=3)
        r = EBVPartitioner(sort_order="input").partition(g, 2)
        # Vertex 0 appears once in the loop edge's subgraph.
        counts = r.vertex_counts()
        assert counts.sum() == 3


class TestEvaluationFunctionSemantics:
    def test_colocation_preferred_when_balanced(self):
        # Two edges sharing vertex 1: with modest balance weights the
        # second edge joins the first's subgraph (saves one replica).
        # On a graph this tiny, the default alpha=beta=1 balance terms
        # are comparable to a whole replica, so use smaller weights.
        g = Graph.from_edges([(0, 1), (1, 2), (3, 4), (5, 6)], num_vertices=7)
        r = EBVPartitioner(alpha=0.25, beta=0.25, sort_order="input").partition(g, 2)
        assert r.edge_parts[0] == r.edge_parts[1]

    def test_balance_wins_with_large_weights(self):
        # With huge alpha, edges alternate regardless of shared vertices.
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4)], num_vertices=5)
        r = EBVPartitioner(alpha=1000.0, beta=1000.0, sort_order="input").partition(g, 2)
        assert r.edge_counts().tolist() == [2, 2]

    def test_tiny_weights_approach_min_replication(self):
        # alpha, beta -> 0: EBV degenerates into pure replica avoidance,
        # packing everything onto one subgraph.
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3)], num_vertices=4)
        r = EBVPartitioner(alpha=1e-9, beta=1e-9, sort_order="input").partition(g, 2)
        assert replication_factor(r) == pytest.approx(1.0)
        assert r.edge_counts().max() == 3

    def test_figure1_sorting_balances(self, tiny_graph):
        """The paper's Figure 1: sorted order yields balanced subgraphs."""
        r = EBVPartitioner(sort_order="ascending").partition(tiny_graph, 2)
        assert edge_imbalance_factor(r) == pytest.approx(1.0)


class TestGrowthTrace:
    def test_trace_recorded(self, small_powerlaw):
        ebv = EBVPartitioner(track_growth=True)
        ebv.partition(small_powerlaw, 4)
        trace = ebv.last_trace
        assert trace is not None
        assert trace.shape[0] == small_powerlaw.num_edges
        assert np.all(np.diff(trace) >= 0)  # coverage only grows

    def test_trace_final_matches_vertex_counts(self, small_powerlaw):
        ebv = EBVPartitioner(track_growth=True)
        r = ebv.partition(small_powerlaw, 4)
        assert ebv.last_trace[-1] == r.vertex_counts().sum()

    def test_growth_curve_downsamples(self, small_powerlaw):
        ebv = EBVPartitioner(track_growth=True)
        ebv.partition(small_powerlaw, 4)
        x, y = ebv.growth_curve(small_powerlaw, max_points=16)
        assert x.shape == y.shape
        assert x.shape[0] <= 16
        assert y[-1] == pytest.approx(
            ebv.last_trace[-1] / small_powerlaw.num_vertices
        )

    def test_growth_curve_without_trace_raises(self, small_powerlaw):
        with pytest.raises(RuntimeError):
            EBVPartitioner().growth_curve(small_powerlaw)

    def test_no_trace_by_default(self, small_powerlaw):
        ebv = EBVPartitioner()
        ebv.partition(small_powerlaw, 4)
        assert ebv.last_trace is None

    def test_trace_single_part(self, tiny_graph):
        ebv = EBVPartitioner(track_growth=True)
        ebv.partition(tiny_graph, 1)
        covered = np.unique(
            np.concatenate([tiny_graph.src, tiny_graph.dst])
        ).size
        assert ebv.last_trace[-1] == covered


class TestPaperClaims:
    def test_balance_near_one(self, small_powerlaw):
        r = EBVPartitioner().partition(small_powerlaw, 8)
        assert edge_imbalance_factor(r) < 1.15
        assert vertex_imbalance_factor(r) < 1.15

    def test_sort_beats_unsort_on_powerlaw(self, small_powerlaw):
        sort = EBVPartitioner(sort_order="ascending").partition(small_powerlaw, 16)
        unsort = EBVPartitioner(sort_order="input").partition(small_powerlaw, 16)
        assert replication_factor(sort) <= replication_factor(unsort)

    def test_directed_graph_supported(self, small_directed_powerlaw):
        r = EBVPartitioner().partition(small_directed_powerlaw, 8)
        assert edge_imbalance_factor(r) < 1.2
