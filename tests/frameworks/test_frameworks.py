"""Unit tests for the three framework wrappers used in Figures 2-3."""

import numpy as np
import pytest

from repro.apps import cc_reference, pagerank_reference
from repro.frameworks import (
    BlogelFramework,
    SubgraphCentricFramework,
    VertexCentricFramework,
    make_program,
)
from repro.partition import EBVPartitioner


class TestMakeProgram:
    def test_cc(self, small_powerlaw):
        prog = make_program("CC", small_powerlaw)
        assert prog.name == "CC"
        assert prog.local_convergence

    def test_sssp_default_source(self, small_powerlaw):
        prog = make_program("SSSP", small_powerlaw)
        deg = small_powerlaw.degrees()
        assert deg[prog.source] == deg.max()

    def test_sssp_explicit_source(self, small_powerlaw):
        assert make_program("SSSP", small_powerlaw, source=7).source == 7

    def test_pr(self, small_powerlaw):
        prog = make_program("PR", small_powerlaw, pagerank_iters=7)
        assert prog.max_iters == 7

    def test_vertex_centric_flag(self, small_powerlaw):
        prog = make_program("CC", small_powerlaw, local_convergence=False)
        assert not prog.local_convergence

    def test_unknown_app(self, small_powerlaw):
        with pytest.raises(ValueError):
            make_program("Triangles", small_powerlaw)


class TestSubgraphCentric:
    def test_runs_and_labels(self, small_powerlaw):
        fw = SubgraphCentricFramework(EBVPartitioner())
        run = fw.run(small_powerlaw, "CC", 4)
        assert run.partition_method == "EBV"
        assert np.array_equal(run.values, cc_reference(small_powerlaw))

    def test_dgraph_cached(self, small_powerlaw):
        fw = SubgraphCentricFramework(EBVPartitioner())
        a = fw.distributed_graph(small_powerlaw, 4)
        b = fw.distributed_graph(small_powerlaw, 4)
        assert a is b
        c = fw.distributed_graph(small_powerlaw, 8)
        assert c is not a

    def test_supports_all_apps(self, small_powerlaw):
        fw = SubgraphCentricFramework(EBVPartitioner())
        assert fw.supports("CC") and fw.supports("PR") and fw.supports("SSSP")
        assert not fw.supports("Triangles")


class TestVertexCentric:
    def test_correct_results(self, small_powerlaw):
        fw = VertexCentricFramework()
        run = fw.run(small_powerlaw, "CC", 4)
        assert np.array_equal(run.values, cc_reference(small_powerlaw))

    def test_pagerank_matches_reference(self, small_directed_powerlaw):
        g = small_directed_powerlaw
        fw = VertexCentricFramework(pagerank_iters=10)
        run = fw.run(g, "PR", 4)
        assert np.allclose(run.values, pagerank_reference(g, max_iters=10), atol=1e-12)

    def test_more_supersteps_than_subgraph_centric(self, small_road):
        sub = SubgraphCentricFramework(EBVPartitioner()).run(small_road, "CC", 4)
        vc = VertexCentricFramework().run(small_road, "CC", 4)
        assert vc.num_supersteps > sub.num_supersteps

    def test_invalid_speedup(self):
        with pytest.raises(ValueError):
            VertexCentricFramework(speedup=0)


class TestBlogel:
    def test_cc_correct(self, small_powerlaw):
        fw = BlogelFramework()
        run = fw.run(small_powerlaw, "CC", 4)
        assert np.array_equal(run.values, cc_reference(small_powerlaw))

    def test_pr_not_supported(self, small_powerlaw):
        fw = BlogelFramework()
        assert not fw.supports("PR")
        with pytest.raises(ValueError):
            fw.run(small_powerlaw, "PR", 4)

    def test_cc_charged_precompute(self, small_powerlaw):
        fw = BlogelFramework()
        cc = fw.run(small_powerlaw, "CC", 4)
        sssp = fw.run(small_powerlaw, "SSSP", 4)
        # The CC run carries an extra leading superstep (the Voronoi
        # pre-compute); SSSP does not.
        assert cc.supersteps[0].sent.sum() == 0
        assert float(cc.supersteps[0].work.sum()) == pytest.approx(
            small_powerlaw.num_edges
        )
        assert float(sssp.supersteps[0].work.sum()) != pytest.approx(
            small_powerlaw.num_edges
        )
