"""Cost-profile semantics of the comparator frameworks."""

import numpy as np
import pytest

from repro.bsp import CostModel
from repro.frameworks import (
    BlogelFramework,
    SubgraphCentricFramework,
    VertexCentricFramework,
)
from repro.partition import EBVPartitioner


class TestVertexCentricCosts:
    def test_speedup_discounts_work_not_messages(self):
        fw = VertexCentricFramework(speedup=4.0, cost_model=CostModel())
        base = CostModel()
        cm = fw.engine.cost_model
        assert cm.seconds_per_work_unit == pytest.approx(
            base.seconds_per_work_unit / 4
        )
        assert cm.superstep_overhead == pytest.approx(base.superstep_overhead / 4)
        # Network messages cost the same for every distributed system.
        assert cm.seconds_per_message == base.seconds_per_message

    def test_larger_speedup_faster(self, small_powerlaw):
        slow = VertexCentricFramework(speedup=1.0)
        fast = VertexCentricFramework(speedup=8.0)
        t_slow = slow.run(small_powerlaw, "CC", 4).execution_time
        t_fast = fast.run(small_powerlaw, "CC", 4).execution_time
        assert t_fast < t_slow

    def test_dgraph_cache(self, small_powerlaw):
        fw = VertexCentricFramework()
        fw.run(small_powerlaw, "CC", 4)
        key = (id(small_powerlaw), 4)
        assert key in fw._dgraph_cache


class TestSubgraphCentricCosts:
    def test_custom_cost_model_applied(self, small_powerlaw):
        cheap = SubgraphCentricFramework(
            EBVPartitioner(),
            cost_model=CostModel(1e-9, 1e-10, 1e-9),
        )
        expensive = SubgraphCentricFramework(
            EBVPartitioner(),
            cost_model=CostModel(1e-3, 1e-4, 1e-3),
        )
        t_cheap = cheap.run(small_powerlaw, "CC", 4).execution_time
        t_expensive = expensive.run(small_powerlaw, "CC", 4).execution_time
        assert t_cheap < t_expensive

    def test_pagerank_iteration_budget(self, small_powerlaw):
        fw = SubgraphCentricFramework(EBVPartitioner(), pagerank_iters=6)
        run = fw.run(small_powerlaw, "PR", 4)
        assert run.num_supersteps <= 6


class TestBlogelCosts:
    def test_cc_slower_than_sssp_overhead_free_comparison(self, small_powerlaw):
        fw = BlogelFramework()
        cc = fw.run(small_powerlaw, "CC", 4)
        # The injected pre-compute superstep has zero communication.
        pre = cc.supersteps[0]
        assert int(pre.sent.sum()) == 0
        assert float(pre.comp_seconds.min()) > 0

    def test_precompute_scales_with_graph(self, small_powerlaw, small_road):
        fw = BlogelFramework()
        cc_pl = fw.run(small_powerlaw, "CC", 4)
        cc_rd = fw.run(small_road, "CC", 4)
        work_pl = float(cc_pl.supersteps[0].work.sum())
        work_rd = float(cc_rd.supersteps[0].work.sum())
        assert work_pl == pytest.approx(small_powerlaw.num_edges)
        assert work_rd == pytest.approx(small_road.num_edges)
