"""Unit tests for Blogel's Graph Voronoi Diagram partitioner."""

import numpy as np
import pytest

from repro.frameworks import VoronoiPartitioner
from repro.graph import Graph
from repro.partition import EDGE_CUT, vertex_imbalance_factor


def test_kind_and_coverage(small_powerlaw):
    r = VoronoiPartitioner().partition(small_powerlaw, 4)
    assert r.kind == EDGE_CUT
    assert np.all((r.vertex_parts >= 0) & (r.vertex_parts < 4))


def test_every_component_covered(two_triangles):
    # Both components must receive seeds eventually (iterative sampling).
    r = VoronoiPartitioner(seeds_per_worker=1, seed=0).partition(two_triangles, 2)
    assert np.all(r.vertex_parts >= 0)


def test_blocks_respect_connectivity(small_road):
    """Voronoi blocks grown by BFS are connected by construction.

    After packing, each worker's owned set is a union of connected
    blocks; verify that no vertex is stranded away from every neighbor
    of its own worker *unless* its whole block is a singleton.
    """
    r = VoronoiPartitioner(seeds_per_worker=4, seed=1).partition(small_road, 3)
    g = small_road
    same_part_edge = r.vertex_parts[g.src] == r.vertex_parts[g.dst]
    # A Voronoi partition of a grid keeps most edges internal.
    assert same_part_edge.mean() > 0.5


def test_roughly_vertex_balanced(small_powerlaw):
    r = VoronoiPartitioner(seeds_per_worker=8, seed=2).partition(small_powerlaw, 4)
    assert vertex_imbalance_factor(r) < 1.6


def test_deterministic(small_powerlaw):
    a = VoronoiPartitioner(seed=5).partition(small_powerlaw, 4)
    b = VoronoiPartitioner(seed=5).partition(small_powerlaw, 4)
    assert np.array_equal(a.vertex_parts, b.vertex_parts)


def test_invalid_seeds_per_worker():
    with pytest.raises(ValueError):
        VoronoiPartitioner(seeds_per_worker=0)


def test_more_seeds_than_vertices():
    g = Graph.from_edges([(0, 1), (1, 2)], num_vertices=3)
    r = VoronoiPartitioner(seeds_per_worker=10).partition(g, 2)
    assert np.all(r.vertex_parts >= 0)
