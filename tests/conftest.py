"""Shared fixtures: small deterministic graphs reused across the suite."""

import numpy as np
import pytest

from repro.graph import Graph, powerlaw_graph, road_network


@pytest.fixture(scope="session")
def tiny_graph():
    """The 6-vertex graph of the paper's Figure 1 (A..F -> 0..5).

    Undirected edges: A-B, A-C, B-C, A-D, A-E, D-E (relabeled so that the
    alphabetical edge order of the figure is the input order).
    """
    edges = [(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (3, 4)]
    return Graph.from_undirected_edges(edges, num_vertices=6, name="fig1")


@pytest.fixture(scope="session")
def path_graph():
    """A 10-vertex directed path 0 -> 1 -> ... -> 9."""
    return Graph.from_edges(
        [(i, i + 1) for i in range(9)], num_vertices=10, directed=True, name="path"
    )


@pytest.fixture(scope="session")
def two_triangles():
    """Two disjoint triangles: {0,1,2} and {3,4,5} (undirected)."""
    edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
    return Graph.from_undirected_edges(edges, num_vertices=6, name="triangles")


@pytest.fixture(scope="session")
def small_powerlaw():
    """A ~1k-vertex power-law graph (undirected, eta ~ 2.2)."""
    return powerlaw_graph(1000, eta=2.2, min_degree=2, seed=3, name="pl-small")


@pytest.fixture(scope="session")
def small_directed_powerlaw():
    """A ~800-vertex directed power-law graph."""
    return powerlaw_graph(
        800, eta=2.0, min_degree=3, directed=True, seed=5, name="pl-dir"
    )


@pytest.fixture(scope="session")
def small_road():
    """A 12x12 road grid with weights."""
    return road_network(12, 12, seed=2, name="road-small")


@pytest.fixture(scope="session")
def graph_zoo(tiny_graph, path_graph, two_triangles, small_powerlaw,
              small_directed_powerlaw, small_road):
    """All the small graphs, for parametrized sweeps."""
    return {
        g.name: g
        for g in (
            tiny_graph,
            path_graph,
            two_triangles,
            small_powerlaw,
            small_directed_powerlaw,
            small_road,
        )
    }


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
