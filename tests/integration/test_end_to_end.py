"""End-to-end pipeline test: generate -> partition -> execute -> analyze."""

import numpy as np
import pytest

from repro.analysis import breakdown_row, message_stats, render_timeline
from repro.apps import (
    ConnectedComponents,
    PageRank,
    SSSP,
    cc_reference,
    default_source,
    pagerank_reference,
    sssp_reference,
)
from repro.bsp import BSPEngine, build_distributed_graph
from repro.graph import powerlaw_graph, read_edge_list, write_edge_list
from repro.partition import EBVPartitioner, partition_metrics


def test_full_pipeline(tmp_path):
    # 1. Generate and persist a workload.
    g = powerlaw_graph(600, eta=2.1, min_degree=3, seed=42, name="pipeline")
    path = str(tmp_path / "pipeline.txt")
    write_edge_list(g, path)
    g = read_edge_list(path)

    # 2. Partition with the paper's algorithm and check its guarantees.
    ebv = EBVPartitioner(track_growth=True)
    result = ebv.partition(g, 6)
    metrics = partition_metrics(result)
    assert metrics.edge_imbalance < 1.2
    assert metrics.vertex_imbalance < 1.2

    # 3. Execute all three paper applications.
    dgraph = build_distributed_graph(result)
    engine = BSPEngine()

    cc = engine.run(dgraph, ConnectedComponents())
    assert np.array_equal(cc.values, cc_reference(g))

    src = default_source(g)
    sssp = engine.run(dgraph, SSSP(src))
    assert np.allclose(sssp.values, sssp_reference(g.with_unit_weights(), src))

    pr = engine.run(dgraph, PageRank(g.num_vertices, max_iters=12))
    assert np.allclose(pr.values, pagerank_reference(g, max_iters=12), atol=1e-12)

    # 4. Analyze.
    row = breakdown_row(cc)
    assert row.execution_time > 0
    stats = message_stats(cc, replication_factor=metrics.replication)
    assert stats.total_messages == cc.total_messages
    assert "worker 0" in render_timeline(cc)

    # 5. The replication growth trace covers the whole edge stream.
    x, y = ebv.growth_curve(g)
    assert x[-1] == g.num_edges
    assert y[-1] == pytest.approx(metrics.replication, rel=1e-6)


def test_public_api_importable():
    """Everything advertised in repro.__init__ resolves."""
    import repro

    assert repro.__version__
    from repro.partition import PAPER_PARTITIONERS

    assert set(PAPER_PARTITIONERS) == {"EBV", "Ginger", "DBH", "CVC", "NE", "METIS"}
