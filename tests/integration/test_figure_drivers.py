"""Driver-level tests for the Figure 2/3/5 experiment runners."""

import pytest

from repro.experiments import ExperimentConfig, run_fig2, run_fig3, run_fig5
from repro.experiments.figures23 import render_panels


@pytest.fixture(scope="module")
def tiny_config():
    cfg = ExperimentConfig(scale=0.08)
    cfg.figure_workers = {
        "usa-road": [2, 4],
        "livejournal": [2, 4],
        "friendster": [4, 8],
        "twitter": [4, 8],
    }
    cfg.pagerank_iters = 5
    return cfg


class TestFig2Driver:
    def test_single_app_single_graph(self, tiny_config):
        panels, text = run_fig2(tiny_config, apps=("CC",), graphs=("livejournal",))
        assert set(panels) == {("CC", "livejournal")}
        panel = panels[("CC", "livejournal")]
        assert len(panel["EBV"]) == 2
        assert "Figure 2" in text and "livejournal" in text

    def test_pr_panels_drop_blogel(self, tiny_config):
        panels, _ = run_fig2(tiny_config, apps=("PR",), graphs=("twitter",))
        assert "Blogel" not in panels[("PR", "twitter")]

    def test_times_positive_and_finite(self, tiny_config):
        panels, _ = run_fig2(tiny_config, apps=("SSSP",), graphs=("friendster",))
        for series in panels[("SSSP", "friendster")].values():
            assert all(0 < t < 60 for t in series)


class TestFig3Driver:
    def test_road_panels(self, tiny_config):
        panels, text = run_fig3(tiny_config)
        assert set(panels) == {("CC", "usa-road"), ("SSSP", "usa-road")}
        assert "Figure 3" in text


class TestFig5Driver:
    def test_curve_keys(self, tiny_config):
        curves, _ = run_fig5(
            tiny_config, graphs=("livejournal",), subgraph_counts=(2, 4)
        )
        lj = curves["livejournal"]
        assert set(lj) == {("sort", 2), ("unsort", 2), ("sort", 4), ("unsort", 4)}

    def test_curves_monotone_nondecreasing(self, tiny_config):
        curves, _ = run_fig5(
            tiny_config, graphs=("twitter",), subgraph_counts=(4,)
        )
        for x, y in curves["twitter"].values():
            assert all(b >= a - 1e-12 for a, b in zip(y, y[1:]))
            assert x[-1] >= x[0]


class TestRenderPanels:
    def test_layout(self, tiny_config):
        panels, _ = run_fig2(tiny_config, apps=("CC",), graphs=("livejournal",))
        text = render_panels(panels, tiny_config.figure_workers, "My Title")
        assert text.startswith("My Title")
        assert "p=2" in text and "p=4" in text
