"""Integration tests: the experiment drivers reproduce the paper's shapes.

These run the real drivers at a reduced scale and assert the
*qualitative* claims of each table/figure (DESIGN.md §4), which is what
"reproduction" means for a simulated substrate.
"""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig,
    run_alpha_beta_ablation,
    run_bounds_ablation,
    run_breakdown,
    run_fig5,
    run_sort_order_ablation,
    run_table1,
    run_tables345,
    sweep_panel,
)


@pytest.fixture(scope="module")
def config():
    cfg = ExperimentConfig(scale=0.25)
    cfg.table_workers = {
        "usa-road": 8,
        "livejournal": 8,
        "friendster": 16,
        "twitter": 16,
    }
    return cfg


@pytest.fixture(scope="module")
def tables345(config):
    data, t3, t4, t5 = run_tables345(config)
    return data, t3, t4, t5


class TestTable1:
    def test_rows_and_text(self, config):
        rows, text = run_table1(config)
        assert len(rows) == 4
        assert "usa-road" in text and "twitter" in text

    def test_eta_ordering(self, config):
        rows, _ = run_table1(config)
        eta = {r.name: r.eta for r in rows}
        assert eta["usa-road"] > eta["livejournal"] > eta["twitter"]


class TestTable3Shapes:
    def test_ebv_has_lowest_rf_among_self_based(self, tables345):
        data = tables345[0]
        for graph in ("livejournal", "friendster", "twitter"):
            ebv = data.metrics[(graph, "EBV")].replication
            for other in ("Ginger", "DBH", "CVC"):
                assert ebv < data.metrics[(graph, other)].replication, (graph, other)

    def test_ebv_balanced(self, tables345):
        data = tables345[0]
        for (graph, method), m in data.metrics.items():
            if method == "EBV":
                assert m.edge_imbalance < 1.2
                assert m.vertex_imbalance < 1.2

    def test_ne_edge_balanced_but_vertex_imbalanced(self, tables345):
        data = tables345[0]
        for graph in ("livejournal", "friendster", "twitter"):
            ne = data.metrics[(graph, "NE")]
            assert ne.edge_imbalance <= 1.01
            assert ne.vertex_imbalance > 1.15

    def test_metis_edge_imbalance_blows_up_on_powerlaw(self, tables345):
        data = tables345[0]
        for graph in ("livejournal", "friendster", "twitter"):
            metis = data.metrics[(graph, "METIS")]
            assert metis.edge_imbalance > 1.5
            assert metis.vertex_imbalance < 1.3

    def test_metis_ok_on_road(self, tables345):
        data = tables345[0]
        metis = data.metrics[("usa-road", "METIS")]
        assert metis.edge_imbalance < 1.5
        assert metis.replication < 1.3


class TestTable4Shapes:
    def test_messages_track_replication(self, tables345):
        """Within the self-based group, fewer replicas => fewer messages."""
        data = tables345[0]
        for graph in ("livejournal", "friendster", "twitter"):
            ebv = data.messages[(graph, "EBV")].total_messages
            for other in ("Ginger", "DBH", "CVC"):
                assert ebv < data.messages[(graph, other)].total_messages, (
                    graph,
                    other,
                )

    def test_local_based_win_on_road(self, tables345):
        data = tables345[0]
        road_ebv = data.messages[("usa-road", "EBV")].total_messages
        for local_based in ("NE", "METIS"):
            assert (
                data.messages[("usa-road", local_based)].total_messages < road_ebv
            )


class TestTable5Shapes:
    def test_self_based_max_mean_near_one(self, tables345):
        data = tables345[0]
        for graph in ("livejournal", "friendster", "twitter"):
            for method in ("EBV", "Ginger", "DBH", "CVC"):
                assert data.messages[(graph, method)].max_mean_ratio < 1.45, (
                    graph,
                    method,
                )

    def test_ne_max_mean_elevated_on_powerlaw(self, tables345):
        data = tables345[0]
        elevated = [
            data.messages[(g, "NE")].max_mean_ratio
            for g in ("livejournal", "friendster", "twitter")
        ]
        assert max(elevated) > 1.5


class TestBreakdown:
    def test_ebv_among_fastest(self, config):
        rows, runs, table_text, timeline_text = run_breakdown(config)
        times = {r.method: r.execution_time for r in rows}
        ordered = sorted(times, key=times.get)
        assert "EBV" in ordered[:3]
        assert "Table II" in table_text
        assert "Figure 4" in timeline_text

    def test_metis_or_ne_have_highest_delta_c(self, config):
        rows, *_ = run_breakdown(config)
        dc = {r.method: r.delta_c for r in rows}
        worst = max(dc, key=dc.get)
        assert worst in ("METIS", "NE", "DBH")


class TestFig5:
    def test_sort_beats_unsort_finally(self, config):
        curves, text = run_fig5(
            config, graphs=("twitter",), subgraph_counts=(8, 16)
        )
        tw = curves["twitter"]
        for p in (8, 16):
            _, y_sort = tw[("sort", p)]
            _, y_unsort = tw[("unsort", p)]
            assert y_sort[-1] <= y_unsort[-1]

    def test_sorted_curve_rises_then_flattens(self, config):
        curves, _ = run_fig5(config, graphs=("twitter",), subgraph_counts=(16,))
        x, y = curves["twitter"][("sort", 16)]
        half = len(y) // 2
        early_gain = y[half] - y[0]
        late_gain = y[-1] - y[half]
        assert early_gain > late_gain

    def test_text_mentions_variants(self, config):
        _, text = run_fig5(config, graphs=("twitter",), subgraph_counts=(8,))
        assert "EBV-sort" in text and "EBV-unsort" in text


class TestFigureSweeps:
    def test_cc_panel_all_systems(self, config):
        panel = sweep_panel(config, "livejournal", "CC", [4, 8])
        assert set(panel) == {
            "EBV", "Ginger", "DBH", "CVC", "NE", "METIS", "Galois", "Blogel",
        }
        for series in panel.values():
            assert len(series) == 2
            assert all(t > 0 for t in series)

    def test_pr_panel_excludes_blogel(self, config):
        panel = sweep_panel(config, "livejournal", "PR", [4])
        assert "Blogel" not in panel
        assert "Galois" in panel

    def test_ebv_competitive_on_powerlaw(self, config):
        panel = sweep_panel(config, "friendster", "CC", [16])
        partitioner_times = {
            k: v[0] for k, v in panel.items() if k not in ("Galois", "Blogel")
        }
        ordered = sorted(partitioner_times, key=partitioner_times.get)
        assert "EBV" in ordered[:2]


class TestAblations:
    def test_bounds_hold(self, config):
        rows, text = run_bounds_ablation(
            config, num_parts=4, alphas=(1.0, 2.0), betas=(1.0, 2.0)
        )
        for r in rows:
            assert r["edge_imbalance"] <= r["edge_bound"]
            assert r["vertex_imbalance"] <= r["vertex_bound"]
        assert "Theorem" in text

    def test_alpha_beta_tradeoff(self, config):
        rows, _ = run_alpha_beta_ablation(
            config, num_parts=8, weights=(0.25, 4.0)
        )
        # Heavier balance weights cannot improve (lower) replication.
        assert rows[0]["replication"] <= rows[1]["replication"] + 0.05
        # And they keep balance at least as tight.
        assert rows[1]["edge_imbalance"] <= rows[0]["edge_imbalance"] + 0.05

    def test_sort_order_ablation(self, config):
        results, text = run_sort_order_ablation(config, num_parts=8)
        assert set(results) == {"ascending", "descending", "random", "input"}
        assert results["ascending"] <= results["descending"]
        assert "Ablation" in text
