"""Integration test for the one-shot reproduction report."""

import pytest

from repro.experiments import ExperimentConfig, generate_report


@pytest.fixture(scope="module")
def report():
    cfg = ExperimentConfig(scale=0.12)
    cfg.table_workers = {
        "usa-road": 4, "livejournal": 4, "friendster": 8, "twitter": 8,
    }
    return generate_report(cfg, include_figures=False)


def test_report_contains_every_table(report):
    for marker in ("Table I", "Table II", "Table III", "Table IV", "Table V"):
        assert marker in report


def test_report_contains_fig4_and_fig5(report):
    assert "Figure 4" in report
    assert "Figure 5" in report


def test_report_contains_ablations(report):
    assert "Ablation A1" in report
    assert "Ablation A2" in report
    assert "Ablation A3" in report


def test_report_excludes_figures_when_asked(report):
    assert "Figure 2" not in report
    assert "Figure 3" not in report


def test_report_lists_all_partitioners(report):
    for method in ("EBV", "Ginger", "DBH", "CVC", "NE", "METIS"):
        assert method in report
