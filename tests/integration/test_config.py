"""Unit tests for the experiment configuration layer."""

import os

import pytest

from repro.experiments import ExperimentConfig, default_config
from repro.experiments.table1 import PAPER_TABLE1


class TestExperimentConfig:
    def test_graphs_cached(self):
        cfg = ExperimentConfig(scale=0.1)
        assert cfg.graphs() is cfg.graphs()

    def test_graph_names(self):
        cfg = ExperimentConfig(scale=0.1)
        assert set(cfg.graphs()) == {
            "usa-road", "livejournal", "friendster", "twitter",
        }

    def test_partitioners_fresh_instances(self):
        cfg = ExperimentConfig(scale=0.1)
        a = cfg.partitioners()
        b = cfg.partitioners()
        assert set(a) == {"EBV", "Ginger", "DBH", "CVC", "NE", "METIS"}
        assert a["EBV"] is not b["EBV"]

    def test_frameworks_eight_systems(self):
        cfg = ExperimentConfig(scale=0.1)
        systems = cfg.frameworks()
        names = [f.name for f in systems]
        assert names == [
            "EBV", "Ginger", "DBH", "CVC", "NE", "METIS", "Galois", "Blogel",
        ]

    def test_table_workers_match_paper(self):
        cfg = ExperimentConfig()
        assert cfg.table_workers == {
            "usa-road": 12, "livejournal": 12, "friendster": 32, "twitter": 32,
        }

    def test_figure_workers_match_paper(self):
        cfg = ExperimentConfig()
        assert cfg.figure_workers["livejournal"] == [4, 8, 12, 16, 20, 24]
        assert cfg.figure_workers["twitter"] == [24, 32, 40, 48]


class TestDefaultConfig:
    def test_env_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.33")
        assert default_config().scale == pytest.approx(0.33)

    def test_quick_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_QUICK", "1")
        cfg = default_config()
        assert cfg.scale <= 0.25
        assert cfg.pagerank_iters == 10

    def test_default_no_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        monkeypatch.delenv("REPRO_QUICK", raising=False)
        cfg = default_config()
        assert cfg.scale == 1.0


class TestPaperConstants:
    def test_table1_reference_rows(self):
        assert PAPER_TABLE1["twitter"][4] == 1.87
        assert PAPER_TABLE1["usa-road"][4] == 6.30
        # Directedness matches Section V-A.
        assert PAPER_TABLE1["livejournal"][0] == "Directed"
        assert PAPER_TABLE1["friendster"][0] == "Undirected"
