#!/usr/bin/env python
"""Regenerate the golden pipeline result for ``test_golden_pipeline.py``.

Run from the repository root after an *intentional* change to pipeline
output (new spec fields, new run-summary fields, changed metrics)::

    PYTHONPATH=src python tests/integration/regen_golden.py

then review the diff of ``tests/integration/data/golden_pipeline_result.json``
— every changed line must be explainable by your change, otherwise you
just found the drift the golden test exists to catch.

Wall-clock timings are nondeterministic and are stripped from the
golden (the test strips them from fresh results the same way).
"""

import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
DATA_DIR = os.path.join(HERE, "data")
SPEC_PATH = os.path.join(DATA_DIR, "golden_pipeline_spec.json")
RESULT_PATH = os.path.join(DATA_DIR, "golden_pipeline_result.json")


def normalize(result_dict):
    """Drop the nondeterministic wall-clock timings; keep everything else."""
    out = dict(result_dict)
    out.pop("timings", None)
    return out


def main() -> int:
    sys.path.insert(0, os.path.join(HERE, "..", "..", "src"))
    from repro.pipeline import PipelineSpec, run_spec

    with open(SPEC_PATH, "r", encoding="utf-8") as fh:
        spec = PipelineSpec.from_json(fh.read())
    result = normalize(run_spec(spec).to_dict())
    with open(RESULT_PATH, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"golden result regenerated at {RESULT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
