"""Golden end-to-end test: committed spec -> run -> committed result.

The spec JSON and the expected ``PipelineResult.to_dict()`` both live
under ``tests/integration/data/``; any drift in spec parsing, component
defaults, graph generation, partition quality, BSP results or the
result-dict schema shows up as a diff against the golden file.  After
an *intentional* output change, regenerate with::

    PYTHONPATH=src python tests/integration/regen_golden.py

and review the diff line by line (see the script's docstring).
"""

import json
import os

import pytest

from repro.pipeline import PipelineSpec, run_spec

from regen_golden import DATA_DIR, RESULT_PATH, SPEC_PATH, normalize


@pytest.fixture(scope="module")
def fresh_result():
    with open(SPEC_PATH, "r", encoding="utf-8") as fh:
        spec = PipelineSpec.from_json(fh.read())
    return normalize(run_spec(spec).to_dict())


@pytest.fixture(scope="module")
def golden_result():
    assert os.path.isfile(RESULT_PATH), (
        f"missing golden file {RESULT_PATH}; run "
        "PYTHONPATH=src python tests/integration/regen_golden.py"
    )
    with open(RESULT_PATH, "r", encoding="utf-8") as fh:
        return json.load(fh)


def test_result_matches_committed_golden(fresh_result, golden_result):
    # Compare through a JSON round-trip so float representation rules
    # are identical on both sides; pinpoint the first differing key for
    # a readable failure.
    fresh = json.loads(json.dumps(fresh_result, sort_keys=True))
    assert set(fresh) == set(golden_result), "result-dict schema drifted"
    for key in sorted(golden_result):
        assert fresh[key] == golden_result[key], (
            f"pipeline output drifted at {key!r}; if intentional, regenerate "
            "the golden (tests/integration/regen_golden.py) and review the diff"
        )


def test_golden_spec_is_canonical():
    """Every entry of the committed spec is already in canonical form."""
    with open(SPEC_PATH, "r", encoding="utf-8") as fh:
        document = json.load(fh)
    canonical = PipelineSpec.from_dict(document).to_dict()
    for key, value in document.items():
        assert canonical[key] == value, (
            f"spec entry {key!r} is not canonical; expected {canonical[key]!r}"
        )


def test_data_dir_holds_only_the_golden_pair():
    """No stray regenerated artifacts get silently committed."""
    assert sorted(os.listdir(DATA_DIR)) == [
        "golden_pipeline_result.json",
        "golden_pipeline_spec.json",
    ]
