"""Edge mutation batches: the delta ingestion format for dynamic graphs.

A :class:`MutationBatch` is an *ordered* list of edge insert/delete
operations against a directed graph.  Order matters only between
operations touching the same ``(src, dst)`` pair; the resolution
semantics are:

* operations apply in sequence against the current edge multiset —
  duplicate inserts are legal (parallel edges, as everywhere else in
  the repo's multigraph model);
* a **delete** first matches the *smallest-id surviving* edge with that
  exact ``(src, dst)`` pair; if none survives, it cancels the earliest
  still-pending insert of the same pair from this batch
  (delete-then-reinsert and insert-then-delete both behave as a human
  would expect); otherwise the batch is rejected with
  :class:`MutationError` — deleting an edge that never existed is a
  caller bug, not a no-op;
* inserts may name vertices beyond the current ``num_vertices`` — the
  mutated graph grows to cover them.  Vertices are never removed, so
  ids stay stable across mutations (a vertex whose last edge is deleted
  becomes isolated).

Resolution produces a :class:`ResolvedBatch`: the old edge ids to drop
and the surviving inserts in batch order, which is all the incremental
maintenance in :mod:`repro.mutate.incremental` needs.  Deletes are
resolved against an id lookup built from the in-memory edge arrays
(:meth:`MutationBatch.resolve_against`) or from spilled shards
(:mod:`repro.mutate.spill`) — same semantics either way.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..graph import Graph

__all__ = ["MutationBatch", "MutationError", "ResolvedBatch", "INSERT", "DELETE"]

INSERT = "insert"
DELETE = "delete"

_OP_ALIASES = {
    INSERT: INSERT,
    "+": INSERT,
    "add": INSERT,
    DELETE: DELETE,
    "-": DELETE,
    "del": DELETE,
    "remove": DELETE,
}


class MutationError(ValueError):
    """A mutation batch that cannot be parsed or applied."""


@dataclass(frozen=True)
class ResolvedBatch:
    """A batch resolved against a concrete graph's edge multiset.

    ``removed_ids`` are old-graph edge ids sorted ascending;
    ``removed_src``/``removed_dst`` are the matching endpoints (what
    :func:`repro.mutate.cc_warm_labels` needs to reset touched
    components).  ``insert_*`` hold the surviving inserts in batch
    order; ``insert_weights`` is dense float64 with unspecified weights
    filled as 1.0, and ``has_explicit_weights`` records whether any
    insert actually carried one (so unweighted graphs can reject them).
    """

    removed_ids: np.ndarray
    removed_src: np.ndarray
    removed_dst: np.ndarray
    insert_src: np.ndarray
    insert_dst: np.ndarray
    insert_weights: np.ndarray
    has_explicit_weights: bool
    num_cancelled: int

    @property
    def num_removed(self) -> int:
        return int(self.removed_ids.shape[0])

    @property
    def num_inserted(self) -> int:
        return int(self.insert_src.shape[0])


class MutationBatch:
    """An ordered batch of edge inserts and deletes.

    Build fluently (``batch.insert(0, 1).delete(2, 3)``), from tuples
    (:meth:`from_ops`), or from a mutations file (:meth:`from_file`,
    one ``+ u v [w]`` / ``- u v`` operation per line).
    """

    def __init__(self, ops: Optional[Iterable[Sequence]] = None):
        self._ops: List[Tuple[str, int, int, Optional[float]]] = []
        if ops is not None:
            for op in ops:
                self._append(*op)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _append(self, op, src, dst, weight=None) -> None:
        kind = _OP_ALIASES.get(str(op).strip().lower())
        if kind is None:
            raise MutationError(
                f"unknown mutation op {op!r}; expected one of "
                f"{sorted(set(_OP_ALIASES))}"
            )
        try:
            u, v = int(src), int(dst)
        except (TypeError, ValueError) as exc:
            raise MutationError(f"mutation endpoints must be integers: {src!r}, {dst!r}") from exc
        if u < 0 or v < 0:
            raise MutationError(f"mutation endpoints must be >= 0, got ({u}, {v})")
        if kind == DELETE and weight is not None:
            raise MutationError(f"delete ({u}, {v}) must not carry a weight")
        self._ops.append((kind, u, v, None if weight is None else float(weight)))

    def insert(self, src: int, dst: int, weight: Optional[float] = None) -> "MutationBatch":
        """Append an edge insert (returns self for chaining)."""
        self._append(INSERT, src, dst, weight)
        return self

    def delete(self, src: int, dst: int) -> "MutationBatch":
        """Append an edge delete (returns self for chaining)."""
        self._append(DELETE, src, dst)
        return self

    @classmethod
    def from_ops(cls, ops: Iterable[Sequence]) -> "MutationBatch":
        """Build from ``(op, src, dst[, weight])`` tuples/lists."""
        return cls(ops)

    @classmethod
    def from_file(cls, path: str) -> "MutationBatch":
        """Parse a mutations file: one ``+ u v [w]`` or ``- u v`` per line.

        Blank lines and ``#`` comments are skipped.  The same grammar
        the ``repro mutate --mutations`` CLI flag consumes.
        """
        batch = cls()
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                text = line.split("#", 1)[0].strip()
                if not text:
                    continue
                fields = text.split()
                if len(fields) not in (3, 4):
                    raise MutationError(
                        f"{path}:{lineno}: expected 'op src dst [weight]', got {line!r}"
                    )
                try:
                    batch._append(*fields)
                except MutationError as exc:
                    raise MutationError(f"{path}:{lineno}: {exc}") from exc
        return batch

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def ops(self) -> Tuple[Tuple[str, int, int, Optional[float]], ...]:
        return tuple(self._ops)

    def __len__(self) -> int:
        return len(self._ops)

    @property
    def num_insert_ops(self) -> int:
        return sum(1 for op in self._ops if op[0] == INSERT)

    @property
    def num_delete_ops(self) -> int:
        return sum(1 for op in self._ops if op[0] == DELETE)

    def to_ops(self) -> List[List[Union[str, int, float]]]:
        """JSON-friendly canonical op list (what ``PipelineSpec`` stores)."""
        out: List[List[Union[str, int, float]]] = []
        for kind, u, v, w in self._ops:
            row: List[Union[str, int, float]] = [kind, u, v]
            if w is not None:
                row.append(w)
            out.append(row)
        return out

    def touched_vertices(self) -> np.ndarray:
        """Sorted distinct endpoints named by any op."""
        if not self._ops:
            return np.empty(0, dtype=np.int64)
        flat = np.array(
            [e for _, u, v, _ in self._ops for e in (u, v)], dtype=np.int64
        )
        return np.unique(flat)

    def max_vertex(self) -> int:
        """Largest endpoint named by any op (-1 for an empty batch)."""
        return max((max(u, v) for _, u, v, _ in self._ops), default=-1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MutationBatch(+{self.num_insert_ops} -{self.num_delete_ops} "
            f"over {len(self)} ops)"
        )

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    def resolve(
        self, candidates: Dict[Tuple[int, int], Deque[int]]
    ) -> ResolvedBatch:
        """Resolve against pre-built delete candidates (ids ascending).

        ``candidates`` maps an edge pair to the deque of its *existing*
        edge ids in ascending order, and only needs entries for pairs
        this batch deletes — :meth:`resolve_against` builds exactly
        that from in-memory arrays, the spill patcher from shards.
        """
        removed: List[Tuple[int, int, int]] = []  # (edge_id, u, v)
        pending: List[Tuple[int, int, Optional[float]]] = []
        cancelled: List[bool] = []
        pending_by_pair: Dict[Tuple[int, int], Deque[int]] = {}
        for kind, u, v, w in self._ops:
            pair = (u, v)
            if kind == INSERT:
                pending_by_pair.setdefault(pair, deque()).append(len(pending))
                pending.append((u, v, w))
                cancelled.append(False)
                continue
            existing = candidates.get(pair)
            if existing:
                removed.append((existing.popleft(), u, v))
                continue
            queued = pending_by_pair.get(pair)
            if queued:
                cancelled[queued.popleft()] = True
                continue
            raise MutationError(
                f"cannot delete edge ({u}, {v}): no such edge exists and no "
                "pending insert of that pair remains in the batch"
            )
        removed.sort()
        kept = [row for row, dead in zip(pending, cancelled) if not dead]
        insert_w = np.array(
            [1.0 if w is None else w for _, _, w in kept], dtype=np.float64
        )
        return ResolvedBatch(
            removed_ids=np.array([e for e, _, _ in removed], dtype=np.int64),
            removed_src=np.array([u for _, u, _ in removed], dtype=np.int64),
            removed_dst=np.array([v for _, _, v in removed], dtype=np.int64),
            insert_src=np.array([u for u, _, _ in kept], dtype=np.int64),
            insert_dst=np.array([v for _, v, _ in kept], dtype=np.int64),
            insert_weights=insert_w,
            has_explicit_weights=any(w is not None for _, _, w in kept),
            num_cancelled=int(sum(cancelled)),
        )

    def resolve_against(self, graph: Graph) -> ResolvedBatch:
        """Resolve against an in-memory graph's edge arrays."""
        if not graph.directed:
            raise MutationError(
                "mutation batches apply to directed edge lists; undirected "
                "graphs store each edge as two arcs — mutate both explicitly"
            )
        delete_pairs = {(u, v) for kind, u, v, _ in self._ops if kind == DELETE}
        return self.resolve(_candidates_from_arrays(graph.src, graph.dst, delete_pairs))


def _matching_rows(src: np.ndarray, dst: np.ndarray, delete_pairs) -> np.ndarray:
    """Row indices whose ``(src, dst)`` pair is in ``delete_pairs``.

    Vectorized: pairs are encoded as ``u * base + v`` and matched with
    one ``np.isin`` over the edge arrays, so a small delete set against
    a large graph never builds a full pair index.
    """
    if not delete_pairs or src.shape[0] == 0:
        return np.empty(0, dtype=np.int64)
    src = np.ascontiguousarray(src, dtype=np.int64)
    dst = np.ascontiguousarray(dst, dtype=np.int64)
    base = int(
        max(
            int(src.max()),
            int(dst.max()),
            max(max(u, v) for u, v in delete_pairs),
        )
    ) + 1
    keys = np.fromiter(
        (u * base + v for u, v in delete_pairs), dtype=np.int64, count=len(delete_pairs)
    )
    return np.nonzero(np.isin(src * base + dst, keys))[0]


def _candidates_from_arrays(
    src: np.ndarray, dst: np.ndarray, delete_pairs
) -> Dict[Tuple[int, int], Deque[int]]:
    """Ascending-id delete candidates for the in-memory (positional) path."""
    out: Dict[Tuple[int, int], Deque[int]] = {}
    for eid in _matching_rows(src, dst, delete_pairs).tolist():
        out.setdefault((int(src[eid]), int(dst[eid])), deque()).append(eid)
    return out
