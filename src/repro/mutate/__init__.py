"""Dynamic graphs: edge mutations with incremental partition maintenance.

The ROADMAP's "Dynamic graphs" layer.  A :class:`MutationBatch` is an
ordered list of edge inserts/deletes; :func:`apply_mutations` applies
it to an existing vertex-cut :class:`~repro.partition.PartitionResult`
by re-assigning **only the affected edges** through the streaming EBV
core (warm-seeded from the surviving assignment, inserts fed through
the same windowed machinery as live streams), with measured
replication-factor drift vs. a full repartition and a
``repartition_threshold`` escape hatch.  The on-disk twin —
:func:`repro.stream.patch_spilled_partition` — patches a
:class:`~repro.stream.SpilledPartition`'s shards in place.

On top sit the warm-start helpers for the delta apps
(:mod:`repro.apps.delta`): :func:`pr_warm_values` pads the previous
PageRank vector, :func:`cc_warm_labels` resets every component a
deletion touched so incremental CC stays bit-identical to a cold run
(the differential harness under ``tests/mutate/`` enforces both).
"""

from ..stream.patch import patch_spilled_partition
from .batch import DELETE, INSERT, MutationBatch, MutationError, ResolvedBatch
from .incremental import (
    DEFAULT_REPARTITION_THRESHOLD,
    MutationResult,
    apply_mutations,
    cc_warm_labels,
    mutated_graph,
    pr_warm_values,
)

__all__ = [
    "DEFAULT_REPARTITION_THRESHOLD",
    "DELETE",
    "INSERT",
    "MutationBatch",
    "MutationError",
    "MutationResult",
    "ResolvedBatch",
    "apply_mutations",
    "cc_warm_labels",
    "mutated_graph",
    "patch_spilled_partition",
    "pr_warm_values",
]
