"""Incremental partition maintenance and warm-start values under mutations.

:func:`apply_mutations` turns ``(PartitionResult, MutationBatch)`` into
a new partition of the mutated graph while re-assigning **only the
affected edges**:

* surviving edges keep their part — their placement cost is already
  paid and the paper's evaluation function has no reason to move them;
* deleted edges surrender their balance/replica contributions, which is
  exact: the streaming state is *re-seeded* from the surviving
  assignment (:meth:`StreamingEBVAssigner.seed`), not patched;
* inserted edges are fed through :func:`repro.stream.windows` into the
  warm assigner, so they are scored by the same greedy EBV evaluation
  function against the live per-part counts and replica sets.

The incremental path trades replication factor for work: it never
revisits old edges, so its RF can drift above what a full repartition
of the mutated graph would achieve.  The drift is *measured* —
``compare_full=True`` runs the full repartition and reports
``rf_after / rf_full`` — and *bounded operationally* by the
``repartition_threshold`` escape hatch: when the batch touches more
than that fraction of the mutated graph's edges, the layer falls back
to a full repartition (``mode="repartition"``).  The committed
``BENCH_mutate.json`` tracks the drift bound (≤ ~1.15 at ≤ 10% churn
on powerlaw graphs).

Warm-start helpers for the delta apps live here too:
:func:`pr_warm_values` (pad the previous ranks) and
:func:`cc_warm_labels` (reset every component touched by a deletion —
the correctness condition incremental CC needs; see the function
docstring for the argument).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from ..graph import Graph
from ..partition import replication_factor
from ..partition.base import VERTEX_CUT, PartitionResult
from ..partition.streaming import StreamingEBVPartitioner
from .batch import MutationBatch, MutationError, ResolvedBatch

__all__ = [
    "MutationResult",
    "apply_mutations",
    "mutated_graph",
    "cc_warm_labels",
    "pr_warm_values",
    "DEFAULT_REPARTITION_THRESHOLD",
]

#: fraction of the mutated graph's edges a batch may touch before the
#: incremental path gives way to a full repartition
DEFAULT_REPARTITION_THRESHOLD = 0.25


@dataclass
class MutationResult:
    """Outcome of :func:`apply_mutations`: new partition + drift metrics."""

    graph: Graph
    partition: PartitionResult
    resolved: ResolvedBatch
    #: "incremental" (affected edges only) or "repartition" (escape hatch)
    mode: str
    touched_fraction: float
    repartition_threshold: float
    #: edges actually pushed through the assigner this call
    reassigned_edges: int
    rf_before: float
    rf_after: float
    #: RF of a from-scratch repartition of the mutated graph (None
    #: unless compare_full=True or the escape hatch fired)
    rf_full: Optional[float] = None
    #: rf_after / rf_full (1.0 exactly when mode == "repartition")
    drift: Optional[float] = None
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def num_inserted(self) -> int:
        return self.resolved.num_inserted

    @property
    def num_deleted(self) -> int:
        return self.resolved.num_removed

    def report(self) -> Dict[str, Any]:
        """JSON-safe drift report (CLI/bench/CI artifact payload)."""
        out: Dict[str, Any] = {
            "mode": self.mode,
            "num_inserted": self.num_inserted,
            "num_deleted": self.num_deleted,
            "num_cancelled": self.resolved.num_cancelled,
            "num_edges_before": int(
                self.graph.num_edges - self.num_inserted + self.num_deleted
            ),
            "num_edges_after": int(self.graph.num_edges),
            "num_vertices_after": int(self.graph.num_vertices),
            "touched_fraction": float(self.touched_fraction),
            "repartition_threshold": float(self.repartition_threshold),
            "reassigned_edges": int(self.reassigned_edges),
            "rf_before": float(self.rf_before),
            "rf_after": float(self.rf_after),
        }
        if self.rf_full is not None:
            out["rf_full"] = float(self.rf_full)
        if self.drift is not None:
            out["drift"] = float(self.drift)
        out.update(self.extras)
        return out


def mutated_graph(graph: Graph, resolved: ResolvedBatch) -> Graph:
    """The post-batch graph: surviving edges in order, inserts appended.

    Edge ids stay dense — survivors compact down in their original
    relative order and inserted edges take the tail ids.  The vertex
    set only grows (to the largest inserted endpoint).
    """
    if resolved.has_explicit_weights and graph.weights is None:
        raise MutationError(
            "batch carries edge weights but the graph is unweighted; "
            "drop the weights or mutate a weighted graph"
        )
    keep = np.ones(graph.num_edges, dtype=bool)
    keep[resolved.removed_ids] = False
    new_src = np.concatenate([graph.src[keep], resolved.insert_src])
    new_dst = np.concatenate([graph.dst[keep], resolved.insert_dst])
    new_w = None
    if graph.weights is not None:
        new_w = np.concatenate([graph.weights[keep], resolved.insert_weights])
    num_vertices = int(graph.num_vertices)
    if resolved.num_inserted:
        num_vertices = max(
            num_vertices,
            int(max(resolved.insert_src.max(), resolved.insert_dst.max())) + 1,
        )
    return Graph(
        num_vertices,
        new_src,
        new_dst,
        weights=new_w,
        directed=True,
        name=graph.name,
    )


def apply_mutations(
    partition: PartitionResult,
    batch: MutationBatch,
    partitioner: Optional[StreamingEBVPartitioner] = None,
    *,
    repartition_threshold: float = DEFAULT_REPARTITION_THRESHOLD,
    compare_full: bool = False,
) -> MutationResult:
    """Apply a mutation batch to a vertex-cut partition incrementally.

    ``partitioner`` supplies the assigner core that scores the inserted
    edges (and performs the full repartition when the escape hatch
    fires); it must be warm-seedable — the streaming EBV family.  The
    default re-assigns with a fresh :class:`StreamingEBVPartitioner`
    regardless of which method produced ``partition``: seeding reads
    the *assignment*, not the assigner's history, so maintaining e.g.
    an offline-EBV partition with the streaming core is well defined.
    """
    from ..stream.driver import windows

    if partition.kind != VERTEX_CUT:
        raise MutationError(
            f"apply_mutations maintains vertex-cut partitions; got kind "
            f"{partition.kind!r} (method {partition.method!r})"
        )
    if not 0.0 <= repartition_threshold <= 1.0:
        raise MutationError(
            f"repartition_threshold must be in [0, 1], got {repartition_threshold!r}"
        )
    if partitioner is None:
        partitioner = StreamingEBVPartitioner()
    graph = partition.graph
    resolved = batch.resolve_against(graph)
    new_graph = mutated_graph(graph, resolved)
    num_parts = partition.num_parts
    m_new = new_graph.num_edges
    touched = (resolved.num_removed + resolved.num_inserted) / max(m_new, 1)
    rf_before = replication_factor(partition)

    rf_full: Optional[float] = None
    drift: Optional[float] = None
    if num_parts == 1:
        edge_parts = np.zeros(m_new, dtype=np.int64)
        mode = "incremental"
        reassigned = resolved.num_inserted
    elif touched > repartition_threshold:
        full = partitioner.partition(new_graph, num_parts)
        edge_parts = full.edge_parts
        mode = "repartition"
        reassigned = m_new
    else:
        keep = np.ones(graph.num_edges, dtype=bool)
        keep[resolved.removed_ids] = False
        surviving_parts = partition.edge_parts[keep]
        assigner = partitioner.streamer(num_parts)
        if not hasattr(assigner, "seed"):
            raise MutationError(
                f"partitioner {getattr(partitioner, 'name', type(partitioner).__name__)!r} "
                "has no warm-seedable assigner; incremental maintenance needs "
                "the streaming EBV core (ebv-stream)"
            )
        n_surviving = surviving_parts.shape[0]
        assigner.seed(
            new_graph.src[:n_surviving],
            new_graph.dst[:n_surviving],
            surviving_parts,
            num_vertices=new_graph.num_vertices,
        )
        insert_parts = [
            assigner.assign(s, d)
            for s, d, _ in windows(
                [(resolved.insert_src, resolved.insert_dst, None)], assigner.window
            )
        ]
        edge_parts = np.concatenate(
            [surviving_parts] + insert_parts
            if insert_parts
            else [surviving_parts]
        )
        mode = "incremental"
        reassigned = resolved.num_inserted

    new_partition = PartitionResult(
        new_graph,
        num_parts,
        edge_parts=np.ascontiguousarray(edge_parts, dtype=np.int64),
        kind=VERTEX_CUT,
        method=partition.method,
    )
    rf_after = replication_factor(new_partition)
    if mode == "repartition":
        rf_full = rf_after
        drift = 1.0
    elif compare_full:
        rf_full = replication_factor(partitioner.partition(new_graph, num_parts))
        drift = rf_after / max(rf_full, 1e-12)
    return MutationResult(
        graph=new_graph,
        partition=new_partition,
        resolved=resolved,
        mode=mode,
        touched_fraction=float(touched),
        repartition_threshold=float(repartition_threshold),
        reassigned_edges=int(reassigned),
        rf_before=float(rf_before),
        rf_after=float(rf_after),
        rf_full=rf_full,
        drift=drift,
    )


# ----------------------------------------------------------------------
# Warm-start value helpers for the delta apps
# ----------------------------------------------------------------------


def pr_warm_values(prev_values: np.ndarray, num_vertices: int) -> np.ndarray:
    """Previous PageRank vector padded to the mutated vertex count.

    New vertices start at the uniform prior ``1/|V|`` of the *mutated*
    graph; surviving vertices keep their converged ranks.  Any sound
    starting point converges to the same fixpoint (the PageRank
    iteration is a contraction), so this only buys supersteps — the
    differential harness checks the result against a cold run to the
    same tolerance.
    """
    prev = np.ascontiguousarray(prev_values, dtype=np.float64)
    n = int(num_vertices)
    if prev.shape[0] > n:
        raise MutationError(
            f"previous values cover {prev.shape[0]} vertices but the mutated "
            f"graph has only {n}; vertices never shrink under mutation"
        )
    out = np.full(n, 1.0 / max(n, 1), dtype=np.float64)
    out[: prev.shape[0]] = prev
    return out


def cc_warm_labels(prev_labels: np.ndarray, mutation: MutationResult) -> np.ndarray:
    """Sound warm labels for incremental CC on the mutated graph.

    Edge *inserts* only merge components, and every previous label is
    the minimum vertex id of an old component — a subset of some new
    component — so stale labels stay valid upper bounds and the
    min-label iteration still converges to exactly the cold-run answer.
    Edge *deletes* can split a component, leaving labels that reference
    a vertex no longer reachable; every vertex whose old component
    contained a deleted edge's endpoint is therefore reset to its own
    id (the cold initial value) and recomputes from scratch.  Untouched
    components keep their converged labels.  New vertices start at
    their own id.
    """
    prev = np.ascontiguousarray(prev_labels, dtype=np.int64)
    n = mutation.graph.num_vertices
    if prev.shape[0] > n:
        raise MutationError(
            f"previous labels cover {prev.shape[0]} vertices but the mutated "
            f"graph has only {n}; vertices never shrink under mutation"
        )
    labels = np.arange(n, dtype=np.int64)
    labels[: prev.shape[0]] = prev
    resolved = mutation.resolved
    if resolved.num_removed:
        endpoints = np.concatenate([resolved.removed_src, resolved.removed_dst])
        affected = np.unique(prev[endpoints])
        reset = np.isin(prev, affected)
        labels[: prev.shape[0]][reset] = np.nonzero(reset)[0]
    return labels
