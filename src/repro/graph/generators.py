"""Synthetic graph generators used as dataset stand-ins.

The paper evaluates on USARoad, LiveJournal, Twitter and Friendster.  Those
datasets are multi-gigabyte downloads that are unavailable offline and far
beyond pure-Python scale, so this module generates structurally equivalent
stand-ins (see DESIGN.md section 3):

* :func:`road_network` — a planar-ish 2D grid with perturbed diagonals and
  unit-ish weights; degree distribution is tightly concentrated around 3-4
  (non-power-law, like USARoad whose average degree is 2.44).
* :func:`powerlaw_graph` — a Chung–Lu style sampler whose expected degree
  sequence follows ``P(d) ∝ d^-eta``; used for the LiveJournal (η≈2.64),
  Friendster (η≈2.43) and Twitter (η≈1.87) stand-ins.
* :func:`barabasi_albert` — preferential attachment, an alternative
  power-law source used in tests.
* :func:`rmat` — Kronecker-style R-MAT generator (Graph500 parameters by
  default), another standard power-law source.
* :func:`erdos_renyi` — uniform random graph used as a non-skewed control.

All generators are deterministic given ``seed``.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .graph import Graph

__all__ = [
    "road_network",
    "powerlaw_graph",
    "barabasi_albert",
    "rmat",
    "erdos_renyi",
    "paper_graph_suite",
    "GENERATOR_KINDS",
    "generate_graph",
]

#: kinds accepted by :func:`generate_graph` (the pipeline/CLI front door).
GENERATOR_KINDS = ("powerlaw", "road", "rmat", "er", "ba")


def generate_graph(
    kind: str,
    vertices: int = 10_000,
    seed: int = 0,
    directed: bool = False,
    name: Optional[str] = None,
    **kwargs,
) -> Graph:
    """Uniform front door over the synthetic generators.

    Every generator is addressed by ``kind`` and sized by ``vertices``
    (translated to the generator's native sizing: grid side for ``road``,
    log2 scale for ``rmat``), so graph sources can be described by one
    spec string such as ``"powerlaw?vertices=20000,eta=2.2"``.  Extra
    keyword arguments pass through to the underlying generator.

    ``rmat`` graphs always have a power-of-two vertex count: ``vertices``
    snaps to the *nearest* scale (``2^round(log2(vertices))``), so the
    realised size is within a factor of √2 of the request.  ``road`` and
    ``ba`` are inherently undirected (both store the doubled edge list);
    asking for ``directed=True`` on them raises :class:`ValueError`
    rather than silently ignoring the argument.
    """
    if directed and kind in ("road", "ba"):
        raise ValueError(
            f"generator kind {kind!r} produces undirected graphs; "
            "directed=True is not supported"
        )
    extra = {} if name is None else {"name": name}
    if kind == "powerlaw":
        opts = {"eta": 2.2, "min_degree": 3, "directed": directed, "seed": seed}
        opts.update(extra)
        opts.update(kwargs)
        return powerlaw_graph(vertices, **opts)
    if kind == "road":
        side = max(2, int(np.sqrt(vertices)))
        opts = {"seed": seed}
        opts.update(extra)
        opts.update(kwargs)
        return road_network(side, side, **opts)
    if kind == "rmat":
        scale = max(2, int(round(np.log2(max(vertices, 4)))))
        opts = {"seed": seed, "directed": directed}
        opts.update(extra)
        opts.update(kwargs)
        return rmat(scale, **opts)
    if kind == "er":
        opts = {"seed": seed, "directed": directed}
        opts.update(extra)
        opts.update(kwargs)
        edges = opts.pop("edges", vertices * 8)
        return erdos_renyi(vertices, edges, **opts)
    if kind == "ba":
        opts = {"seed": seed}
        opts.update(extra)
        opts.update(kwargs)
        return barabasi_albert(vertices, **opts)
    raise ValueError(
        f"unknown generator kind {kind!r}; expected one of {GENERATOR_KINDS}"
    )


def road_network(
    width: int,
    height: int,
    diagonal_fraction: float = 0.05,
    drop_fraction: float = 0.05,
    seed: int = 0,
    name: str = "usa-road",
) -> Graph:
    """Generate an undirected road-network stand-in on a ``width×height`` grid.

    Vertices are grid points; edges connect horizontal/vertical neighbours,
    a small fraction of diagonals are added and a small fraction of grid
    edges dropped so that the graph is not perfectly regular.  Edge weights
    are drawn uniformly from [1, 2) to emulate road lengths (SSSP needs
    weights).

    The result mirrors USARoad's salient features: near-constant low
    degree, large diameter, very large power-law exponent estimate.
    """
    if width < 2 or height < 2:
        raise ValueError("grid must be at least 2x2")
    rng = np.random.default_rng(seed)

    def vid(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return x * height + y

    xs, ys = np.meshgrid(np.arange(width), np.arange(height), indexing="ij")
    # Horizontal edges (x, y) - (x+1, y)
    hx, hy = xs[:-1, :].ravel(), ys[:-1, :].ravel()
    h_edges = np.stack([vid(hx, hy), vid(hx + 1, hy)], axis=1)
    # Vertical edges (x, y) - (x, y+1)
    vx, vy = xs[:, :-1].ravel(), ys[:, :-1].ravel()
    v_edges = np.stack([vid(vx, vy), vid(vx, vy + 1)], axis=1)
    edges = np.concatenate([h_edges, v_edges])

    if drop_fraction > 0:
        keep = rng.random(len(edges)) >= drop_fraction
        edges = edges[keep]

    if diagonal_fraction > 0:
        dx, dy = xs[:-1, :-1].ravel(), ys[:-1, :-1].ravel()
        diag = np.stack([vid(dx, dy), vid(dx + 1, dy + 1)], axis=1)
        take = rng.random(len(diag)) < diagonal_fraction
        edges = np.concatenate([edges, diag[take]])

    g = Graph.from_undirected_edges(edges, num_vertices=width * height, name=name)
    g.weights = rng.uniform(1.0, 2.0, g.num_edges)
    return g


def _powerlaw_degree_sequence(
    num_vertices: int, eta: float, min_degree: int, max_degree: int, rng
) -> np.ndarray:
    """Sample a degree sequence with ``P(d) ∝ d^-eta`` on [min, max]."""
    ds = np.arange(min_degree, max_degree + 1, dtype=np.float64)
    probs = ds ** (-eta)
    probs /= probs.sum()
    return rng.choice(ds.astype(np.int64), size=num_vertices, p=probs)


def powerlaw_graph(
    num_vertices: int,
    eta: float,
    min_degree: int = 1,
    max_degree: Optional[int] = None,
    directed: bool = False,
    seed: int = 0,
    name: str = "powerlaw",
) -> Graph:
    """Generate a Chung–Lu style power-law graph with exponent ``eta``.

    Each vertex draws a target degree from the truncated power law
    ``P(d) ∝ d^-eta``; edge endpoints are then sampled proportionally to
    target degrees, reproducing the skew the paper exploits.  Lower ``eta``
    yields heavier tails (Twitter-like); higher ``eta`` yields flatter
    graphs (LiveJournal-like).

    Self loops and exact duplicates are removed, so realised edge counts
    land slightly under the target ``sum(degrees)/2``.
    """
    if eta <= 0:
        raise ValueError("eta must be positive")
    if num_vertices < 2:
        raise ValueError("need at least two vertices")
    rng = np.random.default_rng(seed)
    if max_degree is None:
        max_degree = max(min_degree + 1, int(np.sqrt(num_vertices) * 4))
    degrees = _powerlaw_degree_sequence(num_vertices, eta, min_degree, max_degree, rng)
    num_edge_slots = int(degrees.sum()) // 2
    probs = degrees / degrees.sum()
    u = rng.choice(num_vertices, size=num_edge_slots, p=probs)
    v = rng.choice(num_vertices, size=num_edge_slots, p=probs)
    keep = u != v
    u, v = u[keep], v[keep]
    # Deduplicate undirected pairs.
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    pair_key = lo * np.int64(num_vertices) + hi
    _, uniq = np.unique(pair_key, return_index=True)
    u, v = lo[uniq], hi[uniq]
    edges = np.stack([u, v], axis=1)
    if directed:
        flip = rng.random(len(edges)) < 0.5
        edges[flip] = edges[flip][:, ::-1]
        return Graph.from_edges(edges, num_vertices=num_vertices, directed=True, name=name)
    return Graph.from_undirected_edges(edges, num_vertices=num_vertices, name=name)


def barabasi_albert(
    num_vertices: int, attach: int = 3, seed: int = 0, name: str = "ba"
) -> Graph:
    """Barabási–Albert preferential attachment graph (η ≈ 3).

    Each new vertex attaches to ``attach`` existing vertices chosen
    proportionally to current degree, using the standard repeated-endpoint
    trick for O(E) sampling.
    """
    if attach < 1:
        raise ValueError("attach must be >= 1")
    if num_vertices <= attach:
        raise ValueError("num_vertices must exceed attach")
    rng = np.random.default_rng(seed)
    # Endpoint pool: every time a vertex gains an edge, append its id.
    pool = list(range(attach))  # seed clique-ish core
    src_list = []
    dst_list = []
    for v in range(attach, num_vertices):
        targets = set()
        while len(targets) < attach:
            targets.add(int(pool[rng.integers(len(pool))]))
        for t in targets:
            src_list.append(v)
            dst_list.append(t)
            pool.append(v)
            pool.append(t)
    edges = np.stack([np.array(src_list), np.array(dst_list)], axis=1)
    return Graph.from_undirected_edges(edges, num_vertices=num_vertices, name=name)


def rmat(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    directed: bool = True,
    seed: int = 0,
    name: str = "rmat",
) -> Graph:
    """R-MAT / Kronecker generator with 2^scale vertices.

    Defaults follow the Graph500 parameters (a=0.57, b=0.19, c=0.19,
    d=0.05), which produce a heavily skewed degree distribution.
    """
    if not 0 < a + b + c < 1:
        raise ValueError("a+b+c must lie in (0, 1)")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    m = n * edge_factor
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    ab = a + b
    abc = a + b + c
    for bit in range(scale):
        r = rng.random(m)
        go_right = ((r >= a) & (r < ab)) | (r >= abc)
        go_down = r >= ab
        src |= go_down.astype(np.int64) << bit
        dst |= go_right.astype(np.int64) << bit
    keep = src != dst
    g = Graph(n, src[keep], dst[keep], directed=True, name=name)
    g = g.simplify()
    if not directed:
        return Graph.from_undirected_edges(g.edge_array(), num_vertices=n, name=name)
    return g


def erdos_renyi(
    num_vertices: int, num_edges: int, directed: bool = True, seed: int = 0, name: str = "er"
) -> Graph:
    """Uniform random graph with (approximately) ``num_edges`` edges."""
    rng = np.random.default_rng(seed)
    src = rng.integers(num_vertices, size=num_edges)
    dst = rng.integers(num_vertices, size=num_edges)
    keep = src != dst
    if directed:
        return Graph(num_vertices, src[keep], dst[keep], directed=True, name=name).simplify()
    edges = np.stack([src[keep], dst[keep]], axis=1)
    lo = edges.min(axis=1)
    hi = edges.max(axis=1)
    key = lo * np.int64(num_vertices) + hi
    _, uniq = np.unique(key, return_index=True)
    return Graph.from_undirected_edges(
        np.stack([lo[uniq], hi[uniq]], axis=1), num_vertices=num_vertices, name=name
    )


def paper_graph_suite(scale: float = 1.0, seed: int = 7) -> Dict[str, Graph]:
    """Build the four dataset stand-ins from Table I at a laptop scale.

    ``scale`` multiplies the stand-in vertex counts (1.0 ≈ tens of
    thousands of edges per graph, small enough for the full benchmark
    matrix to run in minutes).  The relative proportions follow Table I:
    USARoad is the largest-V/sparsest, Twitter and Friendster are the
    densest, and the η ordering (USARoad ≫ LiveJournal > Friendster >
    Twitter) is preserved.

    Returns a dict with keys ``usa-road``, ``livejournal``, ``friendster``
    and ``twitter``.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")

    def sized(n: int) -> int:
        return max(64, int(n * scale))

    side = max(8, int(np.sqrt(sized(14_400))))
    return {
        "usa-road": road_network(side, side, seed=seed, name="usa-road"),
        "livejournal": powerlaw_graph(
            sized(8_000), eta=2.64, min_degree=5, directed=True,
            seed=seed + 1, name="livejournal",
        ),
        "friendster": powerlaw_graph(
            sized(12_000), eta=2.43, min_degree=8, directed=False,
            seed=seed + 2, name="friendster",
        ),
        "twitter": powerlaw_graph(
            sized(10_000), eta=1.87, min_degree=8, directed=True,
            seed=seed + 3, name="twitter",
        ),
    }
