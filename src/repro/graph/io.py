"""Graph serialization: SNAP-style edge lists and METIS adjacency files.

The paper's datasets ship as SNAP edge lists (LiveJournal, Friendster,
Twitter) and DIMACS-adjacent formats (USARoad).  These readers/writers let
users run the library on real downloads when they have them, and are also
used by the tests to round-trip generated graphs.
"""

from __future__ import annotations

import os
from typing import Iterator, List, Optional, Tuple

import numpy as np

from .graph import Graph

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "read_edge_list_header",
    "iter_edge_chunks",
    "write_metis",
    "read_metis",
]


def write_edge_list(graph: Graph, path: str, header: bool = True) -> None:
    """Write a whitespace-separated ``u v [w]`` edge list.

    A SNAP-style comment header records vertex/edge counts and
    directedness so :func:`read_edge_list` can round-trip exactly.
    """
    with open(path, "w", encoding="ascii") as fh:
        if header:
            kind = "directed" if graph.directed else "undirected-doubled"
            fh.write(f"# repro-graph {kind} {graph.num_vertices} {graph.num_edges}\n")
        if graph.weights is None:
            for u, v in zip(graph.src.tolist(), graph.dst.tolist()):
                fh.write(f"{u} {v}\n")
        else:
            for u, v, w in zip(
                graph.src.tolist(), graph.dst.tolist(), graph.weights.tolist()
            ):
                fh.write(f"{u} {v} {w}\n")


def read_edge_list(
    path: str,
    directed: Optional[bool] = None,
    num_vertices: Optional[int] = None,
    name: Optional[str] = None,
) -> Graph:
    """Read an edge list written by :func:`write_edge_list` or SNAP.

    Lines starting with ``#`` or ``%`` are comments.  If a repro-graph
    header is present it supplies directedness and the vertex count;
    explicit arguments override it.  For a plain SNAP file, ``directed``
    defaults to ``True``.
    """
    header_directed: Optional[bool] = None
    header_vertices: Optional[int] = None
    srcs: List[int] = []
    dsts: List[int] = []
    wts: List[float] = []
    with open(path, "r", encoding="ascii") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if line[0] in "#%":
                parsed = _parse_repro_header(line)
                if parsed is not None:
                    header_directed, header_vertices = parsed
                continue
            parts = line.split()
            srcs.append(int(parts[0]))
            dsts.append(int(parts[1]))
            if len(parts) > 2:
                wts.append(float(parts[2]))
    if directed is None:
        directed = True if header_directed is None else header_directed
    if num_vertices is None:
        num_vertices = header_vertices
    if num_vertices is None:
        num_vertices = (max(max(srcs), max(dsts)) + 1) if srcs else 1
    weights = np.asarray(wts) if len(wts) == len(srcs) and wts else None
    return Graph(
        num_vertices,
        np.asarray(srcs, dtype=np.int64),
        np.asarray(dsts, dtype=np.int64),
        weights=weights,
        directed=directed,
        name=name or os.path.splitext(os.path.basename(path))[0],
    )


def _parse_repro_header(line: str) -> Optional[Tuple[bool, int]]:
    """Parse one comment line; ``(directed, num_vertices)`` if it is a
    repro-graph header, ``None`` for any other comment."""
    parts = line[1:].split()
    if parts[:1] == ["repro-graph"] and len(parts) >= 4:
        return parts[1] == "directed", int(parts[2])
    return None


def read_edge_list_header(path: str) -> Tuple[Optional[bool], Optional[int]]:
    """Return the ``(directed, num_vertices)`` hints of a repro-graph header.

    Only the leading comment block is scanned (a header after the first
    edge would not describe the whole file); both entries are ``None``
    for plain SNAP files without a repro-graph header.
    """
    with open(path, "r", encoding="ascii") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if line[0] not in "#%":
                break
            parsed = _parse_repro_header(line)
            if parsed is not None:
                return parsed
    return None, None


def iter_edge_chunks(
    path: str, chunk_size: int = 65536
) -> Iterator[Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]]:
    """Stream an edge-list file as ``(src, dst, weights)`` array chunks.

    The out-of-core reader behind :class:`repro.stream.TextEdgeListStream`:
    at most ``chunk_size`` edges are materialized at a time, so a graph
    that never fits in memory can still be partitioned.  Concatenating
    every chunk reproduces exactly the arrays :func:`read_edge_list`
    would build for the same file (same comment and header handling);
    ``weights`` is ``None`` for 2-column files.

    Unlike :func:`read_edge_list` — which drops weights wholesale when
    only some lines carry a third column — a chunked reader cannot see
    the whole file before deciding, so mixing 2- and 3-column edge lines
    raises ``ValueError``, as does any malformed line (both with the
    offending 1-based line number).
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    srcs: List[int] = []
    dsts: List[int] = []
    wts: List[float] = []
    weighted: Optional[bool] = None

    def flush():
        w = np.asarray(wts, dtype=np.float64) if weighted else None
        chunk = (
            np.asarray(srcs, dtype=np.int64),
            np.asarray(dsts, dtype=np.int64),
            w,
        )
        srcs.clear()
        dsts.clear()
        wts.clear()
        return chunk

    with open(path, "r", encoding="ascii") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line[0] in "#%":
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(
                    f"{path}:{lineno}: malformed edge line {line!r}; "
                    "expected 'u v [w]'"
                )
            try:
                u = int(parts[0])
                v = int(parts[1])
                w = float(parts[2]) if len(parts) > 2 else None
            except ValueError as exc:
                raise ValueError(
                    f"{path}:{lineno}: malformed edge line {line!r}: {exc}"
                ) from None
            has_weight = w is not None
            if weighted is None:
                weighted = has_weight
            elif weighted != has_weight:
                raise ValueError(
                    f"{path}:{lineno}: inconsistent column count; the file "
                    f"{'has' if weighted else 'lacks'} edge weights but this "
                    "line does not match"
                )
            srcs.append(u)
            dsts.append(v)
            if has_weight:
                wts.append(w)
            if len(srcs) >= chunk_size:
                yield flush()
    if srcs:
        yield flush()


def write_metis(graph: Graph, path: str) -> None:
    """Write the METIS adjacency format (1-indexed, undirected).

    Directed edges are symmetrized because the METIS format requires each
    edge to appear in both endpoint adjacency lists.
    """
    adj: List[set] = [set() for _ in range(graph.num_vertices)]
    for u, v in zip(graph.src.tolist(), graph.dst.tolist()):
        if u == v:
            continue
        adj[u].add(v)
        adj[v].add(u)
    num_edges = sum(len(a) for a in adj) // 2
    with open(path, "w", encoding="ascii") as fh:
        fh.write(f"{graph.num_vertices} {num_edges}\n")
        for a in adj:
            fh.write(" ".join(str(v + 1) for v in sorted(a)) + "\n")


def read_metis(path: str, name: Optional[str] = None) -> Graph:
    """Read a METIS adjacency file into an undirected (doubled) graph."""
    with open(path, "r", encoding="ascii") as fh:
        lines = [ln.strip() for ln in fh if ln.strip() and not ln.startswith("%")]
    header = lines[0].split()
    n = int(header[0])
    edges = []
    for u, line in enumerate(lines[1 : n + 1]):
        for tok in line.split():
            v = int(tok) - 1
            if u < v:
                edges.append((u, v))
    return Graph.from_undirected_edges(
        edges, num_vertices=n, name=name or os.path.splitext(os.path.basename(path))[0]
    )
