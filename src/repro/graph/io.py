"""Graph serialization: SNAP-style edge lists and METIS adjacency files.

The paper's datasets ship as SNAP edge lists (LiveJournal, Friendster,
Twitter) and DIMACS-adjacent formats (USARoad).  These readers/writers let
users run the library on real downloads when they have them, and are also
used by the tests to round-trip generated graphs.
"""

from __future__ import annotations

import os
from typing import List, Optional

import numpy as np

from .graph import Graph

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "write_metis",
    "read_metis",
]


def write_edge_list(graph: Graph, path: str, header: bool = True) -> None:
    """Write a whitespace-separated ``u v [w]`` edge list.

    A SNAP-style comment header records vertex/edge counts and
    directedness so :func:`read_edge_list` can round-trip exactly.
    """
    with open(path, "w", encoding="ascii") as fh:
        if header:
            kind = "directed" if graph.directed else "undirected-doubled"
            fh.write(f"# repro-graph {kind} {graph.num_vertices} {graph.num_edges}\n")
        if graph.weights is None:
            for u, v in zip(graph.src.tolist(), graph.dst.tolist()):
                fh.write(f"{u} {v}\n")
        else:
            for u, v, w in zip(
                graph.src.tolist(), graph.dst.tolist(), graph.weights.tolist()
            ):
                fh.write(f"{u} {v} {w}\n")


def read_edge_list(
    path: str,
    directed: Optional[bool] = None,
    num_vertices: Optional[int] = None,
    name: Optional[str] = None,
) -> Graph:
    """Read an edge list written by :func:`write_edge_list` or SNAP.

    Lines starting with ``#`` or ``%`` are comments.  If a repro-graph
    header is present it supplies directedness and the vertex count;
    explicit arguments override it.  For a plain SNAP file, ``directed``
    defaults to ``True``.
    """
    header_directed: Optional[bool] = None
    header_vertices: Optional[int] = None
    srcs: List[int] = []
    dsts: List[int] = []
    wts: List[float] = []
    with open(path, "r", encoding="ascii") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if line[0] in "#%":
                parts = line[1:].split()
                if parts[:1] == ["repro-graph"] and len(parts) >= 4:
                    header_directed = parts[1] == "directed"
                    header_vertices = int(parts[2])
                continue
            parts = line.split()
            srcs.append(int(parts[0]))
            dsts.append(int(parts[1]))
            if len(parts) > 2:
                wts.append(float(parts[2]))
    if directed is None:
        directed = True if header_directed is None else header_directed
    if num_vertices is None:
        num_vertices = header_vertices
    if num_vertices is None:
        num_vertices = (max(max(srcs), max(dsts)) + 1) if srcs else 1
    weights = np.asarray(wts) if len(wts) == len(srcs) and wts else None
    return Graph(
        num_vertices,
        np.asarray(srcs, dtype=np.int64),
        np.asarray(dsts, dtype=np.int64),
        weights=weights,
        directed=directed,
        name=name or os.path.splitext(os.path.basename(path))[0],
    )


def write_metis(graph: Graph, path: str) -> None:
    """Write the METIS adjacency format (1-indexed, undirected).

    Directed edges are symmetrized because the METIS format requires each
    edge to appear in both endpoint adjacency lists.
    """
    adj: List[set] = [set() for _ in range(graph.num_vertices)]
    for u, v in zip(graph.src.tolist(), graph.dst.tolist()):
        if u == v:
            continue
        adj[u].add(v)
        adj[v].add(u)
    num_edges = sum(len(a) for a in adj) // 2
    with open(path, "w", encoding="ascii") as fh:
        fh.write(f"{graph.num_vertices} {num_edges}\n")
        for a in adj:
            fh.write(" ".join(str(v + 1) for v in sorted(a)) + "\n")


def read_metis(path: str, name: Optional[str] = None) -> Graph:
    """Read a METIS adjacency file into an undirected (doubled) graph."""
    with open(path, "r", encoding="ascii") as fh:
        lines = [ln.strip() for ln in fh if ln.strip() and not ln.startswith("%")]
    header = lines[0].split()
    n = int(header[0])
    edges = []
    for u, line in enumerate(lines[1 : n + 1]):
        for tok in line.split():
            v = int(tok) - 1
            if u < v:
                edges.append((u, v))
    return Graph.from_undirected_edges(
        edges, num_vertices=n, name=name or os.path.splitext(os.path.basename(path))[0]
    )
