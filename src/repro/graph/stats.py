"""Graph statistics: degree distributions and power-law exponent estimation.

Section III-A defines power-law graphs via ``P(degree = d) ∝ d^-η`` and
Table I reports η for each dataset (even USARoad, "according to the
definition").  This module provides two η estimators:

* :func:`estimate_eta_mle` — the discrete maximum-likelihood (Hill-style)
  estimator of Clauset–Shalizi–Newman,
  ``η ≈ 1 + n / Σ ln(d_i / (d_min - 1/2))``.
* :func:`estimate_eta_fit` — a log-log least squares fit of the degree
  histogram, closer to what eyeballing a CCDF gives and tolerant of
  non-power-law inputs (which is how a road network still "has" an η).

Plus the Table I row generator used by the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from .graph import Graph

__all__ = [
    "degree_histogram",
    "estimate_eta_mle",
    "estimate_eta_fit",
    "GraphStats",
    "graph_stats",
]


def degree_histogram(graph: Graph) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(degree_values, counts)`` for nonzero-count degrees >= 1."""
    deg = graph.degrees()
    deg = deg[deg > 0]
    if deg.size == 0:
        return np.array([], dtype=np.int64), np.array([], dtype=np.int64)
    counts = np.bincount(deg)
    values = np.nonzero(counts)[0]
    values = values[values >= 1]
    return values, counts[values]


def estimate_eta_mle(graph: Graph, d_min: int = 1) -> float:
    """Discrete MLE for the power-law exponent η.

    Uses the Clauset–Shalizi–Newman approximation restricted to degrees
    ``>= d_min``.  Raises ``ValueError`` if fewer than two vertices
    qualify.
    """
    deg = graph.degrees().astype(np.float64)
    deg = deg[deg >= d_min]
    if deg.size < 2:
        raise ValueError("not enough vertices with degree >= d_min")
    return 1.0 + deg.size / np.log(deg / (d_min - 0.5)).sum()


def estimate_eta_fit(graph: Graph, min_points: int = 3) -> float:
    """Estimate η from a log-log least-squares fit of the CCDF tail.

    Fits ``log P(degree >= d)`` against ``log d`` for degrees at or above
    the histogram mode (the decaying tail); for a power law the CCDF slope
    is ``-(η - 1)``, so the estimate is ``1 - slope``.  Tail-restricting
    makes the estimator sensible even for non-power-law inputs: a
    road-network grid whose degrees concentrate on 3-4 produces a very
    steep tail and hence a large η, mirroring the paper's convention of
    quoting η = 6.30 for USARoad.  Distributions spanning fewer than
    ``min_points`` distinct tail degrees return a large sentinel (20.0).
    """
    values, counts = degree_histogram(graph)
    if values.size == 0:
        return 20.0
    mode = values[np.argmax(counts)]
    tail = values >= mode
    values, counts = values[tail], counts[tail]
    if values.size < min_points:
        return 20.0
    ccdf = np.cumsum(counts[::-1])[::-1].astype(np.float64)
    ccdf /= ccdf[0]
    x = np.log(values.astype(np.float64))
    y = np.log(ccdf)
    slope, _ = np.polyfit(x, y, 1)
    return float(1.0 - slope)


@dataclass
class GraphStats:
    """One Table I row."""

    name: str
    kind: str
    num_vertices: int
    num_edges: int
    average_degree: float
    eta: float

    def as_row(self) -> Tuple[str, str, int, int, float, float]:
        return (
            self.name,
            self.kind,
            self.num_vertices,
            self.num_edges,
            round(self.average_degree, 2),
            round(self.eta, 2),
        )


def graph_stats(graph: Graph) -> GraphStats:
    """Compute the Table I statistics row for ``graph``.

    Follows the paper's conventions: undirected graphs report the
    undirected edge count, and average degree is stored-edges per vertex
    (so an undirected graph's average degree counts both directions,
    matching e.g. Friendster's reported 27.53 ≈ 2·|E|/|V|... the paper
    actually reports |E|/|V| with |E| directed-doubled for undirected
    graphs; we do the same).
    """
    return GraphStats(
        name=graph.name,
        kind="Directed" if graph.directed else "Undirected",
        num_vertices=graph.num_vertices,
        num_edges=graph.num_undirected_edges,
        average_degree=graph.num_edges / graph.num_vertices,
        eta=estimate_eta_fit(graph),
    )


def stats_table(graphs: Dict[str, Graph]) -> str:
    """Render a Table I style text table for a dict of graphs."""
    header = f"{'Graph':<14}{'Type':<12}{'V':>10}{'E':>12}{'AvgDeg':>9}{'eta':>7}"
    lines = [header, "-" * len(header)]
    for g in graphs.values():
        s = graph_stats(g)
        lines.append(
            f"{s.name:<14}{s.kind:<12}{s.num_vertices:>10}{s.num_edges:>12}"
            f"{s.average_degree:>9.2f}{s.eta:>7.2f}"
        )
    return "\n".join(lines)
