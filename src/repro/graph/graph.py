"""Core graph data structure used by every subsystem.

The paper (Section III-C) works with directed graphs ``G = (V, E)`` where an
edge is an ordered pair ``(u, v)``.  Undirected graphs are represented by
replacing each undirected edge with two directed edges of opposite
direction.  This module provides a compact, numpy-backed edge-list graph
with lazily built CSR adjacency indexes, which is the representation shared
by the partitioners, the BSP engine and the analysis code.

Vertices are dense integers ``0 .. num_vertices - 1``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Graph", "CSRIndex"]


class CSRIndex:
    """Compressed sparse row adjacency index over an edge array.

    Maps each vertex to the (contiguous) positions of its incident edges
    after a stable counting sort of the edge array by ``key`` (either the
    source or the destination endpoint).

    Parameters
    ----------
    key:
        Array of per-edge vertex ids the index is built on (``src`` for an
        out-edge index, ``dst`` for an in-edge index).
    other:
        The opposite endpoint of each edge.
    num_vertices:
        Total number of vertices in the graph.
    """

    def __init__(self, key: np.ndarray, other: np.ndarray, num_vertices: int):
        order = np.argsort(key, kind="stable")
        self.indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        counts = np.bincount(key, minlength=num_vertices)
        np.cumsum(counts, out=self.indptr[1:])
        self.neighbors = other[order]
        self.edge_ids = order

    def neighbors_of(self, v: int) -> np.ndarray:
        """Return the opposite endpoints of all edges keyed on ``v``."""
        return self.neighbors[self.indptr[v] : self.indptr[v + 1]]

    def edges_of(self, v: int) -> np.ndarray:
        """Return the edge ids (positions in the edge arrays) keyed on ``v``."""
        return self.edge_ids[self.indptr[v] : self.indptr[v + 1]]

    def degree(self, v: int) -> int:
        """Return the number of edges keyed on ``v``."""
        return int(self.indptr[v + 1] - self.indptr[v])


class Graph:
    """A directed graph stored as parallel ``src``/``dst`` edge arrays.

    Parameters
    ----------
    num_vertices:
        Number of vertices; vertex ids must lie in ``[0, num_vertices)``.
    src, dst:
        Parallel integer arrays; edge ``i`` is ``(src[i], dst[i])``.
    weights:
        Optional parallel float array of edge weights (used by SSSP).
    directed:
        ``True`` if the edge list is inherently directed.  Undirected
        graphs built through :meth:`from_undirected_edges` store both
        directions and set this flag to ``False`` for bookkeeping (e.g.
        Table I reports the *undirected* edge count for undirected inputs,
        but partitioners operate on the doubled edge array).
    name:
        Optional human-readable name used in reports.
    """

    def __init__(
        self,
        num_vertices: int,
        src: Sequence[int],
        dst: Sequence[int],
        weights: Optional[Sequence[float]] = None,
        directed: bool = True,
        name: str = "graph",
    ):
        self.num_vertices = int(num_vertices)
        self.src = np.ascontiguousarray(src, dtype=np.int64)
        self.dst = np.ascontiguousarray(dst, dtype=np.int64)
        if self.src.shape != self.dst.shape or self.src.ndim != 1:
            raise ValueError("src and dst must be 1-D arrays of equal length")
        if self.num_vertices <= 0:
            raise ValueError("graph must have at least one vertex")
        if self.num_edges:
            lo = min(self.src.min(), self.dst.min())
            hi = max(self.src.max(), self.dst.max())
            if lo < 0 or hi >= self.num_vertices:
                raise ValueError(
                    f"edge endpoint out of range [0, {self.num_vertices}): "
                    f"saw ids in [{lo}, {hi}]"
                )
        if weights is not None:
            self.weights = np.ascontiguousarray(weights, dtype=np.float64)
            if self.weights.shape != self.src.shape:
                raise ValueError("weights must parallel the edge arrays")
        else:
            self.weights = None
        self.directed = bool(directed)
        self.name = name
        self._out_index: Optional[CSRIndex] = None
        self._in_index: Optional[CSRIndex] = None
        self._degrees: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[int, int]],
        num_vertices: Optional[int] = None,
        directed: bool = True,
        name: str = "graph",
    ) -> "Graph":
        """Build a directed graph from an iterable of ``(u, v)`` pairs."""
        arr = np.asarray(list(edges), dtype=np.int64)
        if arr.size == 0:
            arr = arr.reshape(0, 2)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError("edges must be (u, v) pairs")
        if num_vertices is None:
            num_vertices = int(arr.max()) + 1 if arr.size else 1
        return cls(num_vertices, arr[:, 0], arr[:, 1], directed=directed, name=name)

    @classmethod
    def from_undirected_edges(
        cls,
        edges: Iterable[Tuple[int, int]],
        num_vertices: Optional[int] = None,
        name: str = "graph",
    ) -> "Graph":
        """Build the directed doubling of an undirected edge list.

        Per Section III-C of the paper, each undirected edge ``{u, v}``
        becomes the two directed edges ``(u, v)`` and ``(v, u)``.
        """
        arr = np.asarray(list(edges), dtype=np.int64)
        if arr.size == 0:
            arr = arr.reshape(0, 2)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError("edges must be (u, v) pairs")
        if num_vertices is None:
            num_vertices = int(arr.max()) + 1 if arr.size else 1
        src = np.concatenate([arr[:, 0], arr[:, 1]])
        dst = np.concatenate([arr[:, 1], arr[:, 0]])
        return cls(num_vertices, src, dst, directed=False, name=name)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def num_edges(self) -> int:
        """Number of stored (directed) edges."""
        return int(self.src.shape[0])

    @property
    def num_undirected_edges(self) -> int:
        """Edge count as reported in Table I.

        For undirected graphs the stored array holds both directions, so
        the logical edge count is half the stored count.
        """
        return self.num_edges if self.directed else self.num_edges // 2

    @property
    def average_degree(self) -> float:
        """Average (total) degree, matching the Table I convention."""
        if self.num_vertices == 0:
            return 0.0
        return self.num_edges / self.num_vertices

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over ``(u, v)`` pairs (python ints)."""
        for u, v in zip(self.src.tolist(), self.dst.tolist()):
            yield u, v

    def edge_array(self) -> np.ndarray:
        """Return an ``(m, 2)`` array view of the edges."""
        return np.stack([self.src, self.dst], axis=1)

    # ------------------------------------------------------------------
    # Degrees and adjacency
    # ------------------------------------------------------------------

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex."""
        return np.bincount(self.src, minlength=self.num_vertices)

    def in_degrees(self) -> np.ndarray:
        """In-degree of every vertex."""
        return np.bincount(self.dst, minlength=self.num_vertices)

    def degrees(self) -> np.ndarray:
        """Total degree (in + out) of every vertex; cached.

        This is the degree used by the EBV sorting preprocessing and by
        DBH's "lower-degree end-vertex" rule.
        """
        if self._degrees is None:
            self._degrees = self.out_degrees() + self.in_degrees()
        return self._degrees

    def out_index(self) -> CSRIndex:
        """CSR index over edge sources; cached."""
        if self._out_index is None:
            self._out_index = CSRIndex(self.src, self.dst, self.num_vertices)
        return self._out_index

    def in_index(self) -> CSRIndex:
        """CSR index over edge destinations; cached."""
        if self._in_index is None:
            self._in_index = CSRIndex(self.dst, self.src, self.num_vertices)
        return self._in_index

    def out_neighbors(self, v: int) -> np.ndarray:
        """Destinations of edges leaving ``v``."""
        return self.out_index().neighbors_of(v)

    def in_neighbors(self, v: int) -> np.ndarray:
        """Sources of edges entering ``v``."""
        return self.in_index().neighbors_of(v)

    def neighbors(self, v: int) -> np.ndarray:
        """All distinct neighbors of ``v`` in either direction."""
        return np.unique(np.concatenate([self.out_neighbors(v), self.in_neighbors(v)]))

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def with_weights(self, weights: Sequence[float]) -> "Graph":
        """Return a copy of this graph with the given edge weights."""
        return Graph(
            self.num_vertices,
            self.src.copy(),
            self.dst.copy(),
            weights=weights,
            directed=self.directed,
            name=self.name,
        )

    def with_unit_weights(self) -> "Graph":
        """Return a copy with all edge weights set to 1.0."""
        return self.with_weights(np.ones(self.num_edges))

    def reversed(self) -> "Graph":
        """Return the graph with all edges reversed."""
        return Graph(
            self.num_vertices,
            self.dst.copy(),
            self.src.copy(),
            weights=None if self.weights is None else self.weights.copy(),
            directed=self.directed,
            name=f"{self.name}-rev",
        )

    def simplify(self) -> "Graph":
        """Return a copy without self loops and duplicate edges."""
        keep = self.src != self.dst
        pairs = self.src[keep] * np.int64(self.num_vertices) + self.dst[keep]
        _, first = np.unique(pairs, return_index=True)
        first.sort()
        src = self.src[keep][first]
        dst = self.dst[keep][first]
        w = None if self.weights is None else self.weights[keep][first]
        return Graph(
            self.num_vertices, src, dst, weights=w, directed=self.directed, name=self.name
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "directed" if self.directed else "undirected(doubled)"
        return (
            f"Graph(name={self.name!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}, {kind})"
        )
