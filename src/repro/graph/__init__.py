"""Graph substrate: data structure, generators, IO and statistics."""

from .graph import CSRIndex, Graph
from .generators import (
    GENERATOR_KINDS,
    barabasi_albert,
    erdos_renyi,
    generate_graph,
    paper_graph_suite,
    powerlaw_graph,
    rmat,
    road_network,
)
from .io import (
    iter_edge_chunks,
    read_edge_list,
    read_edge_list_header,
    read_metis,
    write_edge_list,
    write_metis,
)
from .stats import (
    GraphStats,
    degree_histogram,
    estimate_eta_fit,
    estimate_eta_mle,
    graph_stats,
    stats_table,
)

__all__ = [
    "CSRIndex",
    "Graph",
    "GENERATOR_KINDS",
    "barabasi_albert",
    "erdos_renyi",
    "generate_graph",
    "paper_graph_suite",
    "powerlaw_graph",
    "rmat",
    "road_network",
    "iter_edge_chunks",
    "read_edge_list",
    "read_edge_list_header",
    "read_metis",
    "write_edge_list",
    "write_metis",
    "GraphStats",
    "degree_histogram",
    "estimate_eta_fit",
    "estimate_eta_mle",
    "graph_stats",
    "stats_table",
]
