"""Vertex-centric comparator (the Galois/Pregel stand-in).

Galois (with the Gluon substrate) executes vertex programs over a
distributed graph; its computation stage advances values one hop per
round instead of converging whole subgraphs.  We reproduce that
semantics by running the same applications with
``local_convergence=False`` on the shared BSP engine, over Galois's
default partitioning policy (an edge-cut by vertex hashing; Gluon's
default is a 1D policy).

Galois is a highly optimized shared-memory system, so its per-unit
costs are lower than a distributed framework's: the paper shows it
*winning* PR-LiveJournal yet degrading on the billion-edge graphs.  The
``speedup`` knob models that constant-factor advantage (default 4×
cheaper work units and messages); the scaling *shape* — more supersteps,
hop-by-hop propagation, message volume growing with cut size — comes
from the semantics, not the knob.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..bsp import BSPEngine, BSPRun, CostModel, build_distributed_graph
from ..graph import Graph
from ..partition.random_hash import RandomVertexHashPartitioner
from .base import Framework, make_program

__all__ = ["VertexCentricFramework"]


class VertexCentricFramework(Framework):
    """Pregel-style execution: one-hop supersteps over a hash edge-cut.

    Parameters
    ----------
    speedup:
        Constant-factor cost advantage modeling Galois's shared-memory
        runtime (4× by default).
    cost_model:
        Base cost model before the speedup is applied; defaults to the
        shared :class:`~repro.bsp.CostModel`.
    """

    name = "Galois"

    def __init__(
        self,
        speedup: float = 4.0,
        cost_model: Optional[CostModel] = None,
        pagerank_iters: int = 20,
    ):
        if speedup <= 0:
            raise ValueError("speedup must be positive")
        base = cost_model or CostModel()
        # The speedup discounts computation and barrier costs (those are
        # what a tuned shared-memory runtime accelerates); network
        # messages cost the same for every distributed system, and are
        # exactly the vertex-centric bottleneck the paper analyzes.
        self.engine = BSPEngine(
            cost_model=CostModel(
                seconds_per_work_unit=base.seconds_per_work_unit / speedup,
                seconds_per_message=base.seconds_per_message,
                superstep_overhead=base.superstep_overhead / speedup,
            ),
            max_supersteps=20000,
        )
        self.partitioner = RandomVertexHashPartitioner()
        self.pagerank_iters = pagerank_iters
        self._dgraph_cache: Dict[Tuple[int, int], object] = {}

    def run(self, graph: Graph, app: str, num_workers: int) -> BSPRun:
        """Execute with vertex-centric (single-sweep) semantics."""
        key = (id(graph), num_workers)
        if key not in self._dgraph_cache:
            result = self.partitioner.partition(graph, num_workers)
            self._dgraph_cache[key] = build_distributed_graph(result)
        dgraph = self._dgraph_cache[key]
        program = make_program(
            app, graph, local_convergence=False, pagerank_iters=self.pagerank_iters
        )
        run = self.engine.run(dgraph, program)
        run.partition_method = self.name
        return run
