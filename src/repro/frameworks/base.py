"""Framework abstraction for the cross-system comparison (Figures 2–3).

The paper compares the six partition algorithms *inside* the
subgraph-centric framework (DRONE) against two external systems: Galois
(vertex-centric, shared memory) and Blogel (block-centric).  A
:class:`Framework` bundles a partitioning policy with execution
semantics and a cost profile, so the experiment drivers can sweep
``framework × app × graph × workers`` uniformly.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from ..apps import (
    BFS,
    ConnectedComponents,
    FeaturePropagation,
    IncrementalConnectedComponents,
    IncrementalPageRank,
    KCore,
    PageRank,
    SSSP,
    default_source,
    deterministic_features,
)
from ..bsp import BSPRun, SubgraphProgram
from ..graph import Graph

__all__ = ["APP_NAMES", "make_program", "Framework"]

APP_NAMES = ("CC", "PR", "SSSP", "BFS", "KCORE", "FEATPROP", "CC-DELTA", "PR-DELTA")


def make_program(
    app: str,
    graph: Graph,
    local_convergence: bool = True,
    pagerank_iters: int = 20,
    source: Optional[int] = None,
    k: int = 3,
    hops: int = 2,
    mix: float = 0.5,
    feature_dims: int = 8,
    feature_seed: int = 0,
    features: Optional[np.ndarray] = None,
    prev_values: Optional[np.ndarray] = None,
    pagerank_tol: float = 1e-10,
    delta_iters: int = 100,
) -> SubgraphProgram:
    """Instantiate any registered application by (case-insensitive) name.

    ``local_convergence`` selects subgraph-centric (``True``) versus
    vertex-centric (``False``) computation-stage semantics for the
    frontier/label apps; PageRank is inherently one-iteration-per-
    superstep so the flag does not apply.  ``k`` parameterizes KCORE;
    ``hops``/``mix``/``feature_dims``/``feature_seed``/``features``
    parameterize FEATPROP (a seeded deterministic feature matrix is
    generated when none is supplied).  ``prev_values`` warm-starts the
    delta apps (CC-DELTA/PR-DELTA; see :mod:`repro.apps.delta` for the
    soundness contract), ``pagerank_tol`` tunes both PageRanks'
    convergence threshold, and ``delta_iters`` caps PR-DELTA's
    tolerance-governed iteration budget.
    """
    name = app.upper() if isinstance(app, str) else app
    if name == "CC":
        return ConnectedComponents(local_convergence=local_convergence)
    if name == "SSSP":
        src = default_source(graph) if source is None else source
        return SSSP(src, local_convergence=local_convergence)
    if name == "PR":
        return PageRank(graph.num_vertices, max_iters=pagerank_iters, tol=pagerank_tol)
    if name == "BFS":
        src = default_source(graph) if source is None else source
        return BFS(src, local_convergence=local_convergence)
    if name == "KCORE":
        return KCore(k)
    if name == "FEATPROP":
        if features is None:
            features = deterministic_features(graph, dims=feature_dims, seed=feature_seed)
        return FeaturePropagation(features, hops=hops, mix=mix)
    if name == "CC-DELTA":
        return IncrementalConnectedComponents(
            prev_values=prev_values, local_convergence=local_convergence
        )
    if name == "PR-DELTA":
        return IncrementalPageRank(
            graph.num_vertices,
            prev_values=prev_values,
            max_iters=delta_iters,
            tol=pagerank_tol,
        )
    raise ValueError(f"unknown app {app!r}; expected one of {APP_NAMES}")


class Framework(abc.ABC):
    """A complete system under test: partitioning + execution semantics."""

    #: display name used in figures/tables.
    name: str = "framework"

    @abc.abstractmethod
    def run(self, graph: Graph, app: str, num_workers: int) -> BSPRun:
        """Execute ``app`` on ``graph`` with ``num_workers`` workers."""

    def supports(self, app: str) -> bool:
        """Whether this framework participates in an app's comparison.

        Mirrors the paper's exclusions (e.g. Blogel is excluded from the
        PageRank comparison because its PR is not standard).
        """
        return app in APP_NAMES
