"""Blogel's multi-source Graph Voronoi Diagram partitioner.

Blogel (Yan et al., VLDB 2014) partitions by sampling seed vertices and
running a multi-source BFS; every vertex joins the block of its nearest
seed, which guarantees blocks are connected.  Blocks are then packed
onto workers by greedy bin packing on vertex counts.  Unreached
vertices (in components containing no seed) are re-seeded in later
rounds, mirroring Blogel's iterative Voronoi sampling.

This is an *edge-cut* policy (each vertex lives on exactly one worker),
so it plugs into the shared :class:`~repro.partition.PartitionResult`
machinery like METIS does.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..graph import Graph
from ..partition.base import EDGE_CUT, Partitioner, PartitionResult

__all__ = ["VoronoiPartitioner"]


class VoronoiPartitioner(Partitioner):
    """Multi-source Voronoi blocks packed onto workers.

    Parameters
    ----------
    seeds_per_worker:
        Number of Voronoi seeds sampled per target worker; more seeds
        give smaller, rounder blocks (Blogel samples aggressively).
    seed:
        RNG seed for reproducible sampling.
    """

    name = "Voronoi"

    def __init__(self, seeds_per_worker: int = 8, seed: int = 0):
        if seeds_per_worker < 1:
            raise ValueError("seeds_per_worker must be >= 1")
        self.seeds_per_worker = int(seeds_per_worker)
        self.seed = seed

    def partition(self, graph: Graph, num_parts: int) -> PartitionResult:
        """Sample seeds, flood-fill blocks, then bin-pack blocks."""
        n = graph.num_vertices
        rng = np.random.default_rng(self.seed)
        block = np.full(n, -1, dtype=np.int64)
        out = graph.out_index()
        inn = graph.in_index()

        num_seeds = min(n, self.seeds_per_worker * num_parts)
        next_block = 0
        # Iterative sampling rounds: until every vertex has a block.
        while True:
            unassigned = np.nonzero(block < 0)[0]
            if unassigned.size == 0:
                break
            take = min(num_seeds, unassigned.size)
            seeds = rng.choice(unassigned, size=take, replace=False)
            frontier = deque()
            for s in seeds.tolist():
                block[s] = next_block
                frontier.append(s)
                next_block += 1
            while frontier:
                x = frontier.popleft()
                for nbrs in (out.neighbors_of(x), inn.neighbors_of(x)):
                    for y in nbrs.tolist():
                        if block[y] < 0:
                            block[y] = block[x]
                            frontier.append(y)
            # Any vertex still unassigned lives in a seedless component;
            # loop to sample fresh seeds among them.

        # Greedy bin packing of blocks onto workers by vertex count.
        block_sizes = np.bincount(block, minlength=next_block)
        order = np.argsort(block_sizes)[::-1]
        loads = np.zeros(num_parts, dtype=np.int64)
        block_worker = np.zeros(next_block, dtype=np.int64)
        for b in order.tolist():
            w = int(np.argmin(loads))
            block_worker[b] = w
            loads[w] += block_sizes[b]
        vertex_parts = block_worker[block]
        return PartitionResult(
            graph,
            num_parts,
            vertex_parts=vertex_parts,
            kind=EDGE_CUT,
            method=self.name,
        )
