"""Comparator frameworks: DRONE-like subgraph-centric, Galois-like, Blogel-like."""

from .base import APP_NAMES, Framework, make_program
from .blogel import BlogelFramework
from .drone import SubgraphCentricFramework
from .vertex_centric import VertexCentricFramework
from .voronoi import VoronoiPartitioner

__all__ = [
    "APP_NAMES",
    "Framework",
    "make_program",
    "BlogelFramework",
    "SubgraphCentricFramework",
    "VertexCentricFramework",
    "VoronoiPartitioner",
]
