"""The subgraph-centric framework (DRONE stand-in), the paper's test bed.

One instance per partition algorithm: ``SubgraphCentricFramework(EBVPartitioner())``
is what Figure 2 labels "EBV", and so on for Ginger/DBH/CVC/NE/METIS.
Partitioning overhead is *excluded* from execution time, exactly as in
Section V-B ("the partition overhead is not included").
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..bsp import BSPEngine, BSPRun, CostModel, build_distributed_graph
from ..graph import Graph
from ..partition.base import Partitioner
from .base import Framework, make_program

__all__ = ["SubgraphCentricFramework"]


class SubgraphCentricFramework(Framework):
    """Subgraph-centric BSP execution over a pluggable partitioner.

    Parameters
    ----------
    partitioner:
        Any :class:`~repro.partition.Partitioner`; its name becomes the
        framework's display name (matching the paper's figure legends).
    cost_model:
        Optional cost-model override shared with comparator frameworks.
    pagerank_iters:
        Fixed PageRank iteration budget for the PR comparisons.
    """

    def __init__(
        self,
        partitioner: Partitioner,
        cost_model: Optional[CostModel] = None,
        pagerank_iters: int = 20,
    ):
        self.partitioner = partitioner
        self.name = partitioner.name
        self.engine = BSPEngine(cost_model=cost_model)
        self.pagerank_iters = pagerank_iters
        self._dgraph_cache: Dict[Tuple[int, int], object] = {}

    def distributed_graph(self, graph: Graph, num_workers: int):
        """Partition and build the distributed graph (cached per (graph, p))."""
        key = (id(graph), num_workers)
        if key not in self._dgraph_cache:
            result = self.partitioner.partition(graph, num_workers)
            self._dgraph_cache[key] = build_distributed_graph(result)
        return self._dgraph_cache[key]

    def run(self, graph: Graph, app: str, num_workers: int) -> BSPRun:
        """Partition (cached), then execute the app; overhead excluded."""
        dgraph = self.distributed_graph(graph, num_workers)
        program = make_program(
            app, graph, local_convergence=True, pagerank_iters=self.pagerank_iters
        )
        run = self.engine.run(dgraph, program)
        run.partition_method = self.name
        return run
