"""Block-centric comparator (the Blogel stand-in).

Blogel runs subgraph-centric ("block-centric") computation over blocks
produced by its Graph Voronoi Diagram partitioner.  Two paper-mandated
fairness details are modeled:

* Blogel's Voronoi partitioner effectively *pre-computes* connectivity —
  its CC phase merely merges blocks — so, as in Section V-B, the Voronoi
  pre-computation cost (one multi-source BFS over the edges, plus the
  block merge) is **added to CC's total time**.
* Blogel's PageRank is non-standard, so :meth:`supports` excludes it
  from PR comparisons, like the paper does.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..bsp import BSPEngine, BSPRun, CostModel, SuperstepStats, build_distributed_graph
from ..graph import Graph
from .base import Framework, make_program
from .voronoi import VoronoiPartitioner

import numpy as np

__all__ = ["BlogelFramework"]


class BlogelFramework(Framework):
    """Block-centric execution over Voronoi blocks."""

    name = "Blogel"

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        seeds_per_worker: int = 8,
        pagerank_iters: int = 20,
    ):
        self.cost_model = cost_model or CostModel()
        self.engine = BSPEngine(cost_model=self.cost_model)
        self.partitioner = VoronoiPartitioner(seeds_per_worker=seeds_per_worker)
        self.pagerank_iters = pagerank_iters
        self._dgraph_cache: Dict[Tuple[int, int], object] = {}

    def supports(self, app: str) -> bool:
        """Blogel is excluded from the PR comparison (Section V-B)."""
        return app in ("CC", "SSSP")

    def run(self, graph: Graph, app: str, num_workers: int) -> BSPRun:
        """Run block-centric; charge Voronoi pre-compute to CC."""
        if not self.supports(app):
            raise ValueError(f"Blogel comparator does not run {app!r}")
        key = (id(graph), num_workers)
        if key not in self._dgraph_cache:
            result = self.partitioner.partition(graph, num_workers)
            self._dgraph_cache[key] = build_distributed_graph(result)
        dgraph = self._dgraph_cache[key]
        program = make_program(app, graph, local_convergence=True)
        run = self.engine.run(dgraph, program)
        run.partition_method = self.name
        if app == "CC":
            # The multi-source BFS touches every edge once per Voronoi
            # sampling round (~1 for connected graphs); charge one full
            # edge sweep spread across workers as an extra superstep.
            per_worker_edges = graph.num_edges / num_workers
            precompute = np.full(
                num_workers,
                self.cost_model.comp_seconds(per_worker_edges)
                + self.cost_model.superstep_overhead,
            )
            run.supersteps.insert(
                0,
                SuperstepStats(
                    work=np.full(num_workers, per_worker_edges),
                    sent=np.zeros(num_workers, dtype=np.int64),
                    received=np.zeros(num_workers, dtype=np.int64),
                    comp_seconds=precompute,
                    comm_seconds=np.zeros(num_workers),
                ),
            )
        return run
