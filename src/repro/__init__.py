"""repro — reproduction of "An Efficient and Balanced Graph Partition
Algorithm for the Subgraph-Centric Programming Model on Large-scale
Power-law Graphs" (EBV, ICDCS 2021).

Public API tour
---------------

The pipeline front door (:mod:`repro.pipeline`) — compose a whole run
fluently, or run it from one JSON document::

    from repro.pipeline import Pipeline, PipelineSpec, run_spec

    result = (
        Pipeline()
        .source("powerlaw?vertices=10000,eta=2.2")
        .partition("ebv", parts=8)
        .refine()
        .run("pagerank")
        .execute()
    )
    print(result.to_json())          # graph + partition + run + timings

    spec = PipelineSpec.from_dict({"source": "powerlaw?vertices=10000",
                                   "partition": "ebv", "parts": 8,
                                   "app": "cc"})
    same = run_spec(spec)            # identical result, spec-driven

Every pluggable component is addressable by spec string through the
registries (:mod:`repro.pipeline.registries`)::

    from repro.pipeline import PARTITIONERS, APPS, GENERATORS
    PARTITIONERS.create("ebv?alpha=2,sort_order=input")
    APPS.names()     # ('bfs', 'cc', 'featprop', 'kcore', 'pr', 'sssp')

Graphs (:mod:`repro.graph`)::

    from repro.graph import Graph, generate_graph, powerlaw_graph

Partitioning (:mod:`repro.partition`) — EBV plus the baselines::

    from repro.partition import EBVPartitioner, partition_metrics
    result = EBVPartitioner().partition(graph, num_parts=8)

Execution (:mod:`repro.bsp` + :mod:`repro.apps`)::

    from repro.bsp import build_distributed_graph, BSPEngine
    from repro.apps import ConnectedComponents
    run = BSPEngine().run(build_distributed_graph(result), ConnectedComponents())
    # run.partition_method is inherited from the partition result

Parallel runtimes (:mod:`repro.runtime`) — the computation stage on a
thread pool or a persistent shared-memory process pool, bit-identical
to the serial reference::

    run = BSPEngine(backend="process").run(dgraph, ConnectedComponents())
    run.real_stage_seconds()   # measured {"compute", "exchange"} walls

Out-of-core ingestion (:mod:`repro.stream`) — partition graphs that
never fit in memory, chunk by chunk from disk, byte-identical to the
in-memory path::

    from repro.stream import TextEdgeListStream, stream_partition
    from repro.partition import StreamingEBVPartitioner

    spilled = stream_partition(TextEdgeListStream("huge.txt"),
                               StreamingEBVPartitioner(), 8, "huge.spill")
    dgraph = spilled.to_distributed()   # O(|E|) assembly, done last

Experiments (:mod:`repro.experiments`) — every paper table and figure::

    from repro.experiments import run_table1, run_fig2, run_tables345
"""

from . import (
    analysis,
    apps,
    bsp,
    experiments,
    frameworks,
    graph,
    partition,
    pipeline,
    runtime,
    stream,
)

__version__ = "1.3.0"

__all__ = [
    "analysis",
    "apps",
    "bsp",
    "experiments",
    "frameworks",
    "graph",
    "partition",
    "pipeline",
    "runtime",
    "stream",
    "__version__",
]
