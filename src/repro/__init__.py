"""repro — reproduction of "An Efficient and Balanced Graph Partition
Algorithm for the Subgraph-Centric Programming Model on Large-scale
Power-law Graphs" (EBV, ICDCS 2021).

Public API tour
---------------

Graphs (:mod:`repro.graph`)::

    from repro.graph import Graph, powerlaw_graph, road_network

Partitioning (:mod:`repro.partition`) — EBV plus the five baselines::

    from repro.partition import EBVPartitioner, partition_metrics
    result = EBVPartitioner().partition(graph, num_parts=8)

Execution (:mod:`repro.bsp` + :mod:`repro.apps`)::

    from repro.bsp import build_distributed_graph, BSPEngine
    from repro.apps import ConnectedComponents
    run = BSPEngine().run(build_distributed_graph(result), ConnectedComponents())

Experiments (:mod:`repro.experiments`) — every paper table and figure::

    from repro.experiments import run_table1, run_fig2, run_tables345
"""

from . import analysis, apps, bsp, experiments, frameworks, graph, partition

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "apps",
    "bsp",
    "experiments",
    "frameworks",
    "graph",
    "partition",
    "__version__",
]
