"""PageRank in the subgraph-centric model (accumulate mode).

PageRank cannot converge inside one subgraph — every iteration needs the
global rank vector — so each superstep performs exactly one power
iteration: workers accumulate partial in-neighbor sums along their local
edges, mirrors push nonzero partials to masters, masters apply the
damping formula and broadcast new ranks.

Dangling vertices (no out-edges) simply leak their mass, i.e. we iterate
``r' = (1-d)/N + d · Σ_{u→v} r_u / outdeg(u)`` without dangling
redistribution.  The sequential reference in
:mod:`repro.apps.reference` implements the identical recurrence, so
distributed-vs-sequential comparisons are exact; on graphs without
dangling vertices (any undirected graph) this also matches networkx.
"""

from __future__ import annotations

import numpy as np

from ..bsp.distributed import LocalSubgraph
from ..bsp.program import ACCUMULATE, ComputeResult, SubgraphProgram

__all__ = ["PageRank"]


class PageRank(SubgraphProgram):
    """Damped PageRank, one power iteration per superstep.

    Parameters
    ----------
    num_vertices:
        Global ``|V|`` (needed for the teleport term on every worker).
    damping:
        The usual d = 0.85.
    max_iters:
        Hard iteration cap (the paper's PR runs a fixed budget).
    tol:
        L1 convergence threshold on the global rank change.
    """

    mode = ACCUMULATE
    dtype = np.float64
    name = "PR"

    def __init__(
        self,
        num_vertices: int,
        damping: float = 0.85,
        max_iters: int = 20,
        tol: float = 1e-10,
    ):
        if not 0 < damping < 1:
            raise ValueError("damping must be in (0, 1)")
        self.num_vertices = int(num_vertices)
        self.damping = float(damping)
        self.max_iters = int(max_iters)
        self.tol = float(tol)

    def initial_values(self, local: LocalSubgraph) -> np.ndarray:
        """Uniform initial rank 1/N."""
        return np.full(local.num_vertices, 1.0 / self.num_vertices)

    def compute(
        self, local: LocalSubgraph, values: np.ndarray, active, superstep: int = 0
    ) -> ComputeResult:
        """Accumulate rank/outdeg along local edges into partial sums."""
        partials = np.zeros(local.num_vertices)
        src, dst = local.src, local.dst
        work = float(src.size + local.num_vertices)
        if src.size:
            outdeg = local.global_out_degree[src].astype(np.float64)
            contrib = np.where(outdeg > 0, values[src] / np.maximum(outdeg, 1), 0.0)
            np.add.at(partials, dst, contrib)
        # Mirrors only ship nonzero partials (a zero adds nothing at the
        # master); masters always apply.
        return ComputeResult(changed=partials != 0.0, work_units=work, partials=partials)

    def apply(
        self, local: LocalSubgraph, values: np.ndarray, sums: np.ndarray
    ) -> np.ndarray:
        """``r' = (1-d)/N + d · combined_sum`` at every master."""
        return (1.0 - self.damping) / self.num_vertices + self.damping * sums

    def has_converged(self, superstep: int, global_delta: float) -> bool:
        """Stop at the iteration cap or when the L1 change is tiny."""
        return superstep + 1 >= self.max_iters or global_delta < self.tol
