"""Single Source Shortest Path in the subgraph-centric model.

Per superstep each worker relaxes its local edges (Bellman–Ford sweeps)
until the subgraph is internally converged, then replicated vertices
exchange improved distances.  Directed edges are respected; undirected
inputs carry both directions in the edge array already.
"""

from __future__ import annotations


import numpy as np

from ..bsp.distributed import LocalSubgraph
from ..bsp.program import MINIMIZE, ComputeResult, SubgraphProgram
from ..graph import Graph

__all__ = ["SSSP", "default_source"]


def default_source(graph: Graph) -> int:
    """The paper does not name its sources; we use the max-degree vertex.

    A hub source reaches the giant component on every test graph, which
    keeps SSSP message volumes comparable across partitioners.
    """
    return int(np.argmax(graph.degrees()))


class SSSP(SubgraphProgram):
    """Bellman–Ford-style SSSP with per-subgraph local convergence.

    Parameters
    ----------
    source:
        Global id of the source vertex.
    local_convergence:
        ``True`` (default) relaxes to local fixpoint per superstep
        (subgraph-centric); ``False`` performs one sweep per superstep
        (vertex-centric semantics for the comparator frameworks).
    """

    mode = MINIMIZE
    dtype = np.float64
    name = "SSSP"

    def __init__(self, source: int, local_convergence: bool = True):
        self.source = int(source)
        self.local_convergence = bool(local_convergence)
        self.reactivate_changed = not self.local_convergence

    def initial_values(self, local: LocalSubgraph) -> np.ndarray:
        """Distance 0 at the source replicas, +inf elsewhere."""
        values = np.full(local.num_vertices, np.inf)
        hit = np.nonzero(local.global_ids == self.source)[0]
        values[hit] = 0.0
        return values

    def initial_active(self, local: LocalSubgraph) -> np.ndarray:
        """Only workers hosting the source start active."""
        return local.global_ids == self.source

    def compute(
        self, local: LocalSubgraph, values: np.ndarray, active: np.ndarray,
        superstep: int = 0,
    ) -> ComputeResult:
        """Frontier relaxation from the vertices updated since last sync.

        Only edges leaving improved vertices are relaxed (like a
        sequential Dijkstra's working set), so the modeled work tracks
        the region the superstep actually touched.  Subgraph-centric mode
        expands frontiers to local fixpoint; vertex-centric mode expands
        a single frontier.
        """
        before = values.copy()
        work = 0.0
        src, dst = local.src, local.dst
        if src.size == 0:
            return ComputeResult(changed=np.zeros_like(values, dtype=bool), work_units=0.0)
        weights = local.weights if local.weights is not None else np.ones(src.size)
        indptr, edge_order = local.out_csr()
        frontier = np.nonzero(active & (values < np.inf))[0]
        while frontier.size:
            spans = [edge_order[indptr[v] : indptr[v + 1]] for v in frontier.tolist()]
            edges = np.concatenate(spans) if spans else np.empty(0, dtype=np.int64)
            if edges.size == 0:
                break
            work += edges.size
            candidates = values[src[edges]] + weights[edges]
            targets = dst[edges]
            improved = candidates < values[targets]
            if not improved.any():
                break
            np.minimum.at(values, targets[improved], candidates[improved])
            # Next frontier: targets that actually ended lower than before
            # this pass (dedup via unique).
            frontier = np.unique(targets[improved])
            frontier = frontier[values[frontier] < before[frontier]]
            if not self.local_convergence:
                break
        return ComputeResult(changed=values < before, work_units=work)
