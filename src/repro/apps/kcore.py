"""k-core decomposition membership — an extension app beyond the paper.

A vertex is in the k-core iff it survives repeatedly deleting all
vertices of (undirected) degree < k.  In the subgraph-centric model
"alive" flags shrink monotonically, which fits the minimize machinery:
alive is encoded as 0 (dead) / 1 (alive) and min-combined across
replicas (dead anywhere = dead everywhere); each superstep peels the
local subgraph to a fixpoint given the latest remote deaths.

The catch relative to CC/SSSP: a vertex's *degree* spans several
subgraphs under a vertex-cut, so local peeling must be conservative —
only the vertex's **global** degree can kill it.  The program therefore
tracks each vertex's remaining global degree: when a vertex dies, every
incident edge notifies the other endpoint through the replica sync of a
per-vertex "removed neighbor" count... which a scalar min-sync cannot
carry.  Instead we run the standard distributed algorithm: supersteps
alternate (a) recompute each vertex's alive-degree from local edges and
replica-synced alive flags, (b) kill vertices whose *global* alive
degree < k.  The global alive degree is the sum of local alive degrees
of all replicas, which the ACCUMULATE path provides.  Termination: no
deaths anywhere.
"""

from __future__ import annotations

import numpy as np

from ..bsp.distributed import LocalSubgraph
from ..bsp.program import ACCUMULATE, ComputeResult, SubgraphProgram

__all__ = ["KCore", "kcore_reference"]


class KCore(SubgraphProgram):
    """Iterative k-core peeling over the accumulate sync path.

    Values are alive flags in {0.0, 1.0}.  Each superstep, workers
    report each local vertex's *local alive degree* (count of incident
    edges whose other endpoint is alive) as the partial; masters sum the
    partials into the global alive degree and kill vertices below ``k``.

    Parameters
    ----------
    k:
        Core order (>= 1).
    """

    mode = ACCUMULATE
    dtype = np.float64
    name = "KCore"

    def __init__(self, k: int):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = int(k)

    def initial_values(self, local: LocalSubgraph) -> np.ndarray:
        """Everyone starts alive."""
        return np.ones(local.num_vertices)

    def compute(
        self, local: LocalSubgraph, values: np.ndarray, active, superstep: int = 0
    ) -> ComputeResult:
        """Partial = local alive-degree of each vertex."""
        partials = np.zeros(local.num_vertices)
        src, dst = local.src, local.dst
        if src.size:
            both_alive = (values[src] > 0.5) & (values[dst] > 0.5)
            live_src = src[both_alive]
            live_dst = dst[both_alive]
            np.add.at(partials, live_src, 1.0)
            loops = live_src != live_dst
            np.add.at(partials, live_dst[loops], 1.0)
        work = float(src.size + local.num_vertices)
        send = (partials > 0.0) & (values > 0.5)
        return ComputeResult(changed=send, work_units=work, partials=partials)

    def apply(self, local: LocalSubgraph, values: np.ndarray, sums: np.ndarray) -> np.ndarray:
        """Kill masters whose global alive degree dropped below k."""
        alive = values > 0.5
        survives = alive & (sums >= self.k)
        return survives.astype(np.float64)

    def has_converged(self, superstep: int, global_delta: float) -> bool:
        """Stop when no vertex died this superstep."""
        return global_delta == 0.0


def kcore_reference(graph, k: int) -> np.ndarray:
    """Sequential peeling: returns alive flags (1.0 in the k-core)."""
    n = graph.num_vertices
    alive = np.ones(n, dtype=bool)
    while True:
        deg = np.zeros(n, dtype=np.int64)
        both = alive[graph.src] & alive[graph.dst]
        src = graph.src[both]
        dst = graph.dst[both]
        np.add.at(deg, src, 1)
        loops = src != dst
        np.add.at(deg, dst[loops], 1)
        kill = alive & (deg < k)
        if not kill.any():
            return alive.astype(np.float64)
        alive[kill] = False
