"""Breadth-first search levels — an extension app beyond the paper's trio.

Identical machinery to SSSP with unit edge weights; kept separate so
examples and tests can exercise hop counts without weight handling.
"""

from __future__ import annotations

import numpy as np

from ..bsp.distributed import LocalSubgraph
from ..bsp.program import MINIMIZE, ComputeResult, SubgraphProgram

__all__ = ["BFS"]


class BFS(SubgraphProgram):
    """Hop-count BFS from a single source, with local convergence."""

    mode = MINIMIZE
    dtype = np.float64
    name = "BFS"

    def __init__(self, source: int, local_convergence: bool = True):
        self.source = int(source)
        self.local_convergence = bool(local_convergence)
        self.reactivate_changed = not self.local_convergence

    def initial_values(self, local: LocalSubgraph) -> np.ndarray:
        values = np.full(local.num_vertices, np.inf)
        values[local.global_ids == self.source] = 0.0
        return values

    def initial_active(self, local: LocalSubgraph) -> np.ndarray:
        return local.global_ids == self.source

    def compute(
        self, local: LocalSubgraph, values: np.ndarray, active: np.ndarray,
        superstep: int = 0,
    ) -> ComputeResult:
        """Frontier expansion with unit weights (see SSSP for the scheme)."""
        before = values.copy()
        work = 0.0
        src, dst = local.src, local.dst
        if src.size == 0:
            return ComputeResult(changed=np.zeros_like(values, dtype=bool), work_units=0.0)
        indptr, edge_order = local.out_csr()
        frontier = np.nonzero(active & (values < np.inf))[0]
        while frontier.size:
            spans = [edge_order[indptr[v] : indptr[v + 1]] for v in frontier.tolist()]
            edges = np.concatenate(spans) if spans else np.empty(0, dtype=np.int64)
            if edges.size == 0:
                break
            work += edges.size
            candidates = values[src[edges]] + 1.0
            targets = dst[edges]
            improved = candidates < values[targets]
            if not improved.any():
                break
            np.minimum.at(values, targets[improved], candidates[improved])
            frontier = np.unique(targets[improved])
            frontier = frontier[values[frontier] < before[frontier]]
            if not self.local_convergence:
                break
        return ComputeResult(changed=values < before, work_units=work)
