"""Sequential reference implementations used to validate the BSP engine.

These are straightforward single-machine algorithms over the global
graph; every distributed run in the test suite is checked against them
vertex-for-vertex.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..graph import Graph

__all__ = [
    "cc_reference",
    "sssp_reference",
    "bfs_reference",
    "pagerank_reference",
]


def cc_reference(graph: Graph) -> np.ndarray:
    """Weakly connected components: label = min global id in the component."""
    parent = np.arange(graph.num_vertices, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, int(parent[x])
        return root

    for u, v in zip(graph.src.tolist(), graph.dst.tolist()):
        ru, rv = find(u), find(v)
        if ru != rv:
            if ru < rv:
                parent[rv] = ru
            else:
                parent[ru] = rv
    labels = np.empty(graph.num_vertices, dtype=np.int64)
    for v in range(graph.num_vertices):
        labels[v] = find(v)
    return labels


def sssp_reference(graph: Graph, source: int) -> np.ndarray:
    """Dijkstra over the directed edge array (weights default to 1)."""
    dist = np.full(graph.num_vertices, np.inf)
    dist[source] = 0.0
    out = graph.out_index()
    weights = graph.weights if graph.weights is not None else np.ones(graph.num_edges)
    heap = [(0.0, source)]
    done = np.zeros(graph.num_vertices, dtype=bool)
    while heap:
        d, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        for e in out.edges_of(u).tolist():
            v = int(graph.dst[e])
            nd = d + float(weights[e])
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


def bfs_reference(graph: Graph, source: int) -> np.ndarray:
    """Hop counts along directed edges from ``source``."""
    unit = graph.with_unit_weights()
    return sssp_reference(unit, source)


def pagerank_reference(
    graph: Graph,
    damping: float = 0.85,
    max_iters: int = 20,
    tol: float = 1e-10,
) -> np.ndarray:
    """Power iteration matching :class:`repro.apps.PageRank` exactly.

    Same recurrence, same stopping rule (iteration cap or L1 delta), and
    the same no-redistribution dangling-vertex policy, so the distributed
    result must agree to floating-point noise.
    """
    n = graph.num_vertices
    ranks = np.full(n, 1.0 / n)
    outdeg = graph.out_degrees().astype(np.float64)
    safe_outdeg = np.maximum(outdeg, 1.0)
    for _ in range(max_iters):
        contrib = np.where(outdeg > 0, ranks / safe_outdeg, 0.0)
        sums = np.zeros(n)
        np.add.at(sums, graph.dst, contrib[graph.src])
        new_ranks = (1.0 - damping) / n + damping * sums
        delta = np.abs(new_ranks - ranks).sum()
        ranks = new_ranks
        if delta < tol:
            break
    return ranks
