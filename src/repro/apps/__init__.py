"""Subgraph-centric applications: CC, SSSP, PageRank (paper) + BFS (extra)."""

from .bfs import BFS
from .cc import ConnectedComponents
from .delta import IncrementalConnectedComponents, IncrementalPageRank
from .feature_propagation import (
    FeaturePropagation,
    deterministic_features,
    feature_propagation_reference,
)
from .kcore import KCore, kcore_reference
from .pagerank import PageRank
from .reference import bfs_reference, cc_reference, pagerank_reference, sssp_reference
from .sssp import SSSP, default_source

__all__ = [
    "BFS",
    "ConnectedComponents",
    "FeaturePropagation",
    "deterministic_features",
    "feature_propagation_reference",
    "IncrementalConnectedComponents",
    "IncrementalPageRank",
    "KCore",
    "kcore_reference",
    "PageRank",
    "SSSP",
    "default_source",
    "bfs_reference",
    "cc_reference",
    "pagerank_reference",
    "sssp_reference",
]
