"""Delta-mode apps: warm-started PageRank and CC for mutated graphs.

Both programs are their batch parents with one change: the initial
values come from a previous run instead of the cold prior, so the
iteration only has to absorb the *delta* between the old and the
mutated graph.  Everything else — compute, exchange, convergence — is
inherited, which keeps the delta apps on every backend and under
checkpoint/resume for free (``prev_values`` is a constructor parameter,
so programs stay stateless and re-instantiable).

Correctness contracts (enforced by ``tests/mutate/``'s differential
harness):

* :class:`IncrementalPageRank` — any starting vector converges to the
  same damped-PageRank fixpoint (the iteration is a contraction), so a
  warm start only changes *how many* supersteps are needed, never the
  answer within tolerance.  Use :func:`repro.mutate.pr_warm_values` to
  pad the previous ranks to the mutated vertex count.
* :class:`IncrementalConnectedComponents` — min-label propagation
  converges to the cold answer iff every initial label is the id of a
  vertex inside the same (new) component and every component's minimum
  vertex can still win.  Inserts only merge components, so stale labels
  stay sound; deletes can split them, so every component touched by a
  deletion must be reset to cold labels first.
  :func:`repro.mutate.cc_warm_labels` computes exactly that array —
  pass raw stale labels after a delete and the run may converge to a
  wrong (unreachable) label.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..bsp.distributed import LocalSubgraph
from .cc import ConnectedComponents
from .pagerank import PageRank

__all__ = ["IncrementalPageRank", "IncrementalConnectedComponents"]


def _local_warm(
    base: np.ndarray, prev: Optional[np.ndarray], global_ids: np.ndarray
) -> np.ndarray:
    """Overlay previous global values onto a local allocation.

    Vertices beyond the previous array (created by the mutation) keep
    the cold initial value from ``base``.
    """
    if prev is None:
        return base
    known = global_ids < prev.shape[0]
    base[known] = prev[global_ids[known]]
    return base


class IncrementalPageRank(PageRank):
    """PageRank warm-started from a previous rank vector.

    ``prev_values`` is the *global* rank array of a previous run (any
    length ≤ the mutated |V|; missing tail vertices start at the
    uniform prior).  ``None`` degrades to cold PageRank, so the
    registry spec ``pr-delta`` is constructible bare.  The default
    iteration budget is tolerance-governed (``max_iters=100``) rather
    than the paper's fixed 20: a delta run is expected to stop early on
    the convergence test, and the differential harness compares against
    a cold run driven to the same tolerance.
    """

    name = "PR-delta"

    def __init__(
        self,
        num_vertices: int,
        prev_values: Optional[np.ndarray] = None,
        damping: float = 0.85,
        max_iters: int = 100,
        tol: float = 1e-10,
    ):
        super().__init__(num_vertices, damping=damping, max_iters=max_iters, tol=tol)
        if prev_values is not None:
            prev_values = np.ascontiguousarray(prev_values, dtype=np.float64)
            if prev_values.shape[0] > self.num_vertices:
                raise ValueError(
                    f"prev_values covers {prev_values.shape[0]} vertices but the "
                    f"graph has only {self.num_vertices}; vertices never shrink "
                    "under mutation"
                )
        self.prev_values = prev_values

    def initial_values(self, local: LocalSubgraph) -> np.ndarray:
        return _local_warm(
            super().initial_values(local), self.prev_values, local.global_ids
        )


class IncrementalConnectedComponents(ConnectedComponents):
    """CC warm-started from (reset-corrected) previous labels.

    ``prev_values`` must be a *sound* warm label array for the mutated
    graph: every label the id of a vertex in the same new component,
    with deletion-touched components reset — i.e. the output of
    :func:`repro.mutate.cc_warm_labels`.  ``None`` degrades to cold CC
    (own-id labels), keeping the bare ``cc-delta`` spec constructible.
    The result is bit-identical to a cold run on the mutated graph.
    """

    name = "CC-delta"

    def __init__(
        self,
        prev_values: Optional[np.ndarray] = None,
        local_convergence: bool = True,
    ):
        super().__init__(local_convergence=local_convergence)
        self.prev_values = (
            None
            if prev_values is None
            else np.ascontiguousarray(prev_values, dtype=np.int64)
        )

    def initial_values(self, local: LocalSubgraph) -> np.ndarray:
        return _local_warm(
            super().initial_values(local), self.prev_values, local.global_ids
        )
