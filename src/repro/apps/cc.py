"""Connected Components in the subgraph-centric model.

Each worker runs min-label propagation over its whole subgraph to *local
convergence* within a single superstep — the "think like a graph"
advantage: labels cross the entire subgraph in one superstep instead of
one hop per superstep, so the number of supersteps is governed by the
quotient graph over subgraphs, not the graph diameter.  Edges are
treated as undirected (weak connectivity), matching the paper's CC.
"""

from __future__ import annotations

import numpy as np

from ..bsp.distributed import LocalSubgraph
from ..bsp.program import MINIMIZE, ComputeResult, SubgraphProgram

__all__ = ["ConnectedComponents"]


class ConnectedComponents(SubgraphProgram):
    """Min-label connected components (weakly connected for digraphs).

    Parameters
    ----------
    local_convergence:
        ``True`` (default) is the subgraph-centric behaviour: propagate
        to local fixpoint every superstep.  ``False`` performs a single
        propagation sweep per superstep — the vertex-centric ("think like
        a vertex") semantics used by the Galois/Pregel comparator.
    """

    mode = MINIMIZE
    dtype = np.int64
    name = "CC"

    def __init__(self, local_convergence: bool = True):
        self.local_convergence = bool(local_convergence)
        self.reactivate_changed = not self.local_convergence

    def initial_values(self, local: LocalSubgraph) -> np.ndarray:
        """Every vertex starts with its own global id as its label."""
        return local.global_ids.astype(np.int64).copy()

    def compute(
        self,
        local: LocalSubgraph,
        values: np.ndarray,
        active: np.ndarray,
        superstep: int = 0,
    ) -> ComputeResult:
        """Run the local sequential CC for one superstep.

        Subgraph-centric mode runs union-find over the local edges — one
        pass regardless of subgraph diameter, so the computation work is
        proportional to the local edge count (matching a real sequential
        CC implementation).  Vertex-centric mode does a single min-label
        sweep instead.
        """
        before = values.copy()
        src, dst = local.src, local.dst
        if src.size == 0:
            return ComputeResult(
                changed=np.zeros(local.num_vertices, dtype=bool), work_units=0.0
            )
        if not self.local_convergence:
            np.minimum.at(values, dst, values[src])
            np.minimum.at(values, src, values[dst])
            return ComputeResult(
                changed=values < before, work_units=2.0 * src.size
            )
        roots = local.cc_roots()
        # The full union-find pass is charged exactly at superstep 0
        # (every worker computes then — all vertices start active);
        # later supersteps only merge incoming label changes into the
        # static components.  Keyed on the superstep, not on hidden
        # instance state, so the accounting survives checkpoint/resume,
        # which re-instantiates programs mid-run.
        if superstep == 0:
            work = float(src.size + local.num_vertices)
        else:
            work = float(active.sum() + np.unique(roots).size)
        # Each local component adopts the minimum label of its members.
        group_min = values.copy()
        np.minimum.at(group_min, roots, values)
        values[:] = group_min[roots]
        return ComputeResult(changed=values < before, work_units=work)
