"""Distributed GNN feature propagation (SGC-style) — future-work app.

Section VII: "we plan to apply EBV to distributed graph neural networks
(GNN) for processing large graphs."  The communication-bound kernel of
distributed GNN inference is exactly the sparse feature propagation
``X ← Â X`` repeated K times (SGC, k-hop aggregation); the dense
per-vertex transforms are embarrassingly local.  This program runs that
kernel on the BSP engine with *vector* vertex values, so partition
quality translates directly into GNN communication volume — the
experiment the paper proposes.

Aggregation is mean-over-in-neighbors with a self-loop mix:

    X_v^{t+1} = (1 − mix) · X_v^t + mix · Σ_{u→v} X_u^t / outdeg(u)

One hop per superstep (like PageRank); replicas exchange feature rows,
so each message carries one d-dimensional row (counted as one message,
matching the paper's message-count metric).
"""

from __future__ import annotations

import numpy as np

from ..bsp.distributed import LocalSubgraph
from ..bsp.program import ACCUMULATE, ComputeResult, SubgraphProgram
from ..graph import Graph

__all__ = [
    "FeaturePropagation",
    "deterministic_features",
    "feature_propagation_reference",
]


def deterministic_features(graph: Graph, dims: int = 8, seed: int = 0) -> np.ndarray:
    """Seeded standard-normal ``(|V|, dims)`` feature matrix.

    Lets feature propagation be launched from a name-only spec (CLI,
    pipeline JSON) where no caller-supplied feature matrix exists, while
    keeping runs reproducible.
    """
    rng = np.random.default_rng(seed)
    return rng.normal(size=(graph.num_vertices, int(dims)))


class FeaturePropagation(SubgraphProgram):
    """K-hop mean feature aggregation with vector vertex values.

    Parameters
    ----------
    features:
        Global ``(|V|, d)`` feature matrix; each worker slices its rows.
    hops:
        Number of propagation rounds (supersteps).
    mix:
        Self-mixing coefficient in (0, 1]; 1.0 is pure neighbor mean.
    """

    mode = ACCUMULATE
    dtype = np.float64
    name = "FeatProp"

    def __init__(self, features: np.ndarray, hops: int = 2, mix: float = 0.5):
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("features must be a (|V|, d) matrix")
        if hops < 1:
            raise ValueError("hops must be >= 1")
        if not 0 < mix <= 1:
            raise ValueError("mix must be in (0, 1]")
        self.features = features
        self.hops = int(hops)
        self.mix = float(mix)

    def initial_values(self, local: LocalSubgraph) -> np.ndarray:
        """Each worker holds the feature rows of its local vertices."""
        return self.features[local.global_ids].copy()

    def compute(
        self, local: LocalSubgraph, values: np.ndarray, active, superstep: int = 0
    ) -> ComputeResult:
        """Partial = Σ over local in-edges of X[src]/outdeg(src)."""
        partials = np.zeros_like(values)
        src, dst = local.src, local.dst
        work = float(src.size + local.num_vertices)
        if src.size:
            outdeg = local.global_out_degree[src].astype(np.float64)
            contrib = values[src] / np.maximum(outdeg, 1.0)[:, None]
            np.add.at(partials, dst, contrib)
        send = np.abs(partials).sum(axis=1) > 0.0
        return ComputeResult(changed=send, work_units=work, partials=partials)

    def apply(self, local: LocalSubgraph, values: np.ndarray, sums: np.ndarray) -> np.ndarray:
        """Mix the aggregated neighborhood into the current features."""
        return (1.0 - self.mix) * values + self.mix * sums

    def has_converged(self, superstep: int, global_delta: float) -> bool:
        """Fixed hop budget, like a GNN's layer count."""
        return superstep + 1 >= self.hops


def feature_propagation_reference(
    graph: Graph, features: np.ndarray, hops: int = 2, mix: float = 0.5
) -> np.ndarray:
    """Sequential K-hop propagation matching :class:`FeaturePropagation`."""
    x = np.asarray(features, dtype=np.float64).copy()
    outdeg = graph.out_degrees().astype(np.float64)
    safe = np.maximum(outdeg, 1.0)
    for _ in range(hops):
        sums = np.zeros_like(x)
        contrib = x[graph.src] / safe[graph.src][:, None]
        np.add.at(sums, graph.dst, contrib)
        x = (1.0 - mix) * x + mix * sums
    return x
