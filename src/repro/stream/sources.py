"""Edge-chunk stream sources: text, binary ``.npy``, arrays, generators.

Every source yields ``(src, dst, weights)`` numpy-array chunks through
one :class:`EdgeChunkStream` interface, so the degree sketch, the
out-of-core driver and the differential tests are all agnostic to where
the edges physically live.  Sources carry optional metadata *hints*
(``num_vertices_hint``, ``directed_hint``) when the backing format
records them; consumers must tolerate ``None``.

Streams are multi-pass by default (``reiterable`` is ``True``): every
call to :meth:`EdgeChunkStream.chunks` restarts from the first edge.
Partitioners that normalize by exact totals (``EBV-sharded``) need two
passes — a degree-sketch pass and the assignment pass — so a one-shot
:class:`GeneratorEdgeStream` built from a bare iterator can only drive
single-pass partitioners.
"""

from __future__ import annotations

import abc
import os
from typing import Callable, Iterable, Iterator, Optional, Sequence, Tuple, Union

import numpy as np

from ..graph import Graph, iter_edge_chunks, read_edge_list_header

__all__ = [
    "EdgeChunk",
    "EdgeChunkStream",
    "StreamError",
    "TextEdgeListStream",
    "NpyEdgeStream",
    "ArrayEdgeStream",
    "GeneratorEdgeStream",
    "save_edge_npy",
]

#: one chunk: parallel src/dst id arrays plus optional parallel weights
EdgeChunk = Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]


class StreamError(ValueError):
    """A stream source or the out-of-core driver was misused or corrupt."""


class EdgeChunkStream(abc.ABC):
    """A re-iterable source of edge chunks of bounded size.

    Attributes
    ----------
    chunk_size:
        Upper bound on edges per yielded chunk (``None`` when the source
        controls its own granularity, e.g. a generator).  This is the
        *reader* granularity only; the driver re-buffers chunks into the
        partitioner's preferred window, so results never depend on it.
    reiterable:
        Whether :meth:`chunks` can be called more than once.
    num_vertices_hint, directed_hint:
        Metadata recovered from the backing format, or ``None``.
    """

    name: str = "stream"
    chunk_size: Optional[int] = None
    reiterable: bool = True
    num_vertices_hint: Optional[int] = None
    directed_hint: Optional[bool] = None

    @abc.abstractmethod
    def chunks(self) -> Iterator[EdgeChunk]:
        """Yield ``(src, dst, weights)`` chunks from the first edge on."""

    def __iter__(self) -> Iterator[EdgeChunk]:
        return self.chunks()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


def _check_chunk_size(chunk_size: int) -> int:
    if chunk_size < 1:
        raise StreamError("chunk_size must be >= 1")
    return int(chunk_size)


class TextEdgeListStream(EdgeChunkStream):
    """Chunked reader over a SNAP-style edge-list text file.

    Wraps :func:`repro.graph.iter_edge_chunks`; a repro-graph comment
    header, when present, supplies the directedness and vertex-count
    hints exactly as it does for :func:`repro.graph.read_edge_list`.
    """

    def __init__(self, path: str, chunk_size: int = 65536, name: Optional[str] = None):
        self.path = str(path)
        self.chunk_size = _check_chunk_size(chunk_size)
        self.name = name or os.path.splitext(os.path.basename(self.path))[0]
        self.directed_hint, self.num_vertices_hint = read_edge_list_header(self.path)

    def chunks(self) -> Iterator[EdgeChunk]:
        return iter_edge_chunks(self.path, self.chunk_size)


class NpyEdgeStream(EdgeChunkStream):
    """Memory-mapped reader over a binary ``.npy`` edge array.

    The file holds one ``(m, 2)`` integer array of ``(u, v)`` rows (as
    written by :func:`save_edge_npy`); an optional second ``.npy`` file
    holds a parallel length-``m`` float weight array.  ``np.load`` with
    ``mmap_mode="r"`` keeps the file paged, so each chunk copies only
    ``chunk_size`` rows into memory.

    The bare array carries no graph metadata, so ``num_vertices`` and
    ``directed`` should be passed explicitly when they matter: a graph
    with isolated trailing vertices (|V| larger than max id + 1) cannot
    be recovered from the edges alone, and partitioners that normalize
    by exact |V| (``EBV-sharded``) would otherwise see the smaller
    sketch count.
    """

    def __init__(
        self,
        path: str,
        weights_path: Optional[str] = None,
        chunk_size: int = 65536,
        name: Optional[str] = None,
        num_vertices: Optional[int] = None,
        directed: Optional[bool] = None,
    ):
        self.path = str(path)
        self.weights_path = None if weights_path is None else str(weights_path)
        self.chunk_size = _check_chunk_size(chunk_size)
        self.name = name or os.path.splitext(os.path.basename(self.path))[0]
        self.num_vertices_hint = None if num_vertices is None else int(num_vertices)
        self.directed_hint = None if directed is None else bool(directed)

    def chunks(self) -> Iterator[EdgeChunk]:
        edges = np.load(self.path, mmap_mode="r")
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise StreamError(
                f"{self.path}: expected an (m, 2) edge array, got shape "
                f"{edges.shape}"
            )
        weights = None
        if self.weights_path is not None:
            weights = np.load(self.weights_path, mmap_mode="r")
            if weights.shape != (edges.shape[0],):
                raise StreamError(
                    f"{self.weights_path}: weights must parallel the edge "
                    f"array, got shape {weights.shape} for {edges.shape[0]} edges"
                )
        for start in range(0, edges.shape[0], self.chunk_size):
            block = np.asarray(edges[start : start + self.chunk_size], dtype=np.int64)
            w = None
            if weights is not None:
                w = np.asarray(
                    weights[start : start + self.chunk_size], dtype=np.float64
                )
            yield np.ascontiguousarray(block[:, 0]), np.ascontiguousarray(block[:, 1]), w


def save_edge_npy(
    path: str,
    src: Union[Graph, Sequence[int]],
    dst: Optional[Sequence[int]] = None,
    weights: Optional[Sequence[float]] = None,
    weights_path: Optional[str] = None,
) -> None:
    """Write edges as the ``(m, 2)`` ``.npy`` array `NpyEdgeStream` reads.

    Accepts either a :class:`~repro.graph.Graph` or parallel src/dst
    sequences.  Weights (when given, or present on the graph) require an
    explicit ``weights_path`` for the parallel float array.
    """
    if isinstance(src, Graph):
        graph = src
        if dst is not None:
            raise StreamError("pass either a Graph or src/dst arrays, not both")
        src, dst, weights = graph.src, graph.dst, graph.weights
    elif dst is None:
        raise StreamError("dst is required when src is not a Graph")
    src = np.ascontiguousarray(src, dtype=np.int64)
    dst = np.ascontiguousarray(dst, dtype=np.int64)
    np.save(path, np.stack([src, dst], axis=1))
    if weights is not None:
        if weights_path is None:
            raise StreamError("weights_path is required to save edge weights")
        np.save(weights_path, np.ascontiguousarray(weights, dtype=np.float64))


class ArrayEdgeStream(EdgeChunkStream):
    """In-memory arrays (or a whole graph) exposed as a chunk stream.

    Exists for tests and benchmarks: the differential harness streams a
    graph it already holds to prove the chunked path matches the
    in-memory one.
    """

    def __init__(
        self,
        src: Sequence[int],
        dst: Sequence[int],
        weights: Optional[Sequence[float]] = None,
        chunk_size: int = 65536,
        name: str = "arrays",
    ):
        self.src = np.ascontiguousarray(src, dtype=np.int64)
        self.dst = np.ascontiguousarray(dst, dtype=np.int64)
        if self.src.shape != self.dst.shape or self.src.ndim != 1:
            raise StreamError("src and dst must be 1-D arrays of equal length")
        self.weights = (
            None if weights is None
            else np.ascontiguousarray(weights, dtype=np.float64)
        )
        if self.weights is not None and self.weights.shape != self.src.shape:
            raise StreamError("weights must parallel the edge arrays")
        self.chunk_size = _check_chunk_size(chunk_size)
        self.name = name

    @classmethod
    def from_graph(cls, graph: Graph, chunk_size: int = 65536) -> "ArrayEdgeStream":
        stream = cls(
            graph.src, graph.dst, weights=graph.weights,
            chunk_size=chunk_size, name=graph.name,
        )
        stream.num_vertices_hint = graph.num_vertices
        stream.directed_hint = graph.directed
        return stream

    def chunks(self) -> Iterator[EdgeChunk]:
        for start in range(0, self.src.shape[0], self.chunk_size):
            stop = start + self.chunk_size
            w = None if self.weights is None else self.weights[start:stop]
            yield self.src[start:stop], self.dst[start:stop], w


class GeneratorEdgeStream(EdgeChunkStream):
    """Chunks produced by user code: a factory callable or an iterable.

    ``source`` is ideally a zero-argument callable returning a fresh
    iterable of ``(src, dst)`` or ``(src, dst, weights)`` tuples — that
    makes the stream re-iterable.  A bare iterable/iterator is accepted
    for convenience but supports exactly one pass; a second
    :meth:`chunks` call raises :class:`StreamError`.
    """

    def __init__(
        self,
        source: Union[Callable[[], Iterable], Iterable],
        name: str = "generator",
    ):
        if callable(source):
            self._factory: Optional[Callable[[], Iterable]] = source
            self._once: Optional[Iterable] = None
        else:
            self._factory = None
            self._once = source
            self.reiterable = False
        self.name = name

    def chunks(self) -> Iterator[EdgeChunk]:
        if self._factory is not None:
            items = self._factory()
        else:
            if self._once is None:
                raise StreamError(
                    "this GeneratorEdgeStream wraps a one-shot iterable that "
                    "was already consumed; pass a factory callable for "
                    "multi-pass streaming"
                )
            items, self._once = self._once, None
        for item in items:
            if len(item) == 2:
                src, dst = item
                w = None
            elif len(item) == 3:
                src, dst, w = item
            else:
                raise StreamError(
                    f"generator chunks must be (src, dst[, weights]) tuples, "
                    f"got a length-{len(item)} item"
                )
            src = np.ascontiguousarray(src, dtype=np.int64)
            dst = np.ascontiguousarray(dst, dtype=np.int64)
            if src.shape != dst.shape or src.ndim != 1:
                raise StreamError("src and dst must be 1-D arrays of equal length")
            if w is not None:
                w = np.ascontiguousarray(w, dtype=np.float64)
                if w.shape != src.shape:
                    raise StreamError("weights must parallel the edge arrays")
            yield src, dst, w
