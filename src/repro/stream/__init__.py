"""Out-of-core streaming ingestion: partition graphs that never fit in RAM.

This package is the disk→partitions→BSP path for inputs larger than
memory.  Everything upstream of it in the repo assumes a fully
materialized :class:`~repro.graph.Graph`; here the unit of work is an
:class:`EdgeChunkStream` — a re-iterable source of bounded
``(src, dst, weights)`` array chunks over edge-list text
(:class:`TextEdgeListStream`), memory-mapped binary ``.npy`` files
(:class:`NpyEdgeStream`), in-memory arrays (:class:`ArrayEdgeStream`,
for tests/benchmarks) or user generators (:class:`GeneratorEdgeStream`).

Memory model
------------

:func:`stream_partition` holds, at any instant:

* **one window** of edges — the reader's chunks are re-buffered into
  windows of exactly the partitioner's preferred size (its sorting
  window / sync epoch), so assignments are independent of the on-disk
  chunking;
* **the assigner state** — the streaming partitioner cores keep
  O(vertices seen) state (online degree estimates and per-vertex
  replica sets for ``EBV-stream``; committed replica bitmasks for
  ``EBV-sharded``), never any per-edge structure;
* **the degree sketch** — O(vertices seen) exact degree counts,
  either accumulated alongside the single pass (``EBV-stream``) or as
  a separate pre-pass when the partitioner normalizes by exact |E|/|V|
  (``EBV-sharded``).

Everything per-edge goes to disk the moment it is produced: spill
**kicks in at the first assigned window** — there is no in-memory
accumulation phase.  Each edge is appended to its partition's shard
file as an ``(edge_id, src, dst)`` row plus the per-edge part id in
``edge_parts.bin``, forming a :class:`SpilledPartition`.  Peak RSS is
therefore O(window + vertex state), not O(|E|); the benchmark
``benchmarks/bench_stream.py`` measures exactly this against the
in-memory build and CI enforces it.

Re-materializing is explicit: :meth:`SpilledPartition.assemble` (and
:meth:`~SpilledPartition.to_distributed`) rebuild the O(|E|) in-memory
objects from the shards for handing off to the BSP engine — run that on
the machine that executes the job, not necessarily the one that
partitioned.

The chunked path is locked to the in-memory path by the differential
harness ``tests/stream/test_stream_equivalence.py``: for every
streaming-capable partitioner, the out-of-core assignment is
byte-identical to :meth:`~repro.partition.Partitioner.partition` on the
fully-loaded graph in the same edge order, across chunk sizes and
sources.
"""

from .driver import SpilledPartition, stream_partition, windows
from .patch import patch_spilled_partition
from .sketch import DegreeSketch
from .sources import (
    ArrayEdgeStream,
    EdgeChunk,
    EdgeChunkStream,
    GeneratorEdgeStream,
    NpyEdgeStream,
    StreamError,
    TextEdgeListStream,
    save_edge_npy,
)

__all__ = [
    "ArrayEdgeStream",
    "DegreeSketch",
    "EdgeChunk",
    "EdgeChunkStream",
    "GeneratorEdgeStream",
    "NpyEdgeStream",
    "SpilledPartition",
    "StreamError",
    "TextEdgeListStream",
    "patch_spilled_partition",
    "save_edge_npy",
    "stream_partition",
    "windows",
]
