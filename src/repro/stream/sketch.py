"""Streaming degree sketch: one bounded-state pass over an edge stream.

The out-of-core driver needs three facts before (or while) assigning
edges it will never hold all at once: how many edges the stream carries,
how many vertices they touch, and each vertex's total degree — the
quantity EBV's sorting preprocessing and the sharded evaluation
function normalize by.  :class:`DegreeSketch` accumulates all three in
one pass with O(max vertex id seen) state: an exact degree counter
array that grows geometrically as new vertex ids appear, never
proportional to the number of edges.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["DegreeSketch"]


class DegreeSketch:
    """Exact per-vertex total-degree counts accumulated chunk by chunk.

    ``update`` folds one ``(src, dst)`` chunk into the counts; every
    endpoint occurrence adds one, so a self loop contributes 2 to its
    vertex — the same convention as :meth:`repro.graph.Graph.degrees`.
    """

    def __init__(self, num_vertices_hint: Optional[int] = None):
        capacity = int(num_vertices_hint) if num_vertices_hint else 0
        self._counts = np.zeros(capacity, dtype=np.int64)
        self._num_vertices = 0
        self.num_edges = 0

    def _grow(self, needed: int) -> None:
        if needed > self._counts.shape[0]:
            grown = np.zeros(max(needed, 2 * self._counts.shape[0]), dtype=np.int64)
            grown[: self._counts.shape[0]] = self._counts
            self._counts = grown
        if needed > self._num_vertices:
            self._num_vertices = needed

    def update(self, src: np.ndarray, dst: np.ndarray) -> "DegreeSketch":
        """Fold one chunk of edges into the sketch; returns ``self``."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape or src.ndim != 1:
            raise ValueError("src and dst must be 1-D arrays of equal length")
        if src.shape[0] == 0:
            return self
        lo = int(min(src.min(), dst.min()))
        if lo < 0:
            raise ValueError(f"negative vertex id {lo} in edge chunk")
        self._grow(int(max(src.max(), dst.max())) + 1)
        np.add.at(self._counts, src, 1)
        np.add.at(self._counts, dst, 1)
        self.num_edges += int(src.shape[0])
        return self

    @classmethod
    def from_stream(cls, stream) -> "DegreeSketch":
        """Run the full sketch pass over an :class:`EdgeChunkStream`."""
        sketch = cls(num_vertices_hint=getattr(stream, "num_vertices_hint", None))
        for src, dst, _ in stream.chunks():
            sketch.update(src, dst)
        return sketch

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Max vertex id observed + 1 (0 before any edge)."""
        return self._num_vertices

    @property
    def degrees(self) -> np.ndarray:
        """Total degree of vertices ``0 .. num_vertices - 1`` (a view)."""
        return self._counts[: self._num_vertices]

    def degree(self, vertex: int) -> int:
        """Total degree of one vertex (0 for ids never seen)."""
        if 0 <= vertex < self._num_vertices:
            return int(self._counts[vertex])
        return 0

    @property
    def max_degree(self) -> int:
        return int(self.degrees.max()) if self._num_vertices else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DegreeSketch(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"max_degree={self.max_degree})"
        )
