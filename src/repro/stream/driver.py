"""Out-of-core partition driver: stream → assigner → per-part spill shards.

:func:`stream_partition` is the path from an on-disk edge stream to a
finished partition without ever constructing a
:class:`~repro.graph.Graph`:

1. If the partitioner normalizes by exact totals
   (``requires_totals``, e.g. ``EBV-sharded``), run the
   :class:`~repro.stream.DegreeSketch` pre-pass to learn |E| and |V|;
   otherwise the sketch accumulates alongside the single assignment
   pass.
2. Re-buffer the reader's chunks into windows of exactly the
   assigner's preferred ``window`` size, so the assignment is
   byte-identical for every on-disk chunking of the same edge order.
3. Assign each window and *spill* it: every edge is appended to its
   partition's shard file as an ``(edge_id, src, dst)`` int64 row
   (plus a parallel float64 weight file for weighted streams), and the
   per-edge part id is appended to ``edge_parts.bin`` in input order.

Peak memory is O(window + partitioner state): one window of edges, the
assigner's per-vertex state, and constant-size spill buffers — never
O(|E|).  The shards plus a ``manifest.json`` form a
:class:`SpilledPartition`, which can later *assemble* the in-memory
:class:`~repro.partition.PartitionResult` /
:class:`~repro.bsp.DistributedGraph` (an explicitly O(|E|) step — do it
on the machine that runs the BSP job, not the one that partitioned).
"""

from __future__ import annotations

import json
import os
from typing import IO, Dict, Iterable, Iterator, List, Optional

import numpy as np

from ..graph import Graph
from ..obs import NULL_RECORDER
from ..partition.base import VERTEX_CUT, PartitionResult
from .sketch import DegreeSketch
from .sources import EdgeChunk, EdgeChunkStream, StreamError

__all__ = ["stream_partition", "SpilledPartition", "windows"]

_MANIFEST = "manifest.json"
_EDGE_PARTS = "edge_parts.bin"
_MANIFEST_VERSION = 1


def _shard_name(part: int) -> str:
    return f"shard_{part:05d}.bin"


def _is_spill_artifact(name: str) -> bool:
    """Whether a directory entry belongs to a spilled partition.

    The single definition used both to clear stale artifacts before a
    spill and to remove partial ones after a failed spill — the two
    sweeps must never disagree about what a spill owns.
    """
    return (
        name == _MANIFEST
        or name.startswith(_MANIFEST + ".tmp-")
        or name == _EDGE_PARTS
        or name.startswith(_EDGE_PARTS + ".tmp-")
        or (name.startswith("shard_") and (name.endswith(".bin") or ".bin.tmp-" in name))
    )


def _shard_weights_name(part: int) -> str:
    return f"shard_{part:05d}.w.bin"


def windows(chunks: Iterable[EdgeChunk], window: int) -> Iterator[EdgeChunk]:
    """Re-buffer arbitrary chunks into windows of exactly ``window`` edges.

    Every yielded chunk holds exactly ``window`` edges except the final
    one, regardless of the incoming granularity — the invariant that
    makes out-of-core assignment independent of reader chunk size.
    Weighted and unweighted chunks cannot be mixed.
    """
    if window < 1:
        raise StreamError("window must be >= 1")
    pend_src: List[np.ndarray] = []
    pend_dst: List[np.ndarray] = []
    pend_w: List[np.ndarray] = []
    have = 0
    weighted: Optional[bool] = None
    for src, dst, w in chunks:
        src = np.ascontiguousarray(src, dtype=np.int64)
        dst = np.ascontiguousarray(dst, dtype=np.int64)
        if src.shape != dst.shape or src.ndim != 1:
            raise StreamError("src and dst must be 1-D arrays of equal length")
        if src.shape[0] == 0:
            continue
        if weighted is None:
            weighted = w is not None
        elif weighted != (w is not None):
            raise StreamError("stream mixes weighted and unweighted chunks")
        if w is not None:
            w = np.ascontiguousarray(w, dtype=np.float64)
            if w.shape != src.shape:
                raise StreamError("weights must parallel the edge arrays")
            pend_w.append(w)
        pend_src.append(src)
        pend_dst.append(dst)
        have += src.shape[0]
        if have < window:
            continue
        cat_src = np.concatenate(pend_src)
        cat_dst = np.concatenate(pend_dst)
        cat_w = np.concatenate(pend_w) if weighted else None
        off = 0
        while have - off >= window:
            yield (
                cat_src[off : off + window],
                cat_dst[off : off + window],
                None if cat_w is None else cat_w[off : off + window],
            )
            off += window
        pend_src = [cat_src[off:]] if have > off else []
        pend_dst = [cat_dst[off:]] if have > off else []
        pend_w = [cat_w[off:]] if weighted and have > off else []
        have -= off
    if have:
        yield (
            np.concatenate(pend_src),
            np.concatenate(pend_dst),
            np.concatenate(pend_w) if weighted else None,
        )


def _resolve_assigner(stream: EdgeChunkStream, partitioner, num_parts: int):
    """Build the partitioner's assigner, running the sketch pass if needed.

    Returns ``(assigner, sketch, sketch_is_complete)``.
    """
    if not getattr(partitioner, "supports_stream", False):
        raise StreamError(
            f"partitioner {getattr(partitioner, 'name', type(partitioner).__name__)!r} "
            "does not support streaming; streaming-capable partitioners define "
            "supports_stream/streamer()"
        )
    if getattr(partitioner, "requires_totals", False):
        if not stream.reiterable:
            raise StreamError(
                f"partitioner {partitioner.name!r} needs a degree-sketch "
                "pre-pass (exact |E|/|V|) but the stream supports only one "
                "pass; use a re-iterable source"
            )
        sketch = DegreeSketch.from_stream(stream)
        assigner = partitioner.streamer(
            num_parts,
            num_edges=sketch.num_edges,
            num_vertices=max(sketch.num_vertices, stream.num_vertices_hint or 0),
        )
        return assigner, sketch, True
    assigner = partitioner.streamer(num_parts)
    return assigner, DegreeSketch(num_vertices_hint=stream.num_vertices_hint), False


def stream_partition(
    stream: EdgeChunkStream,
    partitioner,
    num_parts: int,
    spill_dir: str,
    overwrite: bool = False,
    recorder=None,
) -> "SpilledPartition":
    """Partition an edge stream out of core, spilling shards to ``spill_dir``.

    ``partitioner`` must be streaming-capable (``supports_stream``; see
    :mod:`repro.partition.streaming`).  Returns the
    :class:`SpilledPartition` handle over the written shards.  An
    optional :class:`repro.obs.TraceRecorder` wraps the spill in a
    ``stream.spill`` span and records the on-disk bytes as the
    ``spill.bytes`` counter.
    """
    recorder = NULL_RECORDER if recorder is None else recorder
    with recorder.span("stream.spill", cat="stream"):
        spilled = _stream_partition(stream, partitioner, num_parts, spill_dir, overwrite)
    if recorder.enabled:
        recorder.metrics.counter("spill.bytes").inc(
            int(spilled.manifest["bytes_spilled"])
        )
    return spilled


def _stream_partition(
    stream: EdgeChunkStream,
    partitioner,
    num_parts: int,
    spill_dir: str,
    overwrite: bool,
) -> "SpilledPartition":
    if num_parts < 1:
        raise StreamError("num_parts must be >= 1")
    created_dir = not os.path.isdir(spill_dir)
    os.makedirs(spill_dir, exist_ok=True)
    manifest_path = os.path.join(spill_dir, _MANIFEST)
    if os.path.exists(manifest_path) and not overwrite:
        raise StreamError(
            f"{spill_dir} already holds a spilled partition; pass "
            "overwrite=True (--overwrite from the CLI) to replace it"
        )
    if not os.path.exists(manifest_path) and not overwrite and os.listdir(spill_dir):
        # A non-empty directory with no manifest is NOT ours: it is
        # either a crashed partial spill or (worse) someone else's
        # files whose names happen to collide with spill artifacts.
        # Deleting or writing among them silently would destroy data
        # the manifest never vouched for — demand an explicit opt-in.
        raise StreamError(
            f"{spill_dir} is non-empty but holds no {_MANIFEST}; refusing to "
            "spill among foreign files — pass overwrite=True (--overwrite "
            "from the CLI) to clear stale spill artifacts and proceed"
        )
    # Clear every artifact a previous (or crashed partial) spill left
    # behind: a part that receives no edges this run would otherwise
    # leave its old shard file in place and corrupt the new assembly.
    for name in os.listdir(spill_dir):
        if _is_spill_artifact(name):
            os.remove(os.path.join(spill_dir, name))

    assigner, sketch, sketch_done = _resolve_assigner(stream, partitioner, num_parts)
    shard_files: Dict[int, IO[bytes]] = {}
    weight_files: Dict[int, IO[bytes]] = {}
    edge_counts = np.zeros(num_parts, dtype=np.int64)
    weighted: Optional[bool] = None
    next_edge_id = 0
    try:
        try:
            parts_file = open(os.path.join(spill_dir, _EDGE_PARTS), "wb")
            try:
                for src, dst, w in windows(stream.chunks(), assigner.window):
                    if not sketch_done:
                        sketch.update(src, dst)
                    if weighted is None:
                        weighted = w is not None
                    parts = assigner.assign(src, dst)
                    parts.tofile(parts_file)
                    eids = np.arange(
                        next_edge_id, next_edge_id + src.shape[0], dtype=np.int64
                    )
                    next_edge_id += src.shape[0]
                    for i in np.unique(parts).tolist():
                        sel = parts == i
                        if i not in shard_files:
                            shard_files[i] = open(
                                os.path.join(spill_dir, _shard_name(i)), "wb"
                            )
                            if w is not None:
                                weight_files[i] = open(
                                    os.path.join(spill_dir, _shard_weights_name(i)), "wb"
                                )
                        rows = np.stack([eids[sel], src[sel], dst[sel]], axis=1)
                        rows.tofile(shard_files[i])
                        if w is not None:
                            np.ascontiguousarray(w[sel]).tofile(weight_files[i])
                    edge_counts += np.bincount(parts, minlength=num_parts)
            finally:
                parts_file.close()
        finally:
            for fh in shard_files.values():
                fh.close()
            for fh in weight_files.values():
                fh.close()
    except BaseException:
        # A failed spill (bad source line, full disk, interrupted run)
        # must not leave orphan shards behind: without a manifest they
        # are unreadable, and with one from a *previous* spill they
        # would silently corrupt the next assembly.
        _remove_partial_spill(spill_dir, created_dir)
        raise

    num_vertices = max(sketch.num_vertices, stream.num_vertices_hint or 0, 1)
    bytes_spilled = sum(
        os.path.getsize(os.path.join(spill_dir, f))
        for f in os.listdir(spill_dir)
        if f != _MANIFEST
    )
    manifest = {
        "format": "repro-stream-partition",
        "version": _MANIFEST_VERSION,
        "name": stream.name,
        "method": getattr(partitioner, "name", type(partitioner).__name__),
        "num_parts": int(num_parts),
        "num_edges": int(sketch.num_edges),
        "num_vertices": int(num_vertices),
        "directed": (
            True if stream.directed_hint is None else bool(stream.directed_hint)
        ),
        "weighted": bool(weighted),
        "window": int(assigner.window),
        "reader_chunk_size": stream.chunk_size,
        "edge_counts": edge_counts.tolist(),
        "replication_factor": float(
            assigner.replication_factor(num_vertices if sketch.num_edges else None)
        ),
        "bytes_spilled": int(bytes_spilled),
    }
    try:
        # Atomic publish (tmp + fsync + rename): the manifest is what
        # marks the spill as complete, so it must never exist half
        # written — checkpointed pipelines reuse the spill across
        # crashes exactly because this file is trustworthy.
        tmp_manifest = f"{manifest_path}.tmp-{os.getpid()}"
        with open(tmp_manifest, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_manifest, manifest_path)
    except BaseException:
        _remove_partial_spill(spill_dir, created_dir)
        raise
    return SpilledPartition(spill_dir)


def _remove_partial_spill(spill_dir: str, created_dir: bool) -> None:
    """Delete the artifacts of a failed spill (best effort, idempotent).

    Removes the shard/weight files, ``edge_parts.bin`` and any manifest
    from ``spill_dir``; the directory itself is removed only when this
    run created it and nothing else was placed inside.
    """
    try:
        names = os.listdir(spill_dir)
    except OSError:
        return
    for name in names:
        if _is_spill_artifact(name):
            try:
                os.remove(os.path.join(spill_dir, name))
            except OSError:
                pass
    if created_dir:
        try:
            os.rmdir(spill_dir)
        except OSError:
            pass


class SpilledPartition:
    """Handle over an on-disk spilled partition (shards + manifest).

    The handle itself stays O(p): reading any edge data is explicit —
    :meth:`part_edges` loads one shard, :meth:`assemble` rebuilds the
    whole in-memory :class:`~repro.partition.PartitionResult` (O(|E|),
    for handing off to the BSP engine).
    """

    def __init__(self, directory: str):
        self.directory = str(directory)
        manifest_path = os.path.join(self.directory, _MANIFEST)
        try:
            with open(manifest_path, "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise StreamError(
                f"{self.directory} is not a spilled partition: {exc}"
            ) from exc
        if manifest.get("format") != "repro-stream-partition":
            raise StreamError(f"{manifest_path} is not a spilled-partition manifest")
        self.manifest = manifest
        self.num_parts: int = manifest["num_parts"]
        self.num_edges: int = manifest["num_edges"]
        self.num_vertices: int = manifest["num_vertices"]
        self.method: str = manifest["method"]
        self.edge_counts = np.asarray(manifest["edge_counts"], dtype=np.int64)
        self.replication_factor: float = manifest["replication_factor"]

    # ------------------------------------------------------------------
    # Shard access
    # ------------------------------------------------------------------

    def edge_parts(self) -> np.ndarray:
        """Per-edge part ids in input order (reads ``edge_parts.bin``)."""
        path = os.path.join(self.directory, _EDGE_PARTS)
        parts = np.fromfile(path, dtype=np.int64)
        if parts.shape[0] != self.num_edges:
            raise StreamError(
                f"{path}: expected {self.num_edges} part ids, found {parts.shape[0]}"
            )
        return parts

    def part_edges(self, part: int):
        """One partition's spilled edges: ``(edge_ids, src, dst, weights)``."""
        if not 0 <= part < self.num_parts:
            raise StreamError(f"part {part} out of range [0, {self.num_parts})")
        path = os.path.join(self.directory, _shard_name(part))
        if not os.path.exists(path):
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy(), None
        rows = np.fromfile(path, dtype=np.int64)
        if rows.shape[0] % 3:
            raise StreamError(f"{path}: truncated shard file")
        rows = rows.reshape(-1, 3)
        weights = None
        if self.manifest["weighted"]:
            wpath = os.path.join(self.directory, _shard_weights_name(part))
            weights = np.fromfile(wpath, dtype=np.float64)
            if weights.shape[0] != rows.shape[0]:
                raise StreamError(f"{wpath}: weight count does not match shard")
        return (
            np.ascontiguousarray(rows[:, 0]),
            np.ascontiguousarray(rows[:, 1]),
            np.ascontiguousarray(rows[:, 2]),
            weights,
        )

    # ------------------------------------------------------------------
    # Assembly (explicitly O(|E|))
    # ------------------------------------------------------------------

    def assemble(self) -> PartitionResult:
        """Rebuild the in-memory graph + partition from the shards.

        The edges come back in their original stream order (shard rows
        carry the input-order edge id), so the result is indistinguishable
        from partitioning the fully-loaded graph.
        """
        m = self.num_edges
        src = np.empty(m, dtype=np.int64)
        dst = np.empty(m, dtype=np.int64)
        weights = np.empty(m, dtype=np.float64) if self.manifest["weighted"] else None
        filled = 0
        for part in range(self.num_parts):
            eids, psrc, pdst, pw = self.part_edges(part)
            src[eids] = psrc
            dst[eids] = pdst
            if weights is not None and pw is not None:
                weights[eids] = pw
            filled += eids.shape[0]
        if filled != m:
            raise StreamError(
                f"shards cover {filled} edges but the manifest promises {m}"
            )
        graph = Graph(
            self.num_vertices,
            src,
            dst,
            weights=weights,
            directed=self.manifest["directed"],
            name=self.manifest["name"],
        )
        return PartitionResult(
            graph,
            self.num_parts,
            edge_parts=self.edge_parts(),
            kind=VERTEX_CUT,
            method=self.method,
        )

    def to_distributed(self):
        """Assemble and route: the :class:`~repro.bsp.DistributedGraph`."""
        from ..bsp import build_distributed_graph

        return build_distributed_graph(self.assemble())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpilledPartition(dir={self.directory!r}, method={self.method!r}, "
            f"p={self.num_parts}, |E|={self.num_edges})"
        )
