"""In-place mutation patching of spilled partitions (shard surgery).

:func:`patch_spilled_partition` applies a
:class:`~repro.mutate.MutationBatch` to an on-disk
:class:`SpilledPartition` without ever assembling the full graph:

1. **Resolve** — one pass over the shards finds the edge ids matching
   the batch's deletes (:func:`repro.mutate.batch._matching_rows` per
   shard), then the batch resolves with the same ordered semantics as
   the in-memory path.
2. **Patch** — each shard drops its removed rows and re-densifies the
   surviving edge ids (a delete shifts every later id down); while
   streaming the shards the pass accumulates the warm-seed aggregates
   (degrees, distinct ``(vertex, part)`` incidences, per-part counts).
   With no deletes the remap is the identity and untouched shards are
   not rewritten at all — inserts become pure appends.
3. **Assign + append** — a :class:`StreamingEBVAssigner` is warm-started
   from the aggregates (:meth:`seed_state`) and the inserted edges run
   through :func:`windows` exactly like a live stream; each insert is
   appended to its target shard with a tail edge id.

Peak memory is O(largest shard + vertex state + |E| part ids) — the
``edge_parts.bin`` rewrite holds the id array, matching what
:meth:`SpilledPartition.edge_parts` already loads.

When the batch touches more than ``repartition_threshold`` of the
mutated edge set, the escape hatch assembles, rebuilds the mutated
graph and **re-spills from scratch** (a full repartition) — same
policy as :func:`repro.mutate.apply_mutations`.

Crash safety: replacement shards and the new ``edge_parts.bin`` are
written to temporaries and renamed before the manifest is republished.
A crash mid-patch leaves the old manifest alongside partially renamed
data files; every reader cross-checks row counts against the manifest,
so a torn patch is *detected* (``StreamError``) rather than silently
served — recover by re-spilling with ``overwrite=True``.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

import numpy as np

from .driver import (
    SpilledPartition,
    _EDGE_PARTS,
    _MANIFEST,
    _shard_name,
    _shard_weights_name,
    stream_partition,
    windows,
)
from .sources import ArrayEdgeStream, StreamError

__all__ = ["patch_spilled_partition"]


def _write_rows(path: str, eids: np.ndarray, src: np.ndarray, dst: np.ndarray) -> None:
    np.stack([eids, src, dst], axis=1).tofile(path)


def _publish_manifest(directory: str, manifest: Dict[str, Any]) -> None:
    manifest_path = os.path.join(directory, _MANIFEST)
    tmp = f"{manifest_path}.tmp-{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, manifest_path)


def patch_spilled_partition(
    spilled: SpilledPartition,
    batch,
    partitioner=None,
    *,
    repartition_threshold: Optional[float] = None,
) -> Tuple[SpilledPartition, Dict[str, Any]]:
    """Apply a mutation batch to a spilled partition in place.

    Returns the re-opened :class:`SpilledPartition` and a JSON-safe
    drift report (same keys as
    :meth:`repro.mutate.MutationResult.report`).
    """
    from ..mutate.batch import DELETE, MutationError, _matching_rows
    from ..mutate.incremental import DEFAULT_REPARTITION_THRESHOLD
    from ..partition.streaming import StreamingEBVPartitioner

    if repartition_threshold is None:
        repartition_threshold = DEFAULT_REPARTITION_THRESHOLD
    if not 0.0 <= repartition_threshold <= 1.0:
        raise MutationError(
            f"repartition_threshold must be in [0, 1], got {repartition_threshold!r}"
        )
    if partitioner is None:
        partitioner = StreamingEBVPartitioner()
    manifest = dict(spilled.manifest)
    if not manifest["directed"]:
        raise MutationError(
            "mutation batches apply to directed edge lists; undirected "
            "spills store each edge as two arcs — mutate both explicitly"
        )
    weighted = bool(manifest["weighted"])
    num_parts = spilled.num_parts
    directory = spilled.directory

    # ---- pass 1: find delete candidates shard by shard ---------------
    delete_pairs = {(u, v) for kind, u, v, _ in batch.ops if kind == DELETE}
    triples: List[Tuple[int, int, int]] = []
    for part in range(num_parts):
        eids, src, dst, _ = spilled.part_edges(part)
        for row in _matching_rows(src, dst, delete_pairs).tolist():
            triples.append((int(eids[row]), int(src[row]), int(dst[row])))
    triples.sort()
    candidates: Dict[Tuple[int, int], Deque[int]] = {}
    for eid, u, v in triples:
        candidates.setdefault((u, v), deque()).append(eid)
    resolved = batch.resolve(candidates)
    if resolved.has_explicit_weights and not weighted:
        raise MutationError(
            "batch carries edge weights but the spill is unweighted; "
            "drop the weights or mutate a weighted spill"
        )

    m_old = spilled.num_edges
    m_surviving = m_old - resolved.num_removed
    m_new = m_surviving + resolved.num_inserted
    n_new = int(manifest["num_vertices"])
    if resolved.num_inserted:
        n_new = max(
            n_new,
            int(max(resolved.insert_src.max(), resolved.insert_dst.max())) + 1,
        )
    touched = (resolved.num_removed + resolved.num_inserted) / max(m_new, 1)
    rf_before = float(manifest["replication_factor"])

    report: Dict[str, Any] = {
        "num_inserted": resolved.num_inserted,
        "num_deleted": resolved.num_removed,
        "num_cancelled": resolved.num_cancelled,
        "num_edges_before": int(m_old),
        "num_edges_after": int(m_new),
        "num_vertices_after": int(n_new),
        "touched_fraction": float(touched),
        "repartition_threshold": float(repartition_threshold),
        "rf_before": rf_before,
    }

    # ---- escape hatch: assemble + full re-spill ----------------------
    if touched > repartition_threshold and num_parts > 1:
        from ..mutate.incremental import mutated_graph

        new_graph = mutated_graph(spilled.assemble().graph, resolved)
        patched = stream_partition(
            ArrayEdgeStream.from_graph(new_graph),
            partitioner,
            num_parts,
            directory,
            overwrite=True,
        )
        report.update(
            mode="repartition",
            reassigned_edges=int(m_new),
            rf_after=float(patched.replication_factor),
            rf_full=float(patched.replication_factor),
            drift=1.0,
        )
        return patched, report

    # ---- incremental patch -------------------------------------------
    removed = resolved.removed_ids  # sorted ascending
    assigner = partitioner.streamer(num_parts)
    if not hasattr(assigner, "seed_state"):
        raise MutationError(
            f"partitioner {getattr(partitioner, 'name', type(partitioner).__name__)!r} "
            "has no warm-seedable assigner; incremental maintenance needs "
            "the streaming EBV core (ebv-stream)"
        )

    degrees = np.zeros(n_new, dtype=np.int64)
    pair_key_chunks: List[np.ndarray] = []
    edge_counts = np.zeros(num_parts, dtype=np.int64)
    # shard -> (eids, src, dst, w) of surviving rows needing a rewrite
    rewrites: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray, Optional[np.ndarray]]] = {}
    for part in range(num_parts):
        eids, src, dst, w = spilled.part_edges(part)
        if removed.shape[0]:
            keep = ~np.isin(eids, removed)
            eids = eids[keep] - np.searchsorted(removed, eids[keep])
            src, dst = src[keep], dst[keep]
            if w is not None:
                w = w[keep]
            rewrites[part] = (eids, src, dst, w)
        if src.shape[0]:
            degrees += np.bincount(src, minlength=n_new) + np.bincount(
                dst, minlength=n_new
            )
            pair_key_chunks.append(
                np.unique(np.concatenate([src, dst])) * num_parts + part
            )
            edge_counts[part] = src.shape[0]
    pair_keys = (
        np.unique(np.concatenate(pair_key_chunks))
        if pair_key_chunks
        else np.empty(0, dtype=np.int64)
    )
    assigner.seed_state(
        degrees,
        pair_keys // num_parts,
        pair_keys % num_parts,
        edge_counts,
        m_surviving,
    )

    insert_parts = [
        assigner.assign(s, d)
        for s, d, _ in windows(
            [(resolved.insert_src, resolved.insert_dst, None)], assigner.window
        )
    ]
    insert_part_ids = (
        np.concatenate(insert_parts) if insert_parts else np.empty(0, dtype=np.int64)
    )
    insert_eids = np.arange(m_surviving, m_new, dtype=np.int64)

    # Write replacement shards (deletes re-densify every shard's ids).
    pid = os.getpid()
    renames: List[Tuple[str, str]] = []
    removals: List[str] = []
    for part, (eids, src, dst, w) in rewrites.items():
        sel = insert_part_ids == part
        if sel.any():
            eids = np.concatenate([eids, insert_eids[sel]])
            src = np.concatenate([src, resolved.insert_src[sel]])
            dst = np.concatenate([dst, resolved.insert_dst[sel]])
            if weighted:
                w = np.concatenate(
                    [w if w is not None else np.empty(0), resolved.insert_weights[sel]]
                )
        shard_path = os.path.join(directory, _shard_name(part))
        if eids.shape[0] == 0:
            if os.path.exists(shard_path):
                removals.append(shard_path)
                if weighted:
                    removals.append(os.path.join(directory, _shard_weights_name(part)))
            continue
        tmp = f"{shard_path}.tmp-{pid}"
        _write_rows(tmp, eids, src, dst)
        renames.append((tmp, shard_path))
        if weighted:
            wpath = os.path.join(directory, _shard_weights_name(part))
            wtmp = f"{wpath}.tmp-{pid}"
            np.ascontiguousarray(w, dtype=np.float64).tofile(wtmp)
            renames.append((wtmp, wpath))

    # Pure appends for untouched shards receiving inserts (no-delete case).
    appends: List[Tuple[int, np.ndarray]] = []
    if not removed.shape[0]:
        for part in np.unique(insert_part_ids).tolist():
            sel = insert_part_ids == part
            appends.append((part, np.nonzero(sel)[0]))

    # New edge_parts.bin: surviving parts in id order + insert parts.
    old_parts = spilled.edge_parts()
    if removed.shape[0]:
        keep_mask = np.ones(m_old, dtype=bool)
        keep_mask[removed] = False
        old_parts = old_parts[keep_mask]
    parts_path = os.path.join(directory, _EDGE_PARTS)
    parts_tmp = f"{parts_path}.tmp-{pid}"
    np.concatenate([old_parts, insert_part_ids]).tofile(parts_tmp)
    renames.append((parts_tmp, parts_path))

    # Publish: renames, appends, removals, then the manifest.
    for tmp, final in renames:
        os.replace(tmp, final)
    for part, rows in appends:
        shard_path = os.path.join(directory, _shard_name(part))
        with open(shard_path, "ab") as fh:
            np.stack(
                [insert_eids[rows], resolved.insert_src[rows], resolved.insert_dst[rows]],
                axis=1,
            ).tofile(fh)
        if weighted:
            with open(os.path.join(directory, _shard_weights_name(part)), "ab") as fh:
                np.ascontiguousarray(resolved.insert_weights[rows]).tofile(fh)
    for path in removals:
        try:
            os.remove(path)
        except OSError:
            pass

    new_edge_counts = edge_counts + np.bincount(insert_part_ids, minlength=num_parts)
    rf_after = float(assigner.replication_factor(n_new if m_new else None))
    bytes_spilled = sum(
        os.path.getsize(os.path.join(directory, f))
        for f in os.listdir(directory)
        if f != _MANIFEST
    )
    manifest.update(
        num_edges=int(m_new),
        num_vertices=int(n_new),
        edge_counts=new_edge_counts.tolist(),
        replication_factor=rf_after,
        bytes_spilled=int(bytes_spilled),
    )
    _publish_manifest(directory, manifest)
    report.update(
        mode="incremental",
        reassigned_edges=int(resolved.num_inserted),
        rf_after=rf_after,
    )
    return SpilledPartition(directory), report
