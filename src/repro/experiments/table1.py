"""Experiment T1 — Table I: statistics of the tested graphs."""

from __future__ import annotations

from typing import List, Tuple

from ..analysis import render_table
from ..graph import GraphStats, graph_stats
from .config import ExperimentConfig, default_config

__all__ = ["run_table1"]

#: the paper's reference rows, for side-by-side reporting.
PAPER_TABLE1 = {
    "usa-road": ("Undirected", 23_947_347, 58_333_344, 2.44, 6.30),
    "livejournal": ("Directed", 4_847_571, 68_993_773, 14.23, 2.64),
    "friendster": ("Undirected", 65_608_366, 1_806_067_135, 27.53, 2.43),
    "twitter": ("Directed", 41_652_230, 1_468_365_182, 35.25, 1.87),
}


def run_table1(config: ExperimentConfig = None) -> Tuple[List[GraphStats], str]:
    """Compute Table I for the stand-in suite; returns (rows, rendered)."""
    config = config or default_config()
    rows = [graph_stats(g) for g in config.graphs().values()]
    table_rows = []
    for s in rows:
        paper = PAPER_TABLE1.get(s.name)
        table_rows.append(
            (
                s.name,
                s.kind,
                s.num_vertices,
                s.num_edges,
                f"{s.average_degree:.2f}",
                f"{s.eta:.2f}",
                f"{paper[4]:.2f}" if paper else "-",
            )
        )
    text = render_table(
        ["Graph", "Type", "V", "E", "AvgDeg", "eta", "paper eta"],
        table_rows,
        title="Table I — statistics of tested graphs (stand-ins; see DESIGN.md §3)",
    )
    return rows, text
