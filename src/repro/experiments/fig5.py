"""Experiment F5 — replication-factor growth, EBV-sort vs EBV-unsort.

Figure 5 plots the replication factor as a function of edges processed
for p ∈ {4, 8, 16, 32} on the three power-law graphs.  The expected
shape (Section V-D): EBV-sort rises sharply while low-degree seed edges
create vertices, then flattens as hub edges stop creating replicas,
finishing *below* EBV-unsort with a gap that widens with p.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..analysis import render_table
from ..partition import EBVPartitioner
from .config import ExperimentConfig, POWER_LAW_GRAPHS, default_config

__all__ = ["run_fig5", "GrowthCurves"]

#: (variant, p) → (edges_processed, replication_factor) arrays
GrowthCurves = Dict[Tuple[str, int], Tuple[np.ndarray, np.ndarray]]


def run_fig5(
    config: ExperimentConfig = None,
    graphs: Sequence[str] = POWER_LAW_GRAPHS,
    subgraph_counts: Sequence[int] = (4, 8, 16, 32),
    samples: int = 8,
) -> Tuple[Dict[str, GrowthCurves], str]:
    """Trace RF growth for both variants; returns (curves per graph, text)."""
    config = config or default_config()
    all_curves: Dict[str, GrowthCurves] = {}
    blocks: List[str] = ["Figure 5 — replication factor growth curves"]
    for graph_name in graphs:
        graph = config.graphs()[graph_name]
        curves: GrowthCurves = {}
        for p in subgraph_counts:
            for variant, order in (("sort", "ascending"), ("unsort", "input")):
                ebv = EBVPartitioner(sort_order=order, track_growth=True)
                ebv.partition(graph, p)
                curves[(variant, p)] = ebv.growth_curve(graph, max_points=512)
        all_curves[graph_name] = curves

        # Render a compact sample grid: RF at fractions of |E| processed.
        fracs = np.linspace(1.0 / samples, 1.0, samples)
        rows = []
        for (variant, p), (x, y) in sorted(curves.items(), key=lambda kv: (kv[0][1], kv[0][0])):
            picks = [float(np.interp(f * x[-1], x, y)) for f in fracs]
            rows.append([f"EBV-{variant} p={p}"] + [f"{v:.2f}" for v in picks])
        blocks.append(
            render_table(
                ["Variant"] + [f"{f:.0%}|E|" for f in fracs],
                rows,
                title=f"\n{graph_name}: replication factor after processing x% of edges",
            )
        )
    return all_curves, "\n".join(blocks)
