"""Experiments T2 & F4 — the CC/4-worker breakdown and worker timeline.

Table II decomposes CC with 4 workers over LiveJournal into comp, comm
and ΔC per partition algorithm; Figure 4 shows the same runs as
per-worker Gantt lanes.  Both come from the same six runs, so one
driver produces both artifacts.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..analysis import (
    BreakdownRow,
    breakdown_row,
    render_breakdown_table,
    render_timeline,
)
from ..bsp import BSPEngine, BSPRun, build_distributed_graph
from ..frameworks import make_program
from .config import ExperimentConfig, default_config

__all__ = ["run_breakdown"]


def run_breakdown(
    config: ExperimentConfig = None,
    graph_name: str = "livejournal",
    app: str = "CC",
    num_workers: int = 4,
) -> Tuple[List[BreakdownRow], Dict[str, BSPRun], str, str]:
    """Run the six partitioners; return (rows, runs, table_text, timeline_text)."""
    config = config or default_config()
    graph = config.graphs()[graph_name]
    engine = BSPEngine(cost_model=config.cost_model)
    rows: List[BreakdownRow] = []
    runs: Dict[str, BSPRun] = {}
    for name, partitioner in config.partitioners().items():
        result = partitioner.partition(graph, num_workers)
        dgraph = build_distributed_graph(result)
        run = engine.run(dgraph, make_program(app, graph))
        run.partition_method = name
        rows.append(breakdown_row(run))
        runs[name] = run
    rows.sort(key=lambda r: r.execution_time)
    table_text = render_breakdown_table(
        rows,
        title=(
            f"Table II — breakdown (seconds, modeled) of {app} with "
            f"{num_workers} workers over {graph_name}"
        ),
    )
    timeline_text = "\n\n".join(render_timeline(runs[name]) for name in runs)
    timeline_text = (
        f"Figure 4 — per-worker breakdown of {app} with {num_workers} workers "
        f"over {graph_name}\n\n" + timeline_text
    )
    return rows, runs, table_text, timeline_text
