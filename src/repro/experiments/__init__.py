"""Experiment drivers: one per paper table/figure plus the ablations."""

from .ablations import (
    run_alpha_beta_ablation,
    run_bounds_ablation,
    run_sort_order_ablation,
)
from .breakdown2_4 import run_breakdown
from .config import (
    ExperimentConfig,
    PAPER_METHOD_SPECS,
    POWER_LAW_GRAPHS,
    ROAD_GRAPH,
    default_config,
)
from .fig5 import run_fig5
from .report import generate_report
from .figures23 import run_fig2, run_fig3, sweep_panel
from .table1 import run_table1
from .tables345 import run_tables345

__all__ = [
    "ExperimentConfig",
    "PAPER_METHOD_SPECS",
    "POWER_LAW_GRAPHS",
    "ROAD_GRAPH",
    "default_config",
    "run_alpha_beta_ablation",
    "run_bounds_ablation",
    "run_sort_order_ablation",
    "run_breakdown",
    "run_fig5",
    "generate_report",
    "run_fig2",
    "run_fig3",
    "sweep_panel",
    "run_table1",
    "run_tables345",
]
