"""Experiments T3, T4, T5 — partition metrics and message statistics.

Table III: edge/vertex imbalance factors and replication factor for the
six partition algorithms over the four graphs (12/12/32/32 subgraphs).
Table IV: total CC messages (tracking the replication factor).
Table V: per-worker max/mean message ratio (tracking the imbalance
factors).  One driver computes all three since they share the partition
and CC runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..analysis import (
    MessageStats,
    message_stats,
    render_max_mean_table,
    render_message_table,
    render_table,
)
from ..bsp import BSPEngine, build_distributed_graph
from ..frameworks import make_program
from ..partition import PartitionMetrics, partition_metrics
from .config import ExperimentConfig, default_config

__all__ = ["run_tables345", "Table345Data"]


@dataclass
class Table345Data:
    """All three tables' raw rows, keyed by (graph, method)."""

    metrics: Dict[Tuple[str, str], PartitionMetrics]
    messages: Dict[Tuple[str, str], MessageStats]


def run_tables345(
    config: ExperimentConfig = None,
    app: str = "CC",
) -> Tuple[Table345Data, str, str, str]:
    """Partition every graph with every algorithm, run CC, tabulate.

    Returns ``(data, table3_text, table4_text, table5_text)``.
    """
    config = config or default_config()
    engine = BSPEngine(cost_model=config.cost_model)
    metrics: Dict[Tuple[str, str], PartitionMetrics] = {}
    messages: Dict[Tuple[str, str], MessageStats] = {}
    for graph_name, graph in config.graphs().items():
        p = config.table_workers[graph_name]
        for method, partitioner in config.partitioners().items():
            result = partitioner.partition(graph, p)
            m = partition_metrics(result)
            m.method = method
            metrics[(graph_name, method)] = m
            dgraph = build_distributed_graph(result)
            run = engine.run(dgraph, make_program(app, graph))
            run.partition_method = method
            messages[(graph_name, method)] = message_stats(
                run,
                replication_factor=m.replication,
                edge_imbalance=m.edge_imbalance,
                vertex_imbalance=m.vertex_imbalance,
            )

    table3_rows = [
        (
            g,
            method,
            f"{m.edge_imbalance:.2f}",
            f"{m.vertex_imbalance:.2f}",
            f"{m.replication:.2f}",
        )
        for (g, method), m in metrics.items()
    ]
    table3 = render_table(
        ["Graph", "Method", "EdgeImb", "VertImb", "RF"],
        table3_rows,
        title="Table III — partitioning metrics (12/12/32/32 subgraphs)",
    )
    stats = list(messages.values())
    table4 = render_message_table(
        stats, title=f"Table IV — total messages for {app}"
    )
    table5 = render_max_mean_table(
        stats, title=f"Table V — max/mean message ratio for {app}"
    )
    return Table345Data(metrics=metrics, messages=messages), table3, table4, table5
