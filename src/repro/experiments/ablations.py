"""Ablations A1–A3 (DESIGN.md §6): bound tightness, α/β sensitivity, sort order.

These go beyond the paper's headline artifacts and probe the design
choices it calls out: the Theorem 1/2 guarantees, the evaluation
function's balance weights, and the edge-processing order (extending
Section V-D with descending and random orders).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..analysis import render_table
from ..partition import (
    EBVPartitioner,
    SORT_ORDERS,
    edge_imbalance_factor,
    partition_metrics,
    replication_factor,
    theorem1_edge_imbalance_bound,
    theorem2_vertex_imbalance_bound,
    vertex_imbalance_factor,
)
from .config import ExperimentConfig, default_config

__all__ = ["run_bounds_ablation", "run_alpha_beta_ablation", "run_sort_order_ablation"]


def run_bounds_ablation(
    config: ExperimentConfig = None,
    graph_name: str = "livejournal",
    num_parts: int = 8,
    alphas: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    betas: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
) -> Tuple[List[dict], str]:
    """A1: measured imbalance factors vs the Theorem 1/2 upper bounds."""
    config = config or default_config()
    graph = config.graphs()[graph_name]
    rows: List[dict] = []
    for alpha in alphas:
        for beta in betas:
            result = EBVPartitioner(alpha=alpha, beta=beta).partition(graph, num_parts)
            covered = int(result.vertex_counts().sum())
            rows.append(
                {
                    "alpha": alpha,
                    "beta": beta,
                    "edge_imbalance": edge_imbalance_factor(result),
                    "edge_bound": theorem1_edge_imbalance_bound(
                        graph.num_edges, graph.num_vertices, num_parts, alpha, beta
                    ),
                    "vertex_imbalance": vertex_imbalance_factor(result),
                    "vertex_bound": theorem2_vertex_imbalance_bound(
                        graph.num_vertices, covered, num_parts, alpha, beta
                    ),
                }
            )
    text = render_table(
        ["alpha", "beta", "edge imb", "T1 bound", "vert imb", "T2 bound"],
        [
            (
                r["alpha"],
                r["beta"],
                f"{r['edge_imbalance']:.3f}",
                f"{r['edge_bound']:.1f}",
                f"{r['vertex_imbalance']:.3f}",
                f"{r['vertex_bound']:.1f}",
            )
            for r in rows
        ],
        title=(
            f"Ablation A1 — measured imbalance vs Theorem 1/2 bounds "
            f"({graph_name}, p={num_parts})"
        ),
    )
    return rows, text


def run_alpha_beta_ablation(
    config: ExperimentConfig = None,
    graph_name: str = "twitter",
    num_parts: int = 16,
    weights: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
) -> Tuple[List[dict], str]:
    """A2: the RF-vs-balance trade-off as α=β sweeps through ``weights``.

    Larger weights push EBV toward perfect balance at the cost of extra
    replicas; tiny weights recover an NE-like low-RF/imbalanced regime.
    """
    config = config or default_config()
    graph = config.graphs()[graph_name]
    rows: List[dict] = []
    for w in weights:
        result = EBVPartitioner(alpha=w, beta=w).partition(graph, num_parts)
        m = partition_metrics(result)
        rows.append(
            {
                "weight": w,
                "replication": m.replication,
                "edge_imbalance": m.edge_imbalance,
                "vertex_imbalance": m.vertex_imbalance,
            }
        )
    text = render_table(
        ["alpha=beta", "RF", "edge imb", "vert imb"],
        [
            (r["weight"], f"{r['replication']:.3f}", f"{r['edge_imbalance']:.3f}",
             f"{r['vertex_imbalance']:.3f}")
            for r in rows
        ],
        title=f"Ablation A2 — balance-weight sweep ({graph_name}, p={num_parts})",
    )
    return rows, text


def run_sort_order_ablation(
    config: ExperimentConfig = None,
    graph_name: str = "twitter",
    num_parts: int = 16,
    orders: Sequence[str] = SORT_ORDERS,
) -> Tuple[Dict[str, float], str]:
    """A3: replication factor under all four edge-processing orders."""
    config = config or default_config()
    graph = config.graphs()[graph_name]
    results: Dict[str, float] = {}
    for order in orders:
        result = EBVPartitioner(sort_order=order).partition(graph, num_parts)
        results[order] = replication_factor(result)
    text = render_table(
        ["Order", "Replication factor"],
        [(order, f"{rf:.3f}") for order, rf in results.items()],
        title=f"Ablation A3 — edge-processing order ({graph_name}, p={num_parts})",
    )
    return results, text
