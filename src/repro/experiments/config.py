"""Shared experiment configuration.

The paper's evaluation matrix (Section V-A): four graphs, six partition
algorithms inside the subgraph-centric framework, plus Galois and
Blogel; Tables III–V partition USARoad/LiveJournal/Friendster/Twitter
into 12/12/32/32 subgraphs; Figure 2 sweeps 4–24 workers on LiveJournal
and 24–48 on Twitter/Friendster; Figure 3 sweeps 4–24 on USARoad.

We keep the paper's worker counts and shrink the *graphs* (DESIGN.md
§3).  ``scale`` multiplies stand-in sizes; the ``REPRO_SCALE`` and
``REPRO_QUICK`` environment variables let CI and the benchmark harness
trade fidelity for speed without touching code.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List

from ..bsp import CostModel
from ..graph import Graph, paper_graph_suite
from ..frameworks import (
    BlogelFramework,
    Framework,
    SubgraphCentricFramework,
    VertexCentricFramework,
)

__all__ = [
    "ExperimentConfig",
    "default_config",
    "PAPER_METHOD_SPECS",
    "POWER_LAW_GRAPHS",
    "ROAD_GRAPH",
]

#: (display name, registry spec) for the paper's six partition algorithms;
#: instances are created through :data:`repro.pipeline.registries.PARTITIONERS`
#: so experiment sweeps use exactly the same factories as the CLI.
PAPER_METHOD_SPECS = (
    ("EBV", "ebv"),
    ("Ginger", "ginger"),
    ("DBH", "dbh"),
    ("CVC", "cvc"),
    ("NE", "ne"),
    ("METIS", "metis"),
)

POWER_LAW_GRAPHS = ("livejournal", "twitter", "friendster")
ROAD_GRAPH = "usa-road"


@dataclass
class ExperimentConfig:
    """Everything an experiment driver needs, in one place."""

    scale: float = 1.0
    seed: int = 7
    pagerank_iters: int = 20
    cost_model: CostModel = field(default_factory=CostModel)
    #: Table III–V subgraph counts per graph (paper: 12/12/32/32).
    table_workers: Dict[str, int] = field(
        default_factory=lambda: {
            "usa-road": 12,
            "livejournal": 12,
            "friendster": 32,
            "twitter": 32,
        }
    )
    #: Figure 2/3 worker sweeps per graph.
    figure_workers: Dict[str, List[int]] = field(
        default_factory=lambda: {
            "usa-road": [4, 8, 12, 16, 20, 24],
            "livejournal": [4, 8, 12, 16, 20, 24],
            "friendster": [24, 32, 40, 48],
            "twitter": [24, 32, 40, 48],
        }
    )
    _graphs: Dict[str, Graph] = field(default_factory=dict, repr=False)

    def graphs(self) -> Dict[str, Graph]:
        """The four dataset stand-ins (generated once, then cached)."""
        if not self._graphs:
            self._graphs = paper_graph_suite(scale=self.scale, seed=self.seed)
        return self._graphs

    def partitioners(self):
        """Fresh instances of the paper's six partition algorithms."""
        # Imported lazily: repro.pipeline resolves after the experiments
        # package during ``import repro``, and registry lookups only
        # happen at sweep time anyway.
        from ..pipeline.registries import PARTITIONERS

        return {
            display: PARTITIONERS.create(spec)
            for display, spec in PAPER_METHOD_SPECS
        }

    def frameworks(self) -> List[Framework]:
        """The eight systems of Figures 2–3 (six partitioners + 2 externals)."""
        systems: List[Framework] = [
            SubgraphCentricFramework(
                p, cost_model=self.cost_model, pagerank_iters=self.pagerank_iters
            )
            for p in self.partitioners().values()
        ]
        systems.append(
            VertexCentricFramework(
                cost_model=self.cost_model, pagerank_iters=self.pagerank_iters
            )
        )
        systems.append(
            BlogelFramework(
                cost_model=self.cost_model, pagerank_iters=self.pagerank_iters
            )
        )
        return systems


def default_config() -> ExperimentConfig:
    """Config honoring ``REPRO_SCALE`` (float) and ``REPRO_QUICK`` (0/1).

    Quick mode shrinks graphs and sweeps so the whole benchmark suite
    finishes in a couple of minutes; the full mode matches DESIGN.md.
    """
    scale = float(os.environ.get("REPRO_SCALE", "1.0"))
    config = ExperimentConfig(scale=scale)
    if os.environ.get("REPRO_QUICK", "0") == "1":
        config.scale = min(scale, 0.25)
        config.figure_workers = {
            "usa-road": [4, 8, 16],
            "livejournal": [4, 8, 16],
            "friendster": [8, 16, 32],
            "twitter": [8, 16, 32],
        }
        config.pagerank_iters = 10
    return config
