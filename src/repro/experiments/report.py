"""One-shot reproduction report: every artifact in a single document.

``generate_report`` runs all table/figure drivers plus the ablations and
returns one markdown-ish text document; the CLI exposes it as
``python -m repro experiment all``.  This is the "give me everything"
entry point for someone auditing the reproduction.
"""

from __future__ import annotations

from typing import List, Optional

from .ablations import (
    run_alpha_beta_ablation,
    run_bounds_ablation,
    run_sort_order_ablation,
)
from .breakdown2_4 import run_breakdown
from .config import ExperimentConfig, default_config
from .fig5 import run_fig5
from .figures23 import run_fig2, run_fig3
from .table1 import run_table1
from .tables345 import run_tables345

__all__ = ["generate_report"]


def generate_report(
    config: Optional[ExperimentConfig] = None,
    include_figures: bool = True,
) -> str:
    """Run every experiment and return the combined report text.

    Parameters
    ----------
    config:
        Experiment configuration; defaults to :func:`default_config`.
    include_figures:
        Figures 2-3 sweep every framework over every worker count and
        dominate the runtime; pass ``False`` for a tables-only report.
    """
    config = config or default_config()
    sections: List[str] = [
        "# EBV reproduction report",
        f"(scale={config.scale}, pagerank_iters={config.pagerank_iters})",
    ]

    _, table1 = run_table1(config)
    sections.append(table1)

    _, table3, table4, table5 = run_tables345(config)
    sections.extend([table3, table4, table5])

    _, _, table2, fig4 = run_breakdown(config)
    sections.extend([table2, fig4])

    _, fig5 = run_fig5(config)
    sections.append(fig5)

    if include_figures:
        _, fig2 = run_fig2(config)
        sections.append(fig2)
        _, fig3 = run_fig3(config)
        sections.append(fig3)

    for runner in (run_bounds_ablation, run_alpha_beta_ablation,
                   run_sort_order_ablation):
        _, text = runner(config)
        sections.append(text)

    return "\n\n".join(sections)
