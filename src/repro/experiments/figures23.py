"""Experiments F2 & F3 — cross-system execution time sweeps.

Figure 2: CC, PR and SSSP on the three power-law graphs over a range of
worker counts, comparing the six partition algorithms inside the
subgraph-centric framework plus the Galois and Blogel stand-ins.
Figure 3: CC and SSSP on the non-power-law road graph.

Each sweep produces a ``{framework: [seconds per worker count]}`` series
dict; the renderer prints one aligned block per (app, graph) panel.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..analysis import render_table
from .config import ExperimentConfig, POWER_LAW_GRAPHS, ROAD_GRAPH, default_config

__all__ = ["sweep_panel", "run_fig2", "run_fig3", "render_panels"]

Panel = Dict[str, List[float]]


def sweep_panel(
    config: ExperimentConfig, graph_name: str, app: str, workers: Sequence[int]
) -> Panel:
    """One figure panel: execution time per framework per worker count."""
    graph = config.graphs()[graph_name]
    panel: Panel = {}
    for framework in config.frameworks():
        if not framework.supports(app):
            continue
        times: List[float] = []
        for p in workers:
            run = framework.run(graph, app, p)
            times.append(run.execution_time)
        panel[framework.name] = times
    return panel


def render_panels(
    panels: Dict[Tuple[str, str], Panel],
    workers_of: Dict[str, Sequence[int]],
    title: str,
) -> str:
    """Render every (app, graph) panel as an aligned text block."""
    blocks: List[str] = [title]
    for (app, graph_name), panel in panels.items():
        workers = workers_of[graph_name]
        rows = []
        for framework, times in panel.items():
            rows.append([framework] + [f"{t:.4f}" for t in times])
        blocks.append(
            render_table(
                ["Framework"] + [f"p={p}" for p in workers],
                rows,
                title=f"\n{app} — {graph_name} (execution seconds, modeled)",
            )
        )
    return "\n".join(blocks)


def run_fig2(
    config: ExperimentConfig = None,
    apps: Sequence[str] = ("CC", "PR", "SSSP"),
    graphs: Sequence[str] = POWER_LAW_GRAPHS,
) -> Tuple[Dict[Tuple[str, str], Panel], str]:
    """Figure 2: the full power-law sweep; returns (panels, rendered)."""
    config = config or default_config()
    panels: Dict[Tuple[str, str], Panel] = {}
    for app in apps:
        for graph_name in graphs:
            workers = config.figure_workers[graph_name]
            panels[(app, graph_name)] = sweep_panel(config, graph_name, app, workers)
    text = render_panels(
        panels,
        config.figure_workers,
        "Figure 2 — cross-system comparison on power-law graphs",
    )
    return panels, text


def run_fig3(
    config: ExperimentConfig = None,
    apps: Sequence[str] = ("CC", "SSSP"),
) -> Tuple[Dict[Tuple[str, str], Panel], str]:
    """Figure 3: CC and SSSP on the road graph; returns (panels, rendered)."""
    config = config or default_config()
    panels: Dict[Tuple[str, str], Panel] = {}
    for app in apps:
        workers = config.figure_workers[ROAD_GRAPH]
        panels[(app, ROAD_GRAPH)] = sweep_panel(config, ROAD_GRAPH, app, workers)
    text = render_panels(
        panels,
        config.figure_workers,
        "Figure 3 — CC and SSSP over the non-power-law road graph",
    )
    return panels, text
