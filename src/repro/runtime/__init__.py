"""``repro.runtime`` — pluggable parallel execution for the BSP engine.

The paper's engine (DRONE, Section IV-B) runs subgraph workers on a
real cluster; this package is the shared-memory analogue.  It executes
:class:`~repro.bsp.program.SubgraphProgram` supersteps *genuinely* in
parallel while the :class:`~repro.bsp.engine.BSPEngine` keeps owning
the superstep contract — compute, replica exchange, barrier — so every
backend produces bit-identical results to the serial reference.

Backend contract
----------------
A :class:`Backend` opens a :class:`BackendSession` per program run.
The session exposes the per-worker state arrays (values / active /
changed / partials) and one operation, ``compute_stage()``, which runs
:func:`repro.runtime.worker.superstep_compute` for every worker and
blocks until all of them finish (the first half of the BSP barrier).
The engine then performs the replica exchange directly on the session's
arrays — masters and mirrors trade values through shared memory, never
through per-superstep serialization.  Three backends ship:

``serial``
    The reference: workers run sequentially in the calling process.
``thread``
    A persistent :class:`~concurrent.futures.ThreadPoolExecutor`;
    workers share the engine's heap arrays, parallelism comes from
    numpy releasing the GIL inside bulk kernels.
``process``
    A persistent ``multiprocessing`` pool.  Each child receives its
    :class:`~repro.bsp.distributed.LocalSubgraph` and program once, at
    session start, and holds them for the whole run.

Shared-memory layout (process backend)
--------------------------------------
Per worker ``w``, one ``multiprocessing.shared_memory`` block per state
array, created by the parent and mapped by child ``w``:

===========  =========================  ===============================
array        shape / dtype              written by
===========  =========================  ===============================
``values``   ``initial_values`` shape   child (compute), parent (exchange)
``active``   ``(n_local,)`` bool        child (activation), parent (exchange)
``changed``  ``(n_local,)`` bool        child (compute); parent reads
``partials`` ``values``-shaped          child (compute); parent reads
===========  =========================  ===============================

``active`` exists only for minimize-mode programs, ``partials`` only
for accumulate mode.  The parent owns every block's lifetime and
unlinks it at session close; children only ever ``close()`` their
mappings (they share the parent's resource tracker, so their
attach-time registration is a set-level no-op — see
:mod:`repro.runtime.shm`).

Real time vs. modeled time
--------------------------
Runs now record *both* clocks.  Real wall-clock per superstep stage
(``SuperstepStats.real_seconds``) measures this machine and backend —
use it for runtime benchmarks (``benchmarks/bench_runtime.py``).  The
deterministic :class:`~repro.bsp.cost_model.CostModel` accounting is
unchanged and remains **authoritative for every paper artifact**
(Tables II–V, Figures 2–5): those figures model a 4-node cluster's cost
ratios, which no single shared-memory host reproduces, and they must
stay identical across backends, machines and CI runs.
"""

from __future__ import annotations

from .base import Backend, BackendError, BackendSession, WorkerState, allocate_state
from .process import ProcessBackend
from .serial import SerialBackend
from .threads import ThreadBackend
from .worker import superstep_compute

__all__ = [
    "Backend",
    "BackendError",
    "BackendSession",
    "WorkerState",
    "allocate_state",
    "superstep_compute",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "BACKEND_TYPES",
    "create_backend",
]

#: canonical name -> backend class; :data:`repro.pipeline.registries.BACKENDS`
#: is the registry view over this mapping.
BACKEND_TYPES = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}


def create_backend(name: str, **kwargs) -> Backend:
    """Instantiate a backend by canonical name (engine-level front door).

    The pipeline layer resolves full ``"name?key=val"`` spec strings via
    :data:`repro.pipeline.registries.BACKENDS`; this helper serves code
    that holds a bare name (e.g. ``BSPEngine(backend="process")``).
    """
    try:
        # BACKEND_TYPES is a read-only registry frozen at import time, not
        # shared worker state.  # repro: lint-ignore[worker-purity]
        cls = BACKEND_TYPES[name.strip().lower()]
    except (KeyError, AttributeError):
        raise ValueError(
            f"unknown backend {name!r}; available: {', '.join(sorted(BACKEND_TYPES))}"
        ) from None
    return cls(**kwargs)
