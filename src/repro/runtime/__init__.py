"""``repro.runtime`` — pluggable parallel execution for the BSP engine.

The paper's engine (DRONE, Section IV-B) runs subgraph workers on a
real cluster; this package is the shared-memory analogue.  It executes
*both* stages of every :class:`~repro.bsp.program.SubgraphProgram`
superstep — computation *and* replica exchange — genuinely in parallel,
while the :class:`~repro.bsp.engine.BSPEngine` keeps owning the
superstep sequencing, convergence and accounting, so every backend
produces bit-identical results to the serial reference.

Backend contract
----------------
A :class:`Backend` opens a :class:`BackendSession` per program run.
The session exposes the per-worker state arrays (values / active /
changed / partials) and two operations:

``compute_stage(superstep)``
    Runs :func:`repro.runtime.worker.superstep_compute` for every
    worker and blocks until all of them finish (the first barrier of
    the superstep).

``exchange_stage(superstep)``
    Runs the replica exchange *in the workers*, sharded by destination
    over a :class:`~repro.runtime.base.RoutePlan` built exactly once
    per session: every worker pulls its inbound mirror→master updates
    (:func:`~repro.runtime.worker.superstep_exchange_up`), all workers
    barrier, then every worker pulls its inbound master→mirror
    broadcasts (:func:`~repro.runtime.worker.superstep_exchange_down`).
    Masters and mirrors trade values through shared memory, never
    through per-superstep serialization; exact sent/received message
    tallies return through the stage barrier as an
    :class:`~repro.runtime.base.ExchangeResult`.

Four backends ship:

``serial``
    The reference and bit-identity oracle: workers run sequentially in
    the calling process, up phase before down phase.
``thread``
    A persistent :class:`~concurrent.futures.ThreadPoolExecutor`;
    workers share the engine's heap arrays, parallelism comes from
    numpy releasing the GIL inside bulk kernels.
``process``
    A persistent ``multiprocessing`` pool.  Each child receives its
    :class:`~repro.bsp.distributed.LocalSubgraph`, program and inbound
    route slices once, at session start, and holds them for the whole
    run.
``socket``
    Workers as fully independent processes behind framed TCP
    (:mod:`repro.runtime.socket`) — spawned locally by the session or
    launched standalone on other machines via ``repro worker``.  Each
    worker allocates and owns its shard's state for the whole run; the
    coordinator never holds O(|V|·p) state, exchanges move
    change-compacted route slices over the wire, and dead workers
    surface as :class:`~repro.runtime.base.WorkerLostError` with a
    checkpoint-restore recovery path in the engine.

Shared-memory layout (process backend)
--------------------------------------
Per worker ``w``, one ``multiprocessing.shared_memory`` block per state
or scratch array, created by the parent and mapped by *every* child
(the exchange phases read sibling workers' arrays directly):

===========  =========================  ===============================
array        shape / dtype              written by (child ``w`` only)
===========  =========================  ===============================
``values``   ``initial_values`` shape   compute + both exchange phases
``active``   ``(n_local,)`` bool        compute (activation), exchange
``changed``  ``(n_local,)`` bool        compute; exchange reads
``partials`` ``values``-shaped          compute; exchange up reads
``dirty``    ``(n_local,)`` bool        exchange up; siblings read in down
``sums``     ``values``-shaped          exchange up (owner-only scratch)
===========  =========================  ===============================

``active``/``dirty`` exist only for minimize-mode programs,
``partials``/``sums`` only for accumulate mode; ``dirty`` and ``sums``
are per-superstep exchange scratch outside the checkpoint state (see
:class:`~repro.runtime.base.ExchangeScratch`).  The parent owns every
block's lifetime and unlinks it at session close; children only ever
``close()`` their mappings (they share the parent's resource tracker,
so their attach-time registration is a set-level no-op — see
:mod:`repro.runtime.shm`).

Real time vs. modeled time
--------------------------
Runs record *both* clocks.  Real wall-clock per superstep stage
(``SuperstepStats.real_seconds``, keys ``"compute"`` / ``"exchange"`` /
``"converge"``) measures this machine and backend — use it for runtime
benchmarks (``benchmarks/bench_runtime.py``, which reports compute and
exchange stage walls separately).  Stage returns additionally carry the
measured *per-worker* kernel walls
(:class:`~repro.runtime.base.ComputeStageResult` ``.walls``,
:class:`~repro.runtime.base.ExchangeResult` ``.up_walls`` /
``.down_walls``) on every path, traced or not; attaching a
:class:`repro.obs.TraceRecorder` via
:meth:`BackendSession.attach_recorder` additionally turns them into
per-worker compute / exchange / barrier-wait spans.  The
deterministic :class:`~repro.bsp.cost_model.CostModel` accounting is
unchanged and remains **authoritative for every paper artifact**
(Tables II–V, Figures 2–5): those figures model a 4-node cluster's cost
ratios, which no single shared-memory host reproduces, and they must
stay identical across backends, machines and CI runs.
"""

from __future__ import annotations

from .base import (
    Backend,
    BackendError,
    BackendSession,
    ComputeStageResult,
    ExchangeResult,
    ExchangeScratch,
    RoutePlan,
    SharedArraySession,
    WorkerLostError,
    WorkerState,
    allocate_scratch,
    allocate_state,
    assemble_exchange,
    build_route_plan,
    finish_compute_stage,
    finish_exchange_stage,
)
from .process import ProcessBackend
from .protocol import DEFAULT_STAGE_TIMEOUT, CommandSession
from .serial import SerialBackend
from .socket import SocketBackend, serve_worker
from .threads import ThreadBackend
from .worker import superstep_compute, superstep_exchange_down, superstep_exchange_up

__all__ = [
    "Backend",
    "BackendError",
    "BackendSession",
    "CommandSession",
    "DEFAULT_STAGE_TIMEOUT",
    "WorkerLostError",
    "serve_worker",
    "SharedArraySession",
    "WorkerState",
    "ExchangeScratch",
    "ComputeStageResult",
    "ExchangeResult",
    "RoutePlan",
    "allocate_state",
    "allocate_scratch",
    "build_route_plan",
    "assemble_exchange",
    "finish_compute_stage",
    "finish_exchange_stage",
    "superstep_compute",
    "superstep_exchange_up",
    "superstep_exchange_down",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "SocketBackend",
    "BACKEND_TYPES",
    "create_backend",
]

#: canonical name -> backend class; :data:`repro.pipeline.registries.BACKENDS`
#: is the registry view over this mapping.
BACKEND_TYPES = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
    SocketBackend.name: SocketBackend,
}


def create_backend(name: str, **kwargs) -> Backend:
    """Instantiate a backend by canonical name (engine-level front door).

    The pipeline layer resolves full ``"name?key=val"`` spec strings via
    :data:`repro.pipeline.registries.BACKENDS`; this helper serves code
    that holds a bare name (e.g. ``BSPEngine(backend="process")``).
    """
    try:
        # BACKEND_TYPES is a read-only registry frozen at import time, not
        # shared worker state.  # repro: lint-ignore[worker-purity]
        cls = BACKEND_TYPES[name.strip().lower()]
    except (KeyError, AttributeError):
        raise ValueError(
            f"unknown backend {name!r}; available: {', '.join(sorted(BACKEND_TYPES))}"
        ) from None
    return cls(**kwargs)
