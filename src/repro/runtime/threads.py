"""Thread-pool backend: one persistent pool, workers share the arrays.

Both superstep stages run on a
:class:`concurrent.futures.ThreadPoolExecutor` that lives for the whole
session (no per-superstep pool churn).  All workers operate on the same
heap arrays, so the exchange stage needs no copying at all: each worker
pulls its inbound replica updates straight out of the other workers'
arrays (see :mod:`repro.runtime.worker` for why the sharded phases are
race-free), with a barrier between the up and down phases enforced by
collecting every up future before submitting the first down task.
Parallelism comes from numpy releasing the GIL inside its bulk kernels;
on pure-Python-heavy programs the GIL limits the achievable speedup —
the process backend exists for exactly that case.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from ..bsp.distributed import DistributedGraph
from ..bsp.program import SubgraphProgram
from .base import (
    Backend,
    BackendSession,
    ComputeStageResult,
    ExchangeResult,
    SharedArraySession,
    finish_compute_stage,
    finish_exchange_stage,
)

__all__ = ["ThreadBackend"]


class _ThreadSession(SharedArraySession):
    backend_name = "thread"

    def __init__(
        self,
        dgraph: DistributedGraph,
        program: SubgraphProgram,
        max_workers: Optional[int],
    ):
        super().__init__(dgraph, program)
        pool_size = dgraph.num_workers if max_workers is None else max_workers
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, pool_size), thread_name_prefix="repro-bsp"
        )

    def compute_stage(self, superstep: int = 0) -> ComputeStageResult:
        p = self._dgraph.num_workers
        futures = [
            self._pool.submit(self._compute_one, w, superstep) for w in range(p)
        ]
        # future.result() re-raises worker exceptions in submission order.
        return finish_compute_stage(
            self.recorder, superstep, [f.result() for f in futures]
        )

    def exchange_stage(self, superstep: int = 0) -> ExchangeResult:
        p = self._dgraph.num_workers
        up_futures = [self._pool.submit(self._exchange_up_one, w) for w in range(p)]
        # Collecting every up result before submitting any down task is
        # the mandatory mid-exchange barrier: the down phase reads
        # master values and dirty masks the up phase writes on *other*
        # workers.
        ups = [f.result() for f in up_futures]
        down_futures = [
            self._pool.submit(self._exchange_down_one, w) for w in range(p)
        ]
        downs = [f.result() for f in down_futures]
        return finish_exchange_stage(self.recorder, superstep, ups, downs)

    def close(self) -> None:
        self._pool.shutdown(wait=True)


class ThreadBackend(Backend):
    """Shared-memory threads; parallel inside numpy's GIL-free kernels.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to one thread per BSP worker.
    """

    name = "thread"

    def __init__(self, max_workers: Optional[int] = None):
        if max_workers is not None and (
            not isinstance(max_workers, int) or max_workers < 1
        ):
            raise ValueError(f"max_workers must be a positive integer, got {max_workers!r}")
        self.max_workers = max_workers

    def session(
        self, dgraph: DistributedGraph, program: SubgraphProgram
    ) -> BackendSession:
        return _ThreadSession(dgraph, program, self.max_workers)
