"""Thread-pool backend: one persistent pool, workers share the arrays.

Worker compute runs on a :class:`concurrent.futures.ThreadPoolExecutor`
that lives for the whole session (no per-superstep pool churn).  All
workers operate on the same heap arrays the engine sees, so there is no
exchange-time copying at all; parallelism comes from numpy releasing
the GIL inside its bulk kernels.  On pure-Python-heavy programs the GIL
limits the achievable speedup — the process backend exists for exactly
that case.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Optional

import numpy as np

from ..bsp.distributed import DistributedGraph
from ..bsp.program import SubgraphProgram
from .base import Backend, BackendSession, allocate_state
from .worker import superstep_compute

__all__ = ["ThreadBackend"]


class _ThreadSession(BackendSession):
    backend_name = "thread"

    def __init__(
        self,
        dgraph: DistributedGraph,
        program: SubgraphProgram,
        max_workers: Optional[int],
    ):
        self._dgraph = dgraph
        self._program = program
        self.state = allocate_state(dgraph, program)
        pool_size = dgraph.num_workers if max_workers is None else max_workers
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, pool_size), thread_name_prefix="repro-bsp"
        )

    def _compute_one(self, w: int, superstep: int) -> float:
        state = self.state
        return superstep_compute(
            self._program,
            self._dgraph.locals[w],
            state.values[w],
            state.active[w] if state.active is not None else None,
            state.changed[w],
            state.partials[w] if state.partials is not None else None,
            superstep,
        )

    def compute_stage(self, superstep: int = 0) -> np.ndarray:
        p = self._dgraph.num_workers
        futures = [
            self._pool.submit(self._compute_one, w, superstep) for w in range(p)
        ]
        # future.result() re-raises worker exceptions in submission order.
        return np.array([f.result() for f in futures])

    def close(self) -> None:
        self._pool.shutdown(wait=True)


class ThreadBackend(Backend):
    """Shared-memory threads; parallel inside numpy's GIL-free kernels.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to one thread per BSP worker.
    """

    name = "thread"

    def __init__(self, max_workers: Optional[int] = None):
        if max_workers is not None and (
            not isinstance(max_workers, int) or max_workers < 1
        ):
            raise ValueError(f"max_workers must be a positive integer, got {max_workers!r}")
        self.max_workers = max_workers

    def session(
        self, dgraph: DistributedGraph, program: SubgraphProgram
    ) -> BackendSession:
        return _ThreadSession(dgraph, program, self.max_workers)
