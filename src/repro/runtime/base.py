"""The backend contract: sessions, worker state, routes, and allocation.

A :class:`Backend` turns a routed
:class:`~repro.bsp.distributed.DistributedGraph` plus a
:class:`~repro.bsp.program.SubgraphProgram` into a
:class:`BackendSession` — the live, resource-owning object the BSP
engine drives for one program execution.  The engine's orchestration is
backend-agnostic: it only ever

1. calls :meth:`BackendSession.compute_stage` to run the computation
   stage of one superstep on every worker,
2. calls :meth:`BackendSession.exchange_stage` to run the replica
   exchange on every worker (each worker *pulls* its inbound replica
   updates from the other workers' arrays through shared memory), and
3. reads the per-worker arrays in :attr:`BackendSession.state` for the
   convergence check, the final gather, and checkpoint save/restore.

Both stages execute however the backend sees fit — sequentially, on a
thread pool, or on a persistent process pool over shared memory.

The correctness contract is: after ``compute_stage`` returns,
``state.values``/``state.active``/``state.changed`` (and
``state.partials`` in accumulate mode) reflect exactly what
:func:`repro.runtime.worker.superstep_compute` would have produced for
every worker; after ``exchange_stage`` returns, they reflect exactly
what :func:`repro.runtime.worker.superstep_exchange_up` followed by
:func:`repro.runtime.worker.superstep_exchange_down` would have
produced, and the returned :class:`ExchangeResult` carries the exact
per-worker message tallies.  Backends must produce *bit-identical*
state to the serial reference — parallelism may only change wall-clock
time, never results.

The exchange stage is sharded by *destination* worker over a
:class:`RoutePlan` built exactly once per session: each worker owns the
inbound slice of the mirror→master (up) and master→mirror (down)
routes, writes only its own arrays, and reads the other workers'
arrays, which are stable during the phase that reads them (compute and
the two exchange phases are separated by barriers).

The in-place-mutation requirement on :attr:`BackendSession.state` also
carries checkpoint *restore* for free: resuming a run
(:mod:`repro.checkpoint`) copies snapshot arrays into the session's
arrays through the engine-side views before the first compute stage,
and every backend's workers — including the process backend's children,
which map the same shared-memory blocks — observe the restored values
exactly as they observe compute-stage writes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from time import monotonic_ns
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..bsp.distributed import DistributedGraph, _Route
from ..bsp.program import ACCUMULATE, MINIMIZE, SubgraphProgram
from ..obs import NULL_RECORDER
from .worker import superstep_compute, superstep_exchange_down, superstep_exchange_up

__all__ = [
    "BackendError",
    "WorkerLostError",
    "WorkerState",
    "ExchangeScratch",
    "ComputeStageResult",
    "ExchangeResult",
    "RoutePlan",
    "BackendSession",
    "SharedArraySession",
    "Backend",
    "allocate_state",
    "allocate_local_state",
    "allocate_scratch",
    "allocate_local_scratch",
    "build_route_plan",
    "assemble_exchange",
    "finish_compute_stage",
    "finish_exchange_stage",
]


class BackendError(RuntimeError):
    """A backend worker failed or its pool is unusable."""


class WorkerLostError(BackendError):
    """A worker process died (or its connection dropped) mid-run.

    Subclasses :class:`BackendError` so existing crash handling keeps
    working; carries the dead worker's id so the engine's recovery path
    (:meth:`repro.bsp.engine.BSPEngine.run` with ``max_recoveries``)
    can respawn exactly the lost shard from the last fingerprint-valid
    checkpoint snapshot.
    """

    def __init__(self, worker_id: int, message: str):
        super().__init__(message)
        self.worker_id = worker_id


@dataclass
class WorkerState:
    """The per-worker arrays one program execution lives in.

    All lists have length ``p`` (one entry per worker).  The exchange
    stage mutates these arrays *in place* on the workers; backends must
    hand out arrays for which in-place mutation by one worker is visible
    to every other worker and to the engine (trivially true for the
    serial and thread backends, true via
    ``multiprocessing.shared_memory`` for the process backend) — the
    engine relies on that visibility for convergence checks, the final
    gather, and checkpoint restore.

    ``active`` is present only for minimize-mode programs, ``partials``
    only for accumulate-mode programs; ``changed`` doubles as the
    send mask in accumulate mode.
    """

    values: List[np.ndarray]
    changed: List[np.ndarray]
    active: Optional[List[np.ndarray]] = None
    partials: Optional[List[np.ndarray]] = None


@dataclass
class ExchangeScratch:
    """Per-worker exchange-stage scratch, *outside* the checkpoint state.

    These arrays are recomputed from scratch at the start of every
    exchange stage, so they are deliberately not part of
    :class:`WorkerState`: snapshots (:mod:`repro.checkpoint`) neither
    save nor restore them, and the snapshot format is unchanged by the
    worker-side exchange refactor.

    ``dirty`` (minimize mode) is each worker's "master improved this
    superstep" mask — written by the owning worker in the up phase and
    *read by other workers* in the down phase, so it must live in
    cross-worker-visible storage just like the state arrays.  ``sums``
    (accumulate mode) is each worker's combined-partials accumulator,
    touched only by its owner.
    """

    dirty: Optional[List[np.ndarray]] = None
    sums: Optional[List[np.ndarray]] = None


@dataclass
class ComputeStageResult:
    """What one computation stage produced, assembled across workers.

    ``work`` is the per-worker work-unit tally the cost model consumes
    (length ``p``); ``walls`` is the measured per-worker kernel
    wall-clock in seconds — the quantity every session already timed
    and used to discard, now surfaced on *every* path (traced or not)
    so stragglers are visible without re-running.
    """

    work: np.ndarray
    walls: np.ndarray

    # np.array_equal(result, expected) on the work tally keeps working
    # for callers that treated the stage return as the work array.
    def __array__(self, dtype=None, copy=None):
        if dtype is not None:
            return self.work.astype(dtype)
        return self.work


@dataclass
class ExchangeResult:
    """What one exchange stage produced, assembled across workers.

    ``sent``/``received`` are exact per-worker message tallies (length
    ``p``, int64); ``delta`` is the global value change accumulate-mode
    programs feed to ``has_converged`` (0.0 in minimize mode).
    ``up_walls``/``down_walls`` are the measured per-worker wall-clock
    seconds of the two pull phases (populated by
    :func:`finish_exchange_stage` on every backend, traced or not).
    """

    sent: np.ndarray
    received: np.ndarray
    delta: float = 0.0
    up_walls: Optional[np.ndarray] = None
    down_walls: Optional[np.ndarray] = None

    @property
    def walls(self) -> Optional[np.ndarray]:
        """Per-worker exchange seconds (both phases), when measured."""
        if self.up_walls is None or self.down_walls is None:
            return None
        return self.up_walls + self.down_walls


@dataclass(frozen=True)
class RoutePlan:
    """Each worker's inbound slice of the replica-exchange routes.

    Built exactly once per session from the
    :class:`~repro.bsp.distributed.DistributedGraph` layout (never per
    superstep).  ``inbound_up[w]`` lists ``(mirror_worker, route)``
    pairs for every mirror→master route terminating at worker ``w``;
    ``inbound_down[w]`` lists ``(master_worker, route)`` pairs for every
    master→mirror route terminating at ``w``.  Within one destination
    the pairs preserve the route dictionaries' insertion order, so the
    per-destination processing order is identical to the historical
    coordinator-side loop — which keeps even floating-point
    accumulation bit-identical.
    """

    num_workers: int
    inbound_up: List[List[Tuple[int, _Route]]] = field(default_factory=list)
    inbound_down: List[List[Tuple[int, _Route]]] = field(default_factory=list)


def build_route_plan(dgraph: DistributedGraph) -> RoutePlan:
    """Shard the graph's replica routes by destination worker.

    Sessions call this once at construction; the plan is immutable for
    the whole run (the process backend ships each child its slice once,
    at session start).
    """
    p = dgraph.num_workers
    inbound_up: List[List[Tuple[int, _Route]]] = [[] for _ in range(p)]
    inbound_down: List[List[Tuple[int, _Route]]] = [[] for _ in range(p)]
    for (w, mw), route in dgraph.up_routes.items():
        inbound_up[mw].append((w, route))
    for (mw, w), route in dgraph.down_routes.items():
        inbound_down[w].append((mw, route))
    return RoutePlan(num_workers=p, inbound_up=inbound_up, inbound_down=inbound_down)


def assemble_exchange(
    up_counts: List[np.ndarray],
    down_counts: List[np.ndarray],
    deltas: List[float],
) -> ExchangeResult:
    """Combine per-worker pull tallies into the global exchange record.

    ``up_counts[i][j]`` (resp. ``down_counts[i][j]``) is the number of
    messages worker ``i`` pulled from worker ``j`` during the up (resp.
    down) phase.  A message pulled by ``i`` from ``j`` counts as
    received by ``i`` and sent by ``j`` — exactly the tallies the
    historical coordinator-side exchange recorded per route.  ``deltas``
    are summed in worker order so accumulate-mode convergence deltas
    stay bit-identical to the serial reference.
    """
    up = np.stack(up_counts)
    down = np.stack(down_counts)
    received = up.sum(axis=1) + down.sum(axis=1)
    sent = up.sum(axis=0) + down.sum(axis=0)
    delta = 0.0
    for d in deltas:
        delta += float(d)
    return ExchangeResult(sent=sent, received=received, delta=delta)


#: one worker's timed phase result: ``(value, t0_ns, t1_ns)`` with the
#: monotonic-clock readings bracketing the kernel call.  The serial and
#: thread sessions produce these from the timed thunks below; the
#: process backend's children produce the identical triple and ship it
#: back on the existing per-superstep pipe reply — no new
#: synchronization, the reply *is* the barrier.
TimedResult = Tuple[object, int, int]


def _record_worker_phase(
    recorder, name: str, superstep: int, windows: Sequence[Tuple[int, int]]
) -> None:
    """Emit one ``name`` span plus one barrier span per worker.

    The barrier span for worker ``w`` runs from the end of its own phase
    to the end of the slowest worker's — the Fig. 4 "synchronization"
    segment — computed purely from the timestamps every stage already
    collects.  It is emitted even when zero-length so the span count per
    superstep is a backend-independent constant (the cross-backend
    span-count equivalence the obs tests lock down).
    """
    end = max(t1 for _, t1 in windows)
    add = recorder.add  # positional calls: this loop is the traced hot path
    barrier = f"barrier.{name}"
    for w, (t0, t1) in enumerate(windows):
        add(name, t0, t1, w, superstep, "worker")
        add(barrier, t1, end, w, superstep, "barrier")


def finish_compute_stage(
    recorder, superstep: int, timed: Sequence[TimedResult]
) -> ComputeStageResult:
    """Fold per-worker timed compute results into the stage return.

    Shared by every backend so the walls (and, when tracing, the span
    set) are assembled identically: ``timed[w]`` is worker ``w``'s
    ``(work_units, t0_ns, t1_ns)``.
    """
    work = np.array([value for value, _, _ in timed])
    walls = np.array([(t1 - t0) * 1e-9 for _, t0, t1 in timed])
    if recorder.enabled:
        _record_worker_phase(
            recorder, "compute", superstep, [(t0, t1) for _, t0, t1 in timed]
        )
    return ComputeStageResult(work=work, walls=walls)


def finish_exchange_stage(
    recorder,
    superstep: int,
    ups: Sequence[TimedResult],
    downs: Sequence[TimedResult],
) -> ExchangeResult:
    """Fold the two timed pull phases into the stage return.

    ``ups[w]`` is ``((counts, delta), t0_ns, t1_ns)`` and ``downs[w]``
    is ``(counts, t0_ns, t1_ns)`` for worker ``w``.  Tally assembly is
    exactly :func:`assemble_exchange`; this adds the per-phase walls and
    (when tracing) the per-worker exchange + barrier spans.
    """
    result = assemble_exchange(
        [counts for (counts, _), _, _ in ups],
        [counts for counts, _, _ in downs],
        [delta for (_, delta), _, _ in ups],
    )
    result.up_walls = np.array([(t1 - t0) * 1e-9 for _, t0, t1 in ups])
    result.down_walls = np.array([(t1 - t0) * 1e-9 for _, t0, t1 in downs])
    if recorder.enabled:
        _record_worker_phase(
            recorder, "exchange.up", superstep, [(t0, t1) for _, t0, t1 in ups]
        )
        _record_worker_phase(
            recorder, "exchange.down", superstep, [(t0, t1) for _, t0, t1 in downs]
        )
    return result


class BackendSession(abc.ABC):
    """One program execution bound to a backend's execution resources.

    Sessions are context managers; :meth:`close` must be idempotent and
    release every resource (threads, processes, shared-memory blocks)
    even after a worker error.
    """

    #: canonical backend name, stamped onto the resulting ``BSPRun``.
    backend_name: str = "?"
    state: WorkerState
    #: span/metric sink; the always-off singleton until a traced caller
    #: attaches a live :class:`~repro.obs.trace.TraceRecorder`.
    recorder = NULL_RECORDER

    def attach_recorder(self, recorder) -> None:
        """Point this session's span/metric output at ``recorder``.

        Called by the engine before the first superstep of a traced run;
        sessions only ever *read* timestamps into it during the stage
        calls, so attaching between stages is safe.  The default (no
        attach) is :data:`repro.obs.NULL_RECORDER` — tracing disabled,
        zero per-superstep recorder allocations.
        """
        self.recorder = recorder

    @abc.abstractmethod
    def compute_stage(self, superstep: int = 0) -> ComputeStageResult:
        """Run one computation stage on every worker.

        ``superstep`` is the 0-based index of the superstep being
        computed; backends must deliver it to every worker's
        :func:`~repro.runtime.worker.superstep_compute` call.  Blocks
        until all workers finish (the first barrier of the superstep —
        the exchange stage's phases are the second and third) and
        returns the per-worker work units *and* measured kernel walls
        (assembled by :func:`finish_compute_stage` on every backend).
        """

    @abc.abstractmethod
    def exchange_stage(self, superstep: int = 0) -> ExchangeResult:
        """Run one replica-exchange stage on every worker.

        Executes the two pull phases of
        :mod:`repro.runtime.worker` — ``superstep_exchange_up`` on every
        worker, a barrier, then ``superstep_exchange_down`` on every
        worker — over the session's precomputed :class:`RoutePlan`, and
        blocks until all workers finish both.  The barrier between the
        phases is mandatory: the down phase reads master values and
        dirty masks the up phase writes on *other* workers.
        """

    # -- engine-facing state access ------------------------------------
    #
    # The engine never dereferences ``session.state`` directly: these
    # three hooks are its whole view of worker state, with defaults that
    # read the in-process arrays.  Backends whose state lives elsewhere
    # (the socket backend keeps every shard worker-side) override them,
    # which is what lets the coordinator avoid ever holding O(|V|·p)
    # state outside checkpoint boundaries and the final gather.

    def any_active(self) -> bool:
        """Whether any worker still has an active vertex (minimize mode).

        Drives the engine's quiescence pre-check and convergence check;
        only meaningful for minimize-mode programs.
        """
        active = self.state.active
        return active is not None and any(bool(a.any()) for a in active)

    def pull_state(self) -> WorkerState:
        """Assemble the full per-worker state for the coordinator.

        Used at checkpoint boundaries, for the final gather, and for
        traced per-superstep metrics.  In-process backends return their
        live arrays (zero copies); remote backends gather shards from
        their workers, so callers must treat the result as a snapshot,
        not a live view.
        """
        return self.state

    def push_state(self, arrays) -> None:
        """Restore snapshot ``arrays`` (kind -> per-worker list) in place.

        The checkpoint-resume and worker-recovery entry point: validates
        shapes/dtypes against the session's allocation before touching
        anything, exactly like :func:`repro.checkpoint.restore_state`
        (which the default delegates to).
        """
        from ..checkpoint import restore_state

        restore_state(self.state, arrays)

    def close(self) -> None:
        """Release the session's resources (idempotent)."""

    def __enter__(self) -> "BackendSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class Backend(abc.ABC):
    """A pluggable execution strategy for the BSP superstep stages."""

    #: canonical registry name ("serial", "thread", "process").
    name: str = "?"

    @abc.abstractmethod
    def session(
        self, dgraph: DistributedGraph, program: SubgraphProgram
    ) -> BackendSession:
        """Materialize worker state and stand up execution resources."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


#: ``alloc(worker_id, kind, template) -> array``: must return a writable
#: array with the template's shape/dtype, initialized to its contents.
AllocFn = Callable[[int, str, np.ndarray], np.ndarray]


def _copy_alloc(worker_id: int, kind: str, template: np.ndarray) -> np.ndarray:
    return np.array(template, copy=True)


def allocate_local_state(
    local,
    program: SubgraphProgram,
    worker_id: int = 0,
    alloc: AllocFn = _copy_alloc,
) -> dict:
    """Allocate one worker's initial state arrays, keyed by kind.

    The single definition of per-worker initialization semantics —
    ``initial_values``/``initial_active``, zeroed partials, cleared
    change masks.  :func:`allocate_state` loops this over every worker
    for in-process backends; the socket backend's *workers* call it
    directly for their own shard, which is what keeps remotely
    initialized state bit-identical to the serial reference.
    """
    if program.mode not in (MINIMIZE, ACCUMULATE):
        raise ValueError(f"unknown program mode {program.mode!r}")
    init = np.asarray(program.initial_values(local))
    arrays = {
        "values": alloc(worker_id, "values", init),
        "changed": alloc(
            worker_id, "changed", np.zeros(local.num_vertices, dtype=bool)
        ),
    }
    if program.mode == MINIMIZE:
        arrays["active"] = alloc(
            worker_id, "active", np.asarray(program.initial_active(local))
        )
    else:
        arrays["partials"] = alloc(worker_id, "partials", np.zeros_like(init))
    return arrays


def allocate_state(
    dgraph: DistributedGraph,
    program: SubgraphProgram,
    alloc: AllocFn = _copy_alloc,
) -> WorkerState:
    """Build the initial :class:`WorkerState` for one program execution.

    ``alloc`` lets backends choose the storage (plain heap arrays by
    default, shared-memory-backed arrays for the process backend) while
    the initialization semantics stay in one place for every backend
    (see :func:`allocate_local_state`).
    """
    if program.mode not in (MINIMIZE, ACCUMULATE):
        raise ValueError(f"unknown program mode {program.mode!r}")
    values: List[np.ndarray] = []
    changed: List[np.ndarray] = []
    active: List[np.ndarray] = []
    partials: List[np.ndarray] = []
    for w, local in enumerate(dgraph.locals):
        arrays = allocate_local_state(local, program, w, alloc)
        values.append(arrays["values"])
        changed.append(arrays["changed"])
        if program.mode == MINIMIZE:
            active.append(arrays["active"])
        else:
            partials.append(arrays["partials"])
    return WorkerState(
        values=values,
        changed=changed,
        active=active if program.mode == MINIMIZE else None,
        partials=partials if program.mode == ACCUMULATE else None,
    )


def allocate_scratch(
    dgraph: DistributedGraph,
    program: SubgraphProgram,
    state: WorkerState,
    alloc: AllocFn = _copy_alloc,
) -> ExchangeScratch:
    """Build the per-worker exchange scratch for one program execution.

    Uses the already-allocated ``state`` arrays as shape/dtype
    templates, so ``program.initial_values`` is never re-invoked.  The
    same ``alloc`` hook as :func:`allocate_state` applies: the process
    backend allocates scratch in shared memory because the minimize-mode
    ``dirty`` masks are read across workers during the down phase.
    """
    if program.mode == MINIMIZE:
        dirty = [
            allocate_local_scratch(local, program, state.values[w], w, alloc)["dirty"]
            for w, local in enumerate(dgraph.locals)
        ]
        return ExchangeScratch(dirty=dirty)
    sums = [
        allocate_local_scratch(
            dgraph.locals[w], program, state.values[w], w, alloc
        )["sums"]
        for w in range(dgraph.num_workers)
    ]
    return ExchangeScratch(sums=sums)


def allocate_local_scratch(
    local,
    program: SubgraphProgram,
    values: np.ndarray,
    worker_id: int = 0,
    alloc: AllocFn = _copy_alloc,
) -> dict:
    """Allocate one worker's exchange scratch, keyed by kind.

    ``values`` is that worker's already-allocated value array (the
    shape/dtype template for accumulate-mode ``sums``).  Shared by
    :func:`allocate_scratch` and the socket backend's workers.
    """
    if program.mode == MINIMIZE:
        return {
            "dirty": alloc(
                worker_id, "dirty", np.zeros(local.num_vertices, dtype=bool)
            )
        }
    return {"sums": alloc(worker_id, "sums", np.zeros_like(values))}


class SharedArraySession(BackendSession):
    """Base for in-process sessions whose workers share the heap arrays.

    Owns the state, the scratch, and the once-per-run :class:`RoutePlan`,
    and provides the per-worker stage thunks the serial backend calls
    inline and the thread backend submits to its pool.  Subclasses
    decide only *how* the thunks run; *what* they run is the shared
    kernels in :mod:`repro.runtime.worker`, which is what keeps every
    backend bit-identical.
    """

    def __init__(self, dgraph: DistributedGraph, program: SubgraphProgram):
        self._dgraph = dgraph
        self._program = program
        self.state = allocate_state(dgraph, program)
        self._scratch = allocate_scratch(dgraph, program, self.state)
        self._plan = build_route_plan(dgraph)

    # -- per-worker stage thunks ---------------------------------------
    #
    # Each thunk brackets the pure kernel call with monotonic-clock
    # readings and returns ``(value, t0_ns, t1_ns)``.  The kernels in
    # :mod:`repro.runtime.worker` stay observability-free — timing and
    # recording happen out here, in the session (the worker-purity lint
    # rule enforces that worker.py never imports repro.obs).

    def _compute_one(self, w: int, superstep: int) -> TimedResult:
        state = self.state
        t0 = monotonic_ns()
        work = superstep_compute(
            self._program,
            self._dgraph.locals[w],
            state.values[w],
            state.active[w] if state.active is not None else None,
            state.changed[w],
            state.partials[w] if state.partials is not None else None,
            superstep,
        )
        return work, t0, monotonic_ns()

    def _exchange_up_one(self, w: int) -> TimedResult:
        state, scratch = self.state, self._scratch
        t0 = monotonic_ns()
        result = superstep_exchange_up(
            self._program,
            self._dgraph.locals[w],
            w,
            self._plan.inbound_up[w],
            state.values,
            state.changed,
            state.active[w] if state.active is not None else None,
            scratch.dirty[w] if scratch.dirty is not None else None,
            state.partials,
            scratch.sums[w] if scratch.sums is not None else None,
        )
        return result, t0, monotonic_ns()

    def _exchange_down_one(self, w: int) -> TimedResult:
        state, scratch = self.state, self._scratch
        t0 = monotonic_ns()
        counts = superstep_exchange_down(
            self._program,
            self._dgraph.locals[w],
            w,
            self._plan.inbound_down[w],
            state.values,
            state.active[w] if state.active is not None else None,
            scratch.dirty,
        )
        return counts, t0, monotonic_ns()
