"""The backend contract: sessions, worker state, and allocation.

A :class:`Backend` turns a routed
:class:`~repro.bsp.distributed.DistributedGraph` plus a
:class:`~repro.bsp.program.SubgraphProgram` into a
:class:`BackendSession` — the live, resource-owning object the BSP
engine drives for one program execution.  The engine's orchestration is
backend-agnostic: it only ever

1. reads/writes the per-worker arrays in :attr:`BackendSession.state`
   (the replica exchange and convergence checks), and
2. calls :meth:`BackendSession.compute_stage` to run the computation
   stage of one superstep on every worker, however the backend sees fit
   (sequentially, on a thread pool, or on a persistent process pool over
   shared memory).

The correctness contract for ``compute_stage`` is: after it returns,
``state.values``/``state.active``/``state.changed`` (and
``state.partials`` in accumulate mode) reflect exactly what
:func:`repro.runtime.worker.superstep_compute` would have produced for
every worker, and the returned array holds each worker's work units.
Backends must produce *bit-identical* state to the serial reference —
parallelism may only change wall-clock time, never results.

The in-place-mutation requirement on :attr:`BackendSession.state` also
carries checkpoint *restore* for free: resuming a run
(:mod:`repro.checkpoint`) copies snapshot arrays into the session's
arrays through the engine-side views before the first compute stage,
and every backend's workers — including the process backend's children,
which map the same shared-memory blocks — observe the restored values
exactly as they observe exchange-stage writes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..bsp.distributed import DistributedGraph
from ..bsp.program import ACCUMULATE, MINIMIZE, SubgraphProgram

__all__ = ["BackendError", "WorkerState", "BackendSession", "Backend", "allocate_state"]


class BackendError(RuntimeError):
    """A backend worker failed or its pool is unusable."""


@dataclass
class WorkerState:
    """The per-worker arrays one program execution lives in.

    All lists have length ``p`` (one entry per worker).  The engine
    mutates these arrays *in place* during the replica-exchange stage;
    backends must hand out arrays for which in-place mutation is visible
    to their compute workers (trivially true for the serial and thread
    backends, true via ``multiprocessing.shared_memory`` for the process
    backend).

    ``active`` is present only for minimize-mode programs, ``partials``
    only for accumulate-mode programs; ``changed`` doubles as the
    send mask in accumulate mode.
    """

    values: List[np.ndarray]
    changed: List[np.ndarray]
    active: Optional[List[np.ndarray]] = None
    partials: Optional[List[np.ndarray]] = None


class BackendSession(abc.ABC):
    """One program execution bound to a backend's execution resources.

    Sessions are context managers; :meth:`close` must be idempotent and
    release every resource (threads, processes, shared-memory blocks)
    even after a worker error.
    """

    #: canonical backend name, stamped onto the resulting ``BSPRun``.
    backend_name: str = "?"
    state: WorkerState

    @abc.abstractmethod
    def compute_stage(self, superstep: int = 0) -> np.ndarray:
        """Run one computation stage on every worker; return work units.

        ``superstep`` is the 0-based index of the superstep being
        computed; backends must deliver it to every worker's
        :func:`~repro.runtime.worker.superstep_compute` call.  Blocks
        until all workers finish (the first half of the BSP barrier —
        the engine's exchange stage is the second half).
        """

    def close(self) -> None:
        """Release the session's resources (idempotent)."""

    def __enter__(self) -> "BackendSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class Backend(abc.ABC):
    """A pluggable execution strategy for the BSP computation stage."""

    #: canonical registry name ("serial", "thread", "process").
    name: str = "?"

    @abc.abstractmethod
    def session(
        self, dgraph: DistributedGraph, program: SubgraphProgram
    ) -> BackendSession:
        """Materialize worker state and stand up execution resources."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


#: ``alloc(worker_id, kind, template) -> array``: must return a writable
#: array with the template's shape/dtype, initialized to its contents.
AllocFn = Callable[[int, str, np.ndarray], np.ndarray]


def _copy_alloc(worker_id: int, kind: str, template: np.ndarray) -> np.ndarray:
    return np.array(template, copy=True)


def allocate_state(
    dgraph: DistributedGraph,
    program: SubgraphProgram,
    alloc: AllocFn = _copy_alloc,
) -> WorkerState:
    """Build the initial :class:`WorkerState` for one program execution.

    ``alloc`` lets backends choose the storage (plain heap arrays by
    default, shared-memory-backed arrays for the process backend) while
    the initialization semantics — ``initial_values``/``initial_active``
    per worker, zeroed partials, cleared change masks — stay in one
    place for every backend.
    """
    if program.mode not in (MINIMIZE, ACCUMULATE):
        raise ValueError(f"unknown program mode {program.mode!r}")
    values: List[np.ndarray] = []
    changed: List[np.ndarray] = []
    active: List[np.ndarray] = []
    partials: List[np.ndarray] = []
    for w, local in enumerate(dgraph.locals):
        init = np.asarray(program.initial_values(local))
        values.append(alloc(w, "values", init))
        changed.append(alloc(w, "changed", np.zeros(local.num_vertices, dtype=bool)))
        if program.mode == MINIMIZE:
            active.append(alloc(w, "active", np.asarray(program.initial_active(local))))
        else:
            partials.append(alloc(w, "partials", np.zeros_like(init)))
    return WorkerState(
        values=values,
        changed=changed,
        active=active if program.mode == MINIMIZE else None,
        partials=partials if program.mode == ACCUMULATE else None,
    )
