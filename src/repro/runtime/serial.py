"""The serial reference backend: today's in-process loop, made explicit.

Runs every worker's computation stage sequentially in the calling
process.  This is the ground truth the parallel backends are tested
against, and the baseline ``benchmarks/bench_runtime.py`` measures
speedups over.
"""

from __future__ import annotations

import numpy as np

from ..bsp.distributed import DistributedGraph
from ..bsp.program import SubgraphProgram
from .base import Backend, BackendSession, allocate_state
from .worker import superstep_compute

__all__ = ["SerialBackend"]


class _SerialSession(BackendSession):
    backend_name = "serial"

    def __init__(self, dgraph: DistributedGraph, program: SubgraphProgram):
        self._dgraph = dgraph
        self._program = program
        self.state = allocate_state(dgraph, program)

    def compute_stage(self, superstep: int = 0) -> np.ndarray:
        state = self.state
        work = np.zeros(self._dgraph.num_workers)
        for w, local in enumerate(self._dgraph.locals):
            work[w] = superstep_compute(
                self._program,
                local,
                state.values[w],
                state.active[w] if state.active is not None else None,
                state.changed[w],
                state.partials[w] if state.partials is not None else None,
                superstep,
            )
        return work


class SerialBackend(Backend):
    """Sequential execution in the calling process (the reference)."""

    name = "serial"

    def session(
        self, dgraph: DistributedGraph, program: SubgraphProgram
    ) -> BackendSession:
        return _SerialSession(dgraph, program)
