"""The serial reference backend: both superstep stages, inline.

Runs every worker's computation stage, then every worker's exchange
phases, sequentially in the calling process — worker 0 through p-1, up
phase before down phase.  This is the ground truth the parallel
backends are tested against (the bit-identity oracle), and the baseline
``benchmarks/bench_runtime.py`` measures speedups over.
"""

from __future__ import annotations

from ..bsp.distributed import DistributedGraph
from ..bsp.program import SubgraphProgram
from .base import (
    Backend,
    BackendSession,
    ComputeStageResult,
    ExchangeResult,
    SharedArraySession,
    finish_compute_stage,
    finish_exchange_stage,
)

__all__ = ["SerialBackend"]


class _SerialSession(SharedArraySession):
    backend_name = "serial"

    def compute_stage(self, superstep: int = 0) -> ComputeStageResult:
        p = self._dgraph.num_workers
        return finish_compute_stage(
            self.recorder, superstep, [self._compute_one(w, superstep) for w in range(p)]
        )

    def exchange_stage(self, superstep: int = 0) -> ExchangeResult:
        p = self._dgraph.num_workers
        ups = [self._exchange_up_one(w) for w in range(p)]
        # The sequential loop is itself the up/down barrier: every
        # worker's up phase has run before the first down phase starts.
        downs = [self._exchange_down_one(w) for w in range(p)]
        return finish_exchange_stage(self.recorder, superstep, ups, downs)


class SerialBackend(Backend):
    """Sequential execution in the calling process (the reference)."""

    name = "serial"

    def session(
        self, dgraph: DistributedGraph, program: SubgraphProgram
    ) -> BackendSession:
        return _SerialSession(dgraph, program)
