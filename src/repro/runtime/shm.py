"""Shared-memory numpy arrays for the process backend.

Thin, careful wrappers over :mod:`multiprocessing.shared_memory`:

* the parent creates each block and owns unlinking — children only ever
  ``close()`` their mappings.  Children spawned by ``multiprocessing``
  inherit the parent's ``resource_tracker`` (its fd is part of the
  spawn/fork preparation data), so a child attach registers the name
  with the *same* tracker the parent used — a set-level no-op — and the
  parent's ``unlink()`` unregisters it exactly once;
* zero-length arrays are backed by a 1-byte block because POSIX shared
  memory rejects ``size=0``.

Cleanup is belt-and-braces: :func:`destroy_shared_array` swallows
"already gone" errors so session teardown is idempotent even after a
worker crash.

Because parent and children map the *same* blocks, two things come for
free.  Checkpoint restore (:func:`repro.checkpoint.restore_state`)
needs no shm-specific code: the engine copies snapshot arrays through
the parent's views and every child observes the restored state exactly
as it observes its siblings' compute-stage writes.  And the worker-side
replica exchange needs no inter-child messaging: every child maps every
worker's blocks, so an exchange phase is just each child pulling from
its siblings' arrays through memory the parent allocated once.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Tuple

import numpy as np

__all__ = [
    "SharedArraySpec",
    "create_shared_array",
    "attach_shared_array",
    "destroy_shared_array",
]


@dataclass(frozen=True)
class SharedArraySpec:
    """Everything a child needs to map one parent-created array."""

    name: str
    shape: Tuple[int, ...]
    dtype: str


def _as_array(shm: shared_memory.SharedMemory, spec: SharedArraySpec) -> np.ndarray:
    return np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)


def create_shared_array(
    template: np.ndarray,
) -> Tuple[shared_memory.SharedMemory, np.ndarray, SharedArraySpec]:
    """Create a shared block holding a copy of ``template``.

    Returns the block (keep it referenced — its ``buf`` backs the
    array), the parent's array view, and the spec to ship to children.
    """
    template = np.ascontiguousarray(template)
    size = max(1, template.nbytes)
    shm = shared_memory.SharedMemory(create=True, size=size)
    spec = SharedArraySpec(
        name=shm.name, shape=tuple(template.shape), dtype=template.dtype.str
    )
    array = _as_array(shm, spec)
    array[...] = template
    return shm, array, spec


def attach_shared_array(
    spec: SharedArraySpec,
) -> Tuple[shared_memory.SharedMemory, np.ndarray]:
    """Map a parent-created block in a child process.

    The child never owns the block's lifetime (see module docstring);
    it only ever calls ``shm.close()`` on the returned block.
    """
    shm = shared_memory.SharedMemory(name=spec.name)
    return shm, _as_array(shm, spec)


def destroy_shared_array(shm: shared_memory.SharedMemory) -> None:
    """Close and unlink one parent-owned block, tolerating prior cleanup."""
    try:
        shm.close()
    except Exception:  # pragma: no cover
        pass
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass
    except Exception:  # pragma: no cover
        pass
