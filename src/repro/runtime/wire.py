"""Length-prefixed pickle framing for the socket backend.

The socket backend (:mod:`repro.runtime.socket`) moves every
coordinator↔worker message over TCP as one *frame*: an 12-byte header —
a 4-byte magic marker plus a big-endian ``u64`` payload length —
followed by the pickled payload.  The magic marker makes a desynced or
foreign byte stream fail loudly on the very next frame instead of
misparsing a length, and the explicit length makes truncation (a peer
dying mid-send) distinguishable from a clean close at a frame boundary:

``ConnectionClosed``
    the peer closed the connection *between* frames — worker death or
    an orderly shutdown, reported upward as a lost worker.
``FrameError``
    the stream is corrupt: bad magic, an absurd length, or a close
    *inside* a frame (truncation).  Never retried.
``WireTimeout``
    the peer did not deliver a complete frame within the deadline —
    the stage-timeout mechanism shared with the process backend.

Connections open with a version handshake (:func:`send_hello` /
:func:`expect_hello`): each side ships ``WIRE_VERSION`` and its role,
and a mismatch raises :class:`ProtocolError` before any graph data
moves, so a coordinator from a newer checkout fails fast against a
stale standalone worker instead of mispickling mid-run.

Payloads are pickled with the highest protocol available to *both*
sides of a CPython version pair on one machine class — in practice
``pickle.HIGHEST_PROTOCOL``, because workers are expected to run the
same interpreter and repro checkout as the coordinator (the handshake
checks the wire version, not the pickle version; see README
*Multi-node runtime* limitations).
"""

from __future__ import annotations

import pickle
import socket as _socket
import struct
from time import monotonic
from typing import Any, Optional, Tuple

__all__ = [
    "WIRE_VERSION",
    "MAX_FRAME_BYTES",
    "WireError",
    "ConnectionClosed",
    "FrameError",
    "WireTimeout",
    "ProtocolError",
    "send_frame",
    "recv_frame",
    "send_msg",
    "recv_msg",
    "send_hello",
    "expect_hello",
    "parse_hostport",
]

#: bump on any incompatible change to framing or message shapes.
WIRE_VERSION = 1

#: refuse frames larger than this (a desynced stream read as a length
#: field would otherwise ask for petabytes); generous enough for a full
#: worker-state shard of any graph this repo generates.
MAX_FRAME_BYTES = 1 << 33  # 8 GiB

_MAGIC = b"RBW\x01"
_HEADER = struct.Struct(">4sQ")


class WireError(RuntimeError):
    """Base class for framing/handshake failures on a wire connection."""


class ConnectionClosed(WireError):
    """The peer closed the connection at a frame boundary."""


class FrameError(WireError):
    """The byte stream is corrupt: bad magic, oversize, or truncated."""


class WireTimeout(WireError):
    """No complete frame arrived within the deadline."""


class ProtocolError(WireError):
    """The peers disagree on the wire protocol (version/handshake)."""


def parse_hostport(spec: str) -> Tuple[str, int]:
    """Split ``"host:port"`` into its parts, validating the port."""
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise ValueError(f"expected HOST:PORT, got {spec!r}")
    try:
        port_num = int(port)
    except ValueError:
        raise ValueError(f"invalid port in {spec!r}") from None
    if not 0 <= port_num <= 65535:
        raise ValueError(f"port out of range in {spec!r}")
    return host, port_num


def send_frame(sock: _socket.socket, payload: bytes) -> None:
    """Write one frame; raises ``OSError`` if the peer is gone."""
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"refusing to send {len(payload)} byte frame "
            f"(MAX_FRAME_BYTES={MAX_FRAME_BYTES})"
        )
    header = _HEADER.pack(_MAGIC, len(payload))
    # Sends always block: a short timeout left behind by a timed recv on
    # the same socket must not make a large send fail spuriously.
    sock.settimeout(None)
    # Small frames ride in one syscall; large payloads are sent as-is to
    # avoid doubling peak memory with a header+payload concatenation.
    if len(payload) < 4096:
        sock.sendall(header + payload)
    else:
        sock.sendall(header)
        sock.sendall(payload)


def _recv_exact(
    sock: _socket.socket, n: int, deadline: Optional[float], mid_frame: bool
) -> bytes:
    """Read exactly ``n`` bytes, honouring an absolute monotonic deadline."""
    buf = bytearray(n)
    view = memoryview(buf)
    got = 0
    while got < n:
        if deadline is None:
            sock.settimeout(None)
        else:
            remaining = deadline - monotonic()
            if remaining <= 0:
                raise WireTimeout("timed out waiting for a frame")
            sock.settimeout(remaining)
        try:
            chunk = sock.recv_into(view[got:], n - got)
        except (TimeoutError, _socket.timeout):
            raise WireTimeout("timed out waiting for a frame") from None
        except (ConnectionResetError, BrokenPipeError) as exc:
            raise ConnectionClosed(f"connection reset: {exc}") from None
        if chunk == 0:
            if mid_frame or got:
                raise FrameError(
                    f"truncated frame: connection closed after {got} of {n} bytes"
                )
            raise ConnectionClosed("connection closed by peer")
        got += chunk
    return bytes(buf)


def recv_frame(
    sock: _socket.socket,
    timeout: Optional[float] = None,
    max_bytes: int = MAX_FRAME_BYTES,
) -> bytes:
    """Read one complete frame's payload, enforcing ``timeout`` overall.

    The timeout covers the *whole* frame (header and payload): a peer
    trickling bytes cannot reset the clock per chunk.
    """
    deadline = None if timeout is None else monotonic() + timeout
    header = _recv_exact(sock, _HEADER.size, deadline, mid_frame=False)
    magic, length = _HEADER.unpack(header)
    if magic != _MAGIC:
        raise FrameError(f"bad frame magic {magic!r} (desynced or foreign stream)")
    if length > max_bytes:
        raise FrameError(f"frame of {length} bytes exceeds the {max_bytes} byte cap")
    if length == 0:
        return b""
    return _recv_exact(sock, length, deadline, mid_frame=True)


def send_msg(sock: _socket.socket, obj: Any) -> None:
    """Pickle ``obj`` and send it as one frame."""
    send_frame(sock, pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def recv_msg(sock: _socket.socket, timeout: Optional[float] = None) -> Any:
    """Receive one frame and unpickle its payload."""
    payload = recv_frame(sock, timeout=timeout)
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise FrameError(f"undecodable frame payload: {exc}") from exc


# ----------------------------------------------------------------------
# Version handshake
# ----------------------------------------------------------------------

_HELLO_KIND = "repro-wire-hello"


def send_hello(sock: _socket.socket, role: str) -> None:
    """Announce this side's protocol version and role."""
    send_msg(sock, {"kind": _HELLO_KIND, "version": WIRE_VERSION, "role": role})


def expect_hello(
    sock: _socket.socket, peer_role: str, timeout: Optional[float] = None
) -> dict:
    """Receive and validate the peer's hello; raise :class:`ProtocolError`.

    ``peer_role`` is the role the peer must announce (``"worker"`` from
    a coordinator's point of view and vice versa) — connecting two
    coordinators to each other fails here instead of hanging.
    """
    msg = recv_msg(sock, timeout=timeout)
    if not isinstance(msg, dict) or msg.get("kind") != _HELLO_KIND:
        raise ProtocolError(f"peer did not open with a hello (got {type(msg).__name__})")
    version = msg.get("version")
    if version != WIRE_VERSION:
        raise ProtocolError(
            f"wire protocol version mismatch: peer speaks {version!r}, "
            f"this side speaks {WIRE_VERSION} (mixed repro checkouts?)"
        )
    role = msg.get("role")
    if role != peer_role:
        raise ProtocolError(f"expected a {peer_role!r} peer, got {role!r}")
    return msg
