"""Process-pool backend: persistent workers over shared memory.

The real-parallelism backend.  Each BSP worker is one long-lived
``multiprocessing`` child that receives its
:class:`LocalSubgraph`, program and inbound route slices exactly once
(pickled through its command pipe at session start) and holds them for
the whole run.  The per-worker value, active, changed, partial and
exchange-scratch arrays live in ``multiprocessing.shared_memory``
blocks mapped by *both* sides and by *every* child, so both superstep
stages run in the children with zero per-superstep pickling: children
mutate their own arrays in place during compute, pull their inbound
replica updates straight out of the other workers' arrays during the
exchange phases, and the only per-superstep pipe traffic is one small
command → result round trip per worker per stage phase — the BSP
barriers ("compute" → work units, "exchange_up" → pull tallies + delta,
"exchange_down" → pull tallies).

Crash containment: a child that raises ships its formatted traceback
back through the pipe and the parent raises :class:`BackendError`; a
child that dies outright surfaces as ``EOFError`` on the pipe, raised
as :class:`WorkerLostError` with its exit code.  Stage replies are
awaited with the shared :class:`~repro.runtime.protocol.CommandSession`
timeout-and-latch semantics (a hung child raises instead of blocking
forever; a failed session refuses further stage calls).  Session
teardown (and a ``weakref.finalize`` safety net) stops the pool —
joining survivors under a shared deadline and escalating to
``terminate()`` then ``kill()`` for stragglers — and unlinks every
shared block even when only a subset of workers died.
"""

from __future__ import annotations

import multiprocessing
import traceback
import weakref
from multiprocessing.connection import Connection
from multiprocessing.process import BaseProcess
from multiprocessing.shared_memory import SharedMemory
from time import monotonic, monotonic_ns
from typing import Dict, List, Optional

import numpy as np

from ..bsp.distributed import DistributedGraph
from ..bsp.program import SubgraphProgram
from .base import (
    Backend,
    BackendSession,
    ComputeStageResult,
    ExchangeResult,
    WorkerLostError,
    WorkerState,
    allocate_scratch,
    allocate_state,
    build_route_plan,
    finish_compute_stage,
    finish_exchange_stage,
)
from .protocol import CommandSession, ReplyTimeout
from .shm import SharedArraySpec, attach_shared_array, create_shared_array, destroy_shared_array
from .worker import superstep_compute, superstep_exchange_down, superstep_exchange_up

__all__ = ["ProcessBackend"]

#: seconds to wait for each child's startup handshake.
_INIT_TIMEOUT = 120.0
#: seconds to wait for children to exit after a "stop" command.
_JOIN_TIMEOUT = 5.0


def _worker_main(conn) -> None:
    """Child entry point: map shared arrays, then serve stage commands."""
    shms = []
    try:
        cmd, payload = conn.recv()
        if cmd != "init":  # pragma: no cover - protocol guard
            conn.send(("error", f"expected 'init', got {cmd!r}"))
            return
        worker_id, local, program, inbound_up, inbound_down, spec_table = payload
        # Map every worker's blocks: the exchange phases read the other
        # workers' values/changed/partials/dirty arrays directly.
        tables: List[Dict[str, np.ndarray]] = []
        for specs in spec_table:
            arrays: Dict[str, np.ndarray] = {}
            for kind, spec in specs.items():
                shm, arr = attach_shared_array(spec)
                shms.append(shm)
                arrays[kind] = arr
            tables.append(arrays)
        values = [t["values"] for t in tables]
        changed = [t["changed"] for t in tables]
        partials = [t["partials"] for t in tables] if "partials" in tables[0] else None
        dirty = [t["dirty"] for t in tables] if "dirty" in tables[0] else None
        own = tables[worker_id]
        active = own.get("active")
        sums = own.get("sums")
        conn.send(("ready", None))
        while True:
            cmd, payload = conn.recv()
            if cmd == "stop":
                break
            try:
                # Kernel walls are measured here, in the child, with the
                # system-wide monotonic clock (CLOCK_MONOTONIC is shared
                # across processes on Linux), so the parent can merge
                # them with its own spans.  The timestamps ride back on
                # the existing per-phase pipe reply — no extra traffic.
                t0 = monotonic_ns()
                if cmd == "compute":
                    result = superstep_compute(
                        program,
                        local,
                        values[worker_id],
                        active,
                        changed[worker_id],
                        partials[worker_id] if partials is not None else None,
                        int(payload),
                    )
                elif cmd == "exchange_up":
                    result = superstep_exchange_up(
                        program,
                        local,
                        worker_id,
                        inbound_up,
                        values,
                        changed,
                        active,
                        dirty[worker_id] if dirty is not None else None,
                        partials,
                        sums,
                    )
                elif cmd == "exchange_down":
                    result = superstep_exchange_down(
                        program, local, worker_id, inbound_down, values, active, dirty
                    )
                else:  # pragma: no cover - protocol guard
                    conn.send(("error", f"unknown command {cmd!r}"))
                    continue
            except BaseException:
                conn.send(("error", traceback.format_exc()))
            else:
                conn.send(("ok", (result, t0, monotonic_ns())))
    except (EOFError, OSError, KeyboardInterrupt):  # parent went away
        pass
    finally:
        for shm in shms:
            try:
                shm.close()
            except Exception:
                pass
        try:
            conn.close()
        except Exception:
            pass


def _join_all(processes, budget: float) -> None:
    """Join every live child under one *shared* deadline.

    The historical per-process ``join(timeout=...)`` serialized the
    waits: with ``p`` hung children teardown took ``p * timeout``.  A
    shared deadline bounds the whole phase regardless of how many
    workers are wedged or already dead.
    """
    deadline = monotonic() + budget
    for proc in processes:
        remaining = deadline - monotonic()
        if remaining <= 0:
            break
        if proc.is_alive():
            proc.join(timeout=remaining)


def _cleanup(processes, conns, shm_blocks) -> None:
    """Tear the pool down; safe to call twice, from a finalizer, and
    when only a subset of workers is still alive.

    Escalation is uniform for every straggler: "stop" command → join
    (shared deadline) → ``terminate()`` → join → ``kill()`` → join.
    Shared blocks are unlinked last, after every child that could map
    them is gone, so the resource tracker never reports leaked
    ``shared_memory`` blocks for a partially-dead pool.
    """
    for conn in conns:
        try:
            conn.send(("stop", None))
        except Exception:
            pass
    _join_all(processes, _JOIN_TIMEOUT)
    for escalate in ("terminate", "kill"):
        stragglers = [proc for proc in processes if proc.is_alive()]
        if not stragglers:
            break
        for proc in stragglers:
            try:
                getattr(proc, escalate)()
            except Exception:
                pass
        _join_all(stragglers, _JOIN_TIMEOUT)
    for conn in conns:
        try:
            conn.close()
        except Exception:
            pass
    for shm in shm_blocks:
        destroy_shared_array(shm)
    processes.clear()
    conns.clear()
    shm_blocks.clear()


class _ProcessSession(CommandSession):
    backend_name = "process"

    def __init__(
        self,
        dgraph: DistributedGraph,
        program: SubgraphProgram,
        ctx: multiprocessing.context.BaseContext,
        stage_timeout: Optional[float] = None,
    ):
        p = dgraph.num_workers
        super().__init__(p, stage_timeout)
        self._shm_blocks: List[SharedMemory] = []
        self._specs: List[Dict[str, SharedArraySpec]] = [{} for _ in range(p)]
        self._processes: List[BaseProcess] = []
        self._conns: List[Connection] = []
        # Registered before any allocation so blocks created by a
        # partially-failed allocate_state still get unlinked.
        self._finalizer = weakref.finalize(
            self, _cleanup, self._processes, self._conns, self._shm_blocks
        )

        def shared_alloc(worker_id: int, kind: str, template: np.ndarray) -> np.ndarray:
            shm, array, spec = create_shared_array(template)
            self._shm_blocks.append(shm)
            self._specs[worker_id][kind] = spec
            return array

        try:
            self.state: WorkerState = allocate_state(dgraph, program, shared_alloc)
            # Exchange scratch shares the same blocks: the minimize-mode
            # dirty masks are read across children during the down phase.
            self._scratch = allocate_scratch(dgraph, program, self.state, shared_alloc)
            plan = build_route_plan(dgraph)
            for w in range(p):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(child_conn,),
                    name=f"repro-bsp-{w}",
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._processes.append(proc)
                self._conns.append(parent_conn)
                # Everything a child holds for the whole run travels in
                # this one message: its subgraph, the program, its slice
                # of the route plan, and the full shared-array table.
                parent_conn.send(
                    (
                        "init",
                        (
                            w,
                            dgraph.locals[w],
                            program,
                            plan.inbound_up[w],
                            plan.inbound_down[w],
                            self._specs,
                        ),
                    )
                )
            for w in range(p):
                self._expect(w, "ready", timeout=_INIT_TIMEOUT)
        except BaseException:
            self.close()
            raise

    # -- CommandSession transport hooks --------------------------------

    def _send_to(self, w: int, message) -> None:
        self._conns[w].send(message)

    def _recv_from(self, w: int, timeout: Optional[float]):
        conn = self._conns[w]
        if timeout is not None and not conn.poll(timeout):
            raise ReplyTimeout()
        try:
            return conn.recv()
        except EOFError:
            code = self._processes[w].exitcode
            raise WorkerLostError(
                w, f"worker {w} died unexpectedly (exit code {code})"
            ) from None

    def _worker_alive(self, w: int) -> bool:
        return self._processes[w].is_alive()

    def _is_closed(self) -> bool:
        return not self._finalizer.alive

    # ------------------------------------------------------------------

    def compute_stage(self, superstep: int = 0) -> ComputeStageResult:
        p = len(self._conns)
        self._broadcast("compute", superstep)
        return finish_compute_stage(
            self.recorder, superstep, [self._expect(w, "ok") for w in range(p)]
        )

    def exchange_stage(self, superstep: int = 0) -> ExchangeResult:
        p = len(self._conns)
        self._broadcast("exchange_up", superstep)
        # Collecting every up reply before sending any down command is
        # the mandatory mid-exchange barrier: the down phase reads
        # master values and dirty masks the up phase writes in *other*
        # children.
        ups = [self._expect(w, "ok") for w in range(p)]
        self._broadcast("exchange_down", superstep)
        downs = [self._expect(w, "ok") for w in range(p)]
        return finish_exchange_stage(self.recorder, superstep, ups, downs)

    def close(self) -> None:
        if self._finalizer.alive:
            self._finalizer()


class ProcessBackend(Backend):
    """Persistent ``multiprocessing`` pool with shared-memory state.

    Parameters
    ----------
    start_method:
        ``multiprocessing`` start method; defaults to ``"fork"`` where
        available (cheap startup, Linux) and the platform default
        elsewhere.  ``"spawn"`` works everywhere but pays interpreter
        startup per worker.
    stage_timeout:
        Seconds to wait for each worker's stage reply before raising
        :class:`~repro.runtime.base.BackendError` (default
        :data:`~repro.runtime.protocol.DEFAULT_STAGE_TIMEOUT`); spec
        form ``process?stage_timeout=120``.
    """

    name = "process"

    def __init__(
        self,
        start_method: Optional[str] = None,
        stage_timeout: Optional[float] = None,
    ):
        available = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in available else None
        elif start_method not in available:
            raise ValueError(
                f"start_method {start_method!r} not available; "
                f"choose from {available}"
            )
        self.start_method = start_method
        self.stage_timeout = stage_timeout

    def session(
        self, dgraph: DistributedGraph, program: SubgraphProgram
    ) -> BackendSession:
        ctx = multiprocessing.get_context(self.start_method)
        return _ProcessSession(dgraph, program, ctx, stage_timeout=self.stage_timeout)
