"""The command/reply session protocol shared by process and socket backends.

Both out-of-process backends drive their workers with the same
conversation shape: the coordinator broadcasts one command per stage
phase, every worker answers exactly one reply — ``("ok", payload)``,
``("error", traceback_text)``, or transport death — and collecting the
replies *is* the stage barrier.  :class:`CommandSession` owns that
shape so its failure semantics are fixed in one place:

**Stage timeouts.**  Every stage reply is awaited with a configurable
``stage_timeout`` (default :data:`DEFAULT_STAGE_TIMEOUT`; overridable
per backend spec, e.g. ``process?stage_timeout=120``).  A worker that
hangs inside a kernel no longer blocks the coordinator forever: the
wait raises :class:`~repro.runtime.base.BackendError` reporting which
workers were still alive at that moment, which is the difference
between "worker 3 is wedged" and "the whole pool is gone".

**The failed latch.**  A :class:`~repro.runtime.base.BackendError`
raised mid-broadcast or mid-collect leaves the conversation desynced:
some workers already ran the stage, unread replies may still be queued.
The first stage error therefore latches the session as *failed*, and
every subsequent ``compute_stage``/``exchange_stage`` call raises
``BackendError("session is failed")`` instead of silently exchanging
mismatched frames.  ``close()`` always works; the socket backend's
worker recovery explicitly resyncs (drains stale replies against an
echo nonce) and clears the latch.

Transports plug in underneath via four hooks — :meth:`_send_to`,
:meth:`_recv_from`, :meth:`_worker_alive`, :meth:`_is_closed` — mapped
onto pipes by the process backend and onto framed TCP sockets
(:mod:`repro.runtime.wire`) by the socket backend.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence, Tuple

from .base import BackendError, BackendSession, WorkerLostError

__all__ = ["DEFAULT_STAGE_TIMEOUT", "ReplyTimeout", "CommandSession"]

#: generous default for one stage reply: far above any kernel wall this
#: repo's graphs produce, small enough that a wedged worker surfaces in
#: minutes rather than never.
DEFAULT_STAGE_TIMEOUT = 600.0


class ReplyTimeout(Exception):
    """Internal transport signal: no reply within the deadline.

    Raised by :meth:`CommandSession._recv_from` implementations and
    translated by :meth:`CommandSession._expect` into a
    :class:`BackendError` that names the still-alive workers — never
    escapes the session.
    """


class CommandSession(BackendSession):
    """Base for sessions that drive workers over a command/reply link."""

    def __init__(self, num_workers: int, stage_timeout: Optional[float] = None):
        if stage_timeout is None:
            stage_timeout = DEFAULT_STAGE_TIMEOUT
        if stage_timeout <= 0:
            raise ValueError(f"stage_timeout must be positive, got {stage_timeout}")
        self._num_workers = num_workers
        self._stage_timeout = float(stage_timeout)
        self._failed = False

    # -- transport hooks ------------------------------------------------

    @abc.abstractmethod
    def _send_to(self, w: int, message) -> None:
        """Deliver one ``(command, payload)`` message to worker ``w``.

        Raises ``OSError``-family errors when the transport is down.
        """

    @abc.abstractmethod
    def _recv_from(self, w: int, timeout: Optional[float]) -> Tuple[str, object]:
        """Receive one ``(status, payload)`` reply from worker ``w``.

        Must raise :class:`WorkerLostError` when the worker is dead and
        :class:`ReplyTimeout` when nothing arrived within ``timeout``.
        """

    @abc.abstractmethod
    def _worker_alive(self, w: int) -> bool:
        """Whether worker ``w``'s process/connection still looks alive."""

    @abc.abstractmethod
    def _is_closed(self) -> bool:
        """Whether the session's resources have been torn down."""

    # -- shared failure semantics --------------------------------------

    def _check_usable(self) -> None:
        """Gate every stage entry on the closed/failed latches."""
        if self._is_closed():
            raise BackendError("session is closed")
        if self._failed:
            raise BackendError("session is failed")

    def _alive_workers(self) -> List[int]:
        return [w for w in range(self._num_workers) if self._worker_alive(w)]

    def _expect(self, w: int, expected: str, timeout: Optional[float] = None):
        """Await worker ``w``'s reply; latch the session failed on error.

        ``timeout`` overrides the stage timeout (session init passes its
        own, longer handshake deadline).
        """
        if timeout is None:
            timeout = self._stage_timeout
        try:
            reply = self._recv_from(w, timeout)
        except WorkerLostError:
            self._failed = True
            raise
        except ReplyTimeout:
            self._failed = True
            raise BackendError(
                f"worker {w} did not answer within {timeout:.0f}s "
                f"(alive workers: {self._alive_workers()}) — "
                "a stage kernel is hung or the host is overloaded; "
                "raise stage_timeout (e.g. backend spec "
                "'process?stage_timeout=1200') if the latter"
            ) from None
        # A desynced or foreign peer can deliver any unpickled object
        # (the socket transport imposes no shape); treat a non-pair
        # reply as a protocol fault, not an unpacking crash.
        if not (isinstance(reply, tuple) and len(reply) == 2):
            self._failed = True
            raise BackendError(
                f"worker {w} sent a malformed reply ({type(reply).__name__}, "
                f"expected a (status, payload) pair)"
            )
        status, payload = reply
        if status == "error":
            self._failed = True
            raise BackendError(f"worker {w} failed:\n{payload}")
        if status != expected:  # pragma: no cover - protocol guard
            self._failed = True
            raise BackendError(f"worker {w}: expected {expected!r}, got {status!r}")
        return payload

    def _post(self, w: int, command: str, payload) -> None:
        """Send one command to one worker, latching failed on a dead link."""
        try:
            self._send_to(w, (command, payload))
        except (BrokenPipeError, OSError) as exc:
            self._failed = True
            raise BackendError(f"worker pool is down: {exc}") from exc

    def _broadcast(self, command: str, payload) -> None:
        """Send one stage command to every worker (entry-checked)."""
        self._check_usable()
        for w in range(self._num_workers):
            self._post(w, command, payload)

    def _scatter(self, command: str, payloads: Sequence) -> None:
        """Send one command with a *per-worker* payload to every worker."""
        self._check_usable()
        for w in range(self._num_workers):
            self._post(w, command, payloads[w])
