"""The per-worker superstep kernels every backend executes.

This is the single definition of what "one worker's computation stage"
and "one worker's slice of the replica exchange" mean — the serial
backend calls these inline, the thread backend calls them from pool
threads, and the process backend calls them inside persistent child
processes.  Centralizing the gating rule (skip workers with no active
vertices), the activation rule (reactivate changed vertices or clear,
per ``program.reactivate_changed``) and the exchange pull order is what
guarantees all backends produce bit-identical results: they run *these*
functions per worker and nothing else.

The exchange stage is sharded by destination worker and split into two
pull phases with a barrier between them (see
:class:`repro.runtime.base.RoutePlan`):

``superstep_exchange_up``
    Worker ``w`` pulls every changed mirror value aimed at its masters
    from the sending workers' arrays.  Minimize mode folds them in with
    ``min`` and marks improved masters dirty; accumulate mode sums the
    inbound partials and applies ``program.apply`` to its own masters.
    Writes touch only worker ``w``'s arrays — mirror reads on other
    workers are stable because compute has already barriered.

``superstep_exchange_down``
    Worker ``w`` pulls the (dirty, in minimize mode) master values for
    its mirrors from the owning workers' arrays.  Requires every
    worker's up phase to have finished first: it reads master values
    and dirty masks the up phase writes.

Write-disjointness is what makes the sharding race-free: within either
phase, worker ``w`` writes only master positions (up) or only mirror
positions (down) of its *own* arrays, while other workers read the
complementary positions — no element is ever read and written by
different workers in the same phase.

Both phases return exact per-source message tallies (a message pulled
by ``w`` from ``src`` was "sent" by ``src`` and "received" by ``w``);
:func:`repro.runtime.base.assemble_exchange` folds them into the global
per-worker sent/received arrays the cost model consumes.

Kernels here are deliberately observability-free: they never import
:mod:`repro.obs` or read a clock.  The *caller* (each backend session,
or the process backend's child loop) brackets the kernel call with
monotonic-clock reads and hands the window to the session's attached
recorder — see :func:`repro.runtime.base.finish_compute_stage`.  The
``worker-purity`` lint rule enforces the no-obs-import half of this
contract.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..bsp.distributed import LocalSubgraph, _Route
from ..bsp.program import ACCUMULATE, SubgraphProgram

__all__ = [
    "superstep_compute",
    "superstep_exchange_up",
    "superstep_exchange_down",
]

#: one worker's inbound routes: ``(source_worker, route)`` pairs.
InboundRoutes = Sequence[Tuple[int, _Route]]


def superstep_compute(
    program: SubgraphProgram,
    local: LocalSubgraph,
    values: np.ndarray,
    active: Optional[np.ndarray],
    changed: np.ndarray,
    partials: Optional[np.ndarray],
    superstep: int = 0,
) -> float:
    """Run one worker's computation stage in place; return work units.

    Minimize mode mutates ``values`` (via ``program.compute``) and
    ``active`` (the engine's activation rule); accumulate mode fills
    ``partials`` and leaves ``values`` untouched.  ``changed`` always
    receives the program's change/send mask.

    ``superstep`` is the 0-based index of the superstep being computed.
    It is part of the compute contract (not hidden program state) so
    that superstep-dependent accounting — e.g. CC charging its one-time
    union-find pass — stays deterministic under checkpoint/resume,
    where programs are re-instantiated mid-run.
    """
    if program.mode == ACCUMULATE:
        assert partials is not None, "accumulate mode requires a partials buffer"
        res = program.compute(local, values, None, superstep)
        changed[:] = res.changed
        partials[:] = res.partials
        return float(res.work_units)

    assert active is not None, "minimize mode requires an active mask"
    if active.any():
        res = program.compute(local, values, active, superstep)
        changed[:] = res.changed
        work = float(res.work_units)
    else:
        changed[:] = False
        work = 0.0
    if program.reactivate_changed:
        active[:] = changed
    else:
        active[:] = False
    return work


def superstep_exchange_up(
    program: SubgraphProgram,
    local: LocalSubgraph,
    worker_id: int,
    inbound: InboundRoutes,
    values: List[np.ndarray],
    changed: List[np.ndarray],
    active: Optional[np.ndarray],
    dirty: Optional[np.ndarray],
    partials: Optional[List[np.ndarray]],
    sums: Optional[np.ndarray],
) -> Tuple[np.ndarray, float]:
    """Pull changed mirror values into this worker's masters, in place.

    ``values``/``changed``/``partials`` are *all* workers' arrays (this
    worker reads its inbound sources and writes only its own entry);
    ``active``, ``dirty`` and ``sums`` belong to this worker alone.

    Returns ``(counts, delta)``: ``counts[src]`` is the number of
    messages pulled from worker ``src``, ``delta`` is this worker's
    contribution to the accumulate-mode global convergence delta (0.0
    in minimize mode).
    """
    p = len(values)
    counts = np.zeros(p, dtype=np.int64)
    own = values[worker_id]

    if program.mode == ACCUMULATE:
        assert partials is not None and sums is not None
        sums[:] = partials[worker_id]
        for src, route in inbound:
            sel = changed[src][route.src_index]
            if not sel.any():
                continue
            counts[src] += int(sel.sum())
            np.add.at(
                sums, route.dst_index[sel], partials[src][route.src_index[sel]]
            )
        new_vals = program.apply(local, own, sums)
        mask = local.is_master
        delta = float(np.abs(new_vals[mask] - own[mask]).sum())
        own[mask] = new_vals[mask]
        return counts, delta

    assert active is not None and dirty is not None
    # Masters whose value improved this superstep — seeded from the
    # local compute's change mask, extended by inbound improvements.
    dirty[:] = changed[worker_id] & local.is_master
    for src, route in inbound:
        sel = changed[src][route.src_index]
        if not sel.any():
            continue
        src_idx = route.src_index[sel]
        dst_idx = route.dst_index[sel]
        vals = values[src][src_idx]
        counts[src] += int(sel.sum())
        better = vals < own[dst_idx]
        if better.any():
            np.minimum.at(own, dst_idx[better], vals[better])
            dirty[dst_idx[better]] = True
            active[dst_idx[better]] = True
    return counts, 0.0


def superstep_exchange_down(
    program: SubgraphProgram,
    local: LocalSubgraph,
    worker_id: int,
    inbound: InboundRoutes,
    values: List[np.ndarray],
    active: Optional[np.ndarray],
    dirty: Optional[List[np.ndarray]],
) -> np.ndarray:
    """Pull master values into this worker's mirrors, in place.

    Must only run after *every* worker finished
    :func:`superstep_exchange_up`: it reads master values (and, in
    minimize mode, the ``dirty`` masks) the up phase writes on other
    workers.  Each mirror has exactly one master, so the writes of the
    pulls are disjoint and order-independent.

    Returns the per-source message tally (see
    :func:`superstep_exchange_up`).
    """
    p = len(values)
    counts = np.zeros(p, dtype=np.int64)
    own = values[worker_id]

    if program.mode == ACCUMULATE:
        # Full broadcast: every master value refreshes its mirrors.
        for src, route in inbound:
            counts[src] += int(route.src_index.shape[0])
            own[route.dst_index] = values[src][route.src_index]
        return counts

    assert active is not None and dirty is not None
    for src, route in inbound:
        sel = dirty[src][route.src_index]
        if not sel.any():
            continue
        src_idx = route.src_index[sel]
        dst_idx = route.dst_index[sel]
        vals = values[src][src_idx]
        counts[src] += int(sel.sum())
        better = vals < own[dst_idx]
        if better.any():
            own[dst_idx[better]] = vals[better]
            active[dst_idx[better]] = True
    return counts
