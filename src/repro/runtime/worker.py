"""The per-worker computation-stage kernel every backend executes.

This is the single definition of what "one worker's computation stage"
means — the serial backend calls it inline, the thread backend calls it
from pool threads, and the process backend calls it inside persistent
child processes.  Centralizing the gating rule (skip workers with no
active vertices) and the activation rule (reactivate changed vertices
or clear, per ``program.reactivate_changed``) is what guarantees all
backends produce bit-identical results: they run *this* function per
worker and nothing else.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..bsp.distributed import LocalSubgraph
from ..bsp.program import ACCUMULATE, SubgraphProgram

__all__ = ["superstep_compute"]


def superstep_compute(
    program: SubgraphProgram,
    local: LocalSubgraph,
    values: np.ndarray,
    active: Optional[np.ndarray],
    changed: np.ndarray,
    partials: Optional[np.ndarray],
    superstep: int = 0,
) -> float:
    """Run one worker's computation stage in place; return work units.

    Minimize mode mutates ``values`` (via ``program.compute``) and
    ``active`` (the engine's activation rule); accumulate mode fills
    ``partials`` and leaves ``values`` untouched.  ``changed`` always
    receives the program's change/send mask.

    ``superstep`` is the 0-based index of the superstep being computed.
    It is part of the compute contract (not hidden program state) so
    that superstep-dependent accounting — e.g. CC charging its one-time
    union-find pass — stays deterministic under checkpoint/resume,
    where programs are re-instantiated mid-run.
    """
    if program.mode == ACCUMULATE:
        assert partials is not None, "accumulate mode requires a partials buffer"
        res = program.compute(local, values, None, superstep)
        changed[:] = res.changed
        partials[:] = res.partials
        return float(res.work_units)

    assert active is not None, "minimize mode requires an active mask"
    if active.any():
        res = program.compute(local, values, active, superstep)
        changed[:] = res.changed
        work = float(res.work_units)
    else:
        changed[:] = False
        work = 0.0
    if program.reactivate_changed:
        active[:] = changed
    else:
        active[:] = False
    return work
