"""Socket backend: workers behind TCP, state owned worker-side.

The multi-node analogue of the process backend.  Each BSP worker is an
independent OS process reachable over one TCP connection — spawned on
127.0.0.1 by the session itself for tests and single-host runs, or
launched standalone on another machine via ``repro worker --listen
host:port`` and named in the backend spec
(``socket?workers=hostA:7001+hostB:7001``).  Messages are
length-prefixed pickle frames over the small versioned protocol in
:mod:`repro.runtime.wire`; the conversation shape (one command per
stage phase, one reply per worker, collecting replies is the barrier)
and its failure semantics (stage timeouts, the failed latch) are the
shared :class:`~repro.runtime.protocol.CommandSession` layer, identical
to the process backend.

Each worker receives its :class:`~repro.bsp.distributed.LocalSubgraph`
shard, the program, and its route-plan slices exactly once at session
start, allocates its own state arrays locally
(:func:`~repro.runtime.base.allocate_local_state` — the same
initialization every backend runs), and owns them for the whole run.
The coordinator never holds O(|V|·p) state: it sees full arrays only
when the engine explicitly gathers them (checkpoint boundaries, the
final gather) through ``pull_state``.

Exchange over the wire
----------------------
The shared kernels in :mod:`repro.runtime.worker` read *sibling*
workers' arrays through route index slices — storage the process
backend gets for free from shared memory.  Over TCP each exchange phase
becomes two round trips:

1. **collect** — every worker slices its *outbound* routes
   (``changed``/``dirty`` selection masks plus the selected
   values/partials) and ships them to the coordinator;
2. **apply** — the coordinator forwards each worker its inbound
   payloads, and the worker runs the *unchanged* kernel against
   reconstructed stand-in arrays over index-compacted routes
   (``src_index = arange(len(route))``).

Compaction commutes with the kernels' ``route.src_index[sel]``
selections, per-destination route order is preserved, and routes whose
selection mask is empty are skipped on both sides exactly like the
kernel's own ``continue`` — so results, message tallies and
floating-point accumulation stay bit-identical to the serial reference.
Only changed selections travel: per-superstep traffic is proportional
to the paper's message tallies, not to |V|.

Fault tolerance
---------------
A worker death surfaces as :class:`~repro.runtime.base.WorkerLostError`
carrying the dead worker id.  For coordinator-spawned workers the
session can recover: :meth:`recover_workers` respawns the dead shard's
process, resyncs survivors against an echo nonce (draining any stale
replies from the aborted stage), and clears the failed latch; the
engine then pushes the last fingerprint-valid checkpoint snapshot into
the fresh pool via ``push_state`` and replays forward (see
``BSPEngine(..., max_recoveries=...)``).  Sessions over externally
launched workers refuse recovery — the coordinator cannot respawn a
process on another machine.

Timing caveat: per-worker kernel walls are measured with each worker's
own ``CLOCK_MONOTONIC``.  On one host (spawned workers) that clock is
shared and traces merge exactly like the process backend's; across
machines the clocks are unrelated, so traced barrier/wall spans of a
genuinely multi-node run are approximate (results are unaffected).
"""

from __future__ import annotations

import os
import select
import socket
import subprocess
import sys
import traceback
import weakref
from time import monotonic, monotonic_ns
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..bsp.distributed import DistributedGraph, _Route
from ..bsp.program import MINIMIZE, SubgraphProgram
from . import wire
from .base import (
    Backend,
    BackendError,
    BackendSession,
    ComputeStageResult,
    ExchangeResult,
    WorkerLostError,
    WorkerState,
    allocate_local_scratch,
    allocate_local_state,
    build_route_plan,
    finish_compute_stage,
    finish_exchange_stage,
)
from .protocol import CommandSession, ReplyTimeout
from .worker import superstep_compute, superstep_exchange_down, superstep_exchange_up

__all__ = ["SocketBackend", "serve_worker"]

#: seconds to wait for each worker's handshake + init acknowledgement.
_INIT_TIMEOUT = 120.0
#: seconds for workers to exit after "stop" before terminate/kill.
_JOIN_TIMEOUT = 5.0
#: stdout marker a listening worker prints (parsed by the spawner).
_ANNOUNCE = "REPRO-WORKER listening"


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def _compact_inbound(inbound) -> List[Tuple[int, _Route, int]]:
    """Index-compact one worker's inbound routes for over-the-wire apply.

    For a route of length ``n`` the sender transmits data *already
    sliced* by ``route.src_index``, so the receiving kernel indexes it
    with ``arange(n)`` instead; ``dst_index`` is unchanged.  Route order
    is preserved — it is what keeps accumulation bit-identical.
    """
    compact = []
    for src, route in inbound:
        n = int(route.src_index.shape[0])
        compact.append(
            (src, _Route(src_index=np.arange(n, dtype=np.int64),
                         dst_index=route.dst_index), n)
        )
    return compact


class _WorkerShard:
    """One worker's whole world: shard, program, routes, state arrays."""

    def __init__(self, payload):
        (
            self.worker_id,
            self.num_workers,
            self.local,
            self.program,
            inbound_up,
            inbound_down,
            self.outbound_up,
            self.outbound_down,
        ) = payload
        self.minimize = self.program.mode == MINIMIZE
        arrays = allocate_local_state(self.local, self.program, self.worker_id)
        self.values = arrays["values"]
        self.changed = arrays["changed"]
        self.active = arrays.get("active")
        self.partials = arrays.get("partials")
        scratch = allocate_local_scratch(
            self.local, self.program, self.values, self.worker_id
        )
        self.dirty = scratch.get("dirty")
        self.sums = scratch.get("sums")
        self.compact_up = _compact_inbound(inbound_up)
        self.compact_down = _compact_inbound(inbound_down)

    def active_any(self) -> bool:
        return self.active is not None and bool(self.active.any())

    # -- command handlers ----------------------------------------------

    def handle(self, cmd: str, payload):
        handler = {
            "compute": self._compute,
            "collect_up": self._collect_up,
            "apply_up": self._apply_up,
            "collect_down": self._collect_down,
            "apply_down": self._apply_down,
            "pull_state": self._pull_state,
            "push_state": self._push_state,
        }.get(cmd)
        if handler is None:
            return "error", f"unknown command {cmd!r}"
        return handler(payload)

    def _compute(self, superstep):
        t0 = monotonic_ns()
        work = superstep_compute(
            self.program,
            self.local,
            self.values,
            self.active,
            self.changed,
            self.partials,
            int(superstep),
        )
        return "ok", (work, t0, monotonic_ns(), self.active_any())

    def _collect_up(self, _superstep):
        # Minimize mode ships changed mirror values; accumulate mode
        # ships changed partials — exactly what the kernel would read
        # out of the sibling array, already selected.
        source = self.values if self.minimize else self.partials
        t0 = monotonic_ns()
        outbox = {}
        for dst, route in self.outbound_up:
            sel = self.changed[route.src_index]
            if sel.any():
                outbox[dst] = (sel, source[route.src_index[sel]])
        return "ok", (outbox, t0, monotonic_ns())

    def _apply_up(self, inbox):
        p = self.num_workers
        w = self.worker_id
        t0 = monotonic_ns()
        values: List[Optional[np.ndarray]] = [None] * p
        changed: List[Optional[np.ndarray]] = [None] * p
        values[w] = self.values
        changed[w] = self.changed
        partials: Optional[List[Optional[np.ndarray]]] = None
        if not self.minimize:
            partials = [None] * p
            partials[w] = self.partials
        template = self.values if self.minimize else self.partials
        inbound = []
        for src, croute, n in self.compact_up:
            data = inbox.get(src)
            if data is None:
                continue  # empty selection: the kernel would skip it too
            sel, vals = data
            changed[src] = sel
            full = np.zeros((n,) + template.shape[1:], dtype=template.dtype)
            full[sel] = vals
            if self.minimize:
                values[src] = full
            else:
                partials[src] = full
            inbound.append((src, croute))
        counts, delta = superstep_exchange_up(
            self.program,
            self.local,
            w,
            inbound,
            values,
            changed,
            self.active,
            self.dirty,
            partials,
            self.sums,
        )
        return "ok", ((counts, delta), t0, monotonic_ns(), self.active_any())

    def _collect_down(self, _superstep):
        t0 = monotonic_ns()
        outbox = {}
        if self.minimize:
            for dst, route in self.outbound_down:
                sel = self.dirty[route.src_index]
                if sel.any():
                    outbox[dst] = (sel, self.values[route.src_index[sel]])
        else:
            # Accumulate mode broadcasts every master value, unselected.
            for dst, route in self.outbound_down:
                outbox[dst] = self.values[route.src_index]
        return "ok", (outbox, t0, monotonic_ns())

    def _apply_down(self, inbox):
        p = self.num_workers
        w = self.worker_id
        t0 = monotonic_ns()
        values: List[Optional[np.ndarray]] = [None] * p
        values[w] = self.values
        dirty: Optional[List[Optional[np.ndarray]]] = None
        inbound = []
        if self.minimize:
            dirty = [None] * p
            dirty[w] = self.dirty
            for src, croute, n in self.compact_down:
                data = inbox.get(src)
                if data is None:
                    continue
                sel, vals = data
                dirty[src] = sel
                full = np.zeros(
                    (n,) + self.values.shape[1:], dtype=self.values.dtype
                )
                full[sel] = vals
                values[src] = full
                inbound.append((src, croute))
        else:
            for src, croute, _n in self.compact_down:
                vals = inbox.get(src)
                if vals is None:
                    continue
                values[src] = vals
                inbound.append((src, croute))
        counts = superstep_exchange_down(
            self.program, self.local, w, inbound, values, self.active, dirty
        )
        return "ok", (counts, t0, monotonic_ns(), self.active_any())

    def _pull_state(self, _payload):
        shard = {"values": self.values, "changed": self.changed}
        if self.active is not None:
            shard["active"] = self.active
        if self.partials is not None:
            shard["partials"] = self.partials
        return "ok", shard

    def _push_state(self, shard):
        own = {"values": self.values, "changed": self.changed}
        if self.active is not None:
            own["active"] = self.active
        if self.partials is not None:
            own["partials"] = self.partials
        if set(shard) != set(own):
            raise ValueError(
                f"snapshot shard holds {sorted(shard)}, worker allocates "
                f"{sorted(own)} (program mode mismatch?)"
            )
        for kind in sorted(own):
            src, dst = shard[kind], own[kind]
            if src.shape != dst.shape or src.dtype != dst.dtype:
                raise ValueError(
                    f"snapshot array {kind!r} is {src.dtype}{src.shape}, "
                    f"worker expects {dst.dtype}{dst.shape}"
                )
        for kind in sorted(own):
            own[kind][...] = shard[kind]
        return "ok", self.active_any()


def _serve_connection(conn: socket.socket) -> None:
    """Serve one coordinator session on an accepted connection."""
    conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    # The worker speaks first so a mismatched coordinator can read this
    # side's version and report the mismatch locally; then it validates
    # the coordinator's hello itself.
    wire.send_hello(conn, "worker")
    wire.expect_hello(conn, "coordinator", timeout=_INIT_TIMEOUT)
    shard: Optional[_WorkerShard] = None
    while True:
        try:
            cmd, payload = wire.recv_msg(conn)
        except (wire.WireError, OSError, ValueError, TypeError):
            return  # coordinator went away or the stream desynced
        if cmd == "stop":
            return
        if cmd == "echo":
            wire.send_msg(conn, ("echo", payload))
            continue
        try:
            if cmd == "init":
                shard = _WorkerShard(payload)
                reply = ("ready", shard.active_any())
            elif shard is None:
                reply = ("error", f"command {cmd!r} before init")
            else:
                reply = shard.handle(cmd, payload)
        except BaseException:
            reply = ("error", traceback.format_exc())
        wire.send_msg(conn, reply)


def serve_worker(listen: str, sessions: int = 1) -> int:
    """Run a standalone socket-backend worker (the ``repro worker`` verb).

    Binds ``listen`` (``host:port``; port 0 picks a free one), announces
    the bound address on stdout as ``REPRO-WORKER listening host:port``
    (the line coordinator-side spawning parses), then serves
    ``sessions`` coordinator sessions before returning (0 = serve
    forever).  Each session ends on a ``stop`` command or when the
    coordinator's connection drops — so a spawned worker cannot outlive
    a killed coordinator.
    """
    host, port = wire.parse_hostport(listen)
    lsock = socket.create_server((host, port))
    try:
        bound_host, bound_port = lsock.getsockname()[:2]
        print(f"{_ANNOUNCE} {bound_host}:{bound_port}", flush=True)
        served = 0
        while sessions == 0 or served < sessions:
            conn, _addr = lsock.accept()
            try:
                _serve_connection(conn)
                served += 1
            except wire.WireError as exc:
                # Handshake failure: report, drop the connection, keep
                # listening — a misdialed peer must not kill the worker.
                print(f"repro worker: rejected connection: {exc}", file=sys.stderr)
            finally:
                try:
                    conn.close()
                except OSError:
                    pass
    finally:
        lsock.close()
    return 0


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------


def _outbound_routes(dgraph: DistributedGraph):
    """Per-source route slices: what each worker ships in collect phases."""
    p = dgraph.num_workers
    outbound_up: List[List[Tuple[int, _Route]]] = [[] for _ in range(p)]
    outbound_down: List[List[Tuple[int, _Route]]] = [[] for _ in range(p)]
    for (w, mw), route in dgraph.up_routes.items():
        outbound_up[w].append((mw, route))
    for (mw, w), route in dgraph.down_routes.items():
        outbound_down[mw].append((w, route))
    return outbound_up, outbound_down


def _spawn_local_worker(index: int, timeout: float):
    """Start one ``repro worker`` child on 127.0.0.1; parse its port."""
    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         "--listen", "127.0.0.1:0", "--sessions", "1"],
        stdout=subprocess.PIPE,
        env=env,
    )
    deadline = monotonic() + timeout
    line = b""
    try:
        while not line.endswith(b"\n"):
            remaining = deadline - monotonic()
            if remaining <= 0 or proc.poll() is not None:
                raise BackendError(
                    f"spawned worker {index} did not announce a port within "
                    f"{timeout:.0f}s (exit code {proc.poll()})"
                )
            ready, _, _ = select.select([proc.stdout], [], [], min(remaining, 0.5))
            if ready:
                chunk = proc.stdout.readline()
                if not chunk:
                    raise BackendError(
                        f"spawned worker {index} closed stdout before "
                        f"announcing a port (exit code {proc.poll()})"
                    )
                line += chunk
    except BaseException:
        proc.kill()
        proc.wait()
        raise
    text = line.decode("utf-8", "replace").strip()
    if not text.startswith(_ANNOUNCE):
        proc.kill()
        proc.wait()
        raise BackendError(f"spawned worker {index} printed {text!r} instead of "
                           f"the {_ANNOUNCE!r} marker")
    host, port = wire.parse_hostport(text[len(_ANNOUNCE):].strip())
    return proc, host, port


def _connect(host: str, port: int, timeout: float) -> socket.socket:
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except OSError as exc:
        raise BackendError(
            f"cannot connect to worker at {host}:{port}: {exc} "
            f"(is `repro worker --listen {host}:{port}` running?)"
        ) from exc
    sock.settimeout(None)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


def _socket_cleanup(socks, procs) -> None:
    """Tear the pool down; safe to call twice and from a finalizer."""
    for sock in socks:
        if sock is None:
            continue
        try:
            wire.send_msg(sock, ("stop", None))
        except Exception:
            pass
        try:
            sock.close()
        except Exception:
            pass
    deadline = monotonic() + _JOIN_TIMEOUT
    for escalate in (None, "terminate", "kill"):
        stragglers = [p for p in procs if p is not None and p.poll() is None]
        if not stragglers:
            break
        if escalate is not None:
            for proc in stragglers:
                try:
                    getattr(proc, escalate)()
                except Exception:
                    pass
            deadline = monotonic() + _JOIN_TIMEOUT
        for proc in stragglers:
            remaining = deadline - monotonic()
            if remaining <= 0:
                break
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                pass
    for proc in procs:
        if proc is not None and proc.stdout is not None:
            try:
                proc.stdout.close()
            except Exception:
                pass
    socks.clear()
    procs.clear()


class _SocketSession(CommandSession):
    backend_name = "socket"

    def __init__(
        self,
        dgraph: DistributedGraph,
        program: SubgraphProgram,
        endpoints: Optional[Sequence[Tuple[str, int]]] = None,
        stage_timeout: Optional[float] = None,
        connect_timeout: float = 30.0,
    ):
        p = dgraph.num_workers
        super().__init__(p, stage_timeout)
        self._dgraph = dgraph
        self._program = program
        self._minimize = program.mode == MINIMIZE
        self._connect_timeout = float(connect_timeout)
        self._spawned = endpoints is None
        self._socks: List[Optional[socket.socket]] = []
        self._procs: List[Optional[subprocess.Popen]] = []
        self._active = [False] * p
        self._nonce = 0
        # Registered before any spawn/connect so a partially-constructed
        # session still tears down whatever it started.
        self._finalizer = weakref.finalize(
            self, _socket_cleanup, self._socks, self._procs
        )
        self._plan = build_route_plan(dgraph)
        self._outbound_up, self._outbound_down = _outbound_routes(dgraph)
        try:
            if endpoints is None:
                for w in range(p):
                    proc, host, port = _spawn_local_worker(w, self._connect_timeout)
                    self._procs.append(proc)
                    self._socks.append(_connect(host, port, self._connect_timeout))
            else:
                if len(endpoints) != p:
                    raise BackendError(
                        f"backend spec names {len(endpoints)} workers but the "
                        f"graph is partitioned for p={p}"
                    )
                for host, port in endpoints:
                    self._procs.append(None)
                    self._socks.append(_connect(host, port, self._connect_timeout))
            for w in range(p):
                self._handshake(w)
            for w in range(p):
                self._post(w, "init", self._init_payload(w))
            for w in range(p):
                self._active[w] = bool(self._expect(w, "ready", timeout=_INIT_TIMEOUT))
        except BaseException:
            self.close()
            raise

    def _handshake(self, w: int) -> None:
        sock = self._socks[w]
        try:
            wire.expect_hello(sock, "worker", timeout=self._connect_timeout)
            wire.send_hello(sock, "coordinator")
        except wire.WireError as exc:
            raise BackendError(f"worker {w} handshake failed: {exc}") from exc

    def _init_payload(self, w: int):
        return (
            w,
            self._num_workers,
            self._dgraph.locals[w],
            self._program,
            self._plan.inbound_up[w],
            self._plan.inbound_down[w],
            self._outbound_up[w],
            self._outbound_down[w],
        )

    # -- CommandSession transport hooks --------------------------------

    def _send_to(self, w: int, message) -> None:
        sock = self._socks[w]
        if sock is None:
            raise BrokenPipeError(f"worker {w} has no connection")
        try:
            wire.send_msg(sock, message)
        except wire.WireError as exc:
            raise OSError(str(exc)) from exc

    def _recv_from(self, w: int, timeout: Optional[float]):
        sock = self._socks[w]
        if sock is None:
            raise WorkerLostError(w, f"worker {w} died unexpectedly (no connection)")
        try:
            return wire.recv_msg(sock, timeout=timeout)
        except wire.WireTimeout:
            raise ReplyTimeout() from None
        except (wire.WireError, OSError) as exc:
            code = self._exit_code(w)
            detail = f"exit code {code}" if code is not None else str(exc)
            raise WorkerLostError(
                w, f"worker {w} died unexpectedly ({detail})"
            ) from None

    def _worker_alive(self, w: int) -> bool:
        if self._socks[w] is None:
            return False
        proc = self._procs[w]
        return proc is None or proc.poll() is None

    def _is_closed(self) -> bool:
        return not self._finalizer.alive

    def _exit_code(self, w: int) -> Optional[int]:
        proc = self._procs[w]
        return None if proc is None else proc.poll()

    # -- stages ---------------------------------------------------------

    def compute_stage(self, superstep: int = 0) -> ComputeStageResult:
        self._broadcast("compute", superstep)
        timed = []
        for w in range(self._num_workers):
            work, t0, t1, active_any = self._expect(w, "ok")
            self._active[w] = bool(active_any)
            timed.append((work, t0, t1))
        return finish_compute_stage(self.recorder, superstep, timed)

    def exchange_stage(self, superstep: int = 0) -> ExchangeResult:
        ups = self._exchange_phase("up", superstep)
        downs = self._exchange_phase("down", superstep)
        return finish_exchange_stage(self.recorder, superstep, ups, downs)

    def _exchange_phase(self, phase: str, superstep: int):
        """One collect → reroute → apply round over every worker.

        Collecting every reply before the apply scatter is the
        mid-exchange barrier (and, in the up phase, the up/down barrier
        the kernels require).
        """
        p = self._num_workers
        rec = self.recorder
        t0 = monotonic_ns()
        self._broadcast(f"collect_{phase}", superstep)
        collected = [self._expect(w, "ok") for w in range(p)]
        t1 = monotonic_ns()
        inboxes: List[Dict[int, object]] = [{} for _ in range(p)]
        for src, (outbox, c0, c1) in enumerate(collected):
            if rec.enabled:
                rec.add(f"wire.collect.{phase}", c0, c1, src, superstep, "wire")
            for dst, data in outbox.items():
                inboxes[dst][src] = data
        if rec.enabled:
            # Coordinator-side walls: the whole collect round trip
            # (serialize + send + recv) and the apply scatter send.
            rec.add(f"wire.recv.{phase}", t0, t1, None, superstep, "wire")
        s0 = monotonic_ns()
        self._scatter(f"apply_{phase}", inboxes)
        if rec.enabled:
            rec.add(f"wire.send.{phase}", s0, monotonic_ns(), None, superstep, "wire")
        results = []
        for w in range(p):
            value, a0, a1, active_any = self._expect(w, "ok")
            self._active[w] = bool(active_any)
            results.append((value, a0, a1))
        return results

    # -- engine-facing state access ------------------------------------

    def any_active(self) -> bool:
        return any(self._active)

    def pull_state(self) -> WorkerState:
        self._check_usable()
        with self.recorder.span("wire.pull_state", cat="wire"):
            self._broadcast("pull_state", None)
            shards = [self._expect(w, "ok") for w in range(self._num_workers)]
        return WorkerState(
            values=[s["values"] for s in shards],
            changed=[s["changed"] for s in shards],
            active=[s["active"] for s in shards] if self._minimize else None,
            partials=None if self._minimize else [s["partials"] for s in shards],
        )

    def push_state(self, arrays) -> None:
        p = self._num_workers
        for kind, worker_arrays in arrays.items():
            if len(worker_arrays) != p:
                raise BackendError(
                    f"snapshot has {len(worker_arrays)} {kind!r} arrays "
                    f"for {p} workers"
                )
        shards = [{kind: arrays[kind][w] for kind in sorted(arrays)} for w in range(p)]
        with self.recorder.span("wire.push_state", cat="wire"):
            self._scatter("push_state", shards)
            for w in range(p):
                self._active[w] = bool(self._expect(w, "ok"))

    # -- recovery --------------------------------------------------------

    @property
    def supports_recovery(self) -> bool:
        """Whether dead workers can be respawned (spawned-local pools only)."""
        return self._spawned

    def recover_workers(self) -> List[int]:
        """Respawn dead workers, resync survivors, clear the failed latch.

        Returns the list of worker ids that were replaced.  The caller
        (the engine's recovery path) must follow up with ``push_state``
        — replacement workers come up with *initial* state, and
        survivors have advanced past the snapshot boundary.
        """
        if self._is_closed():
            raise BackendError("session is closed")
        if not self._spawned:
            raise BackendError(
                "cannot recover: workers were launched externally "
                "(respawn is only supported for coordinator-spawned "
                "local workers)"
            )
        self._nonce += 1
        nonce = self._nonce
        replaced = []
        for w in range(self._num_workers):
            if not self._resync(w, nonce):
                replaced.append(w)
                self._respawn(w)
        self._failed = False
        return replaced

    def _resync(self, w: int, nonce: int) -> bool:
        """Drain worker ``w``'s stale replies until it echoes ``nonce``."""
        sock = self._socks[w]
        if sock is None or not self._worker_alive(w):
            return False
        try:
            wire.send_msg(sock, ("echo", nonce))
            # An aborted stage leaves at most a handful of unread
            # replies queued ahead of the echo; the bound is defensive.
            for _ in range(32):
                msg = wire.recv_msg(sock, timeout=self._stage_timeout)
                if msg == ("echo", nonce):
                    return True
            return False
        except (wire.WireError, OSError):
            return False

    def _respawn(self, w: int) -> None:
        sock = self._socks[w]
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
            self._socks[w] = None
        proc = self._procs[w]
        if proc is not None and proc.poll() is None:
            proc.kill()
            proc.wait()
        proc, host, port = _spawn_local_worker(w, self._connect_timeout)
        self._procs[w] = proc
        self._socks[w] = _connect(host, port, self._connect_timeout)
        self._handshake(w)
        self._post(w, "init", self._init_payload(w))
        self._active[w] = bool(self._expect(w, "ready", timeout=_INIT_TIMEOUT))

    def close(self) -> None:
        if self._finalizer.alive:
            self._finalizer()


def _parse_workers(workers) -> List[Tuple[str, int]]:
    """Parse a ``workers=`` value: ``host:port`` entries joined by ``+``
    (or ``;``), or an already-split sequence of such strings."""
    if isinstance(workers, str):
        entries = [e for e in workers.replace(";", "+").split("+") if e]
    else:
        entries = list(workers)
    if not entries:
        raise ValueError("workers= names no endpoints")
    return [wire.parse_hostport(entry.strip()) for entry in entries]


def _read_topology(path: str) -> List[Tuple[str, int]]:
    """Read a topology file: one ``host:port`` per line, ``#`` comments."""
    endpoints = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            entry = line.split("#", 1)[0].strip()
            if entry:
                endpoints.append(wire.parse_hostport(entry))
    if not endpoints:
        raise ValueError(f"topology file {path!r} names no workers")
    return endpoints


class SocketBackend(Backend):
    """Workers as independent processes behind TCP.

    Parameters
    ----------
    workers:
        Pre-launched worker endpoints — ``host:port`` entries joined by
        ``+`` (spec form ``socket?workers=hostA:7001+hostB:7001``), or a
        sequence of such strings.  Exactly one endpoint per graph
        partition, in worker order.  Default ``None``: the session
        spawns one local ``repro worker`` process per partition on
        127.0.0.1 (the single-host mode tests and CI use).
    topology:
        Path to a topology file (one ``host:port`` per line, ``#``
        comments) — the file-based spelling of ``workers``.
    stage_timeout:
        Seconds to wait for each worker's stage reply before raising
        :class:`~repro.runtime.base.BackendError`; shares
        :data:`~repro.runtime.protocol.DEFAULT_STAGE_TIMEOUT` with the
        process backend.  Spec form ``socket?stage_timeout=120``.
    connect_timeout:
        Seconds for spawn/connect/handshake at session start.
    """

    name = "socket"

    def __init__(
        self,
        workers=None,
        topology: Optional[str] = None,
        stage_timeout: Optional[float] = None,
        connect_timeout: float = 30.0,
    ):
        if workers is not None and topology is not None:
            raise ValueError("pass workers= or topology=, not both")
        self.workers = workers
        self.topology = topology
        self.stage_timeout = stage_timeout
        self.connect_timeout = float(connect_timeout)
        # Malformed endpoint lists fail at spec/construction time, not
        # at the first session of a long pipeline.
        self._static_endpoints = None if workers is None else _parse_workers(workers)

    def session(
        self, dgraph: DistributedGraph, program: SubgraphProgram
    ) -> BackendSession:
        endpoints = self._static_endpoints
        if endpoints is None and self.topology is not None:
            endpoints = _read_topology(self.topology)
        return _SocketSession(
            dgraph,
            program,
            endpoints=endpoints,
            stage_timeout=self.stage_timeout,
            connect_timeout=self.connect_timeout,
        )
