"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``   write a synthetic graph to an edge-list file
``stats``      print the Table I statistics row for an edge list
``partition``  partition an edge list and print Section III-C metrics
``run``        execute CC/PR/SSSP/BFS on a partitioned graph
``experiment`` regenerate one of the paper's tables/figures

Every command prints human-readable text to stdout; ``partition`` can
additionally persist the per-edge assignment for external tooling.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from .analysis import breakdown_row, render_table
from .apps import default_source
from .bsp import BSPEngine, build_distributed_graph
from .experiments import (
    default_config,
    generate_report,
    run_breakdown,
    run_fig2,
    run_fig3,
    run_fig5,
    run_table1,
    run_tables345,
)
from .frameworks import make_program
from .graph import (
    erdos_renyi,
    graph_stats,
    powerlaw_graph,
    read_edge_list,
    rmat,
    road_network,
    write_edge_list,
)
from .partition import (
    CVCPartitioner,
    DBHPartitioner,
    EBVPartitioner,
    FennelPartitioner,
    GingerPartitioner,
    HDRFPartitioner,
    MetisLikePartitioner,
    NEPartitioner,
    ShardedEBVPartitioner,
    StreamingEBVPartitioner,
    partition_metrics,
    refine_vertex_cut,
    save_partition,
)

__all__ = ["main", "build_parser"]

PARTITIONERS = {
    "ebv": EBVPartitioner,
    "ebv-unsort": lambda: EBVPartitioner(sort_order="input"),
    "ebv-stream": StreamingEBVPartitioner,
    "ebv-sharded": ShardedEBVPartitioner,
    "ginger": GingerPartitioner,
    "dbh": DBHPartitioner,
    "cvc": CVCPartitioner,
    "ne": NEPartitioner,
    "metis": MetisLikePartitioner,
    "hdrf": HDRFPartitioner,
    "fennel": FennelPartitioner,
}

EXPERIMENTS = {
    "table1": lambda cfg: run_table1(cfg)[1],
    "table2": lambda cfg: run_breakdown(cfg)[2],
    "fig4": lambda cfg: run_breakdown(cfg)[3],
    "table3": lambda cfg: run_tables345(cfg)[1],
    "table4": lambda cfg: run_tables345(cfg)[2],
    "table5": lambda cfg: run_tables345(cfg)[3],
    "fig2": lambda cfg: run_fig2(cfg)[1],
    "fig3": lambda cfg: run_fig3(cfg)[1],
    "fig5": lambda cfg: run_fig5(cfg)[1],
    "all": lambda cfg: generate_report(cfg, include_figures=False),
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="EBV graph partitioning reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic graph")
    gen.add_argument("output", help="edge-list file to write")
    gen.add_argument(
        "--kind", choices=("powerlaw", "road", "rmat", "er"), default="powerlaw"
    )
    gen.add_argument("--vertices", type=int, default=10_000)
    gen.add_argument("--eta", type=float, default=2.2)
    gen.add_argument("--min-degree", type=int, default=3)
    gen.add_argument("--directed", action="store_true")
    gen.add_argument("--seed", type=int, default=0)

    stats = sub.add_parser("stats", help="print Table I statistics")
    stats.add_argument("input", help="edge-list file")

    part = sub.add_parser("partition", help="partition a graph")
    part.add_argument("input", help="edge-list file")
    part.add_argument("--method", choices=sorted(PARTITIONERS), default="ebv")
    part.add_argument("--parts", type=int, default=8)
    part.add_argument("--refine", action="store_true", help="apply the post-pass")
    part.add_argument("--output", help="write per-edge part ids here")

    run = sub.add_parser("run", help="run an application on a partitioned graph")
    run.add_argument("input", help="edge-list file")
    run.add_argument("--app", choices=("CC", "PR", "SSSP"), default="CC")
    run.add_argument("--method", choices=sorted(PARTITIONERS), default="ebv")
    run.add_argument("--workers", type=int, default=8)
    run.add_argument("--source", type=int, default=None, help="SSSP source")

    exp = sub.add_parser("experiment", help="regenerate a paper artifact")
    exp.add_argument("name", choices=sorted(EXPERIMENTS))
    exp.add_argument("--scale", type=float, default=None)
    return parser


def _cmd_generate(args) -> int:
    if args.kind == "powerlaw":
        g = powerlaw_graph(
            args.vertices,
            eta=args.eta,
            min_degree=args.min_degree,
            directed=args.directed,
            seed=args.seed,
        )
    elif args.kind == "road":
        side = max(2, int(np.sqrt(args.vertices)))
        g = road_network(side, side, seed=args.seed)
    elif args.kind == "rmat":
        scale = max(2, int(np.log2(max(args.vertices, 4))))
        g = rmat(scale, seed=args.seed, directed=args.directed)
    else:
        g = erdos_renyi(
            args.vertices, args.vertices * 8, directed=args.directed, seed=args.seed
        )
    write_edge_list(g, args.output)
    print(f"wrote {g.num_edges} edges over {g.num_vertices} vertices to {args.output}")
    return 0


def _cmd_stats(args) -> int:
    g = read_edge_list(args.input)
    s = graph_stats(g)
    print(
        render_table(
            ["Graph", "Type", "V", "E", "AvgDeg", "eta"],
            [(s.name, s.kind, s.num_vertices, s.num_edges,
              f"{s.average_degree:.2f}", f"{s.eta:.2f}")],
        )
    )
    return 0


def _cmd_partition(args) -> int:
    g = read_edge_list(args.input)
    result = PARTITIONERS[args.method]().partition(g, args.parts)
    if args.refine:
        result = refine_vertex_cut(result)
    m = partition_metrics(result)
    print(
        render_table(
            ["Method", "Parts", "EdgeImb", "VertImb", "RF"],
            [(m.method, args.parts, f"{m.edge_imbalance:.3f}",
              f"{m.vertex_imbalance:.3f}", f"{m.replication:.3f}")],
        )
    )
    if args.output:
        save_partition(result, args.output)
        print(f"partition written to {args.output}")
    return 0


def _cmd_run(args) -> int:
    g = read_edge_list(args.input)
    result = PARTITIONERS[args.method]().partition(g, args.workers)
    dgraph = build_distributed_graph(result)
    program = make_program(args.app, g, source=args.source)
    run = BSPEngine().run(dgraph, program)
    run.partition_method = result.method
    row = breakdown_row(run)
    print(
        render_table(
            ["App", "Method", "Workers", "Supersteps", "Messages",
             "comp", "comm", "dC", "time"],
            [(args.app, row.method, args.workers, run.num_supersteps,
              run.total_messages, f"{row.comp:.4f}", f"{row.comm:.4f}",
              f"{row.delta_c:.4f}", f"{row.execution_time:.4f}")],
        )
    )
    if args.app == "SSSP":
        reached = int(np.isfinite(run.values).sum())
        print(f"reached {reached}/{g.num_vertices} vertices from source "
              f"{args.source if args.source is not None else default_source(g)}")
    return 0


def _cmd_experiment(args) -> int:
    config = default_config()
    if args.scale is not None:
        config.scale = args.scale
    print(EXPERIMENTS[args.name](config))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "generate": _cmd_generate,
        "stats": _cmd_stats,
        "partition": _cmd_partition,
        "run": _cmd_run,
        "experiment": _cmd_experiment,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
