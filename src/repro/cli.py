"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``         write a synthetic graph to an edge-list file
``stats``            print the Table I statistics row for an edge list
``partition``        partition an edge list and print Section III-C metrics
``stream-partition`` partition an on-disk edge stream *out of core*
``run``              execute any registered app on a partitioned graph
``pipeline``         execute a full JSON pipeline spec (see below)
``resume``           continue a crashed checkpointed pipeline run
``experiment``       regenerate one of the paper's tables/figures
``trace``            summarize a recorded execution trace (per-worker /
                     per-stage walls, straggler and imbalance ratios)
``lint``             run the domain-aware static-analysis pass (exit 1
                     on any new finding; see :mod:`repro.lint`)

``stream-partition`` never loads the whole graph: the file is read in
chunks, assignments stream to per-partition shard files in a spill
directory (see :mod:`repro.stream`), and peak memory stays
O(chunk + partitioner state) no matter how large the input is::

    python -m repro stream-partition huge.txt --parts 16 \
        --method "ebv-stream?chunk_size=4096" --spill-dir huge.spill

Every command prints human-readable text to stdout; ``partition`` can
additionally persist the per-edge assignment, and ``pipeline --json``
emits the machine-readable :class:`~repro.pipeline.PipelineResult`.

Component lookups all go through :mod:`repro.pipeline.registries`, so
the ``--method``/``--app``/``experiment`` choices can never drift from
the implementations that actually exist.  Methods and apps accept full
spec strings with constructor kwargs, e.g.::

    python -m repro partition graph.txt --method "ebv?alpha=2,sort_order=input"
    python -m repro run graph.txt --app "pr?pagerank_iters=10"

``run`` executes on a :mod:`repro.runtime` backend selected with
``--backend`` (``serial``, ``thread``, or ``process`` — a persistent
worker pool over shared memory); results are identical on every
backend, only real wall-clock changes::

    python -m repro run graph.txt --app pagerank --backend process

Tracing
-------
``run --trace out.trace.json`` (and a pipeline spec's ``"trace"``
entry) records a structured execution trace: per-worker compute /
exchange / barrier spans, coordinator stage spans and a metrics
snapshot (see :mod:`repro.obs`).  A ``.jsonl`` path writes
line-delimited JSON; any other path writes Chrome trace-event JSON —
load it at https://ui.perfetto.dev for the per-worker timeline.
``repro trace out.trace.json`` prints the per-worker/per-stage summary
with straggler and imbalance ratios.  Tracing never changes results::

    python -m repro run graph.txt --app pagerank --backend process \
        --trace out.trace.json
    python -m repro trace out.trace.json

Pipeline specs
--------------
``python -m repro pipeline spec.json`` executes one serialized run —
generate/load, partition, optionally refine, execute, report.  A spec is
a single JSON object::

    {
      "source": "powerlaw?vertices=10000,eta=2.2",
      "partition": "ebv?alpha=1.0",
      "parts": 8,
      "refine": true,
      "app": "pagerank",
      "backend": "process",
      "cost_model": {"seconds_per_message": 2e-7}
    }

``source`` may also be ``"file?path=graph.txt"``.  The same document
round-trips through :class:`repro.pipeline.PipelineSpec` and the fluent
:class:`repro.pipeline.Pipeline` builder.

Checkpoint/restart
------------------
A spec with a ``checkpoint`` entry snapshots the BSP run every
``every`` supersteps (atomic, checksummed — see :mod:`repro.checkpoint`)
and drops its own serialized spec next to the snapshots; after a crash
(power loss, OOM kill, a SIGKILL'd worker) the run continues from the
newest snapshot, bit-identical to an uninterrupted execution::

    {"source": "...", "app": "pagerank", "backend": "process",
     "checkpoint": {"dir": "ckpt/", "every": 2}}

    python -m repro pipeline spec.json      # crashes at superstep 17
    python -m repro resume ckpt/            # finishes the same run
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings
from typing import List, Optional

import numpy as np

from .analysis import breakdown_row, render_table
from .apps import default_source
from .checkpoint import CheckpointError
from .experiments import default_config
from .graph import generate_graph, graph_stats, read_edge_list, write_edge_list
from .partition import save_partition
from .pipeline import (
    Pipeline,
    PipelineSpec,
    RegistryError,
    SpecError,
    parse_spec,
    resume_pipeline,
    run_spec,
)
from .pipeline import registries

__all__ = ["main", "build_parser"]


def _registry_arg(registry):
    """argparse ``type`` validating a component spec against a registry.

    Accepts full spec strings (``"ebv?alpha=2"``); rejects unknown names
    at parse time with the registry's self-documenting message.
    """

    def validate(value: str) -> str:
        try:
            name, _ = parse_spec(value)
            registry.canonical(name)
        except RegistryError as exc:
            raise argparse.ArgumentTypeError(str(exc)) from exc
        return value

    validate.__name__ = f"{registry.kind}-spec"
    return validate


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="EBV graph partitioning reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generator_kinds = tuple(
        k for k in registries.GENERATORS.names() if k != "file"
    )
    gen = sub.add_parser("generate", help="generate a synthetic graph")
    gen.add_argument("output", help="edge-list file to write")
    gen.add_argument("--kind", choices=generator_kinds, default="powerlaw")
    gen.add_argument("--vertices", type=int, default=10_000)
    gen.add_argument("--eta", type=float, default=2.2)
    gen.add_argument("--min-degree", type=int, default=3)
    gen.add_argument("--directed", action="store_true")
    gen.add_argument("--seed", type=int, default=0)

    stats = sub.add_parser("stats", help="print Table I statistics")
    stats.add_argument("input", help="edge-list file")

    method_help = (
        "partitioner spec (name plus optional kwargs, e.g. 'ebv?alpha=2'); "
        f"available: {', '.join(registries.PARTITIONERS.names())}"
    )
    part = sub.add_parser("partition", help="partition a graph")
    part.add_argument("input", help="edge-list file")
    part.add_argument(
        "--method",
        type=_registry_arg(registries.PARTITIONERS),
        default="ebv",
        help=method_help,
    )
    part.add_argument("--parts", type=int, default=8)
    part.add_argument("--refine", action="store_true", help="apply the post-pass")
    part.add_argument("--output", help="write per-edge part ids here")

    sp = sub.add_parser(
        "stream-partition",
        help="partition an on-disk edge stream out of core (O(chunk) memory)",
    )
    sp.add_argument("input", help="edge-list text file or (m, 2) .npy edge array")
    sp.add_argument(
        "--format",
        choices=("auto",) + registries.STREAMS.names(),
        default="auto",
        help="stream reader (auto: .npy extension selects npy, else edgelist)",
    )
    sp.add_argument(
        "--method",
        type=_registry_arg(registries.PARTITIONERS),
        default="ebv-stream",
        help=(
            "streaming-capable partitioner spec (e.g. "
            "'ebv-stream?chunk_size=4096', 'ebv-sharded?sort_edges=false'); "
            f"available: {', '.join(registries.PARTITIONERS.names())}"
        ),
    )
    sp.add_argument("--parts", type=int, default=8)
    sp.add_argument(
        "--chunk-size",
        type=int,
        default=65536,
        help="reader chunk in edges (results never depend on it; the driver "
        "re-buffers into the partitioner's window)",
    )
    sp.add_argument(
        "--spill-dir",
        default=None,
        help="directory for the per-partition shards (default: <input>.spill)",
    )
    sp.add_argument(
        "--overwrite", action="store_true", help="replace an existing spill dir"
    )
    sp.add_argument(
        "--json", action="store_true",
        help="print the machine-readable manifest + timing JSON",
    )

    run = sub.add_parser("run", help="run an application on a partitioned graph")
    run.add_argument("input", help="edge-list file")
    run.add_argument(
        "--app",
        type=_registry_arg(registries.APPS),
        default="CC",
        help=(
            "application spec (e.g. 'pr?pagerank_iters=10'); "
            f"available: {', '.join(registries.APPS.names())}"
        ),
    )
    run.add_argument(
        "--method",
        type=_registry_arg(registries.PARTITIONERS),
        default="ebv",
        help=method_help,
    )
    run.add_argument("--workers", type=int, default=8)
    run.add_argument("--source", type=int, default=None, help="SSSP/BFS source")
    run.add_argument(
        "--backend",
        type=_registry_arg(registries.BACKENDS),
        default="serial",
        help=(
            "runtime backend spec (e.g. 'process?start_method=spawn'); "
            f"available: {', '.join(registries.BACKENDS.names())}"
        ),
    )
    run.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record an execution trace here (.jsonl for line-delimited "
        "JSON, anything else for Perfetto-loadable Chrome trace JSON); "
        "tracing never changes results",
    )

    mut = sub.add_parser(
        "mutate",
        help="apply an edge mutation batch to a partitioned graph and run "
        "the incremental (warm-started) app on the result",
    )
    mut.add_argument("input", help="edge-list file (the pre-mutation graph)")
    mut.add_argument(
        "--mutations",
        required=True,
        metavar="FILE",
        help="mutation file: one op per line, '+ u v [w]' inserts and "
        "'- u v' deletes; '#' starts a comment",
    )
    mut.add_argument(
        "--method",
        type=_registry_arg(registries.PARTITIONERS),
        default="ebv-stream",
        help="partitioner used for the base partition and for re-assigning "
        f"mutated edges; available: {', '.join(registries.PARTITIONERS.names())}",
    )
    mut.add_argument("--parts", type=int, default=8)
    mut.add_argument(
        "--app",
        choices=("cc", "pr", "none"),
        default="cc",
        help="app to run cold on the base graph and warm (delta) on the "
        "mutated graph; 'none' only patches the partition",
    )
    mut.add_argument(
        "--backend",
        type=_registry_arg(registries.BACKENDS),
        default="serial",
        help=(
            "runtime backend spec (e.g. 'process?start_method=spawn'); "
            f"available: {', '.join(registries.BACKENDS.names())}"
        ),
    )
    mut.add_argument(
        "--repartition-threshold",
        type=float,
        default=None,
        metavar="FRAC",
        help="touched-edge fraction above which the escape hatch does a "
        "full repartition instead of incremental maintenance "
        "(default 0.25)",
    )
    mut.add_argument(
        "--check",
        action="store_true",
        help="differential harness: also rebuild-and-run from scratch and "
        "fail (exit 1) unless incremental CC is bit-identical / "
        "incremental PageRank is within --tol",
    )
    mut.add_argument(
        "--tol",
        type=float,
        default=1e-8,
        metavar="EPS",
        help="max-abs-difference tolerance for the PageRank --check "
        "(CC is always exact)",
    )
    mut.add_argument(
        "--json", action="store_true",
        help="print the machine-readable drift + run report JSON",
    )

    trace = sub.add_parser(
        "trace",
        help="summarize a recorded execution trace (per-worker/per-stage "
        "walls, straggler + imbalance ratios)",
    )
    trace.add_argument("input", help="trace file written by --trace or a spec's 'trace' entry")
    trace.add_argument(
        "--json", action="store_true",
        help="print the machine-readable summary JSON",
    )

    pipe = sub.add_parser("pipeline", help="execute a JSON pipeline spec")
    pipe.add_argument("spec", help="path to a JSON spec file, or '-' for stdin")
    pipe.add_argument(
        "--json", action="store_true", help="print the machine-readable result JSON"
    )

    res = sub.add_parser(
        "resume",
        help="resume a crashed checkpointed pipeline run from its newest snapshot",
    )
    res.add_argument(
        "dir",
        help="checkpoint directory written by a pipeline spec with a "
        "'checkpoint' entry (holds pipeline.json + step-NNNNNN snapshots)",
    )
    res.add_argument(
        "--json", action="store_true", help="print the machine-readable result JSON"
    )

    exp = sub.add_parser("experiment", help="regenerate a paper artifact")
    exp.add_argument("name", choices=registries.EXPERIMENTS.names())
    exp.add_argument("--scale", type=float, default=None)

    work = sub.add_parser(
        "worker",
        help="serve one standalone socket-backend worker "
        "(pair with --backend 'socket?workers=...' on the coordinator)",
    )
    work.add_argument(
        "--listen",
        required=True,
        metavar="HOST:PORT",
        help="address to bind (port 0 picks a free port; the bound "
        "address is announced on stdout)",
    )
    work.add_argument(
        "--sessions",
        type=int,
        default=1,
        metavar="N",
        help="number of coordinator sessions to serve before exiting "
        "(0 = serve forever; default 1)",
    )

    lint = sub.add_parser(
        "lint",
        help="run the domain-aware static-analysis pass over src/repro",
    )
    lint.add_argument(
        "root",
        nargs="?",
        default=None,
        help="file or directory to lint (default: the installed repro package)",
    )
    lint.add_argument(
        "--json", action="store_true", help="emit the machine-readable JSON report"
    )
    lint.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline file of accepted findings (default: ./lint-baseline.json "
        "when present)",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="record every current non-suppressed finding into the baseline "
        "file and exit 0",
    )
    lint.add_argument(
        "--rules",
        default=None,
        metavar="ID[,ID...]",
        help="comma-separated rule ids to run (default: all registered rules)",
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    lint.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the per-file result cache "
        "(.repro-lint-cache.json)",
    )
    lint.add_argument(
        "--cache",
        default=None,
        metavar="PATH",
        help="cache file location (default: ./.repro-lint-cache.json)",
    )
    lint.add_argument(
        "-v", "--verbose", action="store_true",
        help="also list baselined and suppressed findings",
    )
    return parser


def _cmd_generate(args) -> int:
    opts = {"vertices": args.vertices, "seed": args.seed, "directed": args.directed}
    if args.kind == "powerlaw":
        opts.update(eta=args.eta, min_degree=args.min_degree)
    g = generate_graph(args.kind, **opts)
    write_edge_list(g, args.output)
    print(f"wrote {g.num_edges} edges over {g.num_vertices} vertices to {args.output}")
    return 0


def _cmd_stats(args) -> int:
    g = read_edge_list(args.input)
    s = graph_stats(g)
    print(
        render_table(
            ["Graph", "Type", "V", "E", "AvgDeg", "eta"],
            [(s.name, s.kind, s.num_vertices, s.num_edges,
              f"{s.average_degree:.2f}", f"{s.eta:.2f}")],
        )
    )
    return 0


def _cmd_partition(args) -> int:
    g = read_edge_list(args.input)
    try:
        result = (
            Pipeline()
            .source(g)
            .partition(args.method, parts=args.parts)
            .refine(args.refine)
            .execute()
        )
    except (SpecError, RegistryError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    m = result.metrics
    print(
        render_table(
            ["Method", "Parts", "EdgeImb", "VertImb", "RF"],
            [(m.method, args.parts, f"{m.edge_imbalance:.3f}",
              f"{m.vertex_imbalance:.3f}", f"{m.replication:.3f}")],
        )
    )
    if args.output:
        save_partition(result.partition, args.output)
        print(f"partition written to {args.output}")
    return 0


def _cmd_stream_partition(args) -> int:
    from time import perf_counter

    from .stream import StreamError, stream_partition

    fmt = args.format
    if fmt == "auto":
        fmt = "npy" if args.input.endswith(".npy") else "edgelist"
    spill_dir = args.spill_dir or args.input + ".spill"
    t0 = perf_counter()
    try:
        stream = registries.STREAMS.create(
            fmt, path=args.input, chunk_size=args.chunk_size
        )
        partitioner = registries.PARTITIONERS.create(args.method)
        spilled = stream_partition(
            stream, partitioner, args.parts, spill_dir, overwrite=args.overwrite
        )
    except (SpecError, RegistryError, StreamError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    seconds = perf_counter() - t0
    try:
        import resource

        peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        if sys.platform == "darwin":  # ru_maxrss is bytes on macOS, KB elsewhere
            peak_rss_kb //= 1024
    except ImportError:  # pragma: no cover - non-POSIX
        peak_rss_kb = None
    manifest = spilled.manifest
    if args.json:
        payload = dict(manifest)
        payload["seconds"] = seconds
        payload["peak_rss_kb"] = peak_rss_kb
        payload["spill_dir"] = spilled.directory
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    counts = spilled.edge_counts
    mean = counts.mean() if counts.size else 0.0
    imbalance = float(counts.max() / mean) if mean else 1.0
    throughput = manifest["num_edges"] / seconds if seconds > 0 else float("inf")
    print(
        render_table(
            ["Method", "Parts", "E", "V", "EdgeImb", "RF", "Spill MB",
             "Edges/s", "PeakRSS MB"],
            [(
                manifest["method"], manifest["num_parts"],
                manifest["num_edges"], manifest["num_vertices"],
                f"{imbalance:.3f}", f"{manifest['replication_factor']:.3f}",
                f"{manifest['bytes_spilled'] / 1e6:.1f}",
                f"{throughput:.0f}",
                "?" if peak_rss_kb is None else f"{peak_rss_kb / 1024:.1f}",
            )],
        )
    )
    print(f"shards + manifest written to {spilled.directory}")
    return 0


def _cmd_run(args) -> int:
    g = read_edge_list(args.input)
    app_name = registries.APPS.canonical(parse_spec(args.app)[0])
    overrides = {} if args.source is None else {"source": args.source}
    try:
        result = (
            Pipeline()
            .source(g)
            .partition(args.method, parts=args.workers)
            .run(args.app, **overrides)
            .backend(args.backend)
            .trace(args.trace)
            .execute()
        )
    except (SpecError, RegistryError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    run = result.run
    row = breakdown_row(run)
    print(
        render_table(
            ["App", "Method", "Backend", "Workers", "Supersteps", "Messages",
             "comp", "comm", "dC", "time"],
            [(app_name.upper(), row.method, run.backend, args.workers,
              run.num_supersteps, run.total_messages, f"{row.comp:.4f}",
              f"{row.comm:.4f}", f"{row.delta_c:.4f}",
              f"{row.execution_time:.4f}")],
        )
    )
    if app_name in ("sssp", "bfs"):
        reached = int(np.isfinite(run.values).sum())
        print(f"reached {reached}/{g.num_vertices} vertices from source "
              f"{args.source if args.source is not None else default_source(g)}")
    if result.trace_path is not None:
        print(f"trace written to {result.trace_path} "
              f"(inspect with: python -m repro trace {result.trace_path})")
    return 0


def _cmd_mutate(args) -> int:
    from .bsp import BSPEngine, build_distributed_graph
    from .frameworks import make_program
    from .mutate import (
        MutationBatch,
        apply_mutations,
        cc_warm_labels,
        pr_warm_values,
    )

    # PageRank runs tolerance-governed so incremental-vs-rebuild lands on
    # the same fixpoint; 300 iterations is an ample budget at 1e-12.
    pr_kwargs = {"pagerank_iters": 300, "pagerank_tol": 1e-12}
    try:
        g = read_edge_list(args.input)
        batch = MutationBatch.from_file(args.mutations)
        partitioner = registries.PARTITIONERS.create(args.method)
        base = partitioner.partition(g, args.parts)
        extra = {} if args.repartition_threshold is None else {
            "repartition_threshold": args.repartition_threshold
        }
        mutation = apply_mutations(
            base, batch, partitioner, compare_full=True, **extra
        )
    except (SpecError, RegistryError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    payload = {
        "input": args.input,
        "mutations": args.mutations,
        "method": registries.PARTITIONERS.canonical(parse_spec(args.method)[0]),
        "parts": args.parts,
        "mutation": mutation.report(),
    }
    check_failed = False
    if args.app != "none":
        try:
            backend = registries.BACKENDS.create(args.backend)
        except (SpecError, RegistryError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        engine = BSPEngine(backend=backend)
        cold_dg = build_distributed_graph(base)
        warm_dg = build_distributed_graph(mutation.partition)
        n_new = mutation.graph.num_vertices
        if args.app == "cc":
            cold = engine.run(cold_dg, make_program("CC", g))
            seed = cc_warm_labels(cold.values, mutation)
            warm = engine.run(
                warm_dg,
                make_program("CC-DELTA", mutation.graph, prev_values=seed),
            )
        else:
            cold = engine.run(cold_dg, make_program("PR", g, **pr_kwargs))
            seed = pr_warm_values(cold.values, n_new)
            warm = engine.run(
                warm_dg,
                make_program(
                    "PR-DELTA", mutation.graph, prev_values=seed,
                    delta_iters=pr_kwargs["pagerank_iters"],
                    pagerank_tol=pr_kwargs["pagerank_tol"],
                ),
            )
        payload["run"] = {
            "app": args.app,
            "backend": warm.backend,
            "cold_supersteps": cold.num_supersteps,
            "warm_supersteps": warm.num_supersteps,
            "cold_messages": int(cold.total_messages),
            "warm_messages": int(warm.total_messages),
        }
        if args.check:
            if args.app == "cc":
                rebuild = engine.run(warm_dg, make_program("CC", mutation.graph))
                mismatched = int((warm.values != rebuild.values).sum())
                passed = mismatched == 0
                payload["check"] = {
                    "passed": passed, "mismatched_vertices": mismatched,
                }
            else:
                rebuild = engine.run(
                    warm_dg, make_program("PR", mutation.graph, **pr_kwargs)
                )
                diff = (
                    float(np.max(np.abs(warm.values - rebuild.values)))
                    if n_new else 0.0
                )
                passed = diff <= args.tol
                payload["check"] = {
                    "passed": passed, "max_abs_diff": diff, "tol": args.tol,
                }
            check_failed = not passed
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 1 if check_failed else 0
    rep = payload["mutation"]
    print(
        render_table(
            ["Mode", "Ins", "Del", "Touched", "Reassigned",
             "RF before", "RF after", "RF full", "Drift"],
            [(
                rep["mode"], rep["num_inserted"], rep["num_deleted"],
                f"{rep['touched_fraction']:.4f}", rep["reassigned_edges"],
                f"{rep['rf_before']:.3f}", f"{rep['rf_after']:.3f}",
                f"{rep['rf_full']:.3f}" if "rf_full" in rep else "?",
                f"{rep['drift']:.4f}" if "drift" in rep else "?",
            )],
        )
    )
    if "run" in payload:
        r = payload["run"]
        print(
            render_table(
                ["App", "Backend", "ColdSteps", "WarmSteps",
                 "ColdMsgs", "WarmMsgs"],
                [(
                    args.app.upper(), r["backend"], r["cold_supersteps"],
                    r["warm_supersteps"], r["cold_messages"],
                    r["warm_messages"],
                )],
            )
        )
    if "check" in payload:
        c = payload["check"]
        detail = (
            f"{c['mismatched_vertices']} mismatched labels"
            if args.app == "cc"
            else f"max|diff| = {c['max_abs_diff']:.3e} (tol {c['tol']:g})"
        )
        print(
            "differential check (incremental vs rebuild): "
            f"{'PASS' if c['passed'] else 'FAIL'} — {detail}"
        )
    return 1 if check_failed else 0


def _cmd_trace(args) -> int:
    import dataclasses as _dc

    from .obs import load_trace, render_trace_summary, summarize_trace

    try:
        trace = load_trace(args.input)
        summary = summarize_trace(trace)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    dropped = trace.get("meta", {}).get("dropped_events", 0)
    if dropped:
        print(
            f"warning: {args.input}: {dropped} torn record(s) dropped "
            "(trace from a crashed run?); tables below cover the surviving spans",
            file=sys.stderr,
        )
    if args.json:
        print(json.dumps(_dc.asdict(summary), indent=2, sort_keys=True))
    else:
        print(render_trace_summary(summary))
    return 0


def _print_pipeline_result(result, as_json: bool) -> None:
    """Shared reporting for the ``pipeline`` and ``resume`` commands."""
    if as_json:
        print(result.to_json())
        return
    g, m = result.graph, result.metrics
    print(f"graph: {g.name} |V|={g.num_vertices} |E|={g.num_edges}")
    print(
        render_table(
            ["Method", "Parts", "EdgeImb", "VertImb", "RF"],
            [(m.method, result.partition.num_parts, f"{m.edge_imbalance:.3f}",
              f"{m.vertex_imbalance:.3f}", f"{m.replication:.3f}")],
        )
    )
    if result.run is not None:
        run = result.run
        row = breakdown_row(run)
        print(
            render_table(
                ["App", "Method", "Workers", "Supersteps", "Messages",
                 "comp", "comm", "dC", "time"],
                [(run.program, row.method, run.num_workers, run.num_supersteps,
                  run.total_messages, f"{row.comp:.4f}", f"{row.comm:.4f}",
                  f"{row.delta_c:.4f}", f"{row.execution_time:.4f}")],
            )
        )
        if run.resumed_from is not None:
            replayed = run.num_supersteps - run.resumed_from
            print(
                f"resumed from superstep {run.resumed_from} "
                f"({replayed} superstep{'s' if replayed != 1 else ''} executed "
                "after resume)"
            )
    if result.checkpoint_dir is not None:
        print(f"checkpoints in {result.checkpoint_dir}")
    print(
        render_table(
            ["Stage", "Seconds"],
            [(stage, f"{seconds:.4f}") for stage, seconds in result.timings.items()],
        )
    )


def _cmd_pipeline(args) -> int:
    if args.spec == "-":
        text = sys.stdin.read()
    else:
        try:
            with open(args.spec, "r", encoding="utf-8") as fh:
                text = fh.read()
        except OSError as exc:
            print(f"error: cannot read spec file: {exc}", file=sys.stderr)
            return 2
    try:
        spec = PipelineSpec.from_json(text)
        result = run_spec(spec)
    except (SpecError, RegistryError, CheckpointError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _print_pipeline_result(result, args.json)
    return 0


def _cmd_resume(args) -> int:
    try:
        result = resume_pipeline(args.dir)
    except (SpecError, RegistryError, CheckpointError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _print_pipeline_result(result, args.json)
    return 0


def _cmd_experiment(args) -> int:
    config = default_config()
    if args.scale is not None:
        config.scale = args.scale
    print(registries.EXPERIMENTS.get(args.name)(config))
    return 0


def _cmd_lint(args) -> int:
    from pathlib import Path

    from .lint import RULES, Baseline, render_json, render_text, run_lint
    from .pipeline.registry import UnknownComponentError

    if args.list_rules:
        for name, description in RULES.describe():
            print(f"{name:24s} {description}")
        return 0

    rule_ids = None
    if args.rules:
        rule_ids = [r.strip() for r in args.rules.split(",") if r.strip()]
        try:
            for rule_id in rule_ids:
                RULES.canonical(rule_id)
        except UnknownComponentError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    baseline_path = Path(args.baseline) if args.baseline else Path("lint-baseline.json")
    baseline = Baseline()
    if not args.write_baseline and baseline_path.is_file():
        baseline = Baseline.load(baseline_path)

    cache_path = None if args.no_cache else Path(args.cache or ".repro-lint-cache.json")
    root = Path(args.root) if args.root else None
    report = run_lint(
        root,
        rule_ids=rule_ids,
        baseline=baseline,
        cache_path=cache_path,
        use_cache=not args.no_cache,
    )

    if args.write_baseline:
        Baseline.from_findings(report.all_nonsuppressed()).save(baseline_path)
        print(
            f"wrote {len(report.all_nonsuppressed())} finding(s) to {baseline_path}"
        )
        return 0

    print(render_json(report) if args.json else render_text(report, verbose=args.verbose))
    return report.exit_code


def _cmd_worker(args) -> int:
    from .runtime.socket import serve_worker
    from .runtime.wire import parse_hostport

    if args.sessions < 0:
        print("error: --sessions must be >= 0", file=sys.stderr)
        return 2
    try:
        parse_hostport(args.listen)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        return serve_worker(args.listen, sessions=args.sessions)
    except OSError as exc:  # bind failure: port busy, bad interface, ...
        print(f"error: cannot listen on {args.listen}: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 130


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "generate": _cmd_generate,
        "stats": _cmd_stats,
        "partition": _cmd_partition,
        "stream-partition": _cmd_stream_partition,
        "run": _cmd_run,
        "pipeline": _cmd_pipeline,
        "resume": _cmd_resume,
        "experiment": _cmd_experiment,
        "mutate": _cmd_mutate,
        "trace": _cmd_trace,
        "lint": _cmd_lint,
        "worker": _cmd_worker,
    }[args.command]
    return handler(args)


_DEPRECATED_VIEWS = {
    "PARTITIONERS": registries.PARTITIONERS,
    "EXPERIMENTS": registries.EXPERIMENTS,
}


def __getattr__(name: str):
    """Deprecation shims: the old module-level dicts as registry views.

    ``cli.PARTITIONERS`` / ``cli.EXPERIMENTS`` remain importable for
    external tooling and the benchmark harness, but are now live
    read-only views over :mod:`repro.pipeline.registries`.
    """
    if name in _DEPRECATED_VIEWS:
        warnings.warn(
            f"repro.cli.{name} is deprecated; use "
            f"repro.pipeline.registries.{name} instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return _DEPRECATED_VIEWS[name].as_view()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
