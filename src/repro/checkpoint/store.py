"""Snapshot storage: atomic directories, checksummed manifests.

Layout
------
A checkpoint *root* holds one subdirectory per snapshot plus nothing
else the store depends on (pipeline-level callers drop ``pipeline.json``
and a ``spill/`` directory next to the snapshots)::

    root/
      step-000002/
        manifest.json     # format, superstep, fingerprint, checksums
        state.npz         # per-worker arrays: values_00000, active_00000, ...
        supersteps.npz    # stacked (k, p) work/sent/received/comp/comm
      step-000004/
      ...

Atomicity: a snapshot is staged in ``root/.tmp-step-*``; payload files
are written first, then ``manifest.json`` (carrying each payload's
SHA-256 and byte size) is written and fsynced, and only then is the
staging directory renamed into place.  A crash at any point leaves
either the previous snapshots untouched plus at most one ``.tmp-*``
directory (ignored and garbage-collected by later writes), or the new
snapshot complete.  :func:`load_snapshot` re-hashes every payload
against the manifest, so torn or bit-flipped files are detected and
rejected — never silently resumed.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import shutil
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

__all__ = [
    "CheckpointError",
    "Snapshot",
    "write_snapshot",
    "load_snapshot",
    "latest_snapshot_dir",
    "list_snapshots",
]

SNAPSHOT_FORMAT = "repro-checkpoint"
SNAPSHOT_VERSION = 1

_MANIFEST = "manifest.json"
_STATE = "state.npz"
_SUPERSTEPS = "supersteps.npz"
_STEP_RE = re.compile(r"^step-(\d{6,})$")
#: the stacked per-superstep record arrays, in manifest order.
_SUPERSTEP_FIELDS = ("work", "sent", "received", "comp_seconds", "comm_seconds")


class CheckpointError(RuntimeError):
    """A checkpoint is missing, corrupt, torn, or belongs to another run."""


def _step_dirname(superstep: int) -> str:
    return f"step-{superstep:06d}"


def _sha256(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


@dataclass
class Snapshot:
    """One loaded, checksum-verified snapshot.

    ``arrays`` maps array kind (``"values"``, ``"changed"``, and
    ``"active"`` or ``"partials"`` depending on program mode) to the
    per-worker list; ``supersteps`` is the reconstructed
    :class:`~repro.bsp.engine.SuperstepStats` list for every superstep
    completed before the snapshot was taken.
    """

    directory: str
    superstep: int
    done: bool
    fingerprint: Dict[str, Any]
    meta: Dict[str, Any]
    arrays: Dict[str, List[np.ndarray]]
    supersteps: List  # List[SuperstepStats]; typed loosely to avoid an import cycle


def list_snapshots(root: str) -> List[str]:
    """Valid-looking snapshot directories under ``root``, oldest first.

    Only checks naming (``step-NNNNNN`` with a manifest present);
    integrity is verified by :func:`load_snapshot`.
    """
    if not os.path.isdir(root):
        return []
    found = []
    for name in os.listdir(root):
        match = _STEP_RE.match(name)
        path = os.path.join(root, name)
        if match and os.path.isfile(os.path.join(path, _MANIFEST)):
            found.append((int(match.group(1)), path))
    return [path for _, path in sorted(found)]


def clear_snapshots(root: str) -> int:
    """Remove every snapshot (and staging leftovers) under ``root``.

    Called by the engine when a *fresh* checkpointed run starts: stale
    snapshots from a previous run would otherwise poison retention
    pruning (they count toward ``keep``) and resume (the stale final
    snapshot shadows the new run's progress).  Returns the number of
    snapshots removed.
    """
    removed = 0
    if not os.path.isdir(root):
        return removed
    for path in list_snapshots(root):
        shutil.rmtree(path, ignore_errors=True)
        removed += 1
    for name in os.listdir(root):
        if name.startswith(".tmp-step-") or name.startswith(".old-step-"):
            shutil.rmtree(os.path.join(root, name), ignore_errors=True)
    return removed


def latest_snapshot_dir(root: str) -> str:
    """The newest snapshot directory under ``root`` (highest superstep)."""
    snaps = list_snapshots(root)
    if not snaps:
        raise CheckpointError(
            f"{root!r} contains no checkpoint snapshots (expected step-NNNNNN "
            "directories with a manifest.json)"
        )
    return snaps[-1]


def write_snapshot(
    root: str,
    *,
    superstep: int,
    done: bool,
    fingerprint: Dict[str, Any],
    meta: Dict[str, Any],
    arrays: Dict[str, List[np.ndarray]],
    supersteps: List,
    keep: Optional[int] = 2,
) -> str:
    """Atomically persist one snapshot; return its final directory.

    ``keep`` prunes all but the newest ``keep`` snapshots after a
    successful write (``None`` keeps everything — the crash-matrix test
    harness resumes from every boundary of one run).  It must be an
    integer >= 1 or ``None``: ``keep=0`` would make the post-write
    prune delete every snapshot except the one just published — and the
    final snapshot is useless for mid-run recovery, so retention of 0
    silently breaks ``max_recoveries`` and ``repro resume``.
    """
    if keep is not None and (isinstance(keep, bool) or not isinstance(keep, int) or keep < 1):
        raise CheckpointError(
            f"snapshot retention 'keep' must be an integer >= 1 or None "
            f"(keep all), got {keep!r}; keep=0 would prune every snapshot "
            "a recovery or resume could restore from"
        )
    os.makedirs(root, exist_ok=True)
    final_dir = os.path.join(root, _step_dirname(superstep))
    tmp_dir = os.path.join(root, f".tmp-{_step_dirname(superstep)}-{os.getpid()}")
    if os.path.isdir(tmp_dir):
        shutil.rmtree(tmp_dir)
    os.makedirs(tmp_dir)
    try:
        state_payload: Dict[str, np.ndarray] = {}
        for kind, worker_arrays in sorted(arrays.items()):
            for w, arr in enumerate(worker_arrays):
                state_payload[f"{kind}_{w:05d}"] = np.ascontiguousarray(arr)
        np.savez(os.path.join(tmp_dir, _STATE), **state_payload)

        steps_payload = _stack_supersteps(supersteps, meta["num_workers"])
        np.savez(os.path.join(tmp_dir, _SUPERSTEPS), **steps_payload)

        manifest = {
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "superstep": int(superstep),
            "done": bool(done),
            "fingerprint": fingerprint,
            "meta": dict(meta),
            "array_kinds": sorted(arrays),
            "real_seconds": [
                {k: float(v) for k, v in s.real_seconds.items()} for s in supersteps
            ],
            "files": {
                name: {
                    "sha256": _sha256(os.path.join(tmp_dir, name)),
                    "bytes": os.path.getsize(os.path.join(tmp_dir, name)),
                }
                for name in (_STATE, _SUPERSTEPS)
            },
        }
        manifest_path = os.path.join(tmp_dir, _MANIFEST)
        with open(manifest_path, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        # The payloads must be durable before the rename publishes the
        # snapshot — otherwise power loss after the rename commits can
        # leave a published snapshot whose data never reached disk.
        for name in (_STATE, _SUPERSTEPS):
            fd = os.open(os.path.join(tmp_dir, name), os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)

        # Re-checkpointing a boundary that already has a snapshot (a
        # resumed run overtaking its pre-crash snapshots) replaces it
        # with two atomic renames — old aside, new in — never by
        # deleting first: a crash can lose this one boundary only in
        # the two-syscall window between the renames, instead of the
        # whole serialize-and-hash window a rmtree-then-write would
        # leave open.  The retired copy is garbage-collected afterwards
        # (and by the next write's stale-dir sweep if we crash here).
        retired = None
        if os.path.isdir(final_dir):
            retired = os.path.join(root, f".old-{_step_dirname(superstep)}-{os.getpid()}")
            if os.path.isdir(retired):
                shutil.rmtree(retired)
            os.rename(final_dir, retired)
        os.rename(tmp_dir, final_dir)
        if retired is not None:
            shutil.rmtree(retired, ignore_errors=True)
    except BaseException:
        shutil.rmtree(tmp_dir, ignore_errors=True)
        raise
    _fsync_dir(root)
    _prune(root, keep=keep, protect=final_dir)
    return final_dir


def _fsync_dir(path: str) -> None:
    """Best-effort durability for the rename itself."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


def _prune(root: str, keep: Optional[int], protect: str) -> None:
    """Drop old snapshots and stale staging dirs after a successful write."""
    for name in os.listdir(root):
        if name.startswith(".tmp-step-") or name.startswith(".old-step-"):
            shutil.rmtree(os.path.join(root, name), ignore_errors=True)
    if keep is None:
        return
    snaps = list_snapshots(root)
    for path in snaps[: max(0, len(snaps) - keep)]:
        if os.path.abspath(path) != os.path.abspath(protect):
            shutil.rmtree(path, ignore_errors=True)


def _stack_supersteps(supersteps: List, num_workers: int) -> Dict[str, np.ndarray]:
    """Stack the per-superstep record into (k, p) arrays for one npz."""
    k = len(supersteps)
    payload: Dict[str, np.ndarray] = {}
    for fieldname in _SUPERSTEP_FIELDS:
        if k:
            payload[fieldname] = np.stack(
                [np.asarray(getattr(s, fieldname)) for s in supersteps]
            )
        else:
            dtype = np.int64 if fieldname in ("sent", "received") else np.float64
            payload[fieldname] = np.empty((0, num_workers), dtype=dtype)
    return payload


def _load_manifest(directory: str) -> Dict[str, Any]:
    manifest_path = os.path.join(directory, _MANIFEST)
    try:
        with open(manifest_path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
    except OSError as exc:
        raise CheckpointError(
            f"{directory!r} is not a checkpoint snapshot: {exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"corrupted checkpoint manifest {manifest_path!r}: {exc}"
        ) from exc
    if manifest.get("format") != SNAPSHOT_FORMAT:
        raise CheckpointError(f"{manifest_path!r} is not a {SNAPSHOT_FORMAT} manifest")
    if manifest.get("version") != SNAPSHOT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {manifest.get('version')!r} in "
            f"{manifest_path!r} (this build reads version {SNAPSHOT_VERSION})"
        )
    superstep = manifest.get("superstep")
    if isinstance(superstep, bool) or not isinstance(superstep, int) or superstep < 0:
        raise CheckpointError(
            f"checkpoint manifest {manifest_path!r} lacks a valid 'superstep' "
            f"entry (got {superstep!r})"
        )
    if not isinstance(manifest.get("done"), bool):
        raise CheckpointError(
            f"checkpoint manifest {manifest_path!r} lacks a valid 'done' entry"
        )
    return manifest


def load_snapshot(path: str) -> Snapshot:
    """Load and verify one snapshot.

    ``path`` may be a snapshot directory or a checkpoint root.  For a
    root the newest snapshot is loaded, falling back to older ones when
    the newest fails verification — retention keeps more than one
    snapshot precisely so that a snapshot damaged by the crash itself
    does not make the run unresumable.  A *specific* snapshot directory
    is verified strictly: every payload is re-hashed against the
    manifest, and any mismatch (torn write, truncation, bit rot) raises
    :class:`CheckpointError` with no fallback.
    """
    if not os.path.isdir(path):
        raise CheckpointError(f"checkpoint path {path!r} does not exist")
    if not os.path.isfile(os.path.join(path, _MANIFEST)):
        candidates = list_snapshots(path)
        if not candidates:
            latest_snapshot_dir(path)  # raises the canonical empty-root error
        failures = []
        for candidate in reversed(candidates):
            try:
                return _load_snapshot_dir(candidate)
            except CheckpointError as exc:
                failures.append(f"{candidate}: {exc}")
        raise CheckpointError(
            f"every snapshot under {path!r} failed verification:\n  "
            + "\n  ".join(failures)
        )
    return _load_snapshot_dir(path)


def _load_snapshot_dir(path: str) -> Snapshot:
    """Strictly load one specific snapshot directory."""
    manifest = _load_manifest(path)

    files = manifest.get("files")
    if not isinstance(files, dict) or set(files) != {_STATE, _SUPERSTEPS}:
        raise CheckpointError(f"checkpoint manifest in {path!r} lists no payload files")
    for name, entry in files.items():
        payload_path = os.path.join(path, name)
        if not os.path.isfile(payload_path):
            raise CheckpointError(f"checkpoint payload {payload_path!r} is missing")
        size = os.path.getsize(payload_path)
        if size != entry.get("bytes"):
            raise CheckpointError(
                f"torn checkpoint payload {payload_path!r}: {size} bytes on disk, "
                f"manifest promises {entry.get('bytes')}"
            )
        digest = _sha256(payload_path)
        if digest != entry.get("sha256"):
            raise CheckpointError(
                f"checksum mismatch for checkpoint payload {payload_path!r} "
                "(torn or corrupted write); refusing to resume"
            )

    meta = manifest.get("meta") or {}
    num_workers = int(meta.get("num_workers", 0))
    superstep = int(manifest["superstep"])

    try:
        with np.load(os.path.join(path, _STATE)) as npz:
            state_items = {name: npz[name] for name in npz.files}
        with np.load(os.path.join(path, _SUPERSTEPS)) as npz:
            step_items = {name: npz[name] for name in npz.files}
    except (OSError, ValueError) as exc:
        raise CheckpointError(f"unreadable checkpoint payload in {path!r}: {exc}") from exc

    arrays: Dict[str, List[np.ndarray]] = {}
    for kind in manifest.get("array_kinds", []):
        worker_arrays = []
        for w in range(num_workers):
            key = f"{kind}_{w:05d}"
            if key not in state_items:
                raise CheckpointError(
                    f"checkpoint state in {path!r} is missing array {key!r}"
                )
            worker_arrays.append(state_items[key])
        arrays[kind] = worker_arrays

    missing = [f for f in _SUPERSTEP_FIELDS if f not in step_items]
    if missing:
        raise CheckpointError(
            f"checkpoint superstep record in {path!r} is missing {missing}"
        )
    real_seconds = manifest.get("real_seconds", [])
    if step_items["work"].shape[0] != superstep or len(real_seconds) != superstep:
        raise CheckpointError(
            f"checkpoint in {path!r} records "
            f"{step_items['work'].shape[0]} supersteps but claims boundary "
            f"{superstep}"
        )

    from ..bsp.engine import SuperstepStats  # deferred: engine imports us lazily

    supersteps = [
        SuperstepStats(
            work=step_items["work"][i],
            sent=step_items["sent"][i],
            received=step_items["received"][i],
            comp_seconds=step_items["comp_seconds"][i],
            comm_seconds=step_items["comm_seconds"][i],
            real_seconds={k: float(v) for k, v in real_seconds[i].items()},
        )
        for i in range(superstep)
    ]
    return Snapshot(
        directory=path,
        superstep=superstep,
        done=bool(manifest["done"]),
        fingerprint=manifest.get("fingerprint") or {},
        meta=meta,
        arrays=arrays,
        supersteps=supersteps,
    )
