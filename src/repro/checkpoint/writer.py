"""The engine-facing checkpoint writer and session-state restore.

:class:`CheckpointWriter` owns the cadence (``every=k`` superstep
boundaries) and retention (``keep=n`` snapshots, ``None`` = keep all)
policy; the :class:`~repro.bsp.engine.BSPEngine` calls
:meth:`CheckpointWriter.maybe_write` after every completed superstep
(compute + exchange + stats) and forces a final ``done`` snapshot when
the run terminates, so ``resume_from`` on a finished run is a cheap
no-op that reproduces the recorded result.

:func:`restore_state` is the other half: it copies a verified
snapshot's per-worker arrays back into a live
:class:`~repro.runtime.base.WorkerState` *in place*.  In-place is the
whole point — the process backend's arrays are views over
``multiprocessing.shared_memory`` blocks that the persistent children
already map, so restoring through the parent's views rehydrates every
worker without a single extra pickle.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

import numpy as np

from ..obs import NULL_RECORDER
from .store import CheckpointError, write_snapshot

__all__ = ["CheckpointWriter", "restore_state", "state_arrays"]


def state_arrays(state) -> Dict[str, List[np.ndarray]]:
    """The kind -> per-worker-array mapping a snapshot persists.

    ``changed`` (and ``partials``) are recomputed from scratch by every
    compute stage, but they are snapshotted anyway: the cost is a few
    bool/float arrays and it keeps "restore" trivially total — every
    array a backend session allocates is restored bit-for-bit.
    """
    arrays: Dict[str, List[np.ndarray]] = {
        "values": list(state.values),
        "changed": list(state.changed),
    }
    if state.active is not None:
        arrays["active"] = list(state.active)
    if state.partials is not None:
        arrays["partials"] = list(state.partials)
    return arrays


def restore_state(state, arrays: Dict[str, List[np.ndarray]]) -> None:
    """Copy snapshot arrays into a live session's state, in place.

    Validates the array-kind set, per-worker counts, shapes and dtypes
    against the session before touching anything, so a mismatched
    snapshot fails atomically instead of half-restoring.
    """
    session_arrays = state_arrays(state)
    if set(session_arrays) != set(arrays):
        raise CheckpointError(
            f"snapshot holds array kinds {sorted(arrays)} but this run "
            f"allocates {sorted(session_arrays)} (program mode mismatch?)"
        )
    for kind, live in session_arrays.items():
        saved = arrays[kind]
        if len(saved) != len(live):
            raise CheckpointError(
                f"snapshot has {len(saved)} {kind!r} arrays for "
                f"{len(live)} workers"
            )
        for w, (dst, src) in enumerate(zip(live, saved)):
            if dst.shape != src.shape or dst.dtype != src.dtype:
                raise CheckpointError(
                    f"snapshot array {kind}[{w}] is {src.dtype}{src.shape}, "
                    f"session expects {dst.dtype}{dst.shape}"
                )
    for kind, live in session_arrays.items():
        for dst, src in zip(live, arrays[kind]):
            dst[...] = src


def _snapshot_bytes(snapshot_dir: Optional[str]) -> int:
    """Total on-disk bytes of one snapshot directory (traced runs only)."""
    if snapshot_dir is None:
        return 0
    total = 0
    for entry in sorted(os.scandir(snapshot_dir), key=lambda e: e.name):
        if entry.is_file(follow_symlinks=False):
            total += entry.stat(follow_symlinks=False).st_size
    return total


class CheckpointWriter:
    """Write snapshots for one engine run at a fixed superstep cadence.

    An optional :class:`repro.obs.TraceRecorder` turns every snapshot
    write into a ``ckpt.snapshot`` span plus ``checkpoint.bytes`` /
    ``checkpoint.snapshots`` counter updates; with the default null
    recorder nothing is measured and no extra filesystem work happens.
    """

    def __init__(
        self, root: str, every: int = 1, keep: Optional[int] = 2, recorder=None
    ):
        if not isinstance(root, str) or not root:
            raise CheckpointError(f"checkpoint directory must be a path, got {root!r}")
        if isinstance(every, bool) or not isinstance(every, int) or every < 1:
            raise CheckpointError(f"checkpoint_every must be an integer >= 1, got {every!r}")
        if keep is not None and (
            isinstance(keep, bool) or not isinstance(keep, int) or keep < 1
        ):
            raise CheckpointError(
                f"checkpoint_keep must be an integer >= 1 or None, got {keep!r}"
            )
        self.root = root
        self.every = every
        self.keep = keep
        self.recorder = NULL_RECORDER if recorder is None else recorder
        #: directory of the last snapshot this writer produced, if any.
        self.last_snapshot: Optional[str] = None

    def due(self, superstep: int) -> bool:
        """Whether boundary ``superstep`` is on the ``every`` cadence."""
        return superstep > 0 and superstep % self.every == 0

    def maybe_write(
        self,
        *,
        superstep: int,
        done: bool,
        fingerprint: Dict[str, Any],
        meta: Dict[str, Any],
        state,
        supersteps: List,
    ) -> Optional[str]:
        """Snapshot if the boundary is due or the run just finished."""
        if not done and not self.due(superstep):
            return None
        with self.recorder.span(
            "ckpt.snapshot", superstep=superstep, cat="checkpoint"
        ):
            self.last_snapshot = write_snapshot(
                self.root,
                superstep=superstep,
                done=done,
                fingerprint=fingerprint,
                meta=meta,
                arrays=state_arrays(state),
                supersteps=supersteps,
                keep=self.keep,
            )
        if self.recorder.enabled:
            metrics = self.recorder.metrics
            metrics.counter("checkpoint.snapshots").inc()
            metrics.counter("checkpoint.bytes").inc(
                _snapshot_bytes(self.last_snapshot)
            )
        return self.last_snapshot
