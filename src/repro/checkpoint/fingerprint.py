"""Run fingerprints: the identity a snapshot is allowed to resume.

A checkpoint is only as safe as its guard against resuming the *wrong*
run: the same snapshot restored onto a different graph, partition
layout, program parameterization or cost model would produce silently
wrong results instead of a crash.  :func:`compute_fingerprint` builds a
cheap JSON-native identity of everything the resumed superstep loop
depends on:

* the graph (sizes, directedness, CRC-32 of the edge arrays),
* the partition layout (method, worker count, CRC-32 over every local
  subgraph's vertex table, edges and master assignment — this pins the
  exact replica routing),
* the program (class, mode, dtype, and every scalar constructor
  parameter; ndarray parameters such as FEATPROP feature matrices are
  CRC'd),
* the cost model and the superstep cap.

CRC-32 is used instead of a cryptographic hash because the threat model
is accidents (wrong file, drifted config), not adversaries, and the
fingerprint is recomputed on every checkpointed run — it must stay
cheap next to a single superstep.  Payload *integrity* (torn writes)
is separately guarded by the SHA-256 manifest checksums in
:mod:`repro.checkpoint.store`.
"""

from __future__ import annotations

import dataclasses
import json
import zlib
from typing import Any, Dict, Optional

import numpy as np

from .store import CheckpointError

__all__ = ["compute_fingerprint", "verify_fingerprint", "FINGERPRINT_VERSION"]

FINGERPRINT_VERSION = 1


def _crc_array(array: Optional[np.ndarray], acc: int = 0) -> int:
    """Accumulate dtype, shape and bytes of one array into a CRC-32."""
    if array is None:
        return zlib.crc32(b"<none>", acc)
    array = np.ascontiguousarray(array)
    header = f"{array.dtype.str}:{array.shape}".encode()
    return zlib.crc32(array.tobytes(), zlib.crc32(header, acc))


def _graph_fingerprint(graph) -> Dict[str, Any]:
    return {
        "name": graph.name,
        "num_vertices": int(graph.num_vertices),
        "num_edges": int(graph.num_edges),
        "directed": bool(graph.directed),
        "edges_crc": _crc_array(graph.dst, _crc_array(graph.src)),
        "weights_crc": _crc_array(getattr(graph, "weights", None)),
    }


def _partition_fingerprint(dgraph) -> Dict[str, Any]:
    acc = 0
    for local in dgraph.locals:
        acc = _crc_array(local.global_ids, acc)
        acc = _crc_array(local.src, acc)
        acc = _crc_array(local.dst, acc)
        acc = _crc_array(local.is_master, acc)
        acc = _crc_array(local.master_worker, acc)
    return {
        "method": dgraph.partition_method,
        "num_workers": int(dgraph.num_workers),
        "locals_crc": acc,
    }


_SKIP_VALUE = object()


def _fingerprint_value(value: Any):
    """One program parameter as a JSON-native fingerprint value.

    Scalars pass through, numpy scalars are narrowed, ndarrays become a
    CRC marker, and JSON-native containers are fingerprinted
    recursively — two programs differing only inside a list/dict
    parameter must never fingerprint-identical.  Values with no stable
    identity (callables, rngs, open handles) return ``_SKIP_VALUE`` and
    are excluded, as are containers holding any such value.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return {"ndarray_crc": _crc_array(value)}
    if isinstance(value, (list, tuple)):
        items = [_fingerprint_value(item) for item in value]
        if any(item is _SKIP_VALUE for item in items):
            return _SKIP_VALUE
        return ["tuple" if isinstance(value, tuple) else "list", items]
    if isinstance(value, dict):
        if not all(isinstance(k, str) for k in value):
            return _SKIP_VALUE
        items = {k: _fingerprint_value(v) for k, v in sorted(value.items())}
        if any(v is _SKIP_VALUE for v in items.values()):
            return _SKIP_VALUE
        return {"dict": items}
    return _SKIP_VALUE


def _program_fingerprint(program) -> Dict[str, Any]:
    params: Dict[str, Any] = {}
    for key, value in sorted(vars(program).items()):
        if key.startswith("_"):
            continue  # caches (cc roots, CSR) are derived, not identity
        fingerprinted = _fingerprint_value(value)
        if fingerprinted is not _SKIP_VALUE:
            params[key] = fingerprinted
    return {
        "class": type(program).__name__,
        "name": program.name,
        "mode": program.mode,
        "dtype": np.dtype(program.dtype).str,
        "reactivate_changed": bool(program.reactivate_changed),
        "params": params,
    }


def compute_fingerprint(dgraph, program, cost_model, max_supersteps: int) -> Dict[str, Any]:
    """The JSON-native identity of one engine run (see module docstring)."""
    return {
        "fingerprint_version": FINGERPRINT_VERSION,
        "graph": _graph_fingerprint(dgraph.graph),
        "partition": _partition_fingerprint(dgraph),
        "program": _program_fingerprint(program),
        "cost_model": {
            k: float(v) for k, v in dataclasses.asdict(cost_model).items()
        },
        "max_supersteps": int(max_supersteps),
    }


def verify_fingerprint(saved: Dict[str, Any], current: Dict[str, Any]) -> None:
    """Raise :class:`CheckpointError` unless the fingerprints match exactly.

    Both sides are normalized through a JSON round-trip so that a
    fingerprint loaded from a manifest compares equal to one freshly
    computed (tuples vs lists, int widths).
    """
    saved_n = json.loads(json.dumps(saved, sort_keys=True))
    current_n = json.loads(json.dumps(current, sort_keys=True))
    if saved_n == current_n:
        return
    sections = sorted(
        key
        for key in set(saved_n) | set(current_n)
        if saved_n.get(key) != current_n.get(key)
    )
    raise CheckpointError(
        "checkpoint fingerprint does not match this run (stale or foreign "
        f"checkpoint); mismatched sections: {', '.join(sections)}. Resuming "
        "would silently corrupt results, refusing."
    )
