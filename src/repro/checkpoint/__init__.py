"""``repro.checkpoint`` — superstep-granular checkpoint/restart for BSP runs.

The paper's subgraph-centric BSP model assumes long multi-superstep
jobs over partitioned graphs; at production scale a crash at superstep
``k`` would otherwise throw away the whole O(|E|) partition/build plus
all compute.  Pregel-style systems treat superstep-granular
checkpointing as the baseline fault-tolerance mechanism, and this
package is that mechanism for :class:`~repro.bsp.engine.BSPEngine`:

* :mod:`repro.checkpoint.store` — one snapshot per superstep boundary,
  written **atomically** (everything lands in a ``.tmp-*`` staging
  directory which is renamed into place only after a checksummed
  ``manifest.json`` is on disk).  Torn writes, corrupted payloads and
  hand-edited manifests are all detected at load time and rejected with
  :class:`CheckpointError` — a damaged checkpoint is never silently
  resumed.
* :mod:`repro.checkpoint.fingerprint` — a cheap, exact identity of the
  run (graph CRCs, partition layout CRCs, program parameters, cost
  model, superstep cap).  A snapshot only resumes a run whose
  fingerprint matches bit-for-bit; resuming e.g. a different graph,
  worker count or PageRank damping fails eagerly.
* :mod:`repro.checkpoint.writer` — the engine-facing
  :class:`CheckpointWriter` (``every=k`` cadence, ``keep=n`` retention)
  plus :func:`restore_state`, which loads a snapshot's per-worker
  arrays back into any backend session *in place* — including the
  process backend's ``multiprocessing.shared_memory`` blocks, whose
  children observe the restored values through their existing mappings.

The resume contract is **bit-identity**: a run resumed from any
snapshot produces exactly the values, superstep records, message
tallies and cost-model accounting of the uninterrupted run, on every
backend (see ``tests/checkpoint/``).  Only real wall-clock differs —
the pre-crash supersteps keep the walls measured before the crash.
"""

from __future__ import annotations

from .fingerprint import compute_fingerprint, verify_fingerprint
from .store import (
    CheckpointError,
    Snapshot,
    clear_snapshots,
    latest_snapshot_dir,
    list_snapshots,
    load_snapshot,
    write_snapshot,
)
from .writer import CheckpointWriter, restore_state, state_arrays

__all__ = [
    "CheckpointError",
    "CheckpointWriter",
    "Snapshot",
    "clear_snapshots",
    "compute_fingerprint",
    "latest_snapshot_dir",
    "list_snapshots",
    "load_snapshot",
    "restore_state",
    "state_arrays",
    "verify_fingerprint",
    "write_snapshot",
]
