"""repro.lint — domain-aware static analysis for this repository.

Generic linters check style; this package checks the *contracts the
reproduction depends on*: programs are stateless across supersteps
(checkpoint bit-identity), hot paths are deterministic (seeded RNG, no
wall-clock, no unordered-set iteration), runtime workers are pure
(spawn-safe, RPC-ready), registry spec literals match live factory
signatures, and nothing unpicklable or leaky crosses a process
boundary.

Entry points: ``repro lint`` / ``python -m repro lint`` (CLI), or
:func:`run_lint` in-process.  Rules are registered in :data:`RULES`
(a :class:`~repro.pipeline.registry.Registry`); see
:mod:`repro.lint.base` for the three-step recipe for adding one.
"""

from .base import RULES, LintRule, ModuleContext, lint_rule
from .baseline import Baseline
from .engine import LintReport, default_root, iter_python_files, run_lint
from .findings import ERROR, WARNING, Finding
from .reporters import render_json, render_text
from . import rules as _rules  # noqa: F401 - rule registration side effect

__all__ = [
    "Baseline",
    "ERROR",
    "Finding",
    "LintReport",
    "LintRule",
    "ModuleContext",
    "RULES",
    "WARNING",
    "default_root",
    "iter_python_files",
    "lint_rule",
    "render_json",
    "render_text",
    "run_lint",
]
