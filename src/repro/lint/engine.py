"""The lint engine: file walk, per-file caching, suppression and baseline.

One :func:`run_lint` call scans a tree of Python files, runs every
registered (or requested) rule on each, applies inline suppressions,
splits the survivors against the baseline, and returns a
:class:`LintReport` whose :attr:`~LintReport.exit_code` encodes the CI
contract: ``0`` when every finding is suppressed or baseline-carried,
``1`` when anything new surfaced.

Caching
-------
Parsing ~100 modules and re-running five AST rules is cheap but not
free; the engine keeps a JSON cache mapping each file's content digest
to its (post-suppression) findings.  A cache entry is only valid under
the same *rules salt* — a digest over the lint package's own sources
plus the registry modules the conformance rule introspects
(``pipeline/registry.py``, ``pipeline/registries.py``,
``frameworks/base.py``).  Editing any rule or registry invalidates the
whole cache; editing one linted file invalidates exactly that file.
The salt deliberately does *not* cover every module a registered
factory lives in, so a signature change in e.g. ``apps/pagerank.py``
can leave a stale conformance verdict for an *unchanged* file that
references it by spec — run with ``use_cache=False`` (CLI
``--no-cache``, the CI default) for authoritative results.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .base import RULES, LintRule, ModuleContext
from .baseline import Baseline
from .findings import ERROR, Finding
from .suppress import collect_suppressions, is_suppressed

__all__ = ["LintReport", "run_lint", "iter_python_files", "default_root", "rules_salt"]

CACHE_VERSION = 1

#: directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache", ".tmp", "node_modules"}


@dataclass
class LintReport:
    """Outcome of one lint run, split by disposition."""

    root: str
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    cache_hits: int = 0
    rule_ids: List[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        """1 when any new error-severity finding exists, else 0."""
        return 1 if any(f.severity == ERROR for f in self.findings) else 0

    def all_nonsuppressed(self) -> List[Finding]:
        """New + baseline-carried findings (what ``--write-baseline`` records)."""
        return sorted(self.findings + self.baselined, key=lambda f: (f.path, f.line, f.rule))


def default_root() -> Path:
    """The repro package directory — what ``repro lint`` scans by default."""
    return Path(__file__).resolve().parent.parent


def iter_python_files(root: Path) -> List[Path]:
    """Every ``.py`` under ``root`` (or ``root`` itself), sorted for stable output."""
    root = Path(root)
    if root.is_file():
        return [root]
    files: List[Path] = []
    for path in sorted(root.rglob("*.py")):
        if not any(part in _SKIP_DIRS for part in path.parts):
            files.append(path)
    return files


def rules_salt() -> str:
    """Digest over the lint implementation + introspected registry modules."""
    digest = hashlib.sha256()
    lint_dir = Path(__file__).resolve().parent
    package_root = lint_dir.parent
    salted: List[Path] = sorted(lint_dir.rglob("*.py"))
    for rel in ("pipeline/registry.py", "pipeline/registries.py", "frameworks/base.py"):
        candidate = package_root / rel
        if candidate.is_file():
            salted.append(candidate)
    for path in salted:
        digest.update(str(path.name).encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()


def _instantiate_rules(rule_ids: Optional[Sequence[str]]) -> List[LintRule]:
    from . import rules as _rules  # noqa: F401 - registration side effect

    ids = list(rule_ids) if rule_ids else list(RULES.names())
    return [RULES.create(rule_id) for rule_id in ids]


def _load_cache(path: Optional[Path], salt: str) -> Dict[str, Dict]:
    if path is None or not Path(path).is_file():
        return {}
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return {}
    if data.get("version") != CACHE_VERSION or data.get("salt") != salt:
        return {}
    files = data.get("files")
    return files if isinstance(files, dict) else {}


def _save_cache(path: Optional[Path], salt: str, files: Dict[str, Dict]) -> None:
    if path is None:
        return
    payload = {"version": CACHE_VERSION, "salt": salt, "files": files}
    try:
        Path(path).write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
    except OSError:  # a read-only tree never fails the lint itself
        pass


def run_lint(
    root: Optional[Path] = None,
    *,
    rule_ids: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
    cache_path: Optional[Path] = None,
    use_cache: bool = True,
) -> LintReport:
    """Lint every Python file under ``root``; see module docstring."""
    root = Path(root) if root is not None else default_root()
    rules = _instantiate_rules(rule_ids)
    baseline = baseline or Baseline()
    salt = rules_salt() + ":" + ",".join(sorted(rule.id for rule in rules))
    cache = _load_cache(cache_path, salt) if use_cache else {}
    cache_out: Dict[str, Dict] = {}

    report = LintReport(root=str(root), rule_ids=sorted(rule.id for rule in rules))
    raw: List[Finding] = []

    scan_base = root if root.is_dir() else root.parent
    for path in iter_python_files(root):
        rel = path.relative_to(scan_base).as_posix()
        source_bytes = path.read_bytes()
        digest = hashlib.sha256(source_bytes).hexdigest()
        report.files_scanned += 1

        entry = cache.get(rel)
        if entry is not None and entry.get("digest") == digest:
            report.cache_hits += 1
            cache_out[rel] = entry
            raw.extend(Finding.from_dict(f) for f in entry.get("findings", []))
            report.suppressed.extend(
                Finding.from_dict(f) for f in entry.get("suppressed", [])
            )
            continue

        source = source_bytes.decode("utf-8")
        try:
            ctx = ModuleContext.parse(path, rel, source)
        except SyntaxError as exc:
            finding = Finding(
                rule="parse-error",
                path=rel,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"file does not parse: {exc.msg}",
            )
            raw.append(finding)
            cache_out[rel] = {
                "digest": digest,
                "findings": [finding.to_dict()],
                "suppressed": [],
            }
            continue

        suppressions = collect_suppressions(ctx.lines)
        kept: List[Finding] = []
        quieted: List[Finding] = []
        for rule in rules:
            if not rule.applies_to(ctx):
                continue
            for finding in rule.check(ctx):
                (quieted if is_suppressed(finding, suppressions) else kept).append(finding)
        kept.sort(key=lambda f: (f.line, f.col, f.rule))
        raw.extend(kept)
        report.suppressed.extend(quieted)
        cache_out[rel] = {
            "digest": digest,
            "findings": [f.to_dict() for f in kept],
            "suppressed": [f.to_dict() for f in quieted],
        }

    new, carried = baseline.partition(raw)
    report.findings = sorted(new, key=lambda f: (f.path, f.line, f.col, f.rule))
    report.baselined = carried
    if use_cache:
        _save_cache(cache_path, salt, cache_out)
    return report
