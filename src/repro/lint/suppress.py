"""Inline suppression comments: ``# repro: lint-ignore[rule-id]``.

A suppression covers findings of the named rule(s) on its own line, or
— when the comment is the only thing on its line — on the next
non-blank line, so both styles work::

    for w in {a, b}:  # repro: lint-ignore[determinism]
        ...

    # repro: lint-ignore[determinism,process-safety]
    for w in {a, b}:
        ...

Rule ids are required and comma-separated; there is deliberately no
bare blanket form — every suppression names what it silences, so a
``grep lint-ignore`` audit reads as a list of accepted exceptions.
"""

from __future__ import annotations

import re
from typing import Dict, List, Set

from .findings import Finding

__all__ = ["collect_suppressions", "is_suppressed"]

_IGNORE_RE = re.compile(r"#\s*repro:\s*lint-ignore\[([A-Za-z0-9_,\- ]+)\]")


def collect_suppressions(lines: List[str]) -> Dict[int, Set[str]]:
    """Map 1-based line numbers to the rule ids suppressed there."""
    suppressed: Dict[int, Set[str]] = {}
    pending: Set[str] = set()
    for i, line in enumerate(lines, start=1):
        stripped = line.strip()
        match = _IGNORE_RE.search(line)
        ids: Set[str] = set()
        if match:
            ids = {part.strip().lower() for part in match.group(1).split(",") if part.strip()}
        if pending and stripped:
            # A comment-only suppression covers the next non-blank line.
            suppressed.setdefault(i, set()).update(pending)
            pending = set()
        if not ids:
            continue
        if stripped.startswith("#"):
            pending |= ids
        else:
            suppressed.setdefault(i, set()).update(ids)
    return suppressed


def is_suppressed(finding: Finding, suppressions: Dict[int, Set[str]]) -> bool:
    """Whether ``finding`` is silenced by an inline comment."""
    return finding.rule in suppressions.get(finding.line, set())
