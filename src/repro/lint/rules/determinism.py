"""determinism: no unseeded randomness, wall-clock values, or unordered iteration.

Everything this reproduction claims — bit-identical results across
serial/thread/process backends, crash/resume equivalence, byte-stable
golden artifacts — assumes the hot paths are pure functions of their
inputs and seeds.  Three nondeterminism sources are flagged in the
kernel/app/partitioner packages:

* **global / unseeded RNGs** — ``random.random()``-style module-level
  draws and ``np.random.<fn>`` global-state calls; ``default_rng()`` /
  ``RandomState()`` / ``Random()`` constructed *without* a seed.
  Seeded generators (``np.random.default_rng(seed)``) are the blessed
  idiom and pass.
* **wall-clock reads** — ``time.time()``, ``datetime.now()`` and
  friends, plus ``uuid.uuid4``/``os.urandom``.  Interval timing via
  ``perf_counter``/``monotonic`` is *not* flagged: measured stage walls
  are recorded output, never an input to results.  A short audited
  allowlist (:data:`WALL_CLOCK_EXEMPTIONS`) admits individual calls
  whose value is provably recorded metadata — each entry names the
  exact module and call and states why it can never feed a result;
  anything not on the list is flagged as usual.
* **iteration over unordered sets** — ``for x in set(...)``,
  comprehensions over set expressions, and ``list()``/``tuple()``/
  ``enumerate()`` of a set: the iteration order is interpreter-
  dependent, so any ordered output derived from it is nondeterministic.
  Wrapping in ``sorted()`` (or any order-insensitive consumer: ``min``,
  ``max``, ``sum``, ``any``, ``all``, ``len``, ``set``) passes.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Set

from ..base import LintRule, ModuleContext, lint_rule
from ..findings import Finding
from ._util import attr_chain

__all__ = ["DeterminismRule"]

#: packages whose modules feed results (not just reports/plots).  The
#: obs package is included deliberately: the trace recorder runs inside
#: every traced superstep, so a wall-clock read there is one audited
#: exemption away from leaking into an artifact.
HOT_PREFIXES = (
    "apps/",
    "partition/",
    "runtime/",
    "bsp/",
    "stream/",
    "checkpoint/",
    "graph/",
    "frameworks/",
    "obs/",
)

#: audited wall-clock/entropy exemptions: ``(module rel path, dotted
#: call)`` -> why this specific value can never influence a result.
#: Grow this list only with a matching justification; the lint tests
#: pin both the mechanism and the current contents.
WALL_CLOCK_EXEMPTIONS = {
    ("obs/trace.py", "time.time"): (
        "trace-header wall stamp: written once into exported trace "
        "metadata so a human can date the file; never an input to "
        "results, fingerprints, or cost accounting"
    ),
}

#: np.random attributes that are constructors, not global-state draws.
_NP_RANDOM_OK = {"default_rng", "Generator", "RandomState", "SeedSequence", "BitGenerator",
                 "PCG64", "Philox", "MT19937", "SFC64"}
#: RNG constructors that must be called with an explicit seed.
_SEED_REQUIRED = {"default_rng", "RandomState", "Random"}
#: wall-clock / entropy calls, by dotted suffix.
_WALL_CLOCK = {
    ("time", "time"),
    ("time", "time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
    ("uuid", "uuid1"),
    ("uuid", "uuid4"),
    ("os", "urandom"),
}
#: builtins whose result does not depend on argument order.
_ORDER_INSENSITIVE = {"sorted", "min", "max", "sum", "any", "all", "len", "set", "frozenset"}
#: builtins that materialize their argument's order.
_ORDER_SENSITIVE = {"list", "tuple", "enumerate", "iter", "reversed"}


def _module_imports(tree: ast.Module) -> Dict[str, str]:
    """Map local alias -> imported module path for plain imports."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = alias.name
    return aliases


def _from_imports(tree: ast.Module) -> Dict[str, str]:
    """Map local name -> ``module.name`` for from-imports."""
    names: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                names[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return names


def _is_unordered(node: ast.AST) -> bool:
    """Whether ``node`` evaluates to a value with no defined iteration order."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        chain = attr_chain(node.func)
        if chain and chain[-1] in ("set", "frozenset"):
            return True
        # s.union(t), s.intersection(t), ... on an unordered receiver
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in ("union", "intersection", "difference", "symmetric_difference")
            and _is_unordered(node.func.value)
        ):
            return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
        return _is_unordered(node.left) or _is_unordered(node.right)
    return False


@lint_rule
class DeterminismRule(LintRule):
    """No unseeded RNGs, wall-clock reads, or unordered-set iteration in hot paths."""

    id = "determinism"

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.rel.startswith(HOT_PREFIXES)

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        imports = _module_imports(ctx.tree)
        from_names = _from_imports(ctx.tree)
        # Comprehensions that are the direct argument of an
        # order-insensitive consumer are exempt from the set-iteration
        # check: sorted(x for x in s) is deterministic.
        exempt_comps: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                chain = attr_chain(node.func)
                if chain and chain[-1] in _ORDER_INSENSITIVE:
                    for arg in node.args:
                        if isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp, ast.DictComp)):
                            exempt_comps.add(id(arg))

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, imports, from_names)
                yield from self._check_order_sensitive_call(ctx, node)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_unordered(node.iter):
                    yield self._unordered(ctx, node.iter, "a for-loop")
            elif isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.DictComp)):
                if id(node) in exempt_comps:
                    continue
                for comp in node.generators:
                    if _is_unordered(comp.iter):
                        yield self._unordered(ctx, comp.iter, "a comprehension")

    # ------------------------------------------------------------------

    def _check_call(self, ctx, node: ast.Call, imports, from_names) -> Iterable[Finding]:
        chain = attr_chain(node.func)
        if not chain:
            return
        root_module = imports.get(chain[0])
        dotted = from_names.get(chain[0])
        # Wall-clock / entropy reads.  Only chains rooted at an imported
        # module (``time.time()``) or a from-imported name
        # (``datetime.now()`` after ``from datetime import datetime``)
        # are flagged — ``self.date.today()`` is somebody's method.
        rooted = root_module is not None or dotted is not None
        if len(chain) >= 2 and (chain[-2], chain[-1]) in _WALL_CLOCK and rooted:
            # Resolve through the import alias so ``import time as t;
            # t.time()`` cannot dodge (or accidentally claim) an exemption.
            resolved = ".".join((root_module, *chain[1:])) if root_module else ".".join(chain)
            if (ctx.rel, resolved) in WALL_CLOCK_EXEMPTIONS:
                return
            yield self.finding(
                ctx,
                node,
                f"wall-clock/entropy call {'.'.join(chain)}(); results in hot "
                "paths must be a pure function of inputs and seeds (interval "
                "timing belongs to perf_counter/monotonic)",
            )
            return
        if dotted and len(chain) == 1:
            mod, _, name = dotted.rpartition(".")
            if (mod.rsplit(".", 1)[-1], name) in _WALL_CLOCK:
                if (ctx.rel, dotted) in WALL_CLOCK_EXEMPTIONS:
                    return
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock/entropy call {chain[0]}() (imported from {mod}); "
                    "results in hot paths must be a pure function of inputs and seeds",
                )
                return
        # Unseeded RNG constructors ---------------------------------------
        if chain[-1] in _SEED_REQUIRED and not node.args and not node.keywords:
            qualified = ".".join(chain)
            is_np_rng = len(chain) >= 2 and chain[-2] == "random"
            is_stdlib_rng = chain[-1] == "Random" and (
                (len(chain) == 2 and root_module == "random")
                or (len(chain) == 1 and dotted == "random.Random")
            )
            if is_np_rng or is_stdlib_rng or chain[-1] == "default_rng":
                yield self.finding(
                    ctx,
                    node,
                    f"unseeded RNG constructor {qualified}(); pass an explicit seed "
                    "so runs are reproducible",
                )
                return
        # Global-state RNG draws ------------------------------------------
        if len(chain) >= 3 and chain[-2] == "random" and imports.get(chain[0]) == "numpy":
            if chain[-1] not in _NP_RANDOM_OK:
                yield self.finding(
                    ctx,
                    node,
                    f"global numpy RNG call {'.'.join(chain)}(); use a seeded "
                    "np.random.default_rng(seed) generator instead of shared "
                    "global state",
                )
                return
        if len(chain) == 2 and root_module == "random" and chain[-1] not in ("Random", "SystemRandom"):
            yield self.finding(
                ctx,
                node,
                f"global stdlib RNG call {'.'.join(chain)}(); use a seeded "
                "random.Random(seed) instance instead of the shared module RNG",
            )
            return
        if chain[-1] == "SystemRandom":
            yield self.finding(
                ctx,
                node,
                "SystemRandom draws OS entropy and can never be seeded; hot paths "
                "must use a seeded RNG",
            )

    def _check_order_sensitive_call(self, ctx, node: ast.Call) -> Iterable[Finding]:
        chain = attr_chain(node.func)
        if not chain or chain[-1] not in _ORDER_SENSITIVE or len(chain) != 1:
            return
        for arg in node.args:
            if _is_unordered(arg):
                yield self._unordered(ctx, arg, f"{chain[-1]}()")

    def _unordered(self, ctx, node: ast.AST, where: str) -> Finding:
        return self.finding(
            ctx,
            node,
            f"iteration over an unordered set expression in {where}; set order is "
            "interpreter-dependent, so any ordered output derived from it is "
            "nondeterministic — sort first (sorted(...)) or iterate a "
            "deterministic sequence",
        )
