"""program-statelessness: SubgraphProgram instances must be stateless.

The PR-5 bug class: :class:`~repro.bsp.program.SubgraphProgram`
subclasses that cache anything on ``self`` outside ``__init__``
(CC's old hidden ``_built`` flag) silently break checkpoint/resume —
the engine re-instantiates programs when resuming, so any behaviour
keyed on accumulated instance state diverges from an uninterrupted run
and the bit-identity contract is lost.  The rule flags every
``self.<attr>`` write (assign, augmented assign, annotated assign,
``del``) in any method of a program class except ``__init__``,
including writes from functions nested inside methods.

Program classes are recognized syntactically: any class whose base list
names ``SubgraphProgram`` (possibly dotted), or that derives from such
a class defined in the same module.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Set, Tuple

from ..base import LintRule, ModuleContext, lint_rule
from ..findings import Finding
from ._util import base_names, receiver_name

__all__ = ["ProgramStatelessnessRule"]

_PROGRAM_BASE = "SubgraphProgram"


def _program_classes(tree: ast.Module) -> List[ast.ClassDef]:
    """Classes deriving (transitively, within this module) from SubgraphProgram."""
    classes = [node for node in ast.walk(tree) if isinstance(node, ast.ClassDef)]
    program_names: Set[str] = {_PROGRAM_BASE}
    # Fixpoint over in-module inheritance chains (Program -> Base -> SubgraphProgram).
    changed = True
    while changed:
        changed = False
        for cls in classes:
            if cls.name in program_names:
                continue
            if any(base in program_names for base in base_names(cls)):
                program_names.add(cls.name)
                changed = True
    return [cls for cls in classes if cls.name in program_names and cls.name != _PROGRAM_BASE]


def _attribute_writes(fn: ast.FunctionDef, receiver: str) -> Iterator[Tuple[ast.AST, str, str]]:
    """Yield ``(node, attr, verb)`` for every write to ``<receiver>.<attr>``."""

    def is_receiver_attr(target: ast.AST) -> bool:
        # Peel subscripts: ``self.cache[k] = v`` mutates self.cache too.
        while isinstance(target, ast.Subscript):
            target = target.value
        return (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == receiver
        )

    def attr_of(target: ast.AST) -> str:
        while isinstance(target, ast.Subscript):
            target = target.value
        assert isinstance(target, ast.Attribute)
        return target.attr

    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                for elt in target.elts if isinstance(target, (ast.Tuple, ast.List)) else [target]:
                    if is_receiver_attr(elt):
                        yield node, attr_of(elt), "assigns"
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            if is_receiver_attr(node.target):
                yield node, attr_of(node.target), "assigns"
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if is_receiver_attr(target):
                    yield node, attr_of(target), "deletes"


@lint_rule
class ProgramStatelessnessRule(LintRule):
    """No ``self.<attr>`` writes in SubgraphProgram methods outside ``__init__``."""

    id = "program-statelessness"

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for cls in _program_classes(ctx.tree):
            for item in cls.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if item.name == "__init__":
                    continue
                receiver = receiver_name(item)
                if receiver is None:
                    continue
                for node, attr, verb in _attribute_writes(item, receiver):
                    yield self.finding(
                        ctx,
                        node,
                        f"program class {cls.name} {verb} {receiver}.{attr} in "
                        f"{item.name}(); SubgraphProgram instances must be stateless "
                        "outside __init__ — checkpoint resume re-instantiates programs, "
                        "so hidden instance state breaks bit-identical restarts "
                        "(the PR-5 '_built' bug class)",
                    )
