"""Small AST helpers shared by the concrete rules."""

from __future__ import annotations

import ast
from typing import List, Optional

__all__ = ["attr_chain", "base_names", "decorator_names", "receiver_name"]


def attr_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` as ``["a", "b", "c"]``; None for non-name-rooted chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


def base_names(cls: ast.ClassDef) -> List[str]:
    """Last component of every base class expression (``x.Base`` -> ``Base``)."""
    names: List[str] = []
    for base in cls.bases:
        chain = attr_chain(base)
        if chain:
            names.append(chain[-1])
    return names


def decorator_names(fn: ast.AST) -> List[str]:
    """Last component of each decorator (``@abc.abstractmethod`` -> ``abstractmethod``)."""
    names: List[str] = []
    for deco in getattr(fn, "decorator_list", []):
        target = deco.func if isinstance(deco, ast.Call) else deco
        chain = attr_chain(target)
        if chain:
            names.append(chain[-1])
    return names


def receiver_name(fn: ast.FunctionDef) -> Optional[str]:
    """The instance/class argument name of a method (usually ``self``).

    ``None`` for static methods and argument-less functions.
    """
    if "staticmethod" in decorator_names(fn):
        return None
    args = fn.args.posonlyargs + fn.args.args
    return args[0].arg if args else None
