"""process-safety: nothing unpicklable crosses a process boundary, no leaked shm.

Two failure modes specific to the process backend (and to any future
multi-node backend) are caught statically:

* **closure-captured unpicklables** — a ``lambda`` or a function
  defined inside another function cannot be pickled, so passing one as
  ``Process(target=...)`` / ``ProcessPoolExecutor.submit(...)`` works
  under the fork start method and explodes under spawn (macOS/Windows
  default, and the only option across hosts).  Module-level functions
  and bound methods of picklable objects pass.
* **unpaired shared memory** — every module that allocates
  ``multiprocessing.shared_memory`` (directly via
  ``SharedMemory(create=True)`` or through
  :func:`repro.runtime.shm.create_shared_array`) must also contain the
  matching release calls (``close``/``unlink`` or
  ``destroy_shared_array``), and every attach must be matched by a
  ``close``.  A module that allocates and never releases leaks
  ``/dev/shm`` segments on every crash — the resource tracker only
  papers over it with warnings.

The pairing check is per-module by design: ownership of an shm block
must not silently escape the module that created it, which is exactly
the discipline :mod:`repro.runtime.shm` documents.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from ..base import LintRule, ModuleContext, lint_rule
from ..findings import Finding
from ._util import attr_chain

__all__ = ["ProcessSafetyRule"]

#: call names that hand work to another *process*.
_PROCESS_CTORS = {"Process", "ProcessPoolExecutor"}
_SUBMIT_METHODS = {"submit", "map", "apply", "apply_async", "starmap"}


def _local_function_names(fn: ast.AST) -> Set[str]:
    """Names of functions defined directly inside ``fn`` (closures)."""
    names: Set[str] = set()
    for node in ast.walk(fn):
        if node is fn:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(node.name)
    return names


def _call_name(node: ast.Call) -> str:
    chain = attr_chain(node.func)
    return chain[-1] if chain else ""


@lint_rule
class ProcessSafetyRule(LintRule):
    """Nothing unpicklable to process pools; every shm allocation paired with release."""

    id = "process-safety"

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        yield from self._check_unpicklable_targets(ctx)
        yield from self._check_shm_pairing(ctx)

    # ------------------------------------------------------------------
    # Closure / lambda shipped to a process
    # ------------------------------------------------------------------

    def _check_unpicklable_targets(self, ctx) -> Iterable[Finding]:
        # Scopes nest (Module > FunctionDef), so the same call node can
        # surface in several walks; report each offending target once.
        reported: Set[int] = set()
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
                continue
            local_fns = _local_function_names(fn) if not isinstance(fn, ast.Module) else set()
            # Names bound to ProcessPoolExecutor instances in this scope.
            pool_names: Set[str] = set()
            for node in ast.walk(fn):
                if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                    if _call_name(node.value) == "ProcessPoolExecutor":
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                pool_names.add(target.id)
                elif isinstance(node, ast.withitem) and isinstance(node.context_expr, ast.Call):
                    if (
                        _call_name(node.context_expr) == "ProcessPoolExecutor"
                        and isinstance(node.optional_vars, ast.Name)
                    ):
                        pool_names.add(node.optional_vars.id)

            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                name = _call_name(node)
                candidates: List[ast.AST] = []
                if name in _PROCESS_CTORS:
                    candidates = [kw.value for kw in node.keywords if kw.arg == "target"]
                elif name in _SUBMIT_METHODS and isinstance(node.func, ast.Attribute):
                    receiver = node.func.value
                    if isinstance(receiver, ast.Name) and receiver.id in pool_names:
                        candidates = list(node.args[:1])
                for candidate in candidates:
                    if id(candidate) in reported:
                        continue
                    if isinstance(candidate, ast.Lambda):
                        reported.add(id(candidate))
                        yield self.finding(
                            ctx,
                            candidate,
                            "lambda passed as a process-pool target; lambdas cannot "
                            "be pickled, so this breaks under the spawn start "
                            "method — use a module-level function",
                        )
                    elif (
                        isinstance(candidate, ast.Name)
                        and candidate.id in local_fns
                    ):
                        reported.add(id(candidate))
                        yield self.finding(
                            ctx,
                            candidate,
                            f"closure '{candidate.id}' (defined inside "
                            f"{getattr(fn, 'name', '<module>')}()) passed as a "
                            "process-pool target; nested functions cannot be "
                            "pickled under the spawn start method — move it to "
                            "module level",
                        )

    # ------------------------------------------------------------------
    # Shared-memory allocation / release pairing
    # ------------------------------------------------------------------

    def _check_shm_pairing(self, ctx) -> Iterable[Finding]:
        creates: List[ast.Call] = []
        attaches: List[ast.Call] = []
        helper_creates: List[ast.Call] = []
        helper_attaches: List[ast.Call] = []
        has_close = has_unlink = has_destroy = False

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name == "SharedMemory":
                if any(
                    kw.arg == "create"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in node.keywords
                ):
                    creates.append(node)
                else:
                    attaches.append(node)
            elif name == "create_shared_array":
                helper_creates.append(node)
            elif name == "attach_shared_array":
                helper_attaches.append(node)
            elif name == "close":
                has_close = True
            elif name == "unlink":
                has_unlink = True
            elif name == "destroy_shared_array":
                has_destroy = True

        released = has_destroy or (has_close and has_unlink)
        for node in creates:
            if not released:
                yield self.finding(
                    ctx,
                    node,
                    "SharedMemory(create=True) allocation with no close()+unlink() "
                    "(or destroy_shared_array) anywhere in this module; a crash "
                    "here leaks /dev/shm segments",
                )
        for node in helper_creates:
            if not released:
                yield self.finding(
                    ctx,
                    node,
                    "create_shared_array(...) with no destroy_shared_array (or "
                    "close()+unlink()) anywhere in this module; parent-owned "
                    "blocks must be unlinked by the module that creates them",
                )
        for node in attaches + helper_attaches:
            if not (has_close or has_destroy):
                yield self.finding(
                    ctx,
                    node,
                    "shared-memory attach with no close() anywhere in this module; "
                    "child mappings must be closed or the segment count only grows",
                )
