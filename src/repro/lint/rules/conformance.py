"""registry-spec: ``"name?key=val"`` specs must never fail at runtime.

The spec grammar is the repo's universal addressing scheme — CLI flags,
JSON pipelines, checkpoint manifests and tests all reference components
as ``"name?key=val"`` strings.  The grammar is validated at parse time,
but the *kwargs* are only validated when the factory is finally called,
which may be deep inside a long run.  This rule moves that failure to
lint time, against the **live registries** (it imports
:mod:`repro.pipeline.registries`, so it can never drift from what
actually exists):

* every spec-looking string literal whose name resolves in a registry
  has its ``key=val`` options checked against the factory's signature
  (unknown keyword -> finding);
* a spec-looking literal whose name resolves in *no* registry is
  flagged as an unknown component (likely a typo);
* when the file under lint is ``pipeline/registries.py`` itself, every
  registered factory is audited: abstract classes cannot be registered,
  and kwargs-only families (partitioners, backends) must be
  instantiable from a bare name — every constructor parameter needs a
  default.

APPS factories funnel through ``make_program(app, graph, **kw)``, so
their specs are validated against ``make_program``'s signature — the
same domain knowledge the builder and CLI rely on.
"""

from __future__ import annotations

import ast
import inspect
import re
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..base import LintRule, ModuleContext, lint_rule
from ..findings import Finding
from ...pipeline.registry import RegistryError, parse_spec

__all__ = ["RegistrySpecRule"]

#: a plausible spec literal: name?key=val[,key=val...] over the spec
#: grammar's character set.  Anything with spaces, slashes or colons is
#: some other kind of string and is ignored.
_SPEC_LIKE = re.compile(r"^[a-z0-9_\-]+\?[a-z0-9_]+=[^,\s]*(,[a-z0-9_]+=[^,\s]*)*$", re.I)

#: registry families whose factories take kwargs only — a bare "name"
#: spec must be constructible, so every parameter needs a default.
_KWARGS_ONLY = ("partitioner", "backend")


def _load_registries():
    """The live registries plus per-family signature resolvers.

    Imported lazily so the lint engine stays importable even if the
    component packages are mid-refactor; an import failure is reported
    as a finding by the caller instead of crashing the run.
    """
    from ...frameworks.base import make_program
    from ...pipeline import registries

    def app_signature(name: str):
        return inspect.signature(make_program)

    def factory_signature_for(registry):
        def resolve(name: str):
            return inspect.signature(registry.get(name))

        return resolve

    families = {}
    for attr in ("PARTITIONERS", "APPS", "GENERATORS", "STREAMS", "BACKENDS"):
        registry = getattr(registries, attr)
        resolver = app_signature if attr == "APPS" else factory_signature_for(registry)
        families[attr] = (registry, resolver)
    return families


def _spec_kwargs_rejected(signature: inspect.Signature, kwargs: Dict) -> List[str]:
    """Option names the signature cannot accept (empty = conformant)."""
    params = signature.parameters
    if any(p.kind == inspect.Parameter.VAR_KEYWORD for p in params.values()):
        return []
    acceptable = {
        name
        for name, p in params.items()
        if p.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD, inspect.Parameter.KEYWORD_ONLY)
    }
    return sorted(set(kwargs) - acceptable)


def _docstring_nodes(tree: ast.Module) -> Set[int]:
    """ids of Constant nodes that are docstrings (skipped by the scan)."""
    nodes: Set[int] = set()
    for scope in ast.walk(tree):
        if isinstance(scope, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
            body = getattr(scope, "body", [])
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                nodes.add(id(body[0].value))
    return nodes


@lint_rule
class RegistrySpecRule(LintRule):
    """Spec literals conform to live registry signatures; registries stay sound."""

    id = "registry-spec"

    def __init__(self):
        self._families = None
        self._import_error: Optional[str] = None
        try:
            self._families = _load_registries()
        except Exception as exc:  # registry packages unimportable
            self._import_error = f"{type(exc).__name__}: {exc}"

    # ------------------------------------------------------------------

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if self._families is None:
            if ctx.rel.endswith("registries.py"):
                yield self.finding(
                    ctx,
                    ctx.tree,
                    "cannot import repro.pipeline.registries to validate specs: "
                    f"{self._import_error}",
                )
            return
        docstrings = _docstring_nodes(ctx.tree)
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and id(node) not in docstrings
                and _SPEC_LIKE.match(node.value)
            ):
                yield from self._check_literal(ctx, node, node.value)
        if ctx.rel.endswith("pipeline/registries.py"):
            yield from self._audit_registries(ctx)

    # ------------------------------------------------------------------

    def _check_literal(self, ctx, node, text: str) -> Iterable[Finding]:
        try:
            name, kwargs = parse_spec(text)
        except RegistryError:
            return
        holders: List[Tuple[str, object, object]] = [
            (attr, registry, resolver)
            for attr, (registry, resolver) in self._families.items()
            if name in registry
        ]
        if not holders:
            yield self.finding(
                ctx,
                node,
                f"spec literal {text!r} names unknown component {name!r} "
                "(no PARTITIONERS/APPS/GENERATORS/STREAMS/BACKENDS entry answers "
                "to it — typo?)",
            )
            return
        rejections = []
        for attr, registry, resolver in holders:
            try:
                signature = resolver(name)
            except (TypeError, ValueError):  # C-level or unintrospectable
                return
            rejected = _spec_kwargs_rejected(signature, kwargs)
            if not rejected:
                return  # accepted by at least one family
            rejections.append((attr, rejected))
        attr, rejected = rejections[0]
        yield self.finding(
            ctx,
            node,
            f"spec literal {text!r} passes option(s) {', '.join(rejected)} that "
            f"the {attr} factory for {name!r} does not accept; this spec would "
            "fail at runtime",
        )

    def _audit_registries(self, ctx) -> Iterable[Finding]:
        for attr, (registry, resolver) in self._families.items():
            for name, factory in registry.items():
                if inspect.isclass(factory) and inspect.isabstract(factory):
                    yield self.finding(
                        ctx,
                        ctx.tree,
                        f"{attr} entry {name!r} registers abstract class "
                        f"{factory.__name__}; abstract methods must be "
                        "implemented before registration",
                    )
                    continue
                if registry.kind not in _KWARGS_ONLY:
                    continue
                try:
                    signature = resolver(name)
                except (TypeError, ValueError):
                    continue
                required = [
                    p.name
                    for p in signature.parameters.values()
                    if p.default is inspect.Parameter.empty
                    and p.kind
                    in (inspect.Parameter.POSITIONAL_OR_KEYWORD, inspect.Parameter.KEYWORD_ONLY)
                ]
                if required:
                    yield self.finding(
                        ctx,
                        ctx.tree,
                        f"{attr} entry {name!r} has required constructor "
                        f"parameter(s) {', '.join(required)} without defaults; "
                        f"the bare spec {name!r} would fail at runtime",
                    )
