"""The shipped domain rules.

Importing this package registers every rule in
:data:`repro.lint.base.RULES` (registration is a decorator side
effect, mirroring how partitioners land in PARTITIONERS).
"""

from .conformance import RegistrySpecRule
from .determinism import DeterminismRule
from .process_safety import ProcessSafetyRule
from .purity import WorkerPurityRule
from .statelessness import ProgramStatelessnessRule

__all__ = [
    "DeterminismRule",
    "ProcessSafetyRule",
    "ProgramStatelessnessRule",
    "RegistrySpecRule",
    "WorkerPurityRule",
]
