"""worker-purity: runtime workers and backends stay free of shared state.

The runtime package's bit-identity guarantee rests on two structural
facts: (1) the only state a compute stage touches is the per-worker
arrays in :class:`~repro.runtime.base.WorkerState`, and (2) nothing in
``runtime/`` communicates through module-level mutable globals — a
global that works by accident on the fork start method is a silent
wrong-answer on spawn, and a distributed-correctness bug the moment a
backend crosses a host boundary (the ROADMAP's RPC backend).

Three checks over every module in ``runtime/``:

* **no module-level mutable globals** — a module-level name bound to a
  list/dict/set (display, comprehension, or constructor call) must not
  be read or written from inside any function, and ``global``
  statements are banned outright.  Module-level constants of immutable
  type are fine.
* **session arrays are stage-local** — inside ``BackendSession``
  subclasses, ``self.state`` and the arrays hanging off it may only be
  written in ``__init__`` (allocation), ``compute_stage`` or an
  ``exchange_stage`` (the two BSP stages).  Any other method mutating
  session arrays is bypassing the superstep contract the checkpoint
  machinery snapshots around.
* **kernels stay observability-free** — ``runtime/worker.py`` must not
  import :mod:`repro.obs` (or read a clock; the determinism rule covers
  that).  Sessions bracket kernel calls with monotonic reads and feed
  the windows to the attached recorder via ``finish_compute_stage`` /
  ``finish_exchange_stage``; a recorder reference inside a kernel would
  have to cross the process-backend pickle boundary and would let
  tracing perturb the bit-identical hot path.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set

from ..base import LintRule, ModuleContext, lint_rule
from ..findings import Finding
from ._util import base_names, receiver_name

__all__ = ["WorkerPurityRule"]

_SESSION_BASE = "BackendSession"
#: methods allowed to mutate session arrays (allocation + BSP stages).
_STAGE_METHODS = {"__init__", "compute_stage", "exchange_stage"}
#: the shared-kernel module that must never import the obs package.
_KERNEL_MODULE = "runtime/worker.py"
_MUTABLE_CALLS = {"list", "dict", "set", "defaultdict", "OrderedDict", "Counter", "deque"}


def _mutable_global_names(tree: ast.Module) -> Dict[str, int]:
    """Module-level names bound to mutable containers -> binding line."""

    def is_mutable(value: ast.AST) -> bool:
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(value, ast.Call):
            func = value.func
            name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", None)
            return name in _MUTABLE_CALLS
        return False

    names: Dict[str, int] = {}
    for node in tree.body:
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        if not is_mutable(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id != "__all__":
                names[target.id] = node.lineno
    return names


def _session_classes(tree: ast.Module) -> List[ast.ClassDef]:
    classes = [node for node in ast.walk(tree) if isinstance(node, ast.ClassDef)]
    session_names: Set[str] = {_SESSION_BASE}
    changed = True
    while changed:
        changed = False
        for cls in classes:
            if cls.name in session_names:
                continue
            if any(base in session_names for base in base_names(cls)):
                session_names.add(cls.name)
                changed = True
    return [cls for cls in classes if cls.name in session_names and cls.name != _SESSION_BASE]


def _roots_at_state(target: ast.AST, receiver: str) -> bool:
    """Whether a store target's chain is rooted at ``<receiver>.state``."""
    node = target
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        if (
            isinstance(node, ast.Attribute)
            and node.attr == "state"
            and isinstance(node.value, ast.Name)
            and node.value.id == receiver
        ):
            return True
        node = node.value
    return False


@lint_rule
class WorkerPurityRule(LintRule):
    """No mutable module globals in runtime/; session arrays mutate only in stages."""

    id = "worker-purity"

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.rel.startswith("runtime/") or ctx.rel == "runtime.py"

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if ctx.rel == _KERNEL_MODULE:
            yield from self._check_kernel_obs_free(ctx)
        mutable_globals = _mutable_global_names(ctx.tree)

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Global):
                yield self.finding(
                    ctx,
                    node,
                    f"'global {', '.join(node.names)}' in a runtime module; workers "
                    "must not communicate through module state (breaks on spawn "
                    "start method and across hosts)",
                )

        if mutable_globals:
            for fn in ast.walk(ctx.tree):
                if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                seen: Set[str] = set()
                for node in ast.walk(fn):
                    if (
                        isinstance(node, ast.Name)
                        and node.id in mutable_globals
                        and node.id not in seen
                    ):
                        seen.add(node.id)
                        yield self.finding(
                            ctx,
                            node,
                            f"function {fn.name}() touches module-level mutable "
                            f"global '{node.id}' (bound at line "
                            f"{mutable_globals[node.id]}); runtime workers and "
                            "backends must keep all mutable state in WorkerState "
                            "or on the session",
                        )

        yield from self._check_session_classes(ctx)

    def _check_kernel_obs_free(self, ctx: ModuleContext) -> Iterable[Finding]:
        """The shared-kernel module must not import repro.obs."""
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                modules = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                modules = [node.module or ""]
            else:
                continue
            for module in modules:
                if "obs" in module.split("."):
                    yield self.finding(
                        ctx,
                        node,
                        f"{_KERNEL_MODULE} imports {module or 'obs'!s}; worker "
                        "kernels must stay observability-free — the session "
                        "brackets each kernel call with monotonic reads and "
                        "hands the windows to its attached recorder "
                        "(finish_compute_stage / finish_exchange_stage)",
                    )
                    break

    def _check_session_classes(self, ctx: ModuleContext) -> Iterable[Finding]:
        for cls in _session_classes(ctx.tree):
            for item in cls.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if item.name in _STAGE_METHODS:
                    continue
                receiver = receiver_name(item)
                if receiver is None:
                    continue
                for node in ast.walk(item):
                    targets: List[ast.AST] = []
                    if isinstance(node, ast.Assign):
                        targets = node.targets
                    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                        targets = [node.target]
                    for target in targets:
                        if _roots_at_state(target, receiver):
                            yield self.finding(
                                ctx,
                                node,
                                f"session class {cls.name} mutates {receiver}.state "
                                f"in {item.name}(); session arrays may only be "
                                "written during allocation (__init__) or the "
                                "compute/exchange stage methods — anything else "
                                "races the engine's superstep contract",
                            )
