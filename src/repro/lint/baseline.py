"""The committed lint baseline: known findings that do not fail CI.

A baseline lets the linter gate *new* violations at exit-code level
even while old ones are still being paid down.  Entries are keyed by
the line-independent :meth:`~repro.lint.findings.Finding.key` with a
count per key, so findings survive unrelated edits that move lines but
a *second* occurrence of a baselined pattern still fails.

The committed policy for this repository is a **zero-finding
baseline**: ``lint-baseline.json`` at the repo root is empty, every
historical finding having been fixed or explicitly suppressed inline.
The machinery stays because later PRs adding stricter rules can land
them baseline-first and ratchet down.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from .findings import Finding

__all__ = ["Baseline", "BASELINE_VERSION"]

BASELINE_VERSION = 1


class Baseline:
    """A multiset of accepted finding keys, loadable from JSON."""

    def __init__(self, counts: Dict[Tuple[str, str, str], int] = None):
        self._counts: Dict[Tuple[str, str, str], int] = dict(counts or {})

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.is_file():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported lint baseline version {data.get('version')!r} "
                f"in {path} (this build reads version {BASELINE_VERSION})"
            )
        counts: Dict[Tuple[str, str, str], int] = {}
        for entry in data.get("findings", []):
            key = (str(entry["rule"]), str(entry["path"]), str(entry["message"]))
            counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
        return cls(counts)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        counts: Dict[Tuple[str, str, str], int] = {}
        for finding in findings:
            counts[finding.key()] = counts.get(finding.key(), 0) + 1
        return cls(counts)

    def save(self, path: Path) -> None:
        entries = [
            {"rule": rule, "path": rel, "message": message, "count": count}
            for (rule, rel, message), count in sorted(self._counts.items())
        ]
        payload = {"version": BASELINE_VERSION, "findings": entries}
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------

    def partition(self, findings: Iterable[Finding]) -> Tuple[List[Finding], List[Finding]]:
        """Split ``findings`` into (new, baseline-carried).

        Each baseline entry absorbs at most ``count`` findings with its
        key; everything beyond that — including the N+1st occurrence of
        a baselined pattern — is new.
        """
        budget = dict(self._counts)
        new: List[Finding] = []
        carried: List[Finding] = []
        for finding in findings:
            key = finding.key()
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                carried.append(finding)
            else:
                new.append(finding)
        return new, carried

    def __len__(self) -> int:
        return sum(self._counts.values())
