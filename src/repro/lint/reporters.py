"""Text and JSON renderings of a :class:`~repro.lint.engine.LintReport`.

The text reporter is for humans at a terminal; the JSON reporter is the
machine contract CI archives as an artifact (stable keys, sorted
findings, schema version).
"""

from __future__ import annotations

import json

from .engine import LintReport

__all__ = ["render_text", "render_json", "JSON_REPORT_VERSION"]

JSON_REPORT_VERSION = 1


def render_text(report: LintReport, *, verbose: bool = False) -> str:
    """Human-readable report: one finding per line, then a summary."""
    lines = [f.render() for f in report.findings]
    if verbose:
        lines.extend(f"{f.render()} [baselined]" for f in report.baselined)
        lines.extend(f"{f.render()} [suppressed]" for f in report.suppressed)
    summary = (
        f"{len(report.findings)} finding(s) "
        f"({len(report.baselined)} baselined, {len(report.suppressed)} suppressed) "
        f"in {report.files_scanned} file(s), {report.cache_hits} cached"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report (the CI artifact), stable across runs."""
    payload = {
        "version": JSON_REPORT_VERSION,
        "root": report.root,
        "rules": report.rule_ids,
        "files_scanned": report.files_scanned,
        "cache_hits": report.cache_hits,
        "exit_code": report.exit_code,
        "findings": [f.to_dict() for f in report.findings],
        "baselined": [f.to_dict() for f in report.baselined],
        "suppressed": [f.to_dict() for f in report.suppressed],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
