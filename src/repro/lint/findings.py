"""The :class:`Finding` record every lint rule produces.

A finding pins a rule violation to a file and line, with a severity and
a human-actionable message.  Its *baseline key* deliberately excludes
the line/column: baselined findings must survive unrelated edits that
shift code around, so identity is ``(rule, path, message)`` — messages
are written to be line-independent (they name the construct, not its
position).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

__all__ = ["ERROR", "WARNING", "SEVERITIES", "Finding"]

ERROR = "error"
WARNING = "warning"
SEVERITIES = (ERROR, WARNING)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    rule:
        The producing rule's id (``"determinism"``, ...).
    path:
        POSIX-style path relative to the lint root (``"apps/cc.py"``).
    line / col:
        1-based line and 0-based column of the offending node.
    message:
        Line-independent description of the violation.
    severity:
        ``"error"`` (gates the exit code) or ``"warning"``.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = ERROR

    def key(self) -> Tuple[str, str, str]:
        """Line-independent identity used for baseline matching."""
        return (self.rule, self.path, self.message)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Finding":
        return cls(
            rule=str(data["rule"]),
            path=str(data["path"]),
            line=int(data["line"]),
            col=int(data["col"]),
            message=str(data["message"]),
            severity=str(data.get("severity", ERROR)),
        )

    def render(self) -> str:
        """``path:line:col: rule: message`` — the text-reporter line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}[{self.severity}]: {self.message}"
