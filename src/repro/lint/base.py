"""Rule interface and the shared rule registry.

Lint rules are pluggable components exactly like partitioners and
backends: they live in a :class:`~repro.pipeline.registry.Registry`
(the same class — one registration/lookup/error-message idiom across
the whole code base), are addressed by id, and are instantiated once
per lint run.  A rule sees one :class:`ModuleContext` per file — the
parsed AST plus the raw source — and yields
:class:`~repro.lint.findings.Finding` records.

Adding a rule is three steps: subclass :class:`LintRule`, set ``id``
(and optionally ``severity``), and decorate with :func:`lint_rule`.
The module must be imported from :mod:`repro.lint.rules` for the
registration side effect to run.
"""

from __future__ import annotations

import abc
import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional

from ..pipeline.registry import Registry
from .findings import ERROR, Finding

__all__ = ["ModuleContext", "LintRule", "RULES", "lint_rule"]

#: every known lint rule, by id.  Shares the Registry machinery with
#: PARTITIONERS/APPS/... so ``repro lint --rules bogus`` fails with the
#: same self-documenting unknown-component error as every other spec.
RULES = Registry("lint rule")


@dataclass
class ModuleContext:
    """Everything a rule may inspect about one source file."""

    path: Path
    #: POSIX path relative to the lint root (``"apps/cc.py"``) — rule
    #: scoping and baseline identity both key on this.
    rel: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    @classmethod
    def parse(cls, path: Path, rel: str, source: Optional[str] = None) -> "ModuleContext":
        if source is None:
            source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return cls(path=path, rel=rel, source=source, tree=tree, lines=source.splitlines())


class LintRule(abc.ABC):
    """One domain invariant, checked per module."""

    #: unique rule id — the name in :data:`RULES`, the ``[rule-id]`` in
    #: suppression comments, and the ``rule`` field of findings.
    id: str = "?"
    severity: str = ERROR

    @classmethod
    def describe(cls) -> str:
        """One-line rule description (the docstring's first line)."""
        doc = (cls.__doc__ or "").strip()
        return doc.splitlines()[0] if doc else ""

    def applies_to(self, ctx: ModuleContext) -> bool:
        """Whether this rule runs on ``ctx`` (default: every module)."""
        return True

    @abc.abstractmethod
    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        """Yield findings for one module."""

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node`` in ``ctx``."""
        return Finding(
            rule=self.id,
            path=ctx.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            severity=self.severity,
        )


def lint_rule(cls):
    """Class decorator registering a :class:`LintRule` under ``cls.id``."""
    RULES.register(cls.id, cls)
    return cls
