"""Distributed graph construction: local subgraphs plus replica routing.

Given any :class:`~repro.partition.PartitionResult` (vertex-cut or
edge-cut), :func:`build_distributed_graph` materializes what a real
subgraph-centric framework would hold on each worker:

* the worker's local edge list, re-indexed to dense local vertex ids;
* the local vertex table with a global-id column;
* replication routing — every replicated vertex has one **master**
  replica (vertex-cut: the replica whose worker holds the most of the
  vertex's edges; edge-cut: the owning partition) and zero or more
  **mirror** replicas.  Mirrors push updates to their master and the
  master broadcasts the combined value back, PowerGraph-style, which is
  the only communication the BSP engine permits (Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..graph import Graph
from ..partition.base import EDGE_CUT, PartitionResult

__all__ = ["LocalSubgraph", "DistributedGraph", "build_distributed_graph"]


@dataclass
class LocalSubgraph:
    """Everything worker ``worker_id`` holds locally.

    Attributes
    ----------
    worker_id:
        This worker's index in ``[0, p)``.
    global_ids:
        Local→global vertex id map (sorted ascending).
    src, dst:
        Local edge endpoints (indices into ``global_ids``).
    weights:
        Optional local edge weights (parallel to ``src``/``dst``).
    is_master:
        Per local vertex: ``True`` iff this worker hosts the master
        replica.
    master_worker:
        Per local vertex: worker id of the master replica (equals
        ``worker_id`` where ``is_master``).
    global_out_degree:
        Whole-graph out-degree of each local vertex (PageRank needs the
        *global* fan-out, not the local one).
    """

    worker_id: int
    global_ids: np.ndarray
    src: np.ndarray
    dst: np.ndarray
    weights: Optional[np.ndarray]
    is_master: np.ndarray
    master_worker: np.ndarray
    global_out_degree: np.ndarray

    @property
    def num_vertices(self) -> int:
        return int(self.global_ids.shape[0])

    @property
    def num_edges(self) -> int:
        return int(self.src.shape[0])

    def cc_roots(self) -> np.ndarray:
        """Local connected-component roots (computed once; edges are static).

        Used by the CC program: the local component structure never
        changes across supersteps, so after the first full union-find
        pass only incoming label changes need merging.
        """
        cached = getattr(self, "_cc_roots", None)
        if cached is None:
            parent = np.arange(self.num_vertices, dtype=np.int64)

            def find(x: int) -> int:
                root = x
                while parent[root] != root:
                    root = parent[root]
                while parent[x] != root:
                    parent[x], x = root, int(parent[x])
                return root

            for u, v in zip(self.src.tolist(), self.dst.tolist()):
                ru, rv = find(u), find(v)
                if ru != rv:
                    parent[max(ru, rv)] = min(ru, rv)
            cached = np.fromiter(
                (find(x) for x in range(self.num_vertices)),
                dtype=np.int64,
                count=self.num_vertices,
            )
            self._cc_roots = cached
        return cached

    def out_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """Lazy CSR over local edge sources: ``(indptr, edge_ids)``.

        Frontier-based programs (SSSP, BFS) use this to relax only the
        edges leaving updated vertices, the way a sequential Dijkstra
        would, instead of sweeping the whole local edge array.
        """
        cached = getattr(self, "_out_csr", None)
        if cached is None:
            order = np.argsort(self.src, kind="stable")
            indptr = np.zeros(self.num_vertices + 1, dtype=np.int64)
            np.cumsum(np.bincount(self.src, minlength=self.num_vertices), out=indptr[1:])
            cached = (indptr, order)
            self._out_csr = cached
        return cached


@dataclass
class _Route:
    """Bulk transfer plan between one (source, target) worker pair.

    ``src_index[k]`` on the sending worker maps to ``dst_index[k]`` on
    the receiving worker; both index the workers' local vertex arrays.
    """

    src_index: np.ndarray
    dst_index: np.ndarray


@dataclass
class DistributedGraph:
    """The fully routed distributed graph the BSP engine executes on."""

    graph: Graph
    num_workers: int
    locals: List[LocalSubgraph]
    #: mirror→master routes: ``up_routes[(w_mirror, w_master)]``
    up_routes: Dict[Tuple[int, int], _Route] = field(default_factory=dict)
    #: master→mirror routes: ``down_routes[(w_master, w_mirror)]``
    down_routes: Dict[Tuple[int, int], _Route] = field(default_factory=dict)
    #: name of the partition algorithm that produced this layout; every
    #: :class:`~repro.bsp.engine.BSPRun` executed here is labeled with it.
    partition_method: str = "?"

    def replication_factor(self) -> float:
        """Σ local vertex counts over |V| — sanity hook for tests."""
        total = sum(l.num_vertices for l in self.locals)
        return total / self.graph.num_vertices

    def gather_master_values(self, values: List[np.ndarray], default=0) -> np.ndarray:
        """Assemble the global value array from each vertex's master copy.

        Supports both scalar per-vertex values (1-D arrays) and vector
        values (2-D arrays, e.g. GNN feature rows).
        """
        shape = (self.graph.num_vertices,) + values[0].shape[1:]
        out = np.full(shape, default, dtype=values[0].dtype)
        for local, vals in zip(self.locals, values):
            mask = local.is_master
            out[local.global_ids[mask]] = vals[mask]
        return out


def _master_assignment(result: PartitionResult) -> Dict[int, int]:
    """Choose the master worker for every vertex that appears in the graph.

    Vertex-cut: the replica co-located with the most of the vertex's
    edges (ties to the smallest worker id), the standard PowerGraph
    placement.  Edge-cut: the owning partition.
    """
    graph = result.graph
    if result.kind == EDGE_CUT:
        return {v: int(result.vertex_parts[v]) for v in range(graph.num_vertices)}
    # Count incident edges per (vertex, part).
    n = graph.num_vertices
    p = result.num_parts
    keys = np.concatenate(
        [
            graph.src * np.int64(p) + result.edge_parts,
            graph.dst * np.int64(p) + result.edge_parts,
        ]
    )
    uniq, counts = np.unique(keys, return_counts=True)
    verts = (uniq // p).astype(np.int64)
    parts = (uniq % p).astype(np.int64)
    masters: Dict[int, int] = {}
    best: Dict[int, int] = {}
    for v, part, c in zip(verts.tolist(), parts.tolist(), counts.tolist()):
        if v not in masters or c > best[v] or (c == best[v] and part < masters[v]):
            masters[v] = part
            best[v] = c
    return masters


def build_distributed_graph(result: PartitionResult) -> DistributedGraph:
    """Materialize local subgraphs and replica routes from a partition."""
    graph = result.graph
    p = result.num_parts
    masters = _master_assignment(result)

    # Vertex membership per worker (includes ghosts for edge-cut).
    membership: List[np.ndarray] = []
    if result.kind == EDGE_CUT:
        # V_i as *hosted* set: owned vertices plus ghost endpoints of
        # edges executed here.
        for i in range(p):
            mask = result.edge_parts == i
            hosted = np.unique(
                np.concatenate(
                    [
                        graph.src[mask],
                        graph.dst[mask],
                        np.nonzero(result.vertex_parts == i)[0],
                    ]
                )
            )
            membership.append(hosted)
    else:
        membership = [m.copy() for m in result.vertex_membership()]

    # Vertices incident to no edge appear in no E_i; a real deployment
    # still needs a home for them, so spread them round-robin as masters.
    hosted = np.zeros(graph.num_vertices, dtype=bool)
    for verts in membership:
        hosted[verts] = True
    unhosted = np.nonzero(~hosted)[0]
    if unhosted.size:
        extras: List[List[int]] = [[] for _ in range(p)]
        for j, v in enumerate(unhosted.tolist()):
            masters[v] = j % p
            extras[j % p].append(v)
        for i in range(p):
            if extras[i]:
                membership[i] = np.unique(
                    np.concatenate([membership[i], np.asarray(extras[i], dtype=np.int64)])
                )

    global_out_deg = graph.out_degrees()
    locals_: List[LocalSubgraph] = []
    local_index_of: List[Dict[int, int]] = []
    for i in range(p):
        verts = membership[i]
        index = {int(v): j for j, v in enumerate(verts.tolist())}
        mask = result.edge_parts == i
        lsrc = np.fromiter(
            (index[int(v)] for v in graph.src[mask]), dtype=np.int64,
            count=int(mask.sum()),
        )
        ldst = np.fromiter(
            (index[int(v)] for v in graph.dst[mask]), dtype=np.int64,
            count=int(mask.sum()),
        )
        weights = None if graph.weights is None else graph.weights[mask]
        master_worker = np.fromiter(
            (masters.get(int(v), i) for v in verts.tolist()),
            dtype=np.int64,
            count=verts.shape[0],
        )
        locals_.append(
            LocalSubgraph(
                worker_id=i,
                global_ids=verts,
                src=lsrc,
                dst=ldst,
                weights=weights,
                is_master=master_worker == i,
                master_worker=master_worker,
                global_out_degree=global_out_deg[verts],
            )
        )
        local_index_of.append(index)

    dg = DistributedGraph(
        graph=graph, num_workers=p, locals=locals_, partition_method=result.method
    )

    # Build pairwise routes from each mirror to its master and back.
    pair_src: Dict[Tuple[int, int], List[int]] = {}
    pair_dst: Dict[Tuple[int, int], List[int]] = {}
    for w, local in enumerate(locals_):
        mirror_idx = np.nonzero(~local.is_master)[0]
        for j in mirror_idx.tolist():
            gv = int(local.global_ids[j])
            mw = int(local.master_worker[j])
            mj = local_index_of[mw][gv]
            pair_src.setdefault((w, mw), []).append(j)
            pair_dst.setdefault((w, mw), []).append(mj)
    for key in pair_src:
        up = _Route(
            src_index=np.asarray(pair_src[key], dtype=np.int64),
            dst_index=np.asarray(pair_dst[key], dtype=np.int64),
        )
        dg.up_routes[key] = up
        w, mw = key
        dg.down_routes[(mw, w)] = _Route(
            src_index=up.dst_index, dst_index=up.src_index
        )
    return dg
