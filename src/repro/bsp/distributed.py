"""Distributed graph construction: local subgraphs plus replica routing.

Given any :class:`~repro.partition.PartitionResult` (vertex-cut or
edge-cut), :func:`build_distributed_graph` materializes what a real
subgraph-centric framework would hold on each worker:

* the worker's local edge list, re-indexed to dense local vertex ids;
* the local vertex table with a global-id column;
* replication routing — every replicated vertex has one **master**
  replica (vertex-cut: the replica whose worker holds the most of the
  vertex's edges; edge-cut: the owning partition) and zero or more
  **mirror** replicas.  Mirrors push updates to their master and the
  master broadcasts the combined value back, PowerGraph-style, which is
  the only communication the BSP engine permits (Section IV-B).

The build is fully vectorized: master assignment is a sorted
``(vertex, part)`` key reduction, global→local re-indexing is
``np.searchsorted`` over each worker's sorted vertex table, and the
mirror→master routes come from one ``argsort`` over
``(mirror_worker, master_worker)`` keys.  The original per-vertex
Python-loop implementation is preserved as
:func:`build_distributed_graph_legacy` so the equivalence tests and
``benchmarks/bench_build.py`` can prove the rewrite is byte-identical
and measure the speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..graph import Graph
from ..partition.base import (
    _DENSE_CELLS,
    _group_vertices_by_part,
    EDGE_CUT,
    PartitionResult,
)

__all__ = [
    "LocalSubgraph",
    "DistributedGraph",
    "build_distributed_graph",
    "build_distributed_graph_legacy",
]


@dataclass
class LocalSubgraph:
    """Everything worker ``worker_id`` holds locally.

    Attributes
    ----------
    worker_id:
        This worker's index in ``[0, p)``.
    global_ids:
        Local→global vertex id map (sorted ascending).
    src, dst:
        Local edge endpoints (indices into ``global_ids``).
    weights:
        Optional local edge weights (parallel to ``src``/``dst``).
    is_master:
        Per local vertex: ``True`` iff this worker hosts the master
        replica.
    master_worker:
        Per local vertex: worker id of the master replica (equals
        ``worker_id`` where ``is_master``).
    global_out_degree:
        Whole-graph out-degree of each local vertex (PageRank needs the
        *global* fan-out, not the local one).
    """

    worker_id: int
    global_ids: np.ndarray
    src: np.ndarray
    dst: np.ndarray
    weights: Optional[np.ndarray]
    is_master: np.ndarray
    master_worker: np.ndarray
    global_out_degree: np.ndarray

    @property
    def num_vertices(self) -> int:
        return int(self.global_ids.shape[0])

    @property
    def num_edges(self) -> int:
        return int(self.src.shape[0])

    def cc_roots(self) -> np.ndarray:
        """Local connected-component roots (computed once; edges are static).

        Used by the CC program: the local component structure never
        changes across supersteps, so after the first full union-find
        pass only incoming label changes need merging.
        """
        cached = getattr(self, "_cc_roots", None)
        if cached is None:
            parent = np.arange(self.num_vertices, dtype=np.int64)

            def find(x: int) -> int:
                root = x
                while parent[root] != root:
                    root = parent[root]
                while parent[x] != root:
                    parent[x], x = root, int(parent[x])
                return root

            for u, v in zip(self.src.tolist(), self.dst.tolist()):
                ru, rv = find(u), find(v)
                if ru != rv:
                    parent[max(ru, rv)] = min(ru, rv)
            cached = np.fromiter(
                (find(x) for x in range(self.num_vertices)),
                dtype=np.int64,
                count=self.num_vertices,
            )
            self._cc_roots = cached
        return cached

    def out_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """Lazy CSR over local edge sources: ``(indptr, edge_ids)``.

        Frontier-based programs (SSSP, BFS) use this to relax only the
        edges leaving updated vertices, the way a sequential Dijkstra
        would, instead of sweeping the whole local edge array.
        """
        cached = getattr(self, "_out_csr", None)
        if cached is None:
            order = np.argsort(self.src, kind="stable")
            indptr = np.zeros(self.num_vertices + 1, dtype=np.int64)
            np.cumsum(np.bincount(self.src, minlength=self.num_vertices), out=indptr[1:])
            cached = (indptr, order)
            self._out_csr = cached
        return cached


@dataclass
class _Route:
    """Bulk transfer plan between one (source, target) worker pair.

    ``src_index[k]`` on the sending worker maps to ``dst_index[k]`` on
    the receiving worker; both index the workers' local vertex arrays.
    """

    src_index: np.ndarray
    dst_index: np.ndarray


@dataclass
class DistributedGraph:
    """The fully routed distributed graph the BSP engine executes on."""

    graph: Graph
    num_workers: int
    locals: List[LocalSubgraph]
    #: mirror→master routes: ``up_routes[(w_mirror, w_master)]``
    up_routes: Dict[Tuple[int, int], _Route] = field(default_factory=dict)
    #: master→mirror routes: ``down_routes[(w_master, w_mirror)]``
    down_routes: Dict[Tuple[int, int], _Route] = field(default_factory=dict)
    #: name of the partition algorithm that produced this layout; every
    #: :class:`~repro.bsp.engine.BSPRun` executed here is labeled with it.
    partition_method: str = "?"

    def replication_factor(self) -> float:
        """Σ local vertex counts over |V| — sanity hook for tests."""
        total = sum(l.num_vertices for l in self.locals)
        return total / self.graph.num_vertices

    def gather_master_values(self, values: List[np.ndarray], default=0) -> np.ndarray:
        """Assemble the global value array from each vertex's master copy.

        Supports both scalar per-vertex values (1-D arrays) and vector
        values (2-D arrays, e.g. GNN feature rows).
        """
        shape = (self.graph.num_vertices,) + values[0].shape[1:]
        out = np.full(shape, default, dtype=values[0].dtype)
        for local, vals in zip(self.locals, values):
            mask = local.is_master
            out[local.global_ids[mask]] = vals[mask]
        return out


def _master_assignment(result: PartitionResult) -> np.ndarray:
    """Choose the master worker for every vertex, as an int64 array.

    Vertex-cut: the replica co-located with the most of the vertex's
    edges (ties to the smallest worker id), the standard PowerGraph
    placement.  Edge-cut: the owning partition.  Vertices incident to no
    edge get ``-1``; :func:`build_distributed_graph` homes them
    round-robin.
    """
    graph = result.graph
    n = graph.num_vertices
    if result.kind == EDGE_CUT:
        return result.vertex_parts.astype(np.int64, copy=True)
    p = result.num_parts
    keys = np.concatenate(
        [
            graph.src * np.int64(p) + result.edge_parts,
            graph.dst * np.int64(p) + result.edge_parts,
        ]
    )
    if n * p <= _DENSE_CELLS:
        # Dense per-(vertex, part) incidence counts; argmax returns the
        # first (= smallest part id) maximum, the required tie-break.
        counts = np.bincount(keys, minlength=n * p).reshape(n, p)
        best = counts.argmax(axis=1)
        return np.where(counts.max(axis=1) > 0, best, np.int64(-1))
    uniq, counts = np.unique(keys, return_counts=True)
    verts = uniq // p
    parts = uniq % p
    # Rank each vertex's replicas by (count desc, part asc) and keep the
    # first row per vertex group.
    order = np.lexsort((parts, -counts, verts))
    sverts = verts[order]
    first = np.ones(sverts.size, dtype=bool)
    if sverts.size:
        first[1:] = sverts[1:] != sverts[:-1]
    masters = np.full(n, -1, dtype=np.int64)
    masters[sverts[first]] = parts[order][first]
    return masters


def _edge_cut_membership(result: PartitionResult) -> List[np.ndarray]:
    """Hosted vertex set per worker: owned vertices plus ghost endpoints."""
    graph = result.graph
    n = graph.num_vertices
    p = result.num_parts
    return _group_vertices_by_part(
        [
            result.edge_parts * np.int64(n) + graph.src,
            result.edge_parts * np.int64(n) + graph.dst,
            result.vertex_parts * np.int64(n) + np.arange(n, dtype=np.int64),
        ],
        n,
        p,
    )


def build_distributed_graph(result: PartitionResult) -> DistributedGraph:
    """Materialize local subgraphs and replica routes from a partition."""
    graph = result.graph
    n = graph.num_vertices
    p = result.num_parts
    masters = _master_assignment(result)

    # Vertex membership per worker (includes ghosts for edge-cut).
    if result.kind == EDGE_CUT:
        membership = _edge_cut_membership(result)
    else:
        membership = list(result.vertex_membership())

    # Vertices incident to no edge appear in no E_i; a real deployment
    # still needs a home for them, so spread them round-robin as masters.
    hosted = np.zeros(n, dtype=bool)
    for verts in membership:
        hosted[verts] = True
    unhosted = np.nonzero(~hosted)[0]
    if unhosted.size:
        home = np.arange(unhosted.size, dtype=np.int64) % p
        masters[unhosted] = home
        for i in range(p):
            extra = unhosted[home == i]
            if extra.size:
                membership[i] = np.union1d(membership[i], extra)

    # Group edge ids by part once; the stable sort keeps each part's
    # edges in input order, matching the legacy boolean-mask scan.  Part
    # ids fit in int16, where NumPy's stable sort is an O(m) radix sort.
    if p <= np.iinfo(np.int16).max:
        edge_order = np.argsort(result.edge_parts.astype(np.int16), kind="stable")
    else:
        edge_order = np.argsort(result.edge_parts, kind="stable")
    ebounds = np.searchsorted(result.edge_parts[edge_order], np.arange(p + 1))

    # Global→local re-indexing.  Small layouts use a dense (part, vertex)
    # lookup table — one scatter per part, then a single gather for every
    # edge endpoint; entries outside each part's membership are never
    # read.  Large layouts fall back to per-part binary search.
    lut: Optional[np.ndarray] = None
    if n * p <= _DENSE_CELLS:
        lut = np.empty(p * n, dtype=np.int64)
        for i in range(p):
            verts = membership[i]
            lut[i * n + verts] = np.arange(verts.size, dtype=np.int64)
        part_base = result.edge_parts * np.int64(n)
        lsrc_all = lut[part_base + graph.src]
        ldst_all = lut[part_base + graph.dst]

    global_out_deg = graph.out_degrees()
    locals_: List[LocalSubgraph] = []
    for i in range(p):
        verts = membership[i]
        eids = edge_order[ebounds[i] : ebounds[i + 1]]
        if lut is not None:
            lsrc = lsrc_all[eids]
            ldst = ldst_all[eids]
        else:
            lsrc = np.searchsorted(verts, graph.src[eids]).astype(np.int64, copy=False)
            ldst = np.searchsorted(verts, graph.dst[eids]).astype(np.int64, copy=False)
        weights = None if graph.weights is None else graph.weights[eids]
        mw = masters[verts]
        master_worker = np.where(mw < 0, np.int64(i), mw)
        locals_.append(
            LocalSubgraph(
                worker_id=i,
                global_ids=verts,
                src=lsrc,
                dst=ldst,
                weights=weights,
                is_master=master_worker == i,
                master_worker=master_worker,
                global_out_degree=global_out_deg[verts],
            )
        )

    dg = DistributedGraph(
        graph=graph, num_workers=p, locals=locals_, partition_method=result.method
    )

    # Gather every mirror replica across all workers into flat arrays.
    mir_w = np.concatenate(
        [np.full(np.count_nonzero(~l.is_master), w, dtype=np.int64)
         for w, l in enumerate(locals_)]
    )
    mir_j = np.concatenate([np.nonzero(~l.is_master)[0] for l in locals_])
    if mir_j.size == 0:
        return dg
    mir_gv = np.concatenate([l.global_ids[~l.is_master] for l in locals_])
    mir_mw = np.concatenate([l.master_worker[~l.is_master] for l in locals_])

    # Resolve each mirror's local index on its master worker: one gather
    # through the dense lookup table, or one searchsorted per master
    # (each worker's vertex table is sorted) at large scale.
    if lut is not None:
        mir_mj = lut[mir_mw * np.int64(n) + mir_gv]
    else:
        mir_mj = np.empty(mir_j.size, dtype=np.int64)
        mw_order = np.argsort(mir_mw, kind="stable")
        mw_bounds = np.searchsorted(mir_mw[mw_order], np.arange(p + 1))
        for mw_id in range(p):
            sel = mw_order[mw_bounds[mw_id] : mw_bounds[mw_id + 1]]
            if sel.size:
                mir_mj[sel] = np.searchsorted(membership[mw_id], mir_gv[sel])

    # Group mirrors into per-(mirror worker, master worker) routes.  The
    # stable sort keeps mirrors in (worker, local index) order, matching
    # the legacy per-vertex append loop.
    pair_key = mir_w * np.int64(p) + mir_mw
    order = np.argsort(pair_key, kind="stable")
    skey = pair_key[order]
    starts = np.flatnonzero(np.concatenate([[True], skey[1:] != skey[:-1]]))
    ends = np.concatenate([starts[1:], [skey.size]])
    for s, e in zip(starts.tolist(), ends.tolist()):
        w = int(skey[s] // p)
        mw_id = int(skey[s] % p)
        sel = order[s:e]
        up = _Route(src_index=mir_j[sel], dst_index=mir_mj[sel])
        dg.up_routes[(w, mw_id)] = up
        dg.down_routes[(mw_id, w)] = _Route(
            src_index=up.dst_index, dst_index=up.src_index
        )
    return dg


# ----------------------------------------------------------------------
# Legacy reference implementation
# ----------------------------------------------------------------------
#
# The original per-vertex Python-loop build, kept verbatim as the ground
# truth for tests/bsp/test_build_equivalence.py and as the baseline that
# benchmarks/bench_build.py measures the vectorized build against.  Do
# not "optimize" this path — its value is being obviously correct.


def _master_assignment_legacy(result: PartitionResult) -> Dict[int, int]:
    """Dict-based master choice (see :func:`_master_assignment`)."""
    graph = result.graph
    if result.kind == EDGE_CUT:
        return {v: int(result.vertex_parts[v]) for v in range(graph.num_vertices)}
    # Count incident edges per (vertex, part).
    p = result.num_parts
    keys = np.concatenate(
        [
            graph.src * np.int64(p) + result.edge_parts,
            graph.dst * np.int64(p) + result.edge_parts,
        ]
    )
    uniq, counts = np.unique(keys, return_counts=True)
    verts = (uniq // p).astype(np.int64)
    parts = (uniq % p).astype(np.int64)
    masters: Dict[int, int] = {}
    best: Dict[int, int] = {}
    for v, part, c in zip(verts.tolist(), parts.tolist(), counts.tolist()):
        if v not in masters or c > best[v] or (c == best[v] and part < masters[v]):
            masters[v] = part
            best[v] = c
    return masters


def build_distributed_graph_legacy(result: PartitionResult) -> DistributedGraph:
    """Original loop-based build; reference for equivalence and benchmarks."""
    graph = result.graph
    p = result.num_parts
    masters = _master_assignment_legacy(result)

    # Vertex membership per worker (includes ghosts for edge-cut).
    membership: List[np.ndarray] = []
    if result.kind == EDGE_CUT:
        # V_i as *hosted* set: owned vertices plus ghost endpoints of
        # edges executed here.
        for i in range(p):
            mask = result.edge_parts == i
            hosted = np.unique(
                np.concatenate(
                    [
                        graph.src[mask],
                        graph.dst[mask],
                        np.nonzero(result.vertex_parts == i)[0],
                    ]
                )
            )
            membership.append(hosted)
    else:
        membership = [m.copy() for m in result.vertex_membership()]

    # Vertices incident to no edge appear in no E_i; a real deployment
    # still needs a home for them, so spread them round-robin as masters.
    hosted = np.zeros(graph.num_vertices, dtype=bool)
    for verts in membership:
        hosted[verts] = True
    unhosted = np.nonzero(~hosted)[0]
    if unhosted.size:
        extras: List[List[int]] = [[] for _ in range(p)]
        for j, v in enumerate(unhosted.tolist()):
            masters[v] = j % p
            extras[j % p].append(v)
        for i in range(p):
            if extras[i]:
                membership[i] = np.unique(
                    np.concatenate([membership[i], np.asarray(extras[i], dtype=np.int64)])
                )

    global_out_deg = graph.out_degrees()
    locals_: List[LocalSubgraph] = []
    local_index_of: List[Dict[int, int]] = []
    for i in range(p):
        verts = membership[i]
        index = {int(v): j for j, v in enumerate(verts.tolist())}
        mask = result.edge_parts == i
        lsrc = np.fromiter(
            (index[int(v)] for v in graph.src[mask]), dtype=np.int64,
            count=int(mask.sum()),
        )
        ldst = np.fromiter(
            (index[int(v)] for v in graph.dst[mask]), dtype=np.int64,
            count=int(mask.sum()),
        )
        weights = None if graph.weights is None else graph.weights[mask]
        master_worker = np.fromiter(
            (masters.get(int(v), i) for v in verts.tolist()),
            dtype=np.int64,
            count=verts.shape[0],
        )
        locals_.append(
            LocalSubgraph(
                worker_id=i,
                global_ids=verts,
                src=lsrc,
                dst=ldst,
                weights=weights,
                is_master=master_worker == i,
                master_worker=master_worker,
                global_out_degree=global_out_deg[verts],
            )
        )
        local_index_of.append(index)

    dg = DistributedGraph(
        graph=graph, num_workers=p, locals=locals_, partition_method=result.method
    )

    # Build pairwise routes from each mirror to its master and back.
    pair_src: Dict[Tuple[int, int], List[int]] = {}
    pair_dst: Dict[Tuple[int, int], List[int]] = {}
    for w, local in enumerate(locals_):
        mirror_idx = np.nonzero(~local.is_master)[0]
        for j in mirror_idx.tolist():
            gv = int(local.global_ids[j])
            mw = int(local.master_worker[j])
            mj = local_index_of[mw][gv]
            pair_src.setdefault((w, mw), []).append(j)
            pair_dst.setdefault((w, mw), []).append(mj)
    for key in pair_src:
        up = _Route(
            src_index=np.asarray(pair_src[key], dtype=np.int64),
            dst_index=np.asarray(pair_dst[key], dtype=np.int64),
        )
        dg.up_routes[key] = up
        w, mw = key
        dg.down_routes[(mw, w)] = _Route(
            src_index=up.dst_index, dst_index=up.src_index
        )
    return dg
